#!/usr/bin/env bash
# Offline cargo-deny-style dependency audit.
#
# The workspace must keep building with the network unplugged: every
# third-party crate name resolves to an in-tree shim under shims/, the
# first-party crates live under crates/, and the lockfile must never
# acquire a registry or git source. cargo-deny itself would be a registry
# dependency, so this script re-implements the two checks that policy
# needs from the manifests and lockfile directly.
#
# Exit 0 when the policy holds, 1 with one FAIL line per violation.
set -euo pipefail
cd "$(dirname "$0")/.."

violations=0

# 1. Cargo.lock must resolve no registry or git sources. A crates.io
#    package carries `source = "registry+https://..."` in its lock entry;
#    path dependencies carry no source line at all, so any source line of
#    either kind means a network dependency crept in.
if bad=$(grep -nE 'source = "(registry|git)\+' Cargo.lock); then
  echo "FAIL: Cargo.lock resolves non-path sources:" >&2
  echo "$bad" >&2
  violations=$((violations + 1))
fi

# 2. Every `path = "..."` in any manifest must point into crates/, shims/,
#    or the manifest's own src/ tree (bin/lib target paths). Nothing may
#    reach outside the repository or into an unvetted directory.
while IFS=: read -r file line entry; do
  p=$(sed -E 's/.*path *= *"([^"]*)".*/\1/' <<<"$entry")
  case "$p" in
    crates/* | shims/* | src/*) ;;
    *)
      echo "FAIL: $file:$line: path escapes crates/, shims/, src/: $p" >&2
      violations=$((violations + 1))
      ;;
  esac
done < <(grep -nH 'path *= *"' Cargo.toml crates/*/Cargo.toml shims/*/Cargo.toml)

# 3. Every [workspace.dependencies] entry must be a path dependency, and
#    only the first-party exflow-* crates may live under crates/ — any
#    other name (rand, rayon, ...) is third-party and must point at its
#    shim, so a future `rand = "0.8"` edit fails here even before the
#    lockfile regenerates.
while IFS= read -r dep; do
  name=${dep%%[ =]*}
  case "$dep" in
    *'path = "shims/'*) ;;
    *'path = "crates/'*)
      case "$name" in
        exflow-*) ;;
        *)
          echo "FAIL: third-party name '$name' must resolve to shims/, not crates/" >&2
          violations=$((violations + 1))
          ;;
      esac
      ;;
    *)
      echo "FAIL: workspace dependency '$name' is not a path dependency: $dep" >&2
      violations=$((violations + 1))
      ;;
  esac
done < <(awk '/^\[workspace\.dependencies\]/ { s = 1; next }
              /^\[/ { s = 0 }
              s && /=/ { print }' Cargo.toml)

# 4. exflow-detlint must stay dependency-free (std only): the linter has
#    to build before any shim and lint the workspace from outside it, so
#    its [dependencies] and [dev-dependencies] tables must be empty.
while IFS= read -r dep; do
  echo "FAIL: exflow-detlint must be dependency-free, found: $dep" >&2
  violations=$((violations + 1))
done < <(awk '/^\[(dependencies|dev-dependencies)\]/ { s = 1; next }
              /^\[/ { s = 0 }
              s && /=/ { print }' crates/detlint/Cargo.toml)

if [ "$violations" -ne 0 ]; then
  echo "deps-audit: $violations violation(s)" >&2
  exit 1
fi
echo "deps-audit: OK (no registry/git sources; shims/ and crates/ are the only path deps; exflow-detlint is dependency-free)"
