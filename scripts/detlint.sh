#!/usr/bin/env bash
# Run the in-tree determinism & safety linter (exflow-detlint).
#
#   scripts/detlint.sh             lint the tree against detlint.baseline
#   scripts/detlint.sh --selftest  assert the fixture corpus behaves
#                                  (every *_fire.rs exits 1, every
#                                  *_pass.rs exits 0), then lint the tree
#
# In CI ($GITHUB_STEP_SUMMARY set) the markdown report is appended to the
# job's step summary. Exit: 0 clean, 1 findings, 2 tool error.
set -euo pipefail
cd "$(dirname "$0")/.."

selftest=0
if [ "${1:-}" = "--selftest" ]; then
  selftest=1
  shift
fi

# Build once so the per-fixture runs below are instant and quiet.
cargo build -q -p exflow-detlint
detlint() { cargo run -q -p exflow-detlint -- "$@"; }

if [ "$selftest" -eq 1 ]; then
  for fixture in crates/detlint/fixtures/d00*_fire.rs; do
    code=0
    detlint --no-baseline "$fixture" >/dev/null || code=$?
    if [ "$code" -ne 1 ]; then
      echo "FAIL: should-fire fixture exited $code (want 1): $fixture" >&2
      exit 2
    fi
  done
  for fixture in crates/detlint/fixtures/d00*_pass.rs; do
    if ! detlint --no-baseline "$fixture" >/dev/null; then
      echo "FAIL: should-pass fixture fired: $fixture" >&2
      exit 2
    fi
  done
  echo "detlint selftest: OK (6 fire + 6 pass fixtures)"
fi

md_args=()
if [ -n "${GITHUB_STEP_SUMMARY:-}" ]; then
  md_args=(--markdown /tmp/detlint-report.md)
fi

status=0
detlint "${md_args[@]}" "$@" || status=$?

if [ -n "${GITHUB_STEP_SUMMARY:-}" ] && [ -f /tmp/detlint-report.md ]; then
  cat /tmp/detlint-report.md >>"$GITHUB_STEP_SUMMARY"
fi
exit "$status"
