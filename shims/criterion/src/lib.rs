//! Offline shim for the `criterion` crate.
//!
//! A minimal wall-clock timing harness with criterion's API shape:
//! `criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, bench_function, finish}` and
//! `Bencher::iter`. It reports mean time per iteration on stdout and does no
//! statistics, plotting or comparison. See `shims/README.md`.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point handed to every bench function.
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Default configuration (10 samples per benchmark).
    pub fn new() -> Self {
        Criterion { sample_size: 10 }
    }

    /// Accept (and ignore) CLI arguments, for `criterion_main!` parity.
    /// `cargo bench` passes flags like `--bench`; the shim has no options.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: if self.sample_size == 0 {
                10
            } else {
                self.sample_size
            },
            _criterion: self,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = if self.sample_size == 0 {
            10
        } else {
            self.sample_size
        };
        run_benchmark(id, samples, f);
        self
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Time `f` under `<group>/<id>`.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Finish the group (no-op; output is streamed as benches run).
    pub fn finish(self) {}
}

/// Timer handed to the closure of `bench_function`.
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Measure `f`, accumulating elapsed time over iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up pass.
        black_box(f());
        let start = Instant::now();
        black_box(f());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

fn run_benchmark<F>(id: &str, samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher::default();
    for _ in 0..samples {
        f(&mut b);
    }
    if b.iters == 0 {
        println!("{id:<40} (no iterations)");
    } else {
        let mean = b.elapsed / u32::try_from(b.iters).unwrap_or(u32::MAX);
        println!("{id:<40} mean {mean:>12.3?} over {} iters", b.iters);
    }
}

/// Collect bench functions into a runnable group, mirroring criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        /// Run every benchmark function registered in this group.
        pub fn $name() {
            let mut criterion = $crate::Criterion::new().configure_from_args();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Generate `main` running the named groups, mirroring criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion::new();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        let mut runs = 0u64;
        g.bench_function("count", |b| b.iter(|| runs += 1));
        g.finish();
        // 3 samples x (1 warm-up + 1 timed) closures.
        assert_eq!(runs, 6);
    }
}
