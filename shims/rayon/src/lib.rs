//! Offline shim for the `rayon` crate.
//!
//! Two layers, both implementing the subset of rayon's API this workspace
//! uses (see `shims/README.md`):
//!
//! * [`prelude`] — the original sequential slice adaptors (`par_iter`,
//!   `par_chunks_mut`, ...) that return the corresponding standard
//!   iterators. Kept sequential: their call sites are memory-bound loops
//!   where determinism matters more than speedup.
//! * [`iter`] + the pool types — a genuinely parallel, *deterministic*
//!   executor. `into_par_iter().map(f).collect()` fans tasks over worker
//!   threads that pull indices from a shared atomic counter (work
//!   stealing), then reassembles results in input order, so the output is
//!   bit-identical to the sequential run for any pure `f` and any thread
//!   count.
//!
//! Unlike real rayon there is no global pool and the default width is 1:
//! parallelism is strictly opt-in through [`ThreadPool::install`] (or the
//! explicit [`ThreadPool::run_indexed`]), which keeps test timings and
//! benchmark baselines reproducible. Panics from workers propagate to the
//! caller exactly like `std::thread::scope` joins.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

thread_local! {
    /// Thread-local pool width installed by [`ThreadPool::install`].
    static INSTALLED_THREADS: Cell<usize> = const { Cell::new(1) };
}

/// The number of worker threads parallel iterators on this thread will
/// use: the width installed by the innermost [`ThreadPool::install`], or 1
/// when none is active (sequential by default, unlike real rayon).
pub fn current_num_threads() -> usize {
    INSTALLED_THREADS.with(|t| t.get())
}

/// The machine's available hardware parallelism (fallback 1).
pub fn max_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Error building a [`ThreadPool`] (zero threads requested).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadPoolBuildError {
    msg: String,
}

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// A fresh builder (defaults to 1 thread: opt-in parallelism).
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Set the pool width. `0` is rejected at [`build`](Self::build) time
    /// (real rayon treats 0 as "auto"; this shim keeps widths explicit so
    /// runs are reproducible by construction).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Build the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = self.num_threads.unwrap_or(1);
        if n == 0 {
            return Err(ThreadPoolBuildError {
                msg: "thread pool width must be >= 1".to_string(),
            });
        }
        Ok(ThreadPool { num_threads: n })
    }
}

/// A handle carrying a pool width. Workers are not kept alive between
/// operations: each parallel call spawns scoped threads, which keeps the
/// shim free of global state (and of `unsafe`).
#[derive(Debug, Clone)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Shorthand for `ThreadPoolBuilder::new().num_threads(n).build()`.
    pub fn new(n: usize) -> Result<ThreadPool, ThreadPoolBuildError> {
        ThreadPoolBuilder::new().num_threads(n).build()
    }

    /// This pool's width.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Run `op` with this pool installed: parallel iterators created inside
    /// `op` (on this thread) use this pool's width. The previous width is
    /// restored on exit, even on panic.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                INSTALLED_THREADS.with(|t| t.set(self.0));
            }
        }
        let prev = INSTALLED_THREADS.with(|t| t.replace(self.num_threads));
        let _restore = Restore(prev);
        op()
    }

    /// Deterministic indexed fan-out: compute `f(0..n)` on up to
    /// `self.num_threads` workers and return the results in index order.
    pub fn run_indexed<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        run_indexed(n, self.num_threads, &f)
    }
}

/// The deterministic work-stealing core: workers pull the next index from
/// a shared atomic counter, results are reassembled in index order. For a
/// pure `f` the output is identical for every `threads` value; a panic in
/// any task propagates to the caller.
fn run_indexed<T, F>(n: usize, threads: usize, f: &F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = threads.min(n);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut pairs: Vec<(usize, T)> = Vec::with_capacity(n);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut local: Vec<(usize, T)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(local) => pairs.extend(local),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    pairs.sort_unstable_by_key(|&(i, _)| i);
    pairs.into_iter().map(|(_, v)| v).collect()
}

/// Parallel iterator adaptors over indexable sources, driven by the
/// deterministic executor above.
pub mod iter {
    use super::{current_num_threads, run_indexed};

    /// Conversion into a parallel iterator, mirroring
    /// `rayon::iter::IntoParallelIterator`.
    pub trait IntoParallelIterator {
        /// Element type.
        type Item: Send;
        /// Iterator type produced.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// Convert `self` into a parallel iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    /// A parallel iterator. `drive` is the single execution point: it
    /// materializes all elements in input order using the installed pool
    /// width, which is what makes every downstream adaptor deterministic.
    pub trait ParallelIterator: Sized {
        /// Element type.
        type Item: Send;

        /// Execute the pipeline and return the elements in input order.
        fn drive(self) -> Vec<Self::Item>;

        /// Map each element through `f` (applied in parallel at drive
        /// time).
        fn map<U, F>(self, f: F) -> Map<Self, F>
        where
            U: Send,
            F: Fn(Self::Item) -> U + Sync,
        {
            Map { base: self, f }
        }

        /// Collect into any `FromIterator` container, preserving input
        /// order.
        fn collect<C: FromIterator<Self::Item>>(self) -> C {
            self.drive().into_iter().collect()
        }

        /// Run `f` on every element (parallel over elements).
        fn for_each<F>(self, f: F)
        where
            F: Fn(Self::Item) + Sync,
        {
            self.map(f).drive();
        }

        /// Minimum by comparator. Ties resolve to the *earliest* element
        /// (stable, unlike `std`'s last-wins `min_by`), so the winner is
        /// independent of thread count by construction.
        fn min_by<F>(self, cmp: F) -> Option<Self::Item>
        where
            F: Fn(&Self::Item, &Self::Item) -> std::cmp::Ordering,
        {
            let mut best: Option<Self::Item> = None;
            for item in self.drive() {
                match &best {
                    Some(b) if cmp(&item, b) == std::cmp::Ordering::Less => {
                        best = Some(item);
                    }
                    None => best = Some(item),
                    _ => {}
                }
            }
            best
        }

        /// Sum the elements.
        fn sum<S: std::iter::Sum<Self::Item>>(self) -> S {
            self.drive().into_iter().sum()
        }
    }

    impl<I> IntoParallelIterator for std::ops::Range<I>
    where
        I: Send + Copy,
        std::ops::Range<I>: Iterator<Item = I>,
    {
        type Item = I;
        type Iter = VecParIter<I>;
        fn into_par_iter(self) -> VecParIter<I> {
            VecParIter {
                items: self.collect(),
            }
        }
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = VecParIter<T>;
        fn into_par_iter(self) -> VecParIter<T> {
            VecParIter { items: self }
        }
    }

    /// Parallel iterator over an owned vector of items.
    pub struct VecParIter<T> {
        items: Vec<T>,
    }

    impl<T: Send> ParallelIterator for VecParIter<T> {
        type Item = T;
        fn drive(self) -> Vec<T> {
            self.items
        }
    }

    /// Lazy `map` adaptor; the closure runs on worker threads at drive
    /// time.
    pub struct Map<I, F> {
        base: I,
        f: F,
    }

    impl<I, U, F> ParallelIterator for Map<I, F>
    where
        I: ParallelIterator,
        U: Send,
        F: Fn(I::Item) -> U + Sync,
    {
        type Item = U;
        fn drive(self) -> Vec<U> {
            let items = self.base.drive();
            let threads = current_num_threads();
            let f = &self.f;
            // Each element is owned by exactly one task; the mutex slots
            // hand ownership across the thread boundary without `unsafe`
            // and are uncontended (every index is taken exactly once).
            let slots: Vec<std::sync::Mutex<Option<I::Item>>> = items
                .into_iter()
                .map(|x| std::sync::Mutex::new(Some(x)))
                .collect();
            run_indexed(slots.len(), threads, &|i| {
                let item = slots[i]
                    .lock()
                    .expect("slot mutex poisoned")
                    .take()
                    .expect("each index is driven exactly once");
                f(item)
            })
        }
    }
}

/// The rayon prelude: slice extension traits plus the parallel-iterator
/// traits.
pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, ParallelIterator};

    /// `par_iter`-style access for shared slices.
    pub trait ParallelSlice<T> {
        /// Sequential stand-in for `rayon`'s `par_iter`.
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
        /// Sequential stand-in for `rayon`'s `par_chunks`.
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
    }

    /// `par_iter_mut`-style access for mutable slices.
    pub trait ParallelSliceMut<T> {
        /// Sequential stand-in for `rayon`'s `par_iter_mut`.
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
        /// Sequential stand-in for `rayon`'s `par_chunks_mut`.
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }

        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(chunk_size)
        }
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }

        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::iter::{IntoParallelIterator, ParallelIterator};
    use super::prelude::{ParallelSlice, ParallelSliceMut};
    use super::*;

    #[test]
    fn par_chunks_mut_matches_chunks_mut() {
        let mut v = vec![0u32; 10];
        v.par_chunks_mut(3).enumerate().for_each(|(i, chunk)| {
            for x in chunk {
                *x = i as u32;
            }
        });
        assert_eq!(v, [0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);
    }

    #[test]
    fn par_iter_sums() {
        let v = [1.5f32; 4];
        let s: f32 = v.par_iter().map(|x| x * x).sum();
        assert!((s - 9.0).abs() < 1e-6);
    }

    #[test]
    fn pool_rejects_zero_threads() {
        assert!(ThreadPoolBuilder::new().num_threads(0).build().is_err());
        assert!(ThreadPool::new(0).is_err());
    }

    #[test]
    fn install_is_scoped_and_restored() {
        assert_eq!(current_num_threads(), 1);
        let pool = ThreadPool::new(4).unwrap();
        pool.install(|| {
            assert_eq!(current_num_threads(), 4);
            let inner = ThreadPool::new(2).unwrap();
            inner.install(|| assert_eq!(current_num_threads(), 2));
            assert_eq!(current_num_threads(), 4);
        });
        assert_eq!(current_num_threads(), 1);
    }

    #[test]
    fn install_restores_width_after_panic() {
        let pool = ThreadPool::new(8).unwrap();
        let caught = std::panic::catch_unwind(|| pool.install(|| panic!("boom")));
        assert!(caught.is_err());
        assert_eq!(current_num_threads(), 1);
    }

    #[test]
    fn run_indexed_preserves_order_at_any_width() {
        let expected: Vec<usize> = (0..97).map(|i| i * i).collect();
        for threads in [1, 2, 3, 8] {
            let pool = ThreadPool::new(threads).unwrap();
            let got = pool.run_indexed(97, |i| i * i);
            assert_eq!(got, expected, "width {threads}");
        }
    }

    #[test]
    fn run_indexed_empty_input() {
        let pool = ThreadPool::new(4).unwrap();
        let got: Vec<usize> = pool.run_indexed(0, |i| i);
        assert!(got.is_empty());
    }

    #[test]
    fn run_indexed_actually_uses_multiple_threads() {
        // With a 4-wide pool and tasks that block until at least two
        // workers arrive, single-threaded execution would deadlock; a
        // barrier of 2 proves real concurrency without flakiness.
        let gate = std::sync::Barrier::new(2);
        let pool = ThreadPool::new(4).unwrap();
        let got = pool.run_indexed(2, |i| {
            gate.wait();
            i
        });
        assert_eq!(got, vec![0, 1]);
    }

    #[test]
    fn worker_panics_propagate() {
        let pool = ThreadPool::new(4).unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run_indexed(16, |i| {
                if i == 7 {
                    panic!("task 7 failed");
                }
                i
            })
        }));
        assert!(result.is_err(), "panic in a worker must reach the caller");
    }

    #[test]
    fn into_par_iter_map_collect_preserves_order() {
        let seq: Vec<usize> = (0usize..50).map(|i| i * 3).collect();
        for threads in [1, 4] {
            let pool = ThreadPool::new(threads).unwrap();
            let par: Vec<usize> =
                pool.install(|| (0usize..50).into_par_iter().map(|i| i * 3).collect());
            assert_eq!(par, seq, "width {threads}");
        }
    }

    #[test]
    fn par_map_on_empty_range() {
        let pool = ThreadPool::new(4).unwrap();
        let out: Vec<usize> = pool.install(|| (0usize..0).into_par_iter().map(|i| i + 1).collect());
        assert!(out.is_empty());
    }

    #[test]
    fn min_by_is_first_wins_and_width_independent() {
        // Costs with a tie between indices 1 and 3; the earliest must win
        // regardless of pool width.
        let costs = [5.0f64, 1.0, 2.0, 1.0];
        let mut picks = Vec::new();
        for threads in [1, 2, 8] {
            let pool = ThreadPool::new(threads).unwrap();
            let pick = pool.install(|| {
                (0usize..4)
                    .into_par_iter()
                    .map(|i| (i, costs[i]))
                    .min_by(|a, b| a.1.total_cmp(&b.1))
            });
            picks.push(pick.unwrap());
        }
        assert!(picks.iter().all(|&(i, _)| i == 1), "{picks:?}");
    }
}
