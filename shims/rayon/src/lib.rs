//! Offline shim for the `rayon` crate.
//!
//! Provides the slice-iterator entry points this workspace uses with a
//! sequential fallback: `par_*` methods return the corresponding standard
//! iterators, so all adaptor chains (`enumerate`, `map`, `for_each`, `sum`)
//! work unchanged and results are bit-identical to the parallel versions'
//! intent. See `shims/README.md`.

/// The rayon prelude: slice extension traits.
pub mod prelude {
    /// `par_iter`-style access for shared slices.
    pub trait ParallelSlice<T> {
        /// Sequential stand-in for `rayon`'s `par_iter`.
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
        /// Sequential stand-in for `rayon`'s `par_chunks`.
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
    }

    /// `par_iter_mut`-style access for mutable slices.
    pub trait ParallelSliceMut<T> {
        /// Sequential stand-in for `rayon`'s `par_iter_mut`.
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
        /// Sequential stand-in for `rayon`'s `par_chunks_mut`.
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }

        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(chunk_size)
        }
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }

        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_chunks_mut_matches_chunks_mut() {
        let mut v = vec![0u32; 10];
        v.par_chunks_mut(3).enumerate().for_each(|(i, chunk)| {
            for x in chunk {
                *x = i as u32;
            }
        });
        assert_eq!(v, [0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);
    }

    #[test]
    fn par_iter_sums() {
        let v = [1.5f32; 4];
        let s: f32 = v.par_iter().map(|x| x * x).sum();
        assert!((s - 9.0).abs() < 1e-6);
    }
}
