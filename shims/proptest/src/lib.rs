//! Offline shim for the `proptest` crate.
//!
//! Implements the subset of proptest this workspace uses: the [`proptest!`]
//! macro, strategies over numeric ranges, tuples, [`strategy::Just`],
//! `prop_map`, [`prop_oneof!`] unions and [`collection::vec`], plus the
//! `prop_assert*`/`prop_assume!` macros. Sampling is deterministic — each
//! test case draws from an RNG seeded by the test's module path, name and
//! case index — so failures reproduce exactly across runs. There is no
//! shrinking: the failing inputs are reported by the panic message of the
//! underlying `assert!`. See `shims/README.md`.

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use rand::rngs::StdRng;
    use rand::Rng;

    /// A recipe for generating values of an associated type.
    pub trait Strategy {
        /// The type of values this strategy produces.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map {
                strategy: self,
                func: f,
            }
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        strategy: S,
        func: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut StdRng) -> O {
            (self.func)(self.strategy.sample(rng))
        }
    }

    /// Box a strategy for use in heterogeneous unions (`prop_oneof!`).
    pub fn boxed<S>(strategy: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(strategy)
    }

    /// Uniform choice between boxed strategies with a common value type.
    pub struct Union<T> {
        variants: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Build a union over `variants` (must be non-empty).
        pub fn new(variants: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!variants.is_empty(), "prop_oneof! needs >= 1 variant");
            Union { variants }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            let idx = rng.gen_range(0..self.variants.len());
            self.variants[idx].sample(rng)
        }
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            (**self).sample(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! tuple_strategy {
        ($(($($S:ident . $idx:tt),+);)*) => {$(
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);

                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (S0.0);
        (S0.0, S1.1);
        (S0.0, S1.1, S2.2);
        (S0.0, S1.1, S2.2, S3.3);
        (S0.0, S1.1, S2.2, S3.3, S4.4);
        (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5);
        (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6);
        (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7);
    }
}

pub mod collection {
    //! Strategies for collections.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A range of collection sizes; built from `usize` (exact) or ranges.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<T>` with element strategy `element` and a length
    /// drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Configuration and deterministic per-case RNG derivation.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Subset of proptest's run configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic RNG for one (test, case) pair: FNV-1a over the test
    /// name, mixed with the case index.
    pub fn rng_for(test_name: &str, case: u32) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        StdRng::seed_from_u64(h ^ u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }
}

pub mod prelude {
    //! Common imports, mirroring `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config); $($rest)*);
    };
    (@impl ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        // The expansion calls the user's closure immediately by design.
        #[allow(clippy::redundant_closure_call)]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let strategy = ($($strategy,)+);
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::rng_for(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                let ($($arg,)+) = $crate::strategy::Strategy::sample(&strategy, &mut rng);
                (|| $body)();
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Assert inside a property; panics (no shrinking) on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// Skip the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Uniform choice between strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strategy)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_tuples((a, b) in (0usize..10, 5u64..=9), f in -1.0f64..1.0) {
            prop_assert!(a < 10);
            prop_assert!((5..=9).contains(&b));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn mapped_and_oneof(v in (1usize..4).prop_map(|n| n * 2), c in prop_oneof![Just(1u8), Just(2)]) {
            prop_assert!(v == 2 || v == 4 || v == 6);
            prop_assert!(c == 1 || c == 2);
            prop_assume!(c == 1);
            prop_assert_eq!(c, 1);
        }

        #[test]
        fn vec_sizes(xs in crate::collection::vec(0u32..5, 2..6), ys in crate::collection::vec(0u32..5, 3)) {
            prop_assert!((2..6).contains(&xs.len()));
            prop_assert_eq!(ys.len(), 3);
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        use crate::strategy::Strategy;
        let strat = (0u64..1000, crate::collection::vec(-1.0f32..1.0, 0..8));
        let a = strat.sample(&mut crate::test_runner::rng_for("det", 3));
        let b = strat.sample(&mut crate::test_runner::rng_for("det", 3));
        assert_eq!(a, b);
    }
}
