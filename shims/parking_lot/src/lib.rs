//! Offline shim for the `parking_lot` crate.
//!
//! Wraps `std::sync::Mutex` with parking_lot's panic-free `lock()` signature
//! (poisoning is ignored, matching parking_lot semantics). See
//! `shims/README.md`.

/// A mutual-exclusion primitive with `parking_lot`'s API shape.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex guarding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Never panics on poison:
    /// like parking_lot, a panic while holding the lock does not poison it.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn survives_poisoning() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
