//! Offline shim for the `rand` crate.
//!
//! Implements the subset of the rand 0.8 API this workspace uses, backed by
//! a SplitMix64 generator: deterministic per seed, statistically sound for
//! simulation workloads, and dependency-free. See `shims/README.md`.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next raw 64-bit value from the generator.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random value generation, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution
    /// (uniform in `[0, 1)` for floats, uniform over all values for ints).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    ///
    /// Unlike the real `rand` crate's ChaCha-based `StdRng`, this stream is
    /// not cryptographic — it only promises per-seed determinism and good
    /// statistical behavior for simulations.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

/// Uniform `u64` in `[0, n)` by masked rejection (no modulo bias).
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "empty range");
    let mask = n.next_power_of_two().wrapping_sub(1);
    loop {
        let v = rng.next_u64() & mask;
        if v < n {
            return v;
        }
    }
}

/// Types with a standard distribution for [`Rng::gen`].
pub trait Standard: Sized {
    /// Sample one value from the type's standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Range types usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Sample one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_u64_below(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                // span <= 2^64 for all supported types; span == 2^64 only for
                // the full u64 domain, where any word is uniform already.
                let off = if span > u64::MAX as u128 {
                    rng.next_u64()
                } else {
                    uniform_u64_below(rng, span as u64)
                };
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Distributions, mirroring `rand::distributions`.
pub mod distributions {
    use super::{RngCore, SampleRange};

    pub use super::Standard;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Sample one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over an interval.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct Uniform<T> {
        lo: T,
        hi: T,
        inclusive: bool,
    }

    impl<T: Copy + PartialOrd> Uniform<T> {
        /// Uniform over `[lo, hi)`.
        pub fn new(lo: T, hi: T) -> Self {
            assert!(lo < hi, "Uniform::new requires lo < hi");
            Uniform {
                lo,
                hi,
                inclusive: false,
            }
        }

        /// Uniform over `[lo, hi]`.
        pub fn new_inclusive(lo: T, hi: T) -> Self {
            assert!(lo <= hi, "Uniform::new_inclusive requires lo <= hi");
            Uniform {
                lo,
                hi,
                inclusive: true,
            }
        }
    }

    impl<T> Distribution<T> for Uniform<T>
    where
        T: Copy,
        std::ops::Range<T>: SampleRange<T>,
        std::ops::RangeInclusive<T>: SampleRange<T>,
    {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            if self.inclusive {
                (self.lo..=self.hi).sample_single(rng)
            } else {
                (self.lo..self.hi).sample_single(rng)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-2i64..=2);
            assert!((-2..=2).contains(&w));
            let f = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn small_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
