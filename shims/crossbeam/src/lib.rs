//! Offline shim for the `crossbeam` crate.
//!
//! `channel` maps onto `std::sync::mpsc` (whose unbounded channel has been
//! crossbeam-backed in std since Rust 1.72), and `thread::scope` maps onto
//! `std::thread::scope` while keeping crossbeam's `Result`-returning shape
//! and `|scope|`-taking spawn closures. See `shims/README.md`.

/// Multi-producer channels, mirroring `crossbeam::channel`.
pub mod channel {
    pub use std::sync::mpsc::{Receiver, Sender};

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

/// Scoped threads, mirroring `crossbeam::thread`.
pub mod thread {
    pub use std::thread::ScopedJoinHandle;

    /// A scope for spawning borrowing threads, wrapping `std::thread::Scope`
    /// so spawn closures receive a `&Scope` argument like crossbeam's.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. The closure receives the scope
        /// (crossbeam's signature) so it could spawn nested threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Run `f` with a scope in which borrowing threads can be spawned; all
    /// spawned threads are joined before this returns. Panics from threads
    /// that were joined inside `f` surface through their `join()` results;
    /// panics from unjoined threads propagate as in `std::thread::scope`.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn channel_round_trip() {
        let (tx, rx) = super::channel::unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.recv().unwrap() + rx.recv().unwrap(), 3);
    }

    #[test]
    fn scope_joins_and_borrows() {
        let data = [1, 2, 3];
        let sum = super::thread::scope(|scope| {
            let handles: Vec<_> = data.iter().map(|&x| scope.spawn(move |_| x * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<i32>()
        })
        .unwrap();
        assert_eq!(sum, 60);
    }

    #[test]
    fn join_surfaces_panics() {
        let caught = super::thread::scope(|scope| {
            let h = scope.spawn(|_| panic!("boom"));
            h.join().is_err()
        })
        .unwrap();
        assert!(caught);
    }
}
