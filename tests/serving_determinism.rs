//! Workspace-level serving-determinism gate: a request-level serving run
//! with fixed seeds is a pure function of its [`Scenario`] — bit
//! identical across parallelism widths and gap backends, with or without
//! fleet faults — and its report obeys the structural serving invariants
//! (ordered latency quantiles, goodput bounded by offered load) across
//! randomized seeds, utilizations, and arrival processes. Edge cases
//! (zero-arrival windows, faults striking an empty queue) stay
//! well-formed.

use exflow::core::{
    events_from_report, BatchPolicy, InferenceEngine, OnlineConfig, ParallelismMode,
    ReplicationPlan, Scenario, ServingConfig, ServingReport,
};
use exflow::model::arrival::ArrivalProcess;
use exflow::model::drift::DriftSchedule;
use exflow::model::fault::FaultSchedule;
use exflow::model::presets::moe_gpt_m;
use exflow::placement::{GapBackend, Parallelism};
use exflow::topology::ClusterSpec;
use proptest::prelude::*;

const MODE: ParallelismMode = ParallelismMode::ContextCoherentAffinity;
const MAX_BATCH: usize = 16;
const DECODE_STEPS: usize = 4;
const WINDOWS: usize = 6;
/// World size of every engine below (`ClusterSpec::new(2, 2)`).
const WORLD: usize = 4;

fn engine(threads: usize, backend: GapBackend, seed: u64) -> InferenceEngine {
    let mut model = moe_gpt_m(8);
    model.n_layers = 4;
    let online = OnlineConfig {
        replan_every: 2,
        drift_threshold: 0.08,
        migration_budget_bytes: u64::MAX,
        decay: 0.3,
        ..OnlineConfig::default()
    };
    InferenceEngine::builder(model, ClusterSpec::new(2, 2).unwrap())
        .requests_per_gpu(MAX_BATCH / 4)
        .prompt_len(4)
        .profile_tokens(400)
        .parallelism(Parallelism::new(threads))
        .gap_backend(backend)
        .online(online)
        .seed(seed)
        .build()
}

/// Drift schedule plus a serving config whose offered load sits near the
/// engine's full-batch capacity, so queueing, batching, and re-planning
/// all genuinely fire.
fn scenario(
    eng: &InferenceEngine,
    n_requests: usize,
    utilization: f64,
    arrival_kind: usize,
) -> (DriftSchedule, ServingConfig) {
    let drift = DriftSchedule::piecewise(&eng.config().routing_spec, 2, WINDOWS);
    let step = eng.probe_step_time(MODE, MAX_BATCH);
    let rate = utilization * MAX_BATCH as f64 / (DECODE_STEPS as f64 * step);
    let horizon = n_requests as f64 / rate;
    let arrival = match arrival_kind {
        0 => ArrivalProcess::poisson(rate),
        1 => ArrivalProcess::diurnal(rate, 0.5, horizon / 2.0),
        _ => ArrivalProcess::flash_crowd(rate / 1.3, 4.0, 0.7 * horizon, 0.1 * horizon),
    };
    let cfg = ServingConfig {
        arrival,
        n_requests,
        decode_steps: DECODE_STEPS,
        batch: BatchPolicy::SizeOrWait {
            max_size: MAX_BATCH,
            max_wait: 2.0 * step,
        },
        window_duration: horizon / WINDOWS as f64,
    };
    (drift, cfg)
}

fn serve(eng: &InferenceEngine, drift: &DriftSchedule, cfg: &ServingConfig) -> ServingReport {
    eng.run_scenario(
        &Scenario::offline(MODE)
            .with_drift(drift.clone())
            .with_serving(cfg.clone()),
    )
    .expect_serving()
}

fn serve_faulted(
    eng: &InferenceEngine,
    drift: &DriftSchedule,
    cfg: &ServingConfig,
    faults: &FaultSchedule,
) -> ServingReport {
    eng.run_scenario(
        &Scenario::offline(MODE)
            .with_drift(drift.clone())
            .with_serving(cfg.clone())
            .with_faults(faults.clone()),
    )
    .expect_serving()
}

/// Bit-level equality of the float surfaces two reports expose: string
/// equality of shortest-round-trip formatting is f64 bit equality, and
/// `assert_eq!` on the reports covers everything else.
fn assert_bit_identical(a: &ServingReport, b: &ServingReport, what: &str) {
    assert_eq!(a, b, "{what} diverged");
    for (x, y) in a.latencies.iter().zip(&b.latencies) {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: latency bits diverged");
    }
    assert_eq!(a.p99().to_bits(), b.p99().to_bits());
    assert_eq!(a.goodput().to_bits(), b.goodput().to_bits());
    for (x, y) in a.drift.iter().zip(&b.drift) {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: drift bits diverged");
    }
    for ((ta, la), (tb, lb)) in a.completions.iter().zip(&b.completions) {
        assert_eq!(ta.to_bits(), tb.to_bits(), "{what}: completion time bits");
        assert_eq!(
            la.to_bits(),
            lb.to_bits(),
            "{what}: completion latency bits"
        );
    }
}

#[test]
fn serving_runs_are_bit_identical_at_1_2_and_8_threads() {
    let seq = engine(1, GapBackend::Auto, 11);
    let (drift, cfg) = scenario(&seq, 96, 0.9, 0);
    let baseline = serve(&seq, &drift, &cfg);
    // The scenario must exercise the full pipeline for the invariance to
    // mean anything: drift detected, a re-plan executed, queueing real.
    assert!(baseline.migrations.replans > 0, "no re-plan fired");
    assert_eq!(baseline.n_requests(), cfg.n_requests);
    for threads in [2, 8] {
        let par = engine(threads, GapBackend::Auto, 11);
        let report = serve(&par, &drift, &cfg);
        assert_bit_identical(&report, &baseline, &format!("{threads} threads"));
    }
}

#[test]
fn serving_runs_are_gap_backend_invariant() {
    let dense = engine(1, GapBackend::Dense, 11);
    let (drift, cfg) = scenario(&dense, 96, 0.9, 0);
    let a = serve(&dense, &drift, &cfg);
    let sparse = engine(1, GapBackend::Sparse, 11);
    let b = serve(&sparse, &drift, &cfg);
    assert!(a.migrations.replans > 0, "no re-plan fired");
    assert_bit_identical(&a, &b, "gap backends");
}

#[test]
fn faulted_runs_are_bit_identical_at_1_2_and_8_threads() {
    let seq = engine(1, GapBackend::Auto, 11);
    let (drift, cfg) = scenario(&seq, 96, 0.9, 0);
    // A loss-and-rejoin cycle landing mid-run: down inside window 2, back
    // up inside window 4, so disruption, emergency re-placement, and
    // rehoming all fire while requests are in flight.
    let faults = FaultSchedule::loss_and_rejoin(
        WORLD,
        1,
        2.0 * cfg.window_duration,
        4.0 * cfg.window_duration,
    );
    let baseline = serve_faulted(&seq, &drift, &cfg, &faults);
    assert_eq!(baseline.n_requests(), cfg.n_requests, "requests lost");
    assert_eq!(baseline.disruption.faults.len(), 2, "both markers recorded");
    assert!(
        baseline.disruption.emergency_replans >= 1,
        "the loss must force an emergency re-placement"
    );
    for threads in [2, 8] {
        let par = engine(threads, GapBackend::Auto, 11);
        let report = serve_faulted(&par, &drift, &cfg, &faults);
        assert_bit_identical(&report, &baseline, &format!("faulted, {threads} threads"));
    }
}

#[test]
fn faulted_runs_are_gap_backend_invariant() {
    let dense = engine(1, GapBackend::Dense, 11);
    let (drift, cfg) = scenario(&dense, 96, 0.9, 0);
    let faults = FaultSchedule::loss_and_rejoin(
        WORLD,
        1,
        2.0 * cfg.window_duration,
        4.0 * cfg.window_duration,
    );
    let a = serve_faulted(&dense, &drift, &cfg, &faults);
    let sparse = engine(1, GapBackend::Sparse, 11);
    let b = serve_faulted(&sparse, &drift, &cfg, &faults);
    assert_eq!(a.disruption.faults.len(), 2, "both markers recorded");
    assert_bit_identical(&a, &b, "faulted, gap backends");
}

/// A quiet engine (drift never fires) so the seeded replication plan
/// survives untouched until the fault schedule strikes it.
fn quiet_engine(threads: usize, seed: u64) -> InferenceEngine {
    let mut model = moe_gpt_m(8);
    model.n_layers = 4;
    let online = OnlineConfig {
        drift_threshold: f64::INFINITY,
        decay: 0.3,
        ..OnlineConfig::default()
    };
    InferenceEngine::builder(model, ClusterSpec::new(2, 2).unwrap())
        .requests_per_gpu(MAX_BATCH / 4)
        .prompt_len(4)
        .profile_tokens(400)
        .parallelism(Parallelism::new(threads))
        .online(online)
        .seed(seed)
        .build()
}

/// A plan replicating every expert GPU `primary` owns onto exactly one
/// backup GPU, so `primary`'s loss fails over for free and `backup` then
/// holds the *only* copy of those experts.
fn single_backup_plan(eng: &InferenceEngine, primary: usize, backup: usize) -> ReplicationPlan {
    let base = eng.placement_for(MODE).clone();
    let replicas = (0..base.n_layers())
        .map(|l| {
            (0..8)
                .filter(|&x| base.unit_of(l, x) == primary)
                .map(|x| (x, vec![backup]))
                .collect()
        })
        .collect();
    ReplicationPlan { base, replicas }
}

fn serve_seeded(
    eng: &InferenceEngine,
    cfg: &ServingConfig,
    faults: &FaultSchedule,
    plan: &ReplicationPlan,
) -> ServingReport {
    eng.run_scenario(
        &Scenario::offline(MODE)
            .with_serving(cfg.clone())
            .with_faults(faults.clone())
            .with_replication(plan.clone()),
    )
    .expect_serving()
}

#[test]
fn losing_the_last_replica_holder_forces_a_priced_restore() {
    let eng = quiet_engine(1, 11);
    let (_, cfg) = scenario(&eng, 96, 0.9, 0);
    let (primary, backup) = (2usize, 1usize);
    let plan = single_backup_plan(&eng, primary, backup);

    // Losing the primary alone is absorbed by the backup's replicas:
    // an emergency re-plan fires, but it ships zero bytes.
    let one = FaultSchedule::gpu_loss(WORLD, primary, 2.0 * cfg.window_duration);
    let r1 = serve_seeded(&eng, &cfg, &one, &plan);
    assert_eq!(r1.disruption.emergency_replans, 1);
    assert_eq!(
        r1.disruption.emergency_bytes, 0,
        "every lost expert had a live replica; failover must be free"
    );

    // Then losing the backup — now the only holder of those experts —
    // cannot silently fail over: the restore must ship real bytes.
    let two = FaultSchedule::double_loss(
        WORLD,
        primary,
        backup,
        2.0 * cfg.window_duration,
        4.0 * cfg.window_duration,
    );
    let r2 = serve_seeded(&eng, &cfg, &two, &plan);
    assert_eq!(r2.disruption.emergency_replans, 2);
    assert!(
        r2.disruption.emergency_bytes > 0,
        "the sole-holder loss must trigger an emergency restore, not a silent failover"
    );
    assert_eq!(r2.n_requests(), cfg.n_requests, "requests lost");
}

#[test]
fn disruption_stats_are_bit_identical_across_thread_widths() {
    let seq = quiet_engine(1, 11);
    let (_, cfg) = scenario(&seq, 96, 0.9, 0);
    let plan = single_backup_plan(&seq, 2, 1);
    let faults = FaultSchedule::double_loss(
        WORLD,
        2,
        1,
        2.0 * cfg.window_duration,
        4.0 * cfg.window_duration,
    );
    let baseline = serve_seeded(&seq, &cfg, &faults, &plan);
    assert!(baseline.disruption.emergency_bytes > 0, "restore must fire");
    for threads in [2, 8] {
        let par = quiet_engine(threads, 11);
        let plan = single_backup_plan(&par, 2, 1);
        let report = serve_seeded(&par, &cfg, &faults, &plan);
        assert_bit_identical(&report, &baseline, &format!("seeded, {threads} threads"));
        assert_eq!(
            report.disruption, baseline.disruption,
            "{threads} threads: DisruptionStats diverged"
        );
        assert_eq!(
            report.recovery_time().map(f64::to_bits),
            baseline.recovery_time().map(f64::to_bits),
            "{threads} threads: recovery_time bits diverged"
        );
    }
}

#[test]
fn zero_arrival_windows_keep_the_report_well_formed() {
    // Slice the horizon so finely that many serving windows contain no
    // arrival and no completion: quantiles, goodput, and the JSONL event
    // stream must all stay well-defined.
    let eng = engine(1, GapBackend::Auto, 11);
    let (drift, mut cfg) = scenario(&eng, 16, 0.4, 0);
    cfg.window_duration /= 16.0;
    let r = serve(&eng, &drift, &cfg);
    assert_eq!(r.n_requests(), cfg.n_requests);
    assert!(r.p50() > 0.0 && r.p50() <= r.p95() && r.p95() <= r.p99());
    assert!(r.goodput().is_finite() && r.goodput() <= r.offered_load);
    let events = events_from_report(&r);
    assert!(
        events.len() > cfg.n_requests,
        "windows must outnumber requests"
    );
    assert!(
        events.iter().any(|e| e.completed == 0),
        "at least one window must be empty"
    );
    assert_eq!(
        events.iter().map(|e| e.completed).sum::<u64>(),
        cfg.n_requests as u64,
        "every completion lands in exactly one window"
    );
}

#[test]
fn a_fault_striking_an_empty_queue_is_benign() {
    // No requests at all: the loss and rejoin still execute (markers and
    // an emergency re-plan are recorded) but nothing is disrupted and
    // every quantile stays at its empty-run definition.
    let eng = engine(1, GapBackend::Auto, 11);
    let (drift, mut cfg) = scenario(&eng, 16, 0.4, 0);
    cfg.n_requests = 0;
    let faults = FaultSchedule::loss_and_rejoin(
        WORLD,
        2,
        0.5 * cfg.window_duration,
        1.5 * cfg.window_duration,
    );
    let r = serve_faulted(&eng, &drift, &cfg, &faults);
    assert_eq!(r.n_requests(), 0);
    assert_eq!(r.disruption.requests_disrupted, 0);
    assert_eq!(r.disruption.faults.len(), 2);
    assert!(r.disruption.emergency_replans >= 1);
    assert_eq!(r.p50(), 0.0);
    assert_eq!(r.p99(), 0.0);
    assert_eq!(r.goodput(), 0.0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn quantiles_are_ordered_and_goodput_is_bounded(
        seed in 0u64..1000,
        utilization in 0.4f64..1.1,
        arrival_kind in 0usize..3,
    ) {
        let eng = engine(1, GapBackend::Auto, seed);
        let (drift, cfg) = scenario(&eng, 48, utilization, arrival_kind);
        let r = serve(&eng, &drift, &cfg);
        prop_assert_eq!(r.n_requests(), cfg.n_requests);
        prop_assert!(r.p50() > 0.0);
        prop_assert!(r.p50() <= r.p95());
        prop_assert!(r.p95() <= r.p99());
        // Completions cannot outpace arrivals: the last completion is
        // strictly after the last arrival, so goodput < offered load.
        prop_assert!(r.goodput() <= r.offered_load);
        prop_assert!(r.busy <= r.makespan);
        prop_assert!(r.mean_batch_occupancy() <= MAX_BATCH as f64);
    }
}
