//! Workspace-level solver quality gate: on a small fixed-seed instance,
//! every placement solver must do at least as well as the affinity-blind
//! round-robin baseline, and `solve` must be deterministic per seed.

use exflow::affinity::{AffinityMatrix, RoutingTrace};
use exflow::model::routing::AffinityModelSpec;
use exflow::model::{CorpusSpec, TokenBatch};
use exflow::placement::annealing::AnnealParams;
use exflow::placement::{solve, Objective, SolverKind};

/// An 8-expert, 6-layer instance small enough for the exact DP
/// (`8!/(4!)^2 = 70` labeled states) with clear affinity structure.
fn fixed_instance() -> Objective {
    let model = AffinityModelSpec::new(6, 8)
        .with_affinity(0.85)
        .with_seed(7)
        .build();
    let batch = TokenBatch::sample(&model, &CorpusSpec::pile_proxy(4), 3000, 1, 7);
    let trace = RoutingTrace::from_batch(&batch, 8);
    Objective::from_affinities(&AffinityMatrix::consecutive(&trace))
}

fn all_solvers() -> [SolverKind; 5] {
    [
        SolverKind::Greedy,
        SolverKind::LocalSearch { restarts: 2 },
        SolverKind::Annealing(AnnealParams::default()),
        SolverKind::Exact,
        SolverKind::portfolio(50),
    ]
}

#[test]
fn every_solver_at_least_matches_round_robin() {
    let obj = fixed_instance();
    let rr = obj.cross_mass(&solve(&obj, 2, SolverKind::RoundRobin, 11));
    for kind in all_solvers() {
        let cost = obj.cross_mass(&solve(&obj, 2, kind.clone(), 11));
        assert!(
            cost <= rr + 1e-9,
            "{kind:?} cost {cost} worse than round-robin {rr}"
        );
    }
}

#[test]
fn exact_lower_bounds_the_heuristics() {
    let obj = fixed_instance();
    let opt = obj.cross_mass(&solve(&obj, 2, SolverKind::Exact, 11));
    for kind in all_solvers() {
        let cost = obj.cross_mass(&solve(&obj, 2, kind.clone(), 11));
        assert!(
            opt <= cost + 1e-9,
            "{kind:?} cost {cost} below optimum {opt}"
        );
    }
}

#[test]
fn solve_is_deterministic_per_seed() {
    let obj = fixed_instance();
    let kinds = [SolverKind::RoundRobin].into_iter().chain(all_solvers());
    for kind in kinds {
        let a = solve(&obj, 2, kind.clone(), 5);
        let b = solve(&obj, 2, kind.clone(), 5);
        assert_eq!(a, b, "{kind:?} is not deterministic for a fixed seed");
    }
}
