//! Workspace-level parallel-determinism gate: the contract behind every
//! `--jobs`/`Parallelism` knob in this repo is that thread count changes
//! wall time and *nothing else*. Same seed ⇒ identical `Placement` and
//! bit-identical `cross_mass` at 1, 2, and 8 threads, for every
//! stochastic solver and for the staged pipeline.

use exflow::affinity::{AffinityMatrix, RoutingTrace};
use exflow::model::routing::AffinityModelSpec;
use exflow::model::{CorpusSpec, TokenBatch};
use exflow::placement::annealing::AnnealParams;
use exflow::placement::staged::solve_staged_with;
use exflow::placement::{solve_with, Objective, Parallelism, SolverKind};
use exflow::topology::ClusterSpec;

/// A profiled 16-expert, 8-layer instance with enough restart-sensitive
/// structure that a wrong RNG-stream split would actually show up.
fn fixed_instance() -> Objective {
    let model = AffinityModelSpec::new(8, 16)
        .with_affinity(0.8)
        .with_seed(3)
        .build();
    let batch = TokenBatch::sample(&model, &CorpusSpec::pile_proxy(4), 4000, 1, 3);
    let trace = RoutingTrace::from_batch(&batch, 16);
    Objective::from_affinities(&AffinityMatrix::consecutive(&trace))
}

fn stochastic_solvers() -> Vec<SolverKind> {
    vec![
        SolverKind::LocalSearch { restarts: 6 },
        SolverKind::Annealing(AnnealParams::default().with_starts(3)),
        SolverKind::portfolio(100),
        SolverKind::Portfolio {
            kinds: vec![
                SolverKind::Greedy,
                SolverKind::LocalSearch { restarts: 3 },
                SolverKind::Annealing(AnnealParams::default()),
            ],
            budget_ms: 0,
        },
    ]
}

#[test]
fn placements_are_bit_identical_at_1_2_and_8_threads() {
    let obj = fixed_instance();
    for kind in stochastic_solvers() {
        let seq = solve_with(&obj, 4, &kind, 21, Parallelism::single());
        let seq_cost = obj.cross_mass(&seq);
        for threads in [2, 8] {
            let par = solve_with(&obj, 4, &kind, 21, Parallelism::new(threads));
            assert_eq!(par, seq, "{kind:?} diverged at {threads} threads");
            assert_eq!(
                obj.cross_mass(&par).to_bits(),
                seq_cost.to_bits(),
                "{kind:?} cross_mass diverged at {threads} threads"
            );
        }
    }
}

#[test]
fn different_seeds_still_differ_at_any_width() {
    // Sanity check that the invariance above is not a constant function:
    // the seed must matter even when the width does not.
    let obj = fixed_instance();
    let kind = SolverKind::Annealing(AnnealParams::default().with_starts(3));
    let a = solve_with(&obj, 4, &kind, 1, Parallelism::new(8));
    let b = solve_with(&obj, 4, &kind, 2, Parallelism::new(8));
    assert_ne!(a, b, "seeds must actually matter");
}

#[test]
fn staged_pipeline_is_bit_identical_across_widths() {
    let obj = fixed_instance();
    let cluster = ClusterSpec::new(2, 2).unwrap();
    let seq = solve_staged_with(&obj, &cluster, 4, 9, Parallelism::single());
    for threads in [2, 8] {
        let par = solve_staged_with(&obj, &cluster, 4, 9, Parallelism::new(threads));
        assert_eq!(par.gpu_level, seq.gpu_level, "{threads} threads diverged");
        assert_eq!(par.node_level, seq.node_level, "{threads} threads diverged");
        assert_eq!(
            obj.cross_mass(&par.gpu_level).to_bits(),
            obj.cross_mass(&seq.gpu_level).to_bits()
        );
    }
}
