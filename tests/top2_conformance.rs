//! Top-2 meeting-point conformance gate: for every preset top-2 model,
//! replica-aware dispatch with an *empty* replica set must be completely
//! indistinguishable from the owner-only path — same realized routes,
//! same dispatch locality, same cross-GPU mass, same virtual-time
//! breakdown. The meeting-point rule (primaries merge on the owner,
//! secondaries may be served by replicas) only ever deviates when a
//! replica actually exists, so a bare [`ReplicationPlan`] must be a
//! perfect no-op at every gate arity and execution mode.

use exflow::core::{InferenceEngine, ParallelismMode, ReplicationPlan, Scenario};
use exflow::model::presets::{large_zoo, table2};
use exflow::model::ModelConfig;
use exflow::topology::ClusterSpec;

/// Every preset model routed with top-2 gating, trimmed to a few layers
/// so the engine runs stay fast while still crossing several MoE gaps.
fn top2_presets() -> Vec<ModelConfig> {
    let mut zoo: Vec<ModelConfig> = large_zoo()
        .into_iter()
        .chain(table2())
        .filter(|m| m.gate.k() == 2)
        .collect();
    assert!(!zoo.is_empty(), "the preset zoos must contain top-2 models");
    for m in &mut zoo {
        m.n_layers = 3;
    }
    zoo
}

fn engine(model: ModelConfig) -> InferenceEngine {
    InferenceEngine::builder(model, ClusterSpec::new(2, 2).unwrap())
        .requests_per_gpu(8)
        .n_iterations(2)
        .prompt_len(4)
        .profile_tokens(400)
        .seed(17)
        .build()
}

#[test]
fn empty_replica_sets_are_a_perfect_noop_for_every_top2_preset() {
    for model in top2_presets() {
        let name = model.name.clone();
        let eng = engine(model);
        for mode in [
            ParallelismMode::Vanilla,
            ParallelismMode::ContextCoherent,
            ParallelismMode::ContextCoherentAffinity,
        ] {
            let owner_only = eng.run_scenario(&Scenario::offline(mode)).expect_offline();
            let bare = ReplicationPlan::bare(eng.placement_for(mode).clone());
            let replica_aware = eng
                .run_scenario(&Scenario::offline(mode).with_replication(bare))
                .expect_offline();
            assert_eq!(
                replica_aware, owner_only,
                "{name} in {mode:?}: bare replication changed the run"
            );
            // PartialEq covers these, but pin the route-derived float
            // surfaces at the bit level explicitly.
            assert_eq!(
                replica_aware.dispatch.gpu_local_fraction().to_bits(),
                owner_only.dispatch.gpu_local_fraction().to_bits(),
                "{name} in {mode:?}: dispatch locality bits diverged"
            );
            assert_eq!(
                replica_aware.total_time.to_bits(),
                owner_only.total_time.to_bits(),
                "{name} in {mode:?}: virtual time bits diverged"
            );
        }
    }
}
