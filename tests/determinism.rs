//! Determinism guarantees: every layer of the stack is a pure function of
//! its seeds — the property that makes the paper's figures reproducible
//! runs instead of noisy measurements.

use exflow::core::{InferenceEngine, ParallelismMode, Scenario};
use exflow::model::presets::moe_gpt_m;
use exflow::model::routing::AffinityModelSpec;
use exflow::model::{CorpusSpec, TokenBatch};
use exflow::placement::{solve, Objective, SolverKind};
use exflow::topology::ClusterSpec;

#[test]
fn routing_model_is_seed_deterministic() {
    let a = AffinityModelSpec::new(6, 16).with_seed(1).build();
    let b = AffinityModelSpec::new(6, 16).with_seed(1).build();
    for d in 0..a.n_domains() {
        for gap in 0..5 {
            assert_eq!(a.transition(d, gap), b.transition(d, gap));
        }
    }
}

#[test]
fn batches_and_placements_are_deterministic() {
    let model = AffinityModelSpec::new(6, 16).build();
    let corpus = CorpusSpec::pile_proxy(4);
    let b1 = TokenBatch::sample(&model, &corpus, 500, 1, 42);
    let b2 = TokenBatch::sample(&model, &corpus, 500, 1, 42);
    assert_eq!(b1, b2);

    let raw: Vec<Vec<f64>> = (0..5)
        .map(|gap| model.mixture_transition(&[1.0; 4], gap))
        .collect();
    let objective = Objective::from_raw(raw, 16);
    for kind in [SolverKind::Greedy, SolverKind::LocalSearch { restarts: 2 }] {
        let p1 = solve(&objective, 4, kind.clone(), 7);
        let p2 = solve(&objective, 4, kind.clone(), 7);
        assert_eq!(p1, p2, "{kind:?} not deterministic");
    }
}

#[test]
fn engine_reports_are_bit_identical_across_runs() {
    let mut model = moe_gpt_m(8);
    model.n_layers = 5;
    let engine = InferenceEngine::builder(model, ClusterSpec::new(2, 2).unwrap())
        .requests_per_gpu(8)
        .prompt_len(8)
        .n_iterations(2)
        .profile_tokens(800)
        .placement_restarts(0)
        .seed(13)
        .build();
    for mode in ParallelismMode::ALL {
        let a = engine
            .run_scenario(&Scenario::offline(mode))
            .expect_offline();
        let b = engine
            .run_scenario(&Scenario::offline(mode))
            .expect_offline();
        assert_eq!(a.total_time.to_bits(), b.total_time.to_bits(), "{mode}");
        assert_eq!(a.breakdown, b.breakdown, "{mode}");
        assert_eq!(a.dispatch, b.dispatch, "{mode}");
        assert_eq!(a.alltoall_bytes, b.alltoall_bytes, "{mode}");
    }
}

#[test]
fn different_seeds_change_the_workload() {
    let model = AffinityModelSpec::new(6, 16).build();
    let corpus = CorpusSpec::pile_proxy(4);
    let b1 = TokenBatch::sample(&model, &corpus, 500, 1, 1);
    let b2 = TokenBatch::sample(&model, &corpus, 500, 1, 2);
    assert_ne!(b1, b2, "seeds must actually matter");
}

#[test]
fn rebuilt_engines_agree() {
    // Two engines built from identical configs produce identical
    // placements and identical reports — nothing depends on ambient state.
    let build = || {
        let mut model = moe_gpt_m(8);
        model.n_layers = 4;
        InferenceEngine::builder(model, ClusterSpec::new(1, 4).unwrap())
            .requests_per_gpu(8)
            .prompt_len(8)
            .n_iterations(1)
            .profile_tokens(600)
            .placement_restarts(1)
            .seed(77)
            .build()
    };
    let e1 = build();
    let e2 = build();
    assert_eq!(
        e1.placement_for(ParallelismMode::ContextCoherentAffinity),
        e2.placement_for(ParallelismMode::ContextCoherentAffinity)
    );
    let r1 = e1
        .run_scenario(&Scenario::offline(ParallelismMode::ContextCoherentAffinity))
        .expect_offline();
    let r2 = e2
        .run_scenario(&Scenario::offline(ParallelismMode::ContextCoherentAffinity))
        .expect_offline();
    assert_eq!(r1.total_time.to_bits(), r2.total_time.to_bits());
}
