//! Cross-crate integration: the full ExFlow pipeline from routing traces
//! through placement to engine reports, checked against the paper's
//! qualitative claims.

use exflow::affinity::{metrics, AffinityMatrix, RoutingTrace};
use exflow::core::{InferenceEngine, ParallelismMode, Scenario};
use exflow::model::presets::moe_gpt_m;
use exflow::model::routing::AffinityModelSpec;
use exflow::model::{CorpusSpec, TokenBatch};
use exflow::placement::objective::measure_trace_locality;
use exflow::placement::staged::solve_staged;
use exflow::placement::{Objective, Placement};
use exflow::topology::ClusterSpec;

fn engine(nodes: usize, gpn: usize, experts: usize, layers: usize) -> InferenceEngine {
    let mut model = moe_gpt_m(experts);
    model.n_layers = layers;
    InferenceEngine::builder(model, ClusterSpec::new(nodes, gpn).unwrap())
        .requests_per_gpu(16)
        .prompt_len(8)
        .n_iterations(2)
        .profile_tokens(1500)
        .placement_restarts(0)
        .seed(99)
        .build()
}

#[test]
fn exflow_reduces_alltoall_and_improves_throughput() {
    let engine = engine(2, 2, 16, 8);
    let vanilla = engine
        .run_scenario(&Scenario::offline(ParallelismMode::Vanilla))
        .expect_offline();
    let cc = engine
        .run_scenario(&Scenario::offline(ParallelismMode::ContextCoherent))
        .expect_offline();
    let aff = engine
        .run_scenario(&Scenario::offline(ParallelismMode::ContextCoherentAffinity))
        .expect_offline();

    // One Alltoall per layer instead of two -> roughly half the time.
    assert!(cc.breakdown.alltoall < 0.7 * vanilla.breakdown.alltoall);
    // Affinity placement cuts the remaining dispatch traffic further.
    assert!(aff.alltoall_bytes.cross_gpu() < cc.alltoall_bytes.cross_gpu());
    // Throughput ordering matches Fig. 10.
    assert!(aff.throughput() >= cc.throughput() * 0.98);
    assert!(cc.throughput() > vanilla.throughput());
}

#[test]
fn pipeline_objective_predicts_engine_locality() {
    // The offline objective's expected locality must predict the engine's
    // measured serving-time locality (profiling and serving draw from the
    // same routing process with different seeds).
    let engine = engine(2, 2, 16, 8);
    let placement = engine.placement_for(ParallelismMode::ContextCoherentAffinity);
    let expected = engine.objective().local_fraction(placement);
    let measured = engine
        .run_scenario(&Scenario::offline(ParallelismMode::ContextCoherentAffinity))
        .expect_offline()
        .dispatch
        .gpu_local_fraction();
    assert!(
        (expected - measured).abs() < 0.08,
        "objective predicts {expected}, engine measured {measured}"
    );
}

#[test]
fn offline_pipeline_matches_engine_pipeline() {
    // Building the placement by hand from a trace gives the same quality
    // as the engine's internal profiling (same components, same data).
    let cluster = ClusterSpec::new(2, 2).unwrap();
    let spec = AffinityModelSpec::new(8, 16);
    let routing = spec.build();
    let corpus = CorpusSpec::pile_proxy(spec.n_domains);
    let batch = TokenBatch::sample(&routing, &corpus, 4000, 1, 5);
    let trace = RoutingTrace::from_batch(&batch, 16);
    let objective = Objective::from_affinities(&AffinityMatrix::consecutive(&trace));
    let staged = solve_staged(&objective, &cluster, 1, 5);
    assert!(staged.is_consistent(&cluster));

    let rr = Placement::round_robin(8, 16, 4);
    let eval = TokenBatch::sample(&routing, &corpus, 4000, 1, 6);
    let eval_trace = RoutingTrace::from_batch(&eval, 16);
    let rr_local = measure_trace_locality(&eval_trace, &rr).fraction();
    let opt_local = measure_trace_locality(&eval_trace, &staged.gpu_level).fraction();
    assert!(
        opt_local > rr_local + 0.1,
        "optimized {opt_local} vs round-robin {rr_local}"
    );
}

#[test]
fn affinity_strength_drives_every_stage() {
    // Weak-affinity models should yield weak placement gains; strong
    // affinity should propagate into strong gains — end to end.
    let gain_for = |kappa: f64| {
        let mut model = moe_gpt_m(16);
        model.n_layers = 6;
        let spec = AffinityModelSpec::new(6, 16).with_affinity(kappa);
        let engine = InferenceEngine::builder(model, ClusterSpec::new(2, 2).unwrap())
            .routing_spec(spec)
            .requests_per_gpu(16)
            .prompt_len(8)
            .n_iterations(2)
            .profile_tokens(1500)
            .placement_restarts(0)
            .seed(3)
            .build();
        let cc = engine
            .run_scenario(&Scenario::offline(ParallelismMode::ContextCoherent))
            .expect_offline();
        let aff = engine
            .run_scenario(&Scenario::offline(ParallelismMode::ContextCoherentAffinity))
            .expect_offline();
        aff.dispatch.gpu_local_fraction() - cc.dispatch.gpu_local_fraction()
    };
    let weak = gain_for(0.1);
    let strong = gain_for(0.9);
    assert!(
        strong > weak + 0.15,
        "strong-affinity gain {strong} vs weak {weak}"
    );
}

#[test]
fn estimated_affinity_matches_generating_process() {
    // The affinity the profiler estimates is the one the routing process
    // was built with: top-k mass of the estimate tracks kappa.
    for kappa in [0.3, 0.9] {
        let spec = AffinityModelSpec::new(4, 16).with_affinity(kappa);
        let routing = spec.build();
        let batch = TokenBatch::sample(
            &routing,
            &CorpusSpec::pile_proxy(spec.n_domains),
            20_000,
            1,
            11,
        );
        let trace = RoutingTrace::from_batch(&batch, 16);
        let m = AffinityMatrix::from_trace(&trace, 0, 1);
        // Preferred structure spans up to 2 core + 2-per-domain perms.
        let mass = metrics::mean_topk_mass(&m, 10);
        let floor = kappa + (1.0 - kappa) * 10.0 / 16.0;
        assert!(
            mass > floor - 0.05,
            "kappa {kappa}: top-10 mass {mass} below floor {floor}"
        );
    }
}

#[test]
fn vanilla_and_cc_agree_on_model_semantics() {
    // Both modes process identical routes; their dispatch totals and
    // locality counters must coincide under the same placement.
    let engine = engine(1, 4, 8, 6);
    let vanilla = engine
        .run_scenario(&Scenario::offline(ParallelismMode::Vanilla))
        .expect_offline();
    let cc = engine
        .run_scenario(&Scenario::offline(ParallelismMode::ContextCoherent))
        .expect_offline();
    assert_eq!(vanilla.dispatch.total, cc.dispatch.total);
    assert_eq!(vanilla.tokens_processed, cc.tokens_processed);
}
