//! Consistency between the simulated substrate and its analytic models:
//! the thread-based communicator, the closed-form collective costs, and
//! the statistical properties the routing process guarantees.

use exflow::affinity::{AffinityMatrix, RoutingTrace};
use exflow::collectives::{CommWorld, OpKind};
use exflow::model::routing::AffinityModelSpec;
use exflow::model::{CorpusSpec, TokenBatch};
use exflow::placement::objective::measure_trace_locality;
use exflow::placement::{Objective, Placement};
use exflow::topology::{ClusterSpec, CollectiveCostModel, CostModel};

#[test]
fn simulated_alltoall_bytes_match_analytic_exactly() {
    for (nodes, gpn) in [(1usize, 4usize), (2, 2), (2, 4), (4, 1)] {
        let cluster = ClusterSpec::new(nodes, gpn).unwrap();
        let world = CommWorld::new(cluster, CostModel::wilkes3());
        let w = cluster.world_size();
        let bytes_per_pair = 1usize << 12;
        world.run(|comm| {
            comm.all_to_all_v(vec![vec![0u8; bytes_per_pair]; w]);
        });
        let analytic = CollectiveCostModel::new(cluster, CostModel::wilkes3())
            .alltoallv_bytes(&vec![vec![bytes_per_pair as u64; w]; w]);
        let sim = world.stats().totals(OpKind::Alltoall).sent;
        assert_eq!(sim.local, analytic.local, "{nodes}x{gpn}");
        assert_eq!(sim.intra_node, analytic.intra_node, "{nodes}x{gpn}");
        assert_eq!(sim.inter_node, analytic.inter_node, "{nodes}x{gpn}");
    }
}

#[test]
fn simulated_alltoall_time_tracks_analytic_shape() {
    // The thread-based virtual clock and the closed form won't agree to
    // the microsecond (different serialization assumptions) but must agree
    // on ordering across topologies.
    let time_for = |nodes: usize, gpn: usize| {
        let cluster = ClusterSpec::new(nodes, gpn).unwrap();
        let world = CommWorld::new(cluster, CostModel::wilkes3());
        let w = cluster.world_size();
        let times = world.run(|comm| {
            comm.all_to_all_v(vec![vec![0u8; 1 << 14]; w]);
            comm.now()
        });
        times.into_iter().fold(0.0f64, f64::max)
    };
    let analytic_for =
        |nodes: usize, gpn: usize| {
            let cluster = ClusterSpec::new(nodes, gpn).unwrap();
            let w = cluster.world_size();
            CollectiveCostModel::new(cluster, CostModel::wilkes3())
                .alltoallv_time(&vec![vec![1u64 << 14; w]; w])
        };
    // Same world size, different hierarchy: 8 GPUs on 2 vs 8 nodes.
    let sim_fat = time_for(2, 4);
    let sim_thin = time_for(8, 1);
    let ana_fat = analytic_for(2, 4);
    let ana_thin = analytic_for(8, 1);
    assert!(sim_thin > sim_fat, "thin nodes must cost more (sim)");
    assert!(ana_thin > ana_fat, "thin nodes must cost more (analytic)");
}

#[test]
fn routing_marginals_are_load_balanced() {
    // The doubly-stochastic construction keeps every layer's expert load
    // within a few percent of uniform — the property the paper's GShard
    // models exhibit and the placement's balance constraint relies on.
    let spec = AffinityModelSpec::new(8, 16);
    let model = spec.build();
    let batch = TokenBatch::sample(
        &model,
        &CorpusSpec::pile_proxy(spec.n_domains),
        30_000,
        1,
        4,
    );
    let trace = RoutingTrace::from_batch(&batch, 16);
    for layer in 0..8 {
        let h = trace.layer_histogram(layer);
        for &c in &h {
            let share = c as f64 / 30_000.0;
            assert!(
                (share - 1.0 / 16.0).abs() < 0.02,
                "layer {layer}: share {share}"
            );
        }
    }
}

#[test]
fn objective_expectation_equals_trace_measurement() {
    // The weighted objective computed from estimated matrices must equal
    // the directly counted locality on the *same* trace (they are the same
    // sum organized differently).
    let spec = AffinityModelSpec::new(6, 8);
    let model = spec.build();
    let batch = TokenBatch::sample(&model, &CorpusSpec::pile_proxy(spec.n_domains), 5000, 1, 8);
    let trace = RoutingTrace::from_batch(&batch, 8);
    let objective = Objective::from_affinities(&AffinityMatrix::consecutive(&trace));
    for units in [2usize, 4] {
        let p = Placement::round_robin(6, 8, units);
        let expected = objective.local_fraction(&p);
        let measured = measure_trace_locality(&trace, &p).fraction();
        assert!(
            (expected - measured).abs() < 1e-9,
            "units {units}: {expected} vs {measured}"
        );
    }
}

#[test]
fn allgather_delivers_identical_context_everywhere() {
    // Context coherence's correctness condition: after the AllGather,
    // every rank holds the same bytes in the same order.
    let cluster = ClusterSpec::new(2, 2).unwrap();
    let world = CommWorld::new(cluster, CostModel::wilkes3());
    let results = world.run(|comm| {
        let me = comm.rank().0 as u8;
        let mine: Vec<u8> = (0..32).map(|i| me ^ i).collect();
        comm.all_gather_v(mine)
    });
    let reference = &results[0];
    for r in &results[1..] {
        assert_eq!(r, reference);
    }
}
