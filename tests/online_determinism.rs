//! Workspace-level online-determinism gate: an online serving run with
//! fixed seeds is a pure function of (config, drift schedule) — bit
//! identical across parallelism widths and gap backends (with or without
//! replication-aware re-planning), and identical across re-plan cadences
//! whenever the cadence never actually fires a migration.

use exflow::core::{InferenceEngine, OnlineConfig, ParallelismMode, Scenario};
use exflow::model::drift::DriftSchedule;
use exflow::model::presets::moe_gpt_m;
use exflow::model::DriftKind;
use exflow::placement::{GapBackend, Parallelism};
use exflow::topology::ClusterSpec;

fn engine(threads: usize, online: OnlineConfig, backend: GapBackend) -> InferenceEngine {
    let mut model = moe_gpt_m(8);
    model.n_layers = 5;
    InferenceEngine::builder(model, ClusterSpec::new(2, 2).unwrap())
        .requests_per_gpu(32)
        .n_iterations(2)
        .prompt_len(8)
        .profile_tokens(800)
        .parallelism(Parallelism::new(threads))
        .gap_backend(backend)
        .online(online)
        .seed(11)
        .build()
}

fn adaptive() -> OnlineConfig {
    OnlineConfig {
        replan_every: 1,
        drift_threshold: 0.08,
        migration_budget_bytes: u64::MAX,
        decay: 0.3,
        ..OnlineConfig::default()
    }
}

/// Replication-aware variant: a joint budget tight enough that replica
/// adds, drops, and owner moves all compete, plus rollover and
/// drift-scaled budgets so every new budgeting path is exercised.
fn replicated() -> OnlineConfig {
    let bytes_per_expert = {
        let mut model = moe_gpt_m(8);
        model.n_layers = 5;
        model.expert_params() * 2
    };
    OnlineConfig {
        replan_every: 1,
        drift_threshold: 0.08,
        migration_budget_bytes: 12 * bytes_per_expert,
        decay: 0.3,
        replica_memory_bytes: 4 * bytes_per_expert,
        budget_rollover: true,
        scale_budget_by_drift: true,
        ..OnlineConfig::default()
    }
}

fn drift(engine: &InferenceEngine) -> DriftSchedule {
    DriftSchedule::piecewise(&engine.config().routing_spec, 2, 6)
}

#[test]
fn online_runs_are_bit_identical_at_1_2_and_8_threads() {
    let seq = engine(1, adaptive(), GapBackend::Auto);
    let schedule = drift(&seq);
    let baseline = seq
        .run_scenario(
            &Scenario::offline(ParallelismMode::ContextCoherentAffinity)
                .with_drift(schedule.clone()),
        )
        .expect_online();
    // The scenario must exercise the full pipeline: drift detected,
    // migrations executed.
    assert!(baseline.migrations.replans > 0);
    for threads in [2, 8] {
        let par = engine(threads, adaptive(), GapBackend::Auto);
        let report = par
            .run_scenario(
                &Scenario::offline(ParallelismMode::ContextCoherentAffinity)
                    .with_drift(schedule.clone()),
            )
            .expect_online();
        assert_eq!(report, baseline, "{threads} threads diverged");
        // PartialEq covers them, but make the bit-level contract on the
        // float surfaces explicit.
        assert_eq!(
            report.total_time().to_bits(),
            baseline.total_time().to_bits()
        );
        for (a, b) in report.drift.iter().zip(&baseline.drift) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}

#[test]
fn online_runs_are_gap_backend_invariant() {
    let dense = engine(1, adaptive(), GapBackend::Dense);
    let schedule = drift(&dense);
    let a = dense
        .run_scenario(
            &Scenario::offline(ParallelismMode::ContextCoherentAffinity)
                .with_drift(schedule.clone()),
        )
        .expect_online();
    let sparse = engine(1, adaptive(), GapBackend::Sparse);
    let b = sparse
        .run_scenario(
            &Scenario::offline(ParallelismMode::ContextCoherentAffinity)
                .with_drift(schedule.clone()),
        )
        .expect_online();
    assert!(a.migrations.replans > 0);
    assert_eq!(a, b, "gap backends diverged");
}

#[test]
fn cadence_is_unobservable_when_no_migration_fires() {
    // An infinite drift threshold means no re-plan can ever fire; the
    // cadence knob must then be completely unobservable in the output.
    let quiet = |replan_every: usize| OnlineConfig {
        replan_every,
        drift_threshold: f64::INFINITY,
        migration_budget_bytes: u64::MAX,
        decay: 0.3,
        ..OnlineConfig::default()
    };
    let reference_engine = engine(1, quiet(1), GapBackend::Auto);
    let schedule = drift(&reference_engine);
    let reference = reference_engine
        .run_scenario(
            &Scenario::offline(ParallelismMode::ContextCoherentAffinity)
                .with_drift(schedule.clone()),
        )
        .expect_online();
    assert_eq!(reference.migrations.replans, 0);
    assert!(reference.replans.is_empty());
    for cadence in [2, 3, 5] {
        let report = engine(1, quiet(cadence), GapBackend::Auto)
            .run_scenario(
                &Scenario::offline(ParallelismMode::ContextCoherentAffinity)
                    .with_drift(schedule.clone()),
            )
            .expect_online();
        assert_eq!(report, reference, "cadence {cadence} leaked into the run");
    }
}

#[test]
fn replication_aware_runs_are_bit_identical_at_1_2_and_8_threads() {
    let seq = engine(1, replicated(), GapBackend::Auto);
    let schedule = drift(&seq);
    let baseline = seq
        .run_scenario(
            &Scenario::offline(ParallelismMode::ContextCoherentAffinity)
                .with_drift(schedule.clone()),
        )
        .expect_online();
    // The scenario must exercise the replication pipeline for the
    // invariance to mean anything: replicas actually churn.
    assert!(baseline.migrations.replans > 0);
    assert!(
        baseline.migrations.replicas_added > 0,
        "the joint budget must buy at least one replica"
    );
    for threads in [2, 8] {
        let par = engine(threads, replicated(), GapBackend::Auto);
        let report = par
            .run_scenario(
                &Scenario::offline(ParallelismMode::ContextCoherentAffinity)
                    .with_drift(schedule.clone()),
            )
            .expect_online();
        assert_eq!(report, baseline, "{threads} threads diverged");
        assert_eq!(
            report.total_time().to_bits(),
            baseline.total_time().to_bits()
        );
        for (a, b) in report.drift.iter().zip(&baseline.drift) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}

#[test]
fn replication_aware_runs_are_gap_backend_invariant() {
    let dense = engine(1, replicated(), GapBackend::Dense);
    let schedule = drift(&dense);
    let a = dense
        .run_scenario(
            &Scenario::offline(ParallelismMode::ContextCoherentAffinity)
                .with_drift(schedule.clone()),
        )
        .expect_online();
    let sparse = engine(1, replicated(), GapBackend::Sparse);
    let b = sparse
        .run_scenario(
            &Scenario::offline(ParallelismMode::ContextCoherentAffinity)
                .with_drift(schedule.clone()),
        )
        .expect_online();
    assert!(a.migrations.replans > 0);
    assert_eq!(a, b, "gap backends diverged on a replication-aware run");
}

#[test]
fn smooth_drift_schedules_are_deterministic_too() {
    let e = engine(1, adaptive(), GapBackend::Auto);
    let schedule = DriftSchedule::smooth(&e.config().routing_spec, 6);
    assert_eq!(schedule.kind(), DriftKind::Smooth);
    let a = e
        .run_scenario(
            &Scenario::offline(ParallelismMode::ContextCoherentAffinity)
                .with_drift(schedule.clone()),
        )
        .expect_online();
    let b = e
        .run_scenario(
            &Scenario::offline(ParallelismMode::ContextCoherentAffinity)
                .with_drift(schedule.clone()),
        )
        .expect_online();
    assert_eq!(a, b);
}
