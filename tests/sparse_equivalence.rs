//! Workspace gate: the dense and CSR objective backends are perfectly
//! interchangeable. On a large-expert (E = 256) sparse instance, every
//! `SolverKind` must produce the *identical placement* with *bit-identical*
//! cross mass on both backends — the sparse backend is a speed/memory
//! choice, never a quality choice.

use exflow::affinity::SparseAffinity;
use exflow::model::routing::AffinityModelSpec;
use exflow::model::{CorpusSpec, TokenBatch};
use exflow::placement::annealing::AnnealParams;
use exflow::placement::{
    solve_with, GapBackend, Objective, Parallelism, SolverKind, SPARSE_DENSITY_THRESHOLD,
};

const E: usize = 256;
const UNITS: usize = 8;

/// A profiled E=256 instance (1 gap keeps the dense side of the gate
/// affordable in debug builds; the backends' contract is per-gap, so one
/// gap exercises everything).
fn estimates() -> Vec<SparseAffinity> {
    let model = AffinityModelSpec::new(2, E)
        .with_affinity(0.9)
        .with_seed(33)
        .build();
    let batch = TokenBatch::sample(&model, &CorpusSpec::pile_proxy(4), 2500, 1, 33);
    let trace = exflow::affinity::RoutingTrace::from_batch(&batch, E);
    SparseAffinity::consecutive(&trace)
}

/// Every solver family, parameterized lean — the gate is about backend
/// equivalence, not solver effort. `Exact` is included even though E=256
/// is far beyond the DP limit: its local-search fallback must be
/// backend-invariant too.
fn all_kinds() -> Vec<SolverKind> {
    vec![
        SolverKind::RoundRobin,
        SolverKind::Greedy,
        SolverKind::LocalSearch { restarts: 0 },
        SolverKind::Annealing(AnnealParams {
            t_start: 0.01,
            t_end: 0.004,
            moves_per_temp: 50,
            cooling: 0.5,
            n_starts: 1,
        }),
        SolverKind::Exact,
        SolverKind::Portfolio {
            kinds: vec![
                SolverKind::RoundRobin,
                SolverKind::Greedy,
                SolverKind::LocalSearch { restarts: 0 },
            ],
            budget_ms: 0,
        },
    ]
}

#[test]
fn every_solver_is_backend_invariant_at_e256() {
    let mats = estimates();
    let dense = Objective::from_sparse_affinities_with(&mats, GapBackend::Dense);
    let sparse = Objective::from_sparse_affinities_with(&mats, GapBackend::Sparse);
    assert!(!dense.gap_is_sparse(0));
    assert!(sparse.gap_is_sparse(0));
    // The instance must actually be in the sparse regime for the gate to
    // mean anything.
    assert!(
        sparse.density() < SPARSE_DENSITY_THRESHOLD,
        "instance density {} is not sparse",
        sparse.density()
    );

    for kind in all_kinds() {
        let pd = solve_with(&dense, UNITS, &kind, 97, Parallelism::single());
        let ps = solve_with(&sparse, UNITS, &kind, 97, Parallelism::single());
        assert_eq!(pd, ps, "{kind:?} placements diverged across backends");
        let cd = dense.cross_mass(&pd);
        let cs = sparse.cross_mass(&ps);
        assert_eq!(
            cd.to_bits(),
            cs.to_bits(),
            "{kind:?} cross mass diverged: dense {cd} vs sparse {cs}"
        );
        // Cross-evaluation: each backend scores the other's placement to
        // the same bits too.
        assert_eq!(
            dense.cross_mass(&ps).to_bits(),
            sparse.cross_mass(&pd).to_bits()
        );
    }
}

#[test]
fn auto_backend_matches_both_forced_backends_at_e256() {
    let mats = estimates();
    let auto = Objective::from_sparse_affinities(&mats);
    // At this density Auto must have picked CSR.
    assert!(auto.gap_is_sparse(0));
    let dense = Objective::from_sparse_affinities_with(&mats, GapBackend::Dense);
    let kind = SolverKind::LocalSearch { restarts: 0 };
    let pa = solve_with(&auto, UNITS, &kind, 5, Parallelism::single());
    let pd = solve_with(&dense, UNITS, &kind, 5, Parallelism::single());
    assert_eq!(pa, pd);
    assert_eq!(
        auto.cross_mass(&pa).to_bits(),
        dense.cross_mass(&pd).to_bits()
    );
}
