//! Facade crate: re-exports the whole ExFlow suite.
#![forbid(unsafe_code)]
pub use exflow_affinity as affinity;
pub use exflow_collectives as collectives;
pub use exflow_core as core;
pub use exflow_model as model;
pub use exflow_placement as placement;
pub use exflow_topology as topology;
