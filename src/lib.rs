//! Facade crate: re-exports the whole ExFlow suite.
//!
//! The workspace architecture (crate map, data flow, determinism
//! invariants, online serving mode) is documented below, straight from
//! `ARCHITECTURE.md` — the rustdoc build (`-D warnings` in CI) keeps it
//! compiling and link-checked.
#![doc = include_str!("../ARCHITECTURE.md")]
#![forbid(unsafe_code)]
pub use exflow_affinity as affinity;
pub use exflow_collectives as collectives;
pub use exflow_core as core;
pub use exflow_model as model;
pub use exflow_placement as placement;
pub use exflow_topology as topology;

// The headline entry points, lifted to the facade root: one scenario
// value + one run call covers offline, online, serving, and faulted
// runs, with a shared re-plan policy shape — plus the serving-facing
// surface that scenario compositions are built from and the JSONL
// event stream every serving report exports.
pub use exflow_core::{
    events_from_report, render_events, to_jsonl, BatchPolicy, InferenceEngine, ReplanPolicy,
    Scenario, ScenarioReport, ServingConfig, WindowEvent, EVENT_SCHEMA,
};
pub use exflow_model::{ArrivalProcess, FaultSchedule};
