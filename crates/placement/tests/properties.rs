//! Property-based tests for the placement solvers.

use exflow_placement::objective::{measure_trace_locality, measure_trace_node_locality};
use exflow_placement::{
    solve, solve_budgeted_replicated, GapBackend, MigrationPlan, Objective, Placement,
    ReplicaPolicy, ReplicationBudget, ReplicationPlan, SolverKind, SPARSE_DENSITY_THRESHOLD,
};
use exflow_topology::ClusterSpec;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random row-stochastic objective with controllable structure.
fn random_objective(e: usize, gaps: usize, seed: u64) -> Objective {
    let mut rng = StdRng::seed_from_u64(seed);
    let gaps_vec = (0..gaps)
        .map(|_| {
            let mut m = vec![0.0f64; e * e];
            for i in 0..e {
                let mut s = 0.0;
                for p in 0..e {
                    let v: f64 = rng.gen_range(0.0..1.0f64).powi(4);
                    m[i * e + p] = v;
                    s += v;
                }
                for p in 0..e {
                    m[i * e + p] /= s;
                }
            }
            m
        })
        .collect();
    Objective::from_raw(gaps_vec, e)
}

fn divisor_pairs() -> impl Strategy<Value = (usize, usize)> {
    // (n_experts, n_units) with units | experts.
    prop_oneof![
        Just((4usize, 2usize)),
        Just((8, 2)),
        Just((8, 4)),
        Just((12, 3)),
        Just((12, 4)),
        Just((16, 4)),
        Just((6, 2)),
        Just((6, 3)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cross_mass_in_valid_range((e, u) in divisor_pairs(), gaps in 1usize..5, seed in 0u64..100) {
        let obj = random_objective(e, gaps, seed);
        let p = Placement::round_robin(gaps + 1, e, u);
        let c = obj.cross_mass(&p);
        prop_assert!((0.0..=gaps as f64 + 1e-9).contains(&c));
        let f = obj.local_fraction(&p);
        prop_assert!((-1e-9..=1.0 + 1e-9).contains(&f));
    }

    #[test]
    fn swap_delta_agrees_with_recompute((e, u) in divisor_pairs(), seed in 0u64..50) {
        let gaps = 3;
        let obj = random_objective(e, gaps, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xabc);
        let p = exflow_placement::local_search::random_placement(gaps + 1, e, u, &mut rng);
        for _ in 0..10 {
            let layer = rng.gen_range(0..gaps + 1);
            let e1 = rng.gen_range(0..e);
            let e2 = rng.gen_range(0..e);
            let delta = obj.swap_delta(&p, layer, e1, e2);
            let mut q = p.clone();
            q.swap(layer, e1, e2);
            let full = obj.cross_mass(&q) - obj.cross_mass(&p);
            prop_assert!((delta - full).abs() < 1e-9);
        }
    }

    #[test]
    fn solvers_preserve_balance((e, u) in divisor_pairs(), seed in 0u64..30) {
        let obj = random_objective(e, 3, seed);
        for kind in [SolverKind::Greedy, SolverKind::LocalSearch { restarts: 1 }] {
            let p = solve(&obj, u, kind, seed);
            let cap = e / u;
            for layer in 0..4 {
                for unit in 0..u {
                    prop_assert_eq!(p.experts_on(layer, unit).len(), cap);
                }
            }
        }
    }

    #[test]
    fn local_search_never_worse_than_greedy((e, u) in divisor_pairs(), seed in 0u64..30) {
        let obj = random_objective(e, 3, seed);
        let g = solve(&obj, u, SolverKind::Greedy, seed);
        let ls = solve(&obj, u, SolverKind::LocalSearch { restarts: 1 }, seed);
        prop_assert!(obj.cross_mass(&ls) <= obj.cross_mass(&g) + 1e-9);
    }

    #[test]
    fn exact_is_lower_bound_when_feasible(seed in 0u64..20) {
        let obj = random_objective(6, 3, seed);
        let (_, opt) = exflow_placement::exact::solve_exact(&obj, 2, 1000).unwrap();
        for kind in [
            SolverKind::RoundRobin,
            SolverKind::Greedy,
            SolverKind::LocalSearch { restarts: 2 },
        ] {
            let p = solve(&obj, 2, kind, seed);
            prop_assert!(opt <= obj.cross_mass(&p) + 1e-9);
        }
    }

    #[test]
    fn node_locality_dominates_gpu_locality(seed in 0u64..30) {
        use exflow_affinity::RoutingTrace;
        use exflow_model::routing::AffinityModelSpec;
        use exflow_model::{CorpusSpec, TokenBatch};
        let model = AffinityModelSpec::new(5, 8).with_seed(seed).build();
        let batch = TokenBatch::sample(&model, &CorpusSpec::pile_proxy(4), 300, 1, seed);
        let trace = RoutingTrace::from_batch(&batch, 8);
        let p = Placement::round_robin(5, 8, 4);
        let gpu = measure_trace_locality(&trace, &p).fraction();
        let node = measure_trace_node_locality(&trace, &p, 2).fraction();
        prop_assert!(node + 1e-12 >= gpu);
    }

    #[test]
    fn staged_consistency_holds(seed in 0u64..20) {
        let obj = random_objective(8, 3, seed);
        let cluster = ClusterSpec::new(2, 2).unwrap();
        let staged = exflow_placement::staged::solve_staged(&obj, &cluster, 1, seed);
        prop_assert!(staged.is_consistent(&cluster));
    }

    #[test]
    fn sparse_and_dense_backends_agree(
        (e, u) in divisor_pairs(),
        gaps in 1usize..4,
        density_pct in 0usize..=100,
        seed in 0u64..60,
    ) {
        // Random matrices across the whole density range: empty rows
        // (density 0 keeps only the diagonal fallback below), genuinely
        // sparse, and fully dense.
        let obj_gaps = random_gaps_with_density(e, gaps, density_pct, seed);
        let dense = Objective::from_raw_with(obj_gaps.clone(), e, GapBackend::Dense);
        let sparse = Objective::from_raw_with(obj_gaps, e, GapBackend::Sparse);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
        let p = exflow_placement::local_search::random_placement(gaps + 1, e, u, &mut rng);
        let (cd, cs) = (dense.cross_mass(&p), sparse.cross_mass(&p));
        prop_assert!((cd - cs).abs() < 1e-12, "cross_mass {cd} vs {cs}");
        prop_assert_eq!(cd.to_bits(), cs.to_bits());
        for _ in 0..12 {
            let layer = rng.gen_range(0..gaps + 1);
            let e1 = rng.gen_range(0..e);
            let e2 = rng.gen_range(0..e);
            let dd = dense.swap_delta(&p, layer, e1, e2);
            let ds = sparse.swap_delta(&p, layer, e1, e2);
            prop_assert!((dd - ds).abs() < 1e-12, "swap_delta {dd} vs {ds}");
            prop_assert_eq!(dd.to_bits(), ds.to_bits());
        }
    }

    #[test]
    fn incremental_maintenance_bit_equals_cold_rebuild(
        windows in 2usize..5,
        tokens in 40usize..160,
        seed in 0u64..40,
    ) {
        // Random window-delta streams: a delta-maintained objective (one
        // per gap backend) plus a persistent swap-gain cache must stay
        // bit-equal to a cold `from_snapshot` rebuild with a full
        // rescan, window after window — the cache and the in-place
        // update are memoisation, never approximation.
        use exflow_affinity::{RoutingTrace, StreamingAffinity};
        use exflow_model::routing::AffinityModelSpec;
        use exflow_model::{CorpusSpec, TokenBatch};
        use exflow_placement::local_search::solve_local_search_with;
        use exflow_placement::{solve_budgeted_metered, split_seed, Parallelism, SwapGainCache};

        let (layers, e, units) = (3usize, 8usize, 4usize);
        let model = AffinityModelSpec::new(layers, e).with_seed(seed).build();
        let trace_at = |s: u64| {
            let batch =
                TokenBatch::sample(&model, &CorpusSpec::pile_proxy(model.n_domains()), tokens, 1, s);
            RoutingTrace::from_batch(&batch, e)
        };

        let mut streaming = StreamingAffinity::new(layers, e, 0.5);
        streaming.observe(&trace_at(seed ^ 0xff));
        let snap0 = streaming.snapshot();
        let mut live_dense = Objective::from_snapshot_with(&snap0, GapBackend::Dense);
        let mut live_sparse = Objective::from_snapshot_with(&snap0, GapBackend::Sparse);
        let mut cache = SwapGainCache::for_objective(&live_dense);
        let mut placement = Placement::round_robin(layers, e, units);

        for w in 1..windows {
            let delta = streaming.observe_delta(&trace_at(split_seed(seed, w as u64)));
            live_dense.apply_snapshot_delta(&delta);
            live_sparse.apply_snapshot_delta(&delta);
            let snap = streaming.snapshot();
            let rebuilt_dense = Objective::from_snapshot_with(&snap, GapBackend::Dense);
            let rebuilt_sparse = Objective::from_snapshot_with(&snap, GapBackend::Sparse);
            prop_assert!(live_dense == rebuilt_dense, "dense objective diverged at window {w}");
            prop_assert!(live_sparse == rebuilt_sparse, "sparse objective diverged at window {w}");

            // Same incumbent, four budgeted solves: cached incremental,
            // uncached full rescan, cold rebuild, sparse backend.
            let (p_cached, c_cached) =
                solve_budgeted_metered(&live_dense, &placement, 6, u64::MAX, Some(&mut cache));
            let (p_fresh, c_fresh) =
                solve_budgeted_metered(&live_dense, &placement, 6, u64::MAX, None);
            let (p_cold, _) = solve_budgeted_metered(&rebuilt_dense, &placement, 6, u64::MAX, None);
            let (p_sparse, _) = solve_budgeted_metered(&live_sparse, &placement, 6, u64::MAX, None);
            prop_assert_eq!(&p_cached, &p_fresh, "cache changed the walk at window {}", w);
            prop_assert_eq!(&p_cached, &p_cold, "delta maintenance changed the walk at window {}", w);
            prop_assert_eq!(&p_cached, &p_sparse, "backend changed the walk at window {}", w);
            prop_assert_eq!(c_fresh.evaluated, c_fresh.considered);
            prop_assert_eq!(c_fresh.reused, 0);
            prop_assert_eq!(c_cached.evaluated + c_cached.reused, c_cached.considered);
            prop_assert_eq!(c_cached.considered, c_fresh.considered);

            let cm = live_dense.cross_mass(&p_cached);
            prop_assert_eq!(cm.to_bits(), rebuilt_dense.cross_mass(&p_cached).to_bits());
            prop_assert_eq!(cm.to_bits(), live_sparse.cross_mass(&p_cached).to_bits());
            prop_assert_eq!(cm.to_bits(), rebuilt_sparse.cross_mass(&p_cached).to_bits());

            // The delta-maintained objective must also stay bit-stable
            // under the thread-parallel solver at every width.
            let single = solve_local_search_with(&live_dense, units, 2, seed, Parallelism::single());
            for threads in [2usize, 8] {
                let multi =
                    solve_local_search_with(&live_dense, units, 2, seed, Parallelism::new(threads));
                prop_assert_eq!(&single, &multi, "{} threads diverged at window {}", threads, w);
                prop_assert_eq!(
                    rebuilt_dense.cross_mass(&multi).to_bits(),
                    live_dense.cross_mass(&single).to_bits()
                );
            }
            placement = p_cached;
        }
    }

    #[test]
    fn auto_selection_threshold_round_trips(e in 5usize..12, seed in 0u64..40) {
        // Just-under-threshold nnz must pick sparse, at-or-above dense.
        // (e >= 5 guarantees an under-threshold matrix exists at all: each
        // row needs at least one cell, and e/e^2 < 0.25 needs e > 4.)
        let cells = e * e;
        let under = ((SPARSE_DENSITY_THRESHOLD * cells as f64).ceil() as usize - 1).max(e);
        let over = (SPARSE_DENSITY_THRESHOLD * cells as f64).ceil() as usize;
        prop_assume!((under as f64) < SPARSE_DENSITY_THRESHOLD * cells as f64);
        let build = |nnz: usize| {
            let m = matrix_with_nnz(e, nnz, seed);
            Objective::from_raw(vec![m], e)
        };
        let sparse = build(under);
        prop_assert!(sparse.gap_is_sparse(0), "nnz {} of {} cells", under, cells);
        prop_assert_eq!(sparse.nnz(), under);
        if (over as f64) >= SPARSE_DENSITY_THRESHOLD * cells as f64 {
            let dense = build(over);
            prop_assert!(!dense.gap_is_sparse(0), "nnz {} of {} cells", over, cells);
            prop_assert_eq!(dense.nnz(), over);
        }
    }

    #[test]
    fn replica_subsets_are_well_formed_and_include_the_owner(
        (e, u) in divisor_pairs(),
        slots in 0u64..5,
        moves in 0u64..20,
        seed in 0u64..60,
    ) {
        // Whatever subsets the budgeted replicated solver materialises,
        // the owner is always implicitly available, subsets are sorted
        // non-owner GPU sets, and no in-range query panics.
        let obj = random_objective(e, 3, seed);
        let bpe = 1 + seed % 7;
        let budget = ReplicationBudget {
            replica_memory_bytes: slots * bpe,
            migration_budget_bytes: moves * bpe,
        };
        for policy in policies_for(u) {
            let incumbent = ReplicationPlan::bare(Placement::round_robin(4, e, u));
            let plan = solve_budgeted_replicated(&obj, &incumbent, bpe, &budget, &policy);
            for layer in 0..4 {
                for &(expert, ref units) in &plan.replicas[layer] {
                    let owner = plan.base.unit_of(layer, expert);
                    prop_assert!(!units.is_empty(), "empty subset survived sanitising");
                    prop_assert!(!units.contains(&owner), "owner listed as its own replica");
                    prop_assert!(units.windows(2).all(|w| w[0] < w[1]), "subset not sorted");
                    prop_assert!(units.iter().all(|&x| x < u), "unit out of range");
                }
                for expert in 0..e {
                    let owner = plan.base.unit_of(layer, expert);
                    prop_assert!(
                        plan.available_on(layer, expert, owner),
                        "owner must always serve its own expert"
                    );
                    let avail = plan.available_units(layer, expert);
                    prop_assert!(avail.contains(&owner));
                    prop_assert!(avail.windows(2).all(|w| w[0] < w[1]));
                }
            }
        }
    }

    #[test]
    fn replica_memory_and_migration_budgets_are_never_exceeded(
        (e, u) in divisor_pairs(),
        slots in 0u64..4,
        moves in 0u64..16,
        incumbent_picks in 0usize..4,
        seed in 0u64..60,
    ) {
        // Across random subsets, budgets, and seeds: no GPU ever holds
        // more extra copies than its slot budget allows, and the diff
        // against the incumbent never ships more bytes than the
        // migration budget — even when the incumbent itself arrives
        // over-provisioned and must be repacked.
        let obj = random_objective(e, 3, seed);
        let bpe = 2 + seed % 5;
        let budget = ReplicationBudget {
            replica_memory_bytes: slots * bpe,
            migration_budget_bytes: moves * bpe,
        };
        for policy in policies_for(u) {
            let base = Placement::round_robin(4, e, u);
            let listed: Vec<Vec<usize>> = (0..4)
                .map(|l| (0..incumbent_picks).map(|i| (l + i * 3) % e).collect())
                .collect();
            let incumbent = ReplicationPlan::with_policy(base, listed, &policy);
            let plan = solve_budgeted_replicated(&obj, &incumbent, bpe, &budget, &policy);
            let mut load = vec![0u64; u];
            for layer in 0..4 {
                for (_, units) in &plan.replicas[layer] {
                    for &x in units {
                        load[x] += 1;
                    }
                }
            }
            for (gpu, &l) in load.iter().enumerate() {
                prop_assert!(
                    l <= slots,
                    "GPU {gpu} holds {l} extra copies with only {slots} slots"
                );
            }
            prop_assert!(plan.extra_copies_per_gpu() as u64 <= slots);
            let diff = MigrationPlan::between_replicated(&incumbent, &plan, bpe);
            prop_assert!(
                diff.total_bytes() <= budget.migration_budget_bytes,
                "diff ships {} bytes over a {} byte budget",
                diff.total_bytes(),
                budget.migration_budget_bytes
            );
        }
    }

    #[test]
    fn replicated_dispatch_locality_is_thread_and_backend_invariant(
        density_pct in 20usize..=100,
        slots in 1u64..4,
        seed in 0u64..60,
    ) {
        // The replica-aware pipeline end to end — base solve, budgeted
        // replicated solve, set-semantics dispatch locality — must be a
        // pure function of its inputs: bit-identical at 1, 2, and 8
        // solver threads and across the dense and CSR gap backends.
        use exflow_affinity::RoutingTrace;
        use exflow_model::routing::AffinityModelSpec;
        use exflow_model::{CorpusSpec, TokenBatch};
        use exflow_placement::local_search::solve_local_search_with;
        use exflow_placement::Parallelism;
        use exflow_topology::ClusterSpec;

        let (e, u) = (8usize, 4usize);
        let raw = random_gaps_with_density(e, 3, density_pct, seed);
        let bpe = 4u64;
        let budget = ReplicationBudget {
            replica_memory_bytes: slots * bpe,
            migration_budget_bytes: 8 * bpe,
        };
        let policy = ReplicaPolicy::OnePerNode(ClusterSpec::new(2, 2).unwrap());
        let model = AffinityModelSpec::new(4, e).with_seed(seed).build();
        let batch = TokenBatch::sample(&model, &CorpusSpec::pile_proxy(4), 200, 1, seed);
        let trace = RoutingTrace::from_batch(&batch, e);

        let mut reference: Option<(ReplicationPlan, u64, u64)> = None;
        for backend in [GapBackend::Dense, GapBackend::Sparse] {
            let obj = Objective::from_raw_with(raw.clone(), e, backend);
            for threads in [1usize, 2, 8] {
                let base = solve_local_search_with(&obj, u, 1, seed, Parallelism::new(threads));
                let incumbent = ReplicationPlan::bare(base);
                let plan = solve_budgeted_replicated(&obj, &incumbent, bpe, &budget, &policy);
                let cross = exflow_placement::replicated_cross_mass(&obj, &plan).to_bits();
                let frac = plan.trace_local_fraction(&trace).to_bits();
                match &reference {
                    None => reference = Some((plan, cross, frac)),
                    Some((p0, c0, f0)) => {
                        prop_assert!(
                            &plan == p0,
                            "plan diverged at {threads} threads on {backend:?}"
                        );
                        prop_assert_eq!(cross, *c0, "cross mass bits diverged");
                        prop_assert_eq!(frac, *f0, "dispatch locality bits diverged");
                    }
                }
            }
        }
    }
}

/// The replica policies valid for a `u`-GPU fleet: the full fan-out plus
/// a one-per-node layout over the largest even split (falling back to
/// one-GPU nodes, where one-per-node degenerates to everywhere).
fn policies_for(u: usize) -> Vec<ReplicaPolicy> {
    use exflow_topology::ClusterSpec;
    let cluster = if u.is_multiple_of(2) && u > 2 {
        ClusterSpec::new(2, u / 2).unwrap()
    } else {
        ClusterSpec::new(u, 1).unwrap()
    };
    vec![
        ReplicaPolicy::Everywhere,
        ReplicaPolicy::OnePerNode(cluster),
    ]
}

/// Random row-stochastic gaps where roughly `density_pct`% of off-diagonal
/// cells are alive; rows that end up empty get a single diagonal cell, so
/// 0% yields the identity (rows of one cell) and 100% is fully dense.
fn random_gaps_with_density(e: usize, gaps: usize, density_pct: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..gaps)
        .map(|_| {
            let mut m = vec![0.0f64; e * e];
            for i in 0..e {
                let mut s = 0.0f64;
                for p in 0..e {
                    if rng.gen_range(0usize..100) < density_pct {
                        let v: f64 = rng.gen_range(0.0..1.0f64) + 1e-3;
                        m[i * e + p] = v;
                        s += v;
                    }
                }
                if s == 0.0 {
                    m[i * e + i] = 1.0;
                } else {
                    for p in 0..e {
                        m[i * e + p] /= s;
                    }
                }
            }
            m
        })
        .collect()
}

/// A row-stochastic matrix with exactly `nnz` alive cells (`e <= nnz <=
/// e*e`): every row gets one diagonal cell, the remainder spreads across
/// the earliest off-diagonal slots, and a seeded shuffle decides ties.
fn matrix_with_nnz(e: usize, nnz: usize, seed: u64) -> Vec<f64> {
    assert!((e..=e * e).contains(&nnz));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut extra_slots: Vec<(usize, usize)> = (0..e)
        .flat_map(|i| (0..e).filter(move |&p| p != i).map(move |p| (i, p)))
        .collect();
    for k in (1..extra_slots.len()).rev() {
        let j = rng.gen_range(0..=k);
        extra_slots.swap(k, j);
    }
    let mut m = vec![0.0f64; e * e];
    for i in 0..e {
        m[i * e + i] = 1.0;
    }
    for &(i, p) in extra_slots.iter().take(nnz - e) {
        m[i * e + p] = 1.0;
    }
    for i in 0..e {
        let s: f64 = m[i * e..(i + 1) * e].iter().sum();
        for p in 0..e {
            m[i * e + p] /= s;
        }
    }
    m
}
