//! Unified solver front-end.

use crate::annealing::{solve_annealing, AnnealParams};
use crate::exact::solve_exact;
use crate::greedy::solve_greedy;
use crate::local_search::solve_local_search;
use crate::objective::Objective;
use crate::placement::Placement;

/// Which algorithm to use for a (single-level) placement solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SolverKind {
    /// The DeepSpeed-MoE baseline: contiguous experts, no affinity
    /// awareness.
    RoundRobin,
    /// Greedy chain with exact per-gap Hungarian assignment.
    Greedy,
    /// Greedy seed + multi-start pairwise-swap hill climbing.
    LocalSearch {
        /// Number of random restarts beyond the greedy seed.
        restarts: usize,
    },
    /// Simulated annealing with the given schedule.
    Annealing(AnnealParams),
    /// Exact DP over balanced partitions (small instances only; falls back
    /// to `LocalSearch` when the state space exceeds the internal limit).
    Exact,
}

impl SolverKind {
    /// A sensible default for evaluation runs.
    pub fn default_heuristic() -> Self {
        SolverKind::LocalSearch { restarts: 2 }
    }
}

/// Solve a placement instance with the chosen algorithm. `seed` drives all
/// stochastic solvers; deterministic for fixed inputs.
pub fn solve(objective: &Objective, n_units: usize, kind: SolverKind, seed: u64) -> Placement {
    match kind {
        SolverKind::RoundRobin => {
            Placement::round_robin(objective.n_layers(), objective.n_experts(), n_units)
        }
        SolverKind::Greedy => solve_greedy(objective, n_units),
        SolverKind::LocalSearch { restarts } => {
            solve_local_search(objective, n_units, restarts, seed)
        }
        SolverKind::Annealing(params) => solve_annealing(objective, n_units, params, seed),
        SolverKind::Exact => match solve_exact(objective, n_units, 1000) {
            Ok((p, _)) => p,
            Err(_) => solve_local_search(objective, n_units, 4, seed),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn objective() -> Objective {
        let e = 8;
        let mut m = vec![0.0f64; e * e];
        for i in 0..e {
            m[i * e + (i + 3) % e] = 0.8;
            for p in 0..e {
                m[i * e + p] += 0.2 / e as f64;
            }
        }
        Objective::from_raw(vec![m; 4], e)
    }

    #[test]
    fn every_solver_returns_balanced_placements() {
        let obj = objective();
        let kinds = [
            SolverKind::RoundRobin,
            SolverKind::Greedy,
            SolverKind::LocalSearch { restarts: 1 },
            SolverKind::Annealing(AnnealParams::default()),
            SolverKind::Exact,
        ];
        for kind in kinds {
            let p = solve(&obj, 4, kind, 0);
            assert_eq!(p.n_units(), 4);
            for layer in 0..5 {
                for unit in 0..4 {
                    assert_eq!(p.experts_on(layer, unit).len(), 2, "{kind:?}");
                }
            }
        }
    }

    #[test]
    fn affinity_solvers_beat_round_robin() {
        let obj = objective();
        let rr = solve(&obj, 4, SolverKind::RoundRobin, 0);
        let rr_cost = obj.cross_mass(&rr);
        for kind in [
            SolverKind::Greedy,
            SolverKind::LocalSearch { restarts: 1 },
            SolverKind::Annealing(AnnealParams::default()),
        ] {
            let p = solve(&obj, 4, kind, 0);
            assert!(
                obj.cross_mass(&p) < rr_cost,
                "{kind:?} did not beat round-robin"
            );
        }
    }

    #[test]
    fn exact_falls_back_gracefully_on_large_instances() {
        // 16 experts / 4 units is beyond the exact limit; must not panic.
        let e = 16;
        let mut m = vec![0.0f64; e * e];
        for i in 0..e {
            m[i * e + (i + 1) % e] = 1.0;
        }
        let obj = Objective::from_raw(vec![m; 2], e);
        let p = solve(&obj, 4, SolverKind::Exact, 0);
        assert_eq!(p.n_units(), 4);
    }
}
