//! Unified solver front-end.

use crate::annealing::{solve_annealing_with, AnnealParams};
use crate::exact::solve_exact;
use crate::greedy::solve_greedy;
use crate::local_search::solve_local_search_with;
use crate::objective::Objective;
use crate::parallel::Parallelism;
use crate::placement::Placement;
use crate::portfolio::solve_portfolio;

/// Which algorithm to use for a (single-level) placement solve.
#[derive(Debug, Clone, PartialEq)]
pub enum SolverKind {
    /// The DeepSpeed-MoE baseline: contiguous experts, no affinity
    /// awareness.
    RoundRobin,
    /// Greedy chain with exact per-gap Hungarian assignment.
    Greedy,
    /// Greedy seed + multi-start pairwise-swap hill climbing.
    LocalSearch {
        /// Number of random restarts beyond the greedy seed.
        restarts: usize,
    },
    /// Simulated annealing with the given schedule (multi-start per
    /// `AnnealParams::n_starts`).
    Annealing(AnnealParams),
    /// Exact DP over balanced partitions (small instances only; falls back
    /// to `LocalSearch` when the state space exceeds the internal limit).
    Exact,
    /// Race member solvers on worker threads and keep the best placement.
    /// With an empty `kinds` roster, a default roster sized by
    /// `budget_ms` is raced instead (see [`crate::portfolio`]). Results
    /// are bit-identical at any thread count.
    Portfolio {
        /// Member solvers to race (empty = budget-sized default roster).
        kinds: Vec<SolverKind>,
        /// Deterministic effort budget for the default roster, in
        /// milliseconds of intended solve time. Never enforced by wall
        /// clock — that would break reproducibility — only used to size
        /// member effort.
        budget_ms: u64,
    },
}

impl SolverKind {
    /// A sensible default for evaluation runs.
    pub fn default_heuristic() -> Self {
        SolverKind::LocalSearch { restarts: 2 }
    }

    /// A budget-sized default portfolio.
    pub fn portfolio(budget_ms: u64) -> Self {
        SolverKind::Portfolio {
            kinds: Vec::new(),
            budget_ms,
        }
    }

    /// Short stable label (used by bench summaries and JSON artifacts).
    pub fn label(&self) -> String {
        match self {
            SolverKind::RoundRobin => "round-robin".to_string(),
            SolverKind::Greedy => "greedy".to_string(),
            SolverKind::LocalSearch { restarts } => format!("local-search-r{restarts}"),
            SolverKind::Annealing(p) => format!("annealing-s{}", p.n_starts),
            SolverKind::Exact => "exact".to_string(),
            SolverKind::Portfolio { kinds, budget_ms } => {
                if kinds.is_empty() {
                    format!("portfolio-b{budget_ms}")
                } else {
                    // Member labels, not just the count: two different
                    // rosters must never collide on the BENCH_*.json row
                    // key that PRs are compared by.
                    let members: Vec<String> = kinds.iter().map(SolverKind::label).collect();
                    format!("portfolio[{}]", members.join("+"))
                }
            }
        }
    }
}

/// Solve a placement instance with the chosen algorithm, sequentially.
/// `seed` drives all stochastic solvers; deterministic for fixed inputs.
pub fn solve(objective: &Objective, n_units: usize, kind: SolverKind, seed: u64) -> Placement {
    solve_with(objective, n_units, &kind, seed, Parallelism::single())
}

/// Solve with an explicit parallelism width. For every solver the result
/// is bit-identical to the sequential run — `par` only changes how fast
/// the answer arrives (restarts, annealing starts, and portfolio members
/// fan across `par.threads` workers).
pub fn solve_with(
    objective: &Objective,
    n_units: usize,
    kind: &SolverKind,
    seed: u64,
    par: Parallelism,
) -> Placement {
    match kind {
        SolverKind::RoundRobin => {
            Placement::round_robin(objective.n_layers(), objective.n_experts(), n_units)
        }
        SolverKind::Greedy => solve_greedy(objective, n_units),
        SolverKind::LocalSearch { restarts } => {
            solve_local_search_with(objective, n_units, *restarts, seed, par)
        }
        SolverKind::Annealing(params) => {
            solve_annealing_with(objective, n_units, *params, seed, par)
        }
        SolverKind::Exact => match solve_exact(objective, n_units, 1000) {
            Ok((p, _)) => p,
            Err(_) => solve_local_search_with(objective, n_units, 4, seed, par),
        },
        SolverKind::Portfolio { kinds, budget_ms } => {
            solve_portfolio(objective, n_units, kinds, *budget_ms, seed, par)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn objective() -> Objective {
        let e = 8;
        let mut m = vec![0.0f64; e * e];
        for i in 0..e {
            m[i * e + (i + 3) % e] = 0.8;
            for p in 0..e {
                m[i * e + p] += 0.2 / e as f64;
            }
        }
        Objective::from_raw(vec![m; 4], e)
    }

    fn all_kinds() -> Vec<SolverKind> {
        vec![
            SolverKind::RoundRobin,
            SolverKind::Greedy,
            SolverKind::LocalSearch { restarts: 1 },
            SolverKind::Annealing(AnnealParams::default()),
            SolverKind::Exact,
            SolverKind::portfolio(50),
        ]
    }

    #[test]
    fn every_solver_returns_balanced_placements() {
        let obj = objective();
        for kind in all_kinds() {
            let p = solve(&obj, 4, kind.clone(), 0);
            assert_eq!(p.n_units(), 4);
            for layer in 0..5 {
                for unit in 0..4 {
                    assert_eq!(p.experts_on(layer, unit).len(), 2, "{kind:?}");
                }
            }
        }
    }

    #[test]
    fn affinity_solvers_beat_round_robin() {
        let obj = objective();
        let rr = solve(&obj, 4, SolverKind::RoundRobin, 0);
        let rr_cost = obj.cross_mass(&rr);
        for kind in [
            SolverKind::Greedy,
            SolverKind::LocalSearch { restarts: 1 },
            SolverKind::Annealing(AnnealParams::default()),
            SolverKind::portfolio(50),
        ] {
            let p = solve(&obj, 4, kind.clone(), 0);
            assert!(
                obj.cross_mass(&p) < rr_cost,
                "{kind:?} did not beat round-robin"
            );
        }
    }

    #[test]
    fn exact_falls_back_gracefully_on_large_instances() {
        // 16 experts / 4 units is beyond the exact limit; must not panic.
        let e = 16;
        let mut m = vec![0.0f64; e * e];
        for i in 0..e {
            m[i * e + (i + 1) % e] = 1.0;
        }
        let obj = Objective::from_raw(vec![m; 2], e);
        let p = solve(&obj, 4, SolverKind::Exact, 0);
        assert_eq!(p.n_units(), 4);
    }

    #[test]
    fn labels_are_stable_and_distinct() {
        let labels: Vec<String> = all_kinds().iter().map(SolverKind::label).collect();
        let unique: std::collections::HashSet<&String> = labels.iter().collect();
        assert_eq!(unique.len(), labels.len(), "{labels:?}");
        assert_eq!(SolverKind::Greedy.label(), "greedy");
        assert_eq!(
            SolverKind::LocalSearch { restarts: 2 }.label(),
            "local-search-r2"
        );
        // Explicit rosters of equal length but different members must get
        // different labels.
        let a = SolverKind::Portfolio {
            kinds: vec![SolverKind::Greedy, SolverKind::Exact],
            budget_ms: 0,
        };
        let b = SolverKind::Portfolio {
            kinds: vec![SolverKind::Greedy, SolverKind::LocalSearch { restarts: 1 }],
            budget_ms: 0,
        };
        assert_eq!(a.label(), "portfolio[greedy+exact]");
        assert_ne!(a.label(), b.label());
    }
}
