//! Kuhn–Munkres (Hungarian) algorithm for the min-cost perfect assignment
//! problem — the exact solver for a *single* layer pair.
//!
//! When each GPU holds one expert per layer (capacity 1), choosing layer
//! `j+1`'s placement given layer `j`'s is exactly an assignment problem:
//! assign each expert to a GPU so the expected cross-GPU mass is minimal.
//! With capacity `C` the same holds after expanding each GPU into `C`
//! identical slots. The greedy chain solver ([`crate::greedy`]) applies
//! this gap by gap.

/// Solve min-cost assignment on an `n x n` cost matrix (row-major).
/// Returns `assignment[row] = col`. O(n³), the classic potentials/augmenting
/// path formulation.
pub fn solve_assignment(cost: &[f64], n: usize) -> Vec<usize> {
    assert_eq!(cost.len(), n * n, "cost matrix must be n*n");
    assert!(n >= 1);
    const INF: f64 = f64::INFINITY;

    // 1-indexed potentials over rows (u) and columns (v).
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; n + 1];
    // p[col] = row matched to col (0 = unmatched); p[0] is the working row.
    let mut p = vec![0usize; n + 1];
    let mut way = vec![0usize; n + 1];

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![INF; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = INF;
            let mut j1 = 0usize;
            for j in 1..=n {
                if used[j] {
                    continue;
                }
                let cur = cost[(i0 - 1) * n + (j - 1)] - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        // Augment along the alternating path.
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut assignment = vec![usize::MAX; n];
    for j in 1..=n {
        if p[j] != 0 {
            assignment[p[j] - 1] = j - 1;
        }
    }
    debug_assert!(assignment.iter().all(|&c| c != usize::MAX));
    assignment
}

/// Total cost of an assignment under a cost matrix.
pub fn assignment_cost(cost: &[f64], n: usize, assignment: &[usize]) -> f64 {
    assignment
        .iter()
        .enumerate()
        .map(|(r, &c)| cost[r * n + c])
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn brute_force(cost: &[f64], n: usize) -> f64 {
        // Enumerate all permutations (n <= 7 in tests).
        fn perms(n: usize) -> Vec<Vec<usize>> {
            if n == 1 {
                return vec![vec![0]];
            }
            let mut out = Vec::new();
            for p in perms(n - 1) {
                for pos in 0..n {
                    let mut q: Vec<usize> = p.iter().map(|&x| x + usize::from(x >= pos)).collect();
                    q.insert(0, pos);
                    // rotate: we built "pos first" variants of sub-perm
                    out.push(q);
                }
            }
            out
        }
        perms(n)
            .into_iter()
            .map(|p| assignment_cost(cost, n, &p))
            .fold(f64::INFINITY, f64::min)
    }

    #[test]
    fn one_by_one() {
        assert_eq!(solve_assignment(&[42.0], 1), vec![0]);
    }

    #[test]
    fn picks_off_diagonal_when_cheaper() {
        // Diagonal is expensive.
        let cost = vec![10.0, 1.0, 1.0, 10.0];
        let a = solve_assignment(&cost, 2);
        assert_eq!(a, vec![1, 0]);
        assert_eq!(assignment_cost(&cost, 2, &a), 2.0);
    }

    #[test]
    fn known_3x3() {
        // Classic example: optimal cost 5 (0->1, 1->0, 2->2 or similar).
        let cost = vec![
            4.0, 1.0, 3.0, //
            2.0, 0.0, 5.0, //
            3.0, 2.0, 2.0,
        ];
        let a = solve_assignment(&cost, 3);
        assert_eq!(assignment_cost(&cost, 3, &a), 5.0);
    }

    #[test]
    fn assignment_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 12;
        let cost: Vec<f64> = (0..n * n).map(|_| rng.gen_range(0.0..10.0)).collect();
        let a = solve_assignment(&cost, n);
        let mut seen = vec![false; n];
        for &c in &a {
            assert!(!seen[c], "column assigned twice");
            seen[c] = true;
        }
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(7);
        for trial in 0..20 {
            let n = rng.gen_range(2..=6);
            let cost: Vec<f64> = (0..n * n).map(|_| rng.gen_range(0.0..5.0)).collect();
            let a = solve_assignment(&cost, n);
            let got = assignment_cost(&cost, n, &a);
            let best = brute_force(&cost, n);
            assert!(
                (got - best).abs() < 1e-9,
                "trial {trial} n={n}: hungarian {got} vs brute {best}"
            );
        }
    }

    #[test]
    fn handles_negative_costs() {
        let cost = vec![-5.0, 0.0, 0.0, -5.0];
        let a = solve_assignment(&cost, 2);
        assert_eq!(assignment_cost(&cost, 2, &a), -10.0);
    }
}
