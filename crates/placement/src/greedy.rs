//! Greedy chain construction: place layer 0 arbitrarily, then choose each
//! subsequent layer's placement *optimally given the previous layer* via the
//! Hungarian algorithm on the slot-expanded assignment problem.
//!
//! This is the natural constructive reading of the paper's formulas 2–5
//! ("find the most affiliated experts at layer j+1 for the experts a GPU
//! holds at layer j") made globally consistent per layer pair — each gap is
//! solved to optimality, but the chain as a whole is still greedy (no
//! lookahead), which is why [`crate::local_search`] runs afterwards.

use crate::hungarian::solve_assignment;
use crate::objective::Objective;
use crate::placement::Placement;

/// Build a placement by greedy chain construction.
pub fn solve_greedy(objective: &Objective, n_units: usize) -> Placement {
    let e = objective.n_experts();
    let l = objective.n_layers();
    assert!(
        e.is_multiple_of(n_units),
        "experts must divide across units"
    );
    let cap = e / n_units;

    let mut assign: Vec<Vec<usize>> = Vec::with_capacity(l);
    // Layer 0: the absolute labeling is arbitrary (cost depends only on
    // consecutive pairs), so start contiguous.
    assign.push((0..e).map(|i| i / cap).collect());

    for gap in 0..l - 1 {
        let prev = &assign[gap];
        // gain[p][u]: affinity mass flowing from unit u's layer-`gap`
        // experts into expert p at layer `gap+1`, weighted by each source
        // expert's marginal share of tokens.
        let mut gain = vec![0.0f64; e * n_units];
        for (i, &u) in prev.iter().enumerate() {
            let w = objective.row_weight(gap, i);
            if w == 0.0 {
                continue;
            }
            // Row iteration is O(nnz) on the sparse backend and skips
            // zero cells on the dense one — either way the accumulated
            // gains are bit-identical to the full dense loop.
            objective.for_each_in_row(gap, i, |p, prob| {
                gain[p * n_units + u] += w * prob;
            });
        }
        // Slot expansion: slot s belongs to unit s / cap. Hungarian
        // minimizes, so negate the gain.
        let mut cost = vec![0.0f64; e * e];
        for p in 0..e {
            for s in 0..e {
                cost[p * e + s] = -gain[p * n_units + s / cap];
            }
        }
        let slots = solve_assignment(&cost, e);
        assign.push((0..e).map(|p| slots[p] / cap).collect());
    }

    Placement::new(assign, n_units)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shift_objective(e: usize, gaps: usize, shift: usize) -> Objective {
        let mut m = vec![0.0f64; e * e];
        for i in 0..e {
            m[i * e + (i + shift) % e] = 1.0;
        }
        Objective::from_raw(vec![m; gaps], e)
    }

    #[test]
    fn greedy_solves_shift_chains_perfectly() {
        // Deterministic shift routing is a permutation chain: a perfect
        // placement exists (follow the permutation), and each Hungarian gap
        // solve finds it.
        for shift in 1..4 {
            let obj = shift_objective(8, 5, shift);
            let p = solve_greedy(&obj, 4);
            assert!(
                obj.cross_mass(&p) < 1e-9,
                "shift {shift} not chained: cost {}",
                obj.cross_mass(&p)
            );
        }
    }

    #[test]
    fn greedy_beats_round_robin_on_structured_instances() {
        use exflow_affinity::{AffinityMatrix, RoutingTrace};
        use exflow_model::routing::AffinityModelSpec;
        use exflow_model::{CorpusSpec, TokenBatch};

        let model = AffinityModelSpec::new(8, 16).with_affinity(0.9).build();
        let batch = TokenBatch::sample(&model, &CorpusSpec::pile_proxy(4), 5000, 1, 17);
        let trace = RoutingTrace::from_batch(&batch, 16);
        let obj = Objective::from_affinities(&AffinityMatrix::consecutive(&trace));

        let rr = Placement::round_robin(8, 16, 4);
        let greedy = solve_greedy(&obj, 4);
        assert!(
            obj.cross_mass(&greedy) < obj.cross_mass(&rr) * 0.8,
            "greedy {} vs round-robin {}",
            obj.cross_mass(&greedy),
            obj.cross_mass(&rr)
        );
    }

    #[test]
    fn greedy_output_is_balanced() {
        let obj = shift_objective(12, 3, 1);
        let p = solve_greedy(&obj, 3);
        for layer in 0..4 {
            for unit in 0..3 {
                assert_eq!(p.experts_on(layer, unit).len(), 4);
            }
        }
    }

    #[test]
    fn capacity_one_works() {
        let obj = shift_objective(4, 2, 1);
        let p = solve_greedy(&obj, 4);
        assert!(obj.cross_mass(&p) < 1e-9);
        assert_eq!(p.capacity(), 1);
    }
}
