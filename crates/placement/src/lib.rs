//! # exflow-placement
//!
//! Affinity-aware expert placement — the optimization half of ExFlow
//! (IPDPS 2024, §IV-B/C/D).
//!
//! Given the inter-layer affinity matrices estimated by `exflow-affinity`,
//! this crate decides which GPU holds which expert at every layer so that a
//! token's most likely next expert is, with maximum probability, already on
//! the token's current GPU (and failing that, on its current node).
//!
//! The paper formulates this as an integer linear program (formulas 8–12):
//! minimize the number of cross-unit token transitions subject to exact
//! load balance (each unit holds `E/P` experts per layer) and exclusive
//! ownership. The same formulation is applied twice — first with units =
//! nodes, then within each node with units = GPUs ("staged expert
//! affinity"). Since no external ILP solver is available offline, this crate
//! implements the model plus a family of solvers:
//!
//! * [`exact`] — exact dynamic programming over balanced partitions
//!   (small instances; the oracle the heuristics are validated against);
//! * [`hungarian`] — optimal per-layer-pair assignment (Kuhn–Munkres),
//!   used by the greedy chain construction;
//! * [`greedy`] — layer-by-layer chain construction;
//! * [`local_search`] — pairwise-swap hill climbing with delta evaluation;
//! * [`annealing`] — simulated annealing for rugged instances;
//! * [`portfolio`] — race several solvers on worker threads, keep the best;
//! * [`staged`] — the paper's two-stage node→GPU pipeline;
//! * [`online`] — warm-started and byte-budgeted incremental re-placement
//!   from an incumbent, plus the [`MigrationPlan`] pricing expert moves
//!   against `exflow-topology`'s α–β link costs (the online serving mode).
//!
//! All stochastic solvers take an optional [`parallel::Parallelism`]
//! width (the `*_with` entry points): restarts, annealing starts,
//! portfolio members, and staged per-node sub-solves fan across worker
//! threads, with per-task `split_seed`-derived RNG streams and ordered
//! reductions keeping results bit-identical at any thread count.
//!
//! [`objective::Objective`] scores placements (expected cross-unit
//! transition mass) and [`objective::measure_trace_locality`] measures the
//! realized locality of a placement on a concrete routing trace (the bars
//! of the paper's Figs. 7–8). The objective stores each layer gap behind
//! [`objective::GapStorage`] — dense `E x E` or CSR with a transposed
//! companion index — selected by density ([`objective::GapBackend`]);
//! evaluations are bit-identical across backends, so large-expert
//! instances (`E = 256/512`, where top-k routing leaves the matrices
//! overwhelmingly sparse) solve in `O(nnz)` instead of `O(E^2)` without
//! changing any result.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod annealing;
pub mod exact;
pub mod greedy;
pub mod hungarian;
pub mod incremental;
pub mod io;
pub mod local_search;
pub mod objective;
pub mod online;
pub mod parallel;
pub mod placement;
pub mod portfolio;
pub mod replication;
pub mod solver;
pub mod staged;

pub use annealing::AnnealParams;
pub use incremental::{
    improve_metered, solve_budgeted_metered, solve_budgeted_replicated_metered,
    solve_budgeted_toward_metered, CostMeter, ReplanCost, SwapGainCache,
};
pub use objective::{GapBackend, GapStorage, Objective, SPARSE_DENSITY_THRESHOLD};
pub use online::{
    solve_budgeted, solve_budgeted_replicated, solve_budgeted_toward, solve_warm_start, ExpertMove,
    MigrationPlan, PricedMigration, ReplicaAdd,
};
pub use parallel::{split_seed, Parallelism};
pub use placement::Placement;
pub use replication::{
    replica_gains, replica_gains_by_unit, replicated_cross_mass, LayerReplicas, ReplicaPolicy,
    ReplicationBudget, ReplicationPlan,
};
pub use solver::{solve, solve_with, SolverKind};
pub use staged::{solve_staged_with, StagedPlacement};
