//! Portfolio solving: race several member solvers on worker threads and
//! keep the best placement any of them finds.
//!
//! The members of a placement-solver portfolio have sharply different
//! cost/quality profiles (greedy is instant, local search scales with
//! restarts, annealing with its schedule), and which one wins depends on
//! the instance — exactly the situation where racing a portfolio beats
//! committing to one algorithm. Members run concurrently (each member is
//! one task on the pool), every member draws a [`split_seed`]-derived RNG
//! stream, and the winner is selected by final cross mass with an
//! earliest-member tie-break — so the returned placement is bit-identical
//! for every thread count.
//!
//! Determinism constrains what "budget" can mean: selecting by a
//! wall-clock cutoff would make the answer depend on machine load, so
//! `budget_ms` instead *sizes the default roster deterministically*
//! (restart and start counts grow with the budget) and every member runs
//! to completion. An explicitly provided roster is raced as given.

use crate::objective::Objective;
use crate::parallel::{argmin_by_cost, split_seed, Parallelism};
use crate::placement::Placement;
use crate::solver::{solve_with, SolverKind};
use crate::AnnealParams;

/// The default roster for a `budget_ms` effort level: greedy (instant
/// floor), multi-start local search, and multi-start annealing, with
/// effort growing deterministically with the budget.
pub fn default_roster(budget_ms: u64) -> Vec<SolverKind> {
    let restarts = (budget_ms / 8).clamp(1, 32) as usize;
    let starts = (budget_ms / 64).clamp(1, 8) as usize;
    vec![
        SolverKind::Greedy,
        SolverKind::LocalSearch { restarts },
        SolverKind::Annealing(AnnealParams::default().with_starts(starts)),
    ]
}

/// Race `kinds` (or, when empty, the [`default_roster`] for `budget_ms`)
/// and return the best placement found. Member `i` runs sequentially on
/// stream `split_seed(seed, i)`; the members themselves are the parallel
/// grain, fanned across `par.threads` workers.
///
/// ```
/// use exflow_placement::{solve, Objective, Placement, SolverKind};
///
/// // Shift affinity: expert i at layer j routes to expert i+1 at j+1.
/// let mut gap = vec![0.0; 36];
/// for i in 0..6 { gap[i * 6 + (i + 1) % 6] = 1.0; }
/// let objective = Objective::from_raw(vec![gap; 2], 6);
///
/// // Race the budget-sized default roster; the best member wins.
/// let best = solve(&objective, 2, SolverKind::portfolio(50), 7);
/// let round_robin = Placement::round_robin(3, 6, 2);
/// assert!(objective.cross_mass(&best) < objective.cross_mass(&round_robin));
/// ```
pub fn solve_portfolio(
    objective: &Objective,
    n_units: usize,
    kinds: &[SolverKind],
    budget_ms: u64,
    seed: u64,
    par: Parallelism,
) -> Placement {
    let members: Vec<SolverKind> = if kinds.is_empty() {
        default_roster(budget_ms)
    } else {
        kinds.to_vec()
    };
    let results = par.map_indexed(members.len(), |i| {
        let placement = solve_with(
            objective,
            n_units,
            &members[i],
            split_seed(seed, i as u64),
            Parallelism::single(),
        );
        (objective.cross_mass(&placement), placement)
    });
    argmin_by_cost(results).expect("the roster is never empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::solve;

    fn objective() -> Objective {
        let e = 12;
        let mut m = vec![0.0f64; e * e];
        for i in 0..e {
            m[i * e + (i + 5) % e] = 0.7;
            for p in 0..e {
                m[i * e + p] += 0.3 / e as f64;
            }
        }
        Objective::from_raw(vec![m; 5], e)
    }

    #[test]
    fn portfolio_at_least_matches_every_member() {
        let obj = objective();
        let kinds = default_roster(100);
        let best = solve_portfolio(&obj, 4, &kinds, 100, 3, Parallelism::single());
        let best_cost = obj.cross_mass(&best);
        for (i, kind) in kinds.iter().enumerate() {
            let member = solve_with(
                &obj,
                4,
                kind,
                split_seed(3, i as u64),
                Parallelism::single(),
            );
            assert!(
                best_cost <= obj.cross_mass(&member) + 1e-12,
                "portfolio {best_cost} worse than member {kind:?}"
            );
        }
    }

    #[test]
    fn portfolio_is_thread_count_invariant() {
        let obj = objective();
        let kind = SolverKind::portfolio(50);
        let seq = solve(&obj, 4, kind.clone(), 17);
        for threads in [2, 3, 8] {
            let par = solve_with(&obj, 4, &kind, 17, Parallelism::new(threads));
            assert_eq!(par, seq, "{threads} threads diverged");
        }
    }

    #[test]
    fn empty_roster_falls_back_to_budget_default() {
        let obj = objective();
        let p = solve_portfolio(&obj, 4, &[], 0, 5, Parallelism::new(2));
        assert_eq!(p.n_units(), 4);
        // Budget scaling is monotone and clamped.
        assert_eq!(default_roster(0).len(), 3);
        let small = default_roster(8);
        let large = default_roster(10_000);
        let restarts_of = |kinds: &[SolverKind]| match kinds[1] {
            SolverKind::LocalSearch { restarts } => restarts,
            _ => unreachable!(),
        };
        assert!(restarts_of(&small) < restarts_of(&large));
        assert_eq!(restarts_of(&large), 32);
    }

    #[test]
    fn explicit_roster_is_respected() {
        let obj = objective();
        // A roster of only RoundRobin must return round-robin, proving
        // explicit members are raced as given (no hidden default roster).
        let p = solve_portfolio(
            &obj,
            4,
            &[SolverKind::RoundRobin],
            1000,
            0,
            Parallelism::new(2),
        );
        assert_eq!(
            p,
            Placement::round_robin(obj.n_layers(), obj.n_experts(), 4)
        );
    }
}
