//! Pairwise-swap hill climbing with O(E) delta evaluation — the workhorse
//! heuristic for the paper's ILP at the sizes where exact DP is infeasible
//! (E up to 64, L up to 40).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::greedy::solve_greedy;
use crate::objective::Objective;
use crate::parallel::{argmin_by_cost, split_seed, Parallelism};
use crate::placement::Placement;

/// Improve `placement` in place by first-improvement swap passes until a
/// local optimum or `max_passes`. Returns the final cross mass.
pub fn improve(objective: &Objective, placement: &mut Placement, max_passes: usize) -> f64 {
    let e = objective.n_experts();
    let l = objective.n_layers();
    for _ in 0..max_passes {
        let mut improved = false;
        for layer in 0..l {
            for e1 in 0..e {
                for e2 in (e1 + 1)..e {
                    let delta = objective.swap_delta(placement, layer, e1, e2);
                    if delta < -1e-12 {
                        placement.swap(layer, e1, e2);
                        improved = true;
                    }
                }
            }
        }
        if !improved {
            break;
        }
    }
    objective.cross_mass(placement)
}

/// A random balanced placement (restart seed for multi-start search).
pub fn random_placement<R: Rng>(
    n_layers: usize,
    n_experts: usize,
    n_units: usize,
    rng: &mut R,
) -> Placement {
    let cap = n_experts / n_units;
    let assign = (0..n_layers)
        .map(|_| {
            let mut experts: Vec<usize> = (0..n_experts).collect();
            for i in (1..experts.len()).rev() {
                let j = rng.gen_range(0..=i);
                experts.swap(i, j);
            }
            let mut row = vec![0usize; n_experts];
            for (pos, &expert) in experts.iter().enumerate() {
                row[expert] = pos / cap;
            }
            row
        })
        .collect();
    Placement::new(assign, n_units)
}

/// Multi-start local search: the greedy chain plus `restarts` random
/// starts, each polished by swap passes; returns the best placement found.
/// Sequential convenience wrapper around [`solve_local_search_with`].
pub fn solve_local_search(
    objective: &Objective,
    n_units: usize,
    restarts: usize,
    seed: u64,
) -> Placement {
    solve_local_search_with(objective, n_units, restarts, seed, Parallelism::single())
}

/// Multi-start local search with explicit parallelism. Every start —
/// task 0 is the greedy chain, tasks `1..=restarts` are random restarts —
/// draws from its own [`split_seed`]-derived RNG stream and is polished
/// independently, so the result is bit-identical for every thread count;
/// the best (cost, then earliest task) placement wins.
pub fn solve_local_search_with(
    objective: &Objective,
    n_units: usize,
    restarts: usize,
    seed: u64,
    par: Parallelism,
) -> Placement {
    let results = par.map_indexed(restarts + 1, |task| {
        let mut cand = if task == 0 {
            solve_greedy(objective, n_units)
        } else {
            let mut rng = StdRng::seed_from_u64(split_seed(seed, task as u64));
            random_placement(
                objective.n_layers(),
                objective.n_experts(),
                n_units,
                &mut rng,
            )
        };
        let cost = improve(objective, &mut cand, 50);
        (cost, cand)
    });
    argmin_by_cost(results).expect("the greedy task always produces a placement")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_shift_objective(e: usize, gaps: usize, kappa: f64) -> Objective {
        // shift structure mixed with uniform: harder than pure permutation.
        let u = 1.0 / e as f64;
        let mut m = vec![0.0f64; e * e];
        for i in 0..e {
            for p in 0..e {
                let s = f64::from(p == (i + 1) % e);
                m[i * e + p] = kappa * s + (1.0 - kappa) * u;
            }
        }
        Objective::from_raw(vec![m; gaps], e)
    }

    #[test]
    fn improve_never_worsens() {
        let obj = noisy_shift_objective(8, 4, 0.7);
        let mut p = Placement::round_robin(5, 8, 4);
        let before = obj.cross_mass(&p);
        let after = improve(&obj, &mut p, 10);
        assert!(after <= before + 1e-12);
    }

    #[test]
    fn local_search_reaches_swap_optimality() {
        let obj = noisy_shift_objective(8, 3, 0.8);
        let mut p = Placement::round_robin(4, 8, 2);
        improve(&obj, &mut p, 100);
        // No single swap can improve further.
        for layer in 0..4 {
            for e1 in 0..8 {
                for e2 in e1 + 1..8 {
                    assert!(obj.swap_delta(&p, layer, e1, e2) >= -1e-12);
                }
            }
        }
    }

    #[test]
    fn random_placement_is_balanced_and_seeded() {
        let mut rng = StdRng::seed_from_u64(5);
        let p = random_placement(3, 12, 4, &mut rng);
        for layer in 0..3 {
            for unit in 0..4 {
                assert_eq!(p.experts_on(layer, unit).len(), 3);
            }
        }
        let mut rng2 = StdRng::seed_from_u64(5);
        assert_eq!(p, random_placement(3, 12, 4, &mut rng2));
    }

    #[test]
    fn solve_beats_round_robin_under_noise() {
        let obj = noisy_shift_objective(16, 6, 0.75);
        let rr = Placement::round_robin(7, 16, 4);
        let solved = solve_local_search(&obj, 4, 2, 0);
        assert!(obj.cross_mass(&solved) < obj.cross_mass(&rr));
    }

    #[test]
    fn parallel_restarts_match_sequential_bitwise() {
        let obj = noisy_shift_objective(12, 5, 0.7);
        let seq = solve_local_search_with(&obj, 4, 6, 9, Parallelism::single());
        for threads in [2, 3, 8] {
            let par = solve_local_search_with(&obj, 4, 6, 9, Parallelism::new(threads));
            assert_eq!(par, seq, "{threads} threads diverged");
            assert_eq!(
                obj.cross_mass(&par).to_bits(),
                obj.cross_mass(&seq).to_bits()
            );
        }
    }

    #[test]
    fn restarts_never_hurt() {
        let obj = noisy_shift_objective(8, 4, 0.6);
        let zero = solve_local_search(&obj, 4, 0, 1);
        let many = solve_local_search(&obj, 4, 4, 1);
        assert!(obj.cross_mass(&many) <= obj.cross_mass(&zero) + 1e-12);
    }
}
