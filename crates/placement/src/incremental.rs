//! Incremental re-plan machinery: a persistent [`SwapGainCache`] with
//! structural (CSR/CSC-keyed) invalidation, a deterministic
//! operation-count [`CostMeter`], and metered variants of the budgeted
//! online solvers.
//!
//! The budgeted solvers rescan every `(layer, e1, e2)` swap candidate on
//! every descent step, so a re-plan that executes `S` swaps costs
//! `(S + 1) * L * E^2 / 2` gain evaluations — the actual bottleneck at
//! `E = 512`, where the solver, not migration bytes, dominates re-plan
//! latency. A swap only perturbs the gains of candidates that *touch* it
//! structurally (the swapped experts, their successors one layer down,
//! their predecessors one layer up), so after the first full scan each
//! subsequent rescan re-evaluates `O(dirty)` candidates and answers the
//! rest from the cache.
//!
//! Everything here preserves the crate's bit-determinism contract:
//!
//! * a cache hit returns the exact `f64` a fresh [`Objective::swap_delta`]
//!   call would produce (invalidation is a structural superset of every
//!   value-changing dependency), so cached and uncached runs pick the
//!   same swaps;
//! * the scan budget counts *considered* candidates — cache hits and
//!   misses cost the same — so budgeted truncation points are identical
//!   with and without a cache;
//! * nothing here consults the clock. Wall time is reported by the bench
//!   harness, never branched on.

use crate::greedy::solve_greedy;
use crate::objective::Objective;
use crate::online::{net_moves, pack_to_gpu_slots, sort_by_score};
use crate::placement::Placement;
use crate::replication::{
    replica_gains_by_unit, replicated_cross_mass, LayerReplicas, ReplicaPolicy, ReplicationBudget,
    ReplicationPlan,
};

/// Deterministic solver-cost accounting for one re-plan.
///
/// All counters are operation counts, not wall clock, so they are
/// bit-reproducible across machines and thread counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplanCost {
    /// Swap candidates the scan loops looked at — cache hits and misses
    /// alike. This is the quantity a scan budget truncates on, which is
    /// what keeps budgeted runs bit-identical whether or not a cache is
    /// attached.
    pub considered: u64,
    /// Candidates whose gain was recomputed via [`Objective::swap_delta`].
    pub evaluated: u64,
    /// Candidates answered from the [`SwapGainCache`].
    pub reused: u64,
    /// Whether the scan budget ran out before the walks converged.
    pub truncated: bool,
}

/// A deterministic operation-count meter for re-plan solver work.
///
/// `budget` caps [`ReplanCost::considered`]; when it is exhausted the
/// scan loops finish the decision already in flight from the scanned
/// prefix and then stop (the descent is truncated, never corrupted).
/// `u64::MAX` means unlimited.
#[derive(Debug, Clone)]
pub struct CostMeter {
    budget: u64,
    cost: ReplanCost,
}

impl CostMeter {
    /// A meter that truncates scans after `budget` considered candidates.
    pub fn new(budget: u64) -> Self {
        CostMeter {
            budget,
            cost: ReplanCost::default(),
        }
    }

    /// A meter that never truncates.
    pub fn unlimited() -> Self {
        CostMeter::new(u64::MAX)
    }

    /// Charge one considered candidate; `false` when the budget is spent
    /// (and the caller must stop scanning).
    fn try_consider(&mut self) -> bool {
        if self.cost.considered >= self.budget {
            self.cost.truncated = true;
            false
        } else {
            self.cost.considered += 1;
            true
        }
    }

    /// The accumulated cost so far.
    pub fn cost(&self) -> ReplanCost {
        self.cost
    }
}

/// A persistent per-`(layer, e1, e2)` swap-gain cache with structural
/// invalidation.
///
/// An entry is valid while neither endpoint's *dirty stamp* is newer than
/// the entry. Executing a swap of `(a, b)` at layer `l`
/// ([`SwapGainCache::note_swap`]) dirties exactly the experts whose unit
/// assignment feeds some candidate's gain:
///
/// * `a` and `b` at layer `l`;
/// * their structural successors at layer `l + 1` (the CSR rows `a`/`b`
///   of gap `l`) — candidates there read `a`/`b`'s units through the
///   incoming half of `swap_delta`;
/// * their structural predecessors at layer `l - 1` (the CSC columns
///   `a`/`b` of gap `l - 1`) — candidates there read the units through
///   the outgoing half.
///
/// Dense gaps use their nonzero cells as the structure; a zero cell
/// contributes an exactly-zero term to every gain on both sides of any
/// unit change, so skipping it never lets a stale value change a solver
/// decision.
///
/// Cached values are position-symmetric: `swap_delta(l, a, b)` and
/// `swap_delta(l, b, a)` are bit-identical (IEEE addition is commutative
/// and both orders visit indices ascending), so entries are stored on the
/// unordered pair.
///
/// The cache carries **no values across trajectories**: each metered walk
/// starts with [`SwapGainCache::invalidate_all`] because it descends its
/// own placement sequence (and each streaming window rewrites the
/// marginal weights wholesale). What persists is the allocation and the
/// within-walk reuse — which is where the `O(E^2)`-per-step cost was.
#[derive(Debug, Clone)]
pub struct SwapGainCache {
    n_layers: usize,
    n_experts: usize,
    /// Entries per layer: `E * (E - 1) / 2` unordered pairs.
    tri: usize,
    vals: Vec<f64>,
    /// Tick at which each entry was computed; 0 = never.
    stamp: Vec<u64>,
    /// Tick at which each `(layer, expert)` was last dirtied.
    dirty: Vec<u64>,
    tick: u64,
}

impl SwapGainCache {
    /// An empty cache for `n_layers x n_experts` instances.
    pub fn new(n_layers: usize, n_experts: usize) -> Self {
        assert!(n_layers >= 1 && n_experts >= 1);
        let tri = n_experts * (n_experts - 1) / 2;
        SwapGainCache {
            n_layers,
            n_experts,
            tri,
            vals: vec![0.0; n_layers * tri],
            stamp: vec![0; n_layers * tri],
            dirty: vec![1; n_layers * n_experts],
            tick: 1,
        }
    }

    /// An empty cache shaped for `objective`.
    pub fn for_objective(objective: &Objective) -> Self {
        SwapGainCache::new(objective.n_layers(), objective.n_experts())
    }

    /// Layers this cache is shaped for.
    pub fn n_layers(&self) -> usize {
        self.n_layers
    }

    /// Experts per layer this cache is shaped for.
    pub fn n_experts(&self) -> usize {
        self.n_experts
    }

    #[inline]
    fn slot(&self, layer: usize, e1: usize, e2: usize) -> usize {
        let (lo, hi) = if e1 < e2 { (e1, e2) } else { (e2, e1) };
        debug_assert!(lo < hi && hi < self.n_experts);
        layer * self.tri + lo * (2 * self.n_experts - lo - 1) / 2 + (hi - lo - 1)
    }

    /// The cached gain for swapping `e1`/`e2` at `layer`, if still valid.
    #[inline]
    pub fn get(&self, layer: usize, e1: usize, e2: usize) -> Option<f64> {
        let s = self.slot(layer, e1, e2);
        let t = self.stamp[s];
        let d = &self.dirty[layer * self.n_experts..(layer + 1) * self.n_experts];
        (t != 0 && t >= d[e1] && t >= d[e2]).then(|| self.vals[s])
    }

    /// Store a freshly computed gain.
    #[inline]
    pub fn put(&mut self, layer: usize, e1: usize, e2: usize, val: f64) {
        let s = self.slot(layer, e1, e2);
        self.vals[s] = val;
        self.stamp[s] = self.tick;
    }

    /// Drop every entry (start of a new walk trajectory, or a streaming
    /// window rewrote the objective's weights). `O(L * E)` — no entry
    /// storage is touched.
    pub fn invalidate_all(&mut self) {
        self.tick += 1;
        self.dirty.fill(self.tick);
    }

    #[inline]
    fn mark(&mut self, layer: usize, x: usize) {
        self.dirty[layer * self.n_experts + x] = self.tick;
    }

    /// Record that `a` and `b` swapped units at `layer`, dirtying exactly
    /// the experts whose unit feeds some cached gain (see the type docs).
    pub fn note_swap(&mut self, objective: &Objective, layer: usize, a: usize, b: usize) {
        debug_assert_eq!(objective.n_layers(), self.n_layers);
        debug_assert_eq!(objective.n_experts(), self.n_experts);
        self.tick += 1;
        self.mark(layer, a);
        self.mark(layer, b);
        if layer + 1 < self.n_layers {
            objective.for_each_in_row(layer, a, |p, _| self.mark(layer + 1, p));
            objective.for_each_in_row(layer, b, |p, _| self.mark(layer + 1, p));
        }
        if layer > 0 {
            objective.for_each_in_col(layer - 1, a, |i, _| self.mark(layer - 1, i));
            objective.for_each_in_col(layer - 1, b, |i, _| self.mark(layer - 1, i));
        }
    }
}

/// One gain lookup: cache hit, or recompute-and-fill. The value is
/// bit-identical either way; only the `evaluated`/`reused` split differs.
#[inline]
fn gain(
    objective: &Objective,
    placement: &Placement,
    layer: usize,
    e1: usize,
    e2: usize,
    meter: &mut CostMeter,
    cache: &mut Option<&mut SwapGainCache>,
) -> f64 {
    if let Some(c) = cache.as_deref_mut() {
        if let Some(v) = c.get(layer, e1, e2) {
            meter.cost.reused += 1;
            return v;
        }
        let v = objective.swap_delta(placement, layer, e1, e2);
        meter.cost.evaluated += 1;
        c.put(layer, e1, e2, v);
        v
    } else {
        meter.cost.evaluated += 1;
        objective.swap_delta(placement, layer, e1, e2)
    }
}

/// Metered, optionally cached first-improvement swap passes — the same
/// walk as [`crate::local_search::improve`], charged to `meter` and
/// truncated when the scan budget runs out (swaps already applied stay
/// applied). Returns the final cross mass.
pub fn improve_metered(
    objective: &Objective,
    placement: &mut Placement,
    max_passes: usize,
    meter: &mut CostMeter,
    mut cache: Option<&mut SwapGainCache>,
) -> f64 {
    if let Some(c) = cache.as_deref_mut() {
        c.invalidate_all();
    }
    let e = objective.n_experts();
    let l = objective.n_layers();
    'passes: for _ in 0..max_passes {
        let mut improved = false;
        for layer in 0..l {
            for e1 in 0..e {
                for e2 in (e1 + 1)..e {
                    if !meter.try_consider() {
                        break 'passes;
                    }
                    let delta = gain(objective, placement, layer, e1, e2, meter, &mut cache);
                    if delta < -1e-12 {
                        placement.swap(layer, e1, e2);
                        if let Some(c) = cache.as_deref_mut() {
                            c.note_swap(objective, layer, e1, e2);
                        }
                        improved = true;
                    }
                }
            }
        }
        if !improved {
            break;
        }
    }
    objective.cross_mass(placement)
}

/// Metered best-improvement descent (see `solve_budgeted_toward` docs for
/// the walk's semantics). With an unlimited meter this is the exact walk
/// the unmetered solver takes; a spent budget finishes the decision in
/// flight from the scanned prefix and stops.
fn budgeted_descent_metered(
    objective: &Objective,
    incumbent: &Placement,
    max_moves: u64,
    meter: &mut CostMeter,
    mut cache: Option<&mut SwapGainCache>,
) -> Placement {
    if let Some(c) = cache.as_deref_mut() {
        c.invalidate_all();
    }
    let e = objective.n_experts();
    let l = objective.n_layers();
    let mut placement = incumbent.clone();
    loop {
        let mut best: Option<(f64, usize, usize, usize)> = None;
        let mut exhausted = false;
        'scan: for layer in 0..l {
            for e1 in 0..e {
                for e2 in (e1 + 1)..e {
                    if !meter.try_consider() {
                        exhausted = true;
                        break 'scan;
                    }
                    let delta = gain(objective, &placement, layer, e1, e2, meter, &mut cache);
                    if delta < -1e-12 && best.is_none_or(|(b, _, _, _)| delta < b) {
                        best = Some((delta, layer, e1, e2));
                    }
                }
            }
        }
        let Some((_, layer, e1, e2)) = best else {
            break;
        };
        let mut next = placement.clone();
        next.swap(layer, e1, e2);
        if net_moves(incumbent, &next) > max_moves {
            break;
        }
        placement = next;
        if let Some(c) = cache.as_deref_mut() {
            c.note_swap(objective, layer, e1, e2);
        }
        if exhausted {
            break;
        }
    }
    placement
}

/// Metered toward-target walk (see `solve_budgeted_toward` docs). Same
/// truncation semantics as the descent.
fn budgeted_toward_metered(
    objective: &Objective,
    incumbent: &Placement,
    target: &Placement,
    max_moves: u64,
    meter: &mut CostMeter,
    mut cache: Option<&mut SwapGainCache>,
) -> Placement {
    if let Some(c) = cache.as_deref_mut() {
        c.invalidate_all();
    }
    let e = objective.n_experts();
    let l = objective.n_layers();
    let mut placement = incumbent.clone();
    let mut best = (objective.cross_mass(&placement), placement.clone());
    loop {
        let mut pick: Option<(f64, usize, usize, usize)> = None;
        let mut exhausted = false;
        'scan: for layer in 0..l {
            for e1 in 0..e {
                let want = target.unit_of(layer, e1);
                if placement.unit_of(layer, e1) == want {
                    continue;
                }
                for e2 in 0..e {
                    if e2 != e1
                        && placement.unit_of(layer, e2) == want
                        && target.unit_of(layer, e2) != want
                    {
                        if !meter.try_consider() {
                            exhausted = true;
                            break 'scan;
                        }
                        let delta = gain(objective, &placement, layer, e1, e2, meter, &mut cache);
                        if pick.is_none_or(|(b, _, _, _)| delta < b) {
                            pick = Some((delta, layer, e1, e2));
                        }
                    }
                }
            }
        }
        let Some((_, layer, e1, e2)) = pick else {
            break;
        };
        let mut next = placement.clone();
        next.swap(layer, e1, e2);
        if net_moves(incumbent, &next) > max_moves {
            break;
        }
        placement = next;
        if let Some(c) = cache.as_deref_mut() {
            c.note_swap(objective, layer, e1, e2);
        }
        let cost = objective.cross_mass(&placement);
        if cost < best.0 {
            best = (cost, placement.clone());
        }
        if exhausted {
            break;
        }
    }
    best.1
}

/// Metered [`crate::online::solve_budgeted_toward`]: descent and
/// toward-target race on the shared meter (descent scans first), cheaper
/// result wins, descent on ties.
pub fn solve_budgeted_toward_metered(
    objective: &Objective,
    incumbent: &Placement,
    target: &Placement,
    max_moves: u64,
    meter: &mut CostMeter,
    mut cache: Option<&mut SwapGainCache>,
) -> Placement {
    let descent =
        budgeted_descent_metered(objective, incumbent, max_moves, meter, cache.as_deref_mut());
    let toward = budgeted_toward_metered(objective, incumbent, target, max_moves, meter, cache);
    if objective.cross_mass(&toward) < objective.cross_mass(&descent) {
        toward
    } else {
        descent
    }
}

/// [`crate::online::solve_budgeted`] threading an explicit meter — the
/// composition the replication-aware entry point shares.
pub(crate) fn solve_budgeted_with_meter(
    objective: &Objective,
    incumbent: &Placement,
    max_moves: u64,
    meter: &mut CostMeter,
    mut cache: Option<&mut SwapGainCache>,
) -> Placement {
    let mut target = solve_greedy(objective, incumbent.n_units());
    improve_metered(objective, &mut target, 50, meter, cache.as_deref_mut());
    solve_budgeted_toward_metered(objective, incumbent, &target, max_moves, meter, cache)
}

/// Metered, optionally cached [`crate::online::solve_budgeted`].
///
/// With `scan_budget = u64::MAX` and any cache state the returned
/// placement is bit-identical to the unmetered solver; the
/// [`ReplanCost`] reports how many candidates were considered, how many
/// gains were actually recomputed, and how many were reused from the
/// cache. A finite budget truncates the walks deterministically — cache
/// hits and misses are charged alike, so the truncation point does not
/// depend on cache state.
pub fn solve_budgeted_metered(
    objective: &Objective,
    incumbent: &Placement,
    max_moves: u64,
    scan_budget: u64,
    cache: Option<&mut SwapGainCache>,
) -> (Placement, ReplanCost) {
    let mut meter = CostMeter::new(scan_budget);
    let placement = solve_budgeted_with_meter(objective, incumbent, max_moves, &mut meter, cache);
    (placement, meter.cost())
}

/// Remove the (possibly new) owner from every subset and drop entries
/// whose subset emptied — owner moves executed after subset selection may
/// land an owner on a unit that was picked as a replica target.
fn sanitize_subsets(replicas: &mut [LayerReplicas], base: &Placement) {
    for (layer, lr) in replicas.iter_mut().enumerate() {
        for (expert, units) in lr.iter_mut() {
            let owner = base.unit_of(layer, *expert);
            units.retain(|&u| u != owner);
        }
        lr.retain(|(_, units)| !units.is_empty());
    }
}

/// One replica-first candidate under `policy`: rank every positive-gain
/// `(layer, expert)` by absorbed incoming cross mass per byte shipped to
/// its policy-chosen target subset (entries the incumbent already holds
/// in full ship nothing and rank first), greedily accept under the
/// per-GPU slot cap and the migration byte budget, then spend the
/// leftover bytes on owner moves.
// Mirrors the solver-stage plumbing; a params struct would just rename
// the same eight inputs at every call site.
#[allow(clippy::too_many_arguments)]
fn replica_first_candidate(
    objective: &Objective,
    incumbent: &ReplicationPlan,
    gains: &[Vec<Vec<f64>>],
    policy: &ReplicaPolicy,
    bpe: u64,
    slots: u64,
    budget: &ReplicationBudget,
    meter: &mut CostMeter,
    cache: Option<&mut SwapGainCache>,
) -> ReplicationPlan {
    let n_layers = incumbent.base.n_layers();
    let n_units = incumbent.base.n_units();
    let e = objective.n_experts();
    // Dense side tables so the ranked triples stay cheap to sort.
    let mut subset_of: Vec<Vec<Vec<usize>>> = vec![vec![Vec::new(); e]; n_layers];
    let mut ship_bytes: Vec<Vec<u64>> = vec![vec![0; e]; n_layers];
    let mut ranked: Vec<(usize, usize, f64)> = Vec::new();
    for l in 0..n_layers {
        for x in 0..e {
            let owner = incumbent.base.unit_of(l, x);
            let units = policy.target_units(l, x, owner, n_units);
            if units.is_empty() {
                continue;
            }
            let gain: f64 = units.iter().map(|&u| gains[l][x][u]).sum();
            if gain <= 0.0 {
                continue;
            }
            let to_ship = units
                .iter()
                .filter(|&&u| !incumbent.available_on(l, x, u))
                .count() as u64;
            let ship = to_ship * bpe;
            // Fully-held subsets are free to keep and rank ahead of
            // anything that costs bytes.
            let score = if ship == 0 {
                f64::INFINITY
            } else {
                gain / ship as f64
            };
            subset_of[l][x] = units;
            ship_bytes[l][x] = ship;
            ranked.push((l, x, score));
        }
    }
    sort_by_score(&mut ranked);
    let mut migration_left = budget.migration_budget_bytes;
    let mut load = vec![0u64; n_units];
    let mut replicas: Vec<LayerReplicas> = vec![Vec::new(); n_layers];
    for &(l, x, _) in &ranked {
        let units = &subset_of[l][x];
        if units.iter().any(|&u| load[u] >= slots) {
            continue;
        }
        if ship_bytes[l][x] > migration_left {
            continue;
        }
        migration_left -= ship_bytes[l][x];
        for &u in units {
            load[u] += 1;
        }
        replicas[l].push((x, units.clone()));
    }
    for lr in &mut replicas {
        lr.sort_unstable_by_key(|r| r.0);
    }
    let base = solve_budgeted_with_meter(
        objective,
        &incumbent.base,
        migration_left / bpe,
        meter,
        cache,
    );
    sanitize_subsets(&mut replicas, &base);
    ReplicationPlan { base, replicas }
}

/// Metered, optionally cached
/// [`crate::online::solve_budgeted_replicated`]: the three-candidate race
/// (owner-moves-only, replica-first under `policy`, replica-first with
/// full fan-out), with every inner budgeted solve charged to one meter in
/// a fixed order (candidate A first, then B, then C). Replica-gain
/// ranking is `O(nnz)` bookkeeping and is not charged. The winner is the
/// lowest [`replicated_cross_mass`], earliest candidate on ties — so a
/// partial policy, whose candidate set strictly contains the full-fan-out
/// one, can never finish behind it at equal budgets.
pub fn solve_budgeted_replicated_metered(
    objective: &Objective,
    incumbent: &ReplicationPlan,
    bytes_per_expert: u64,
    budget: &ReplicationBudget,
    policy: &ReplicaPolicy,
    scan_budget: u64,
    mut cache: Option<&mut SwapGainCache>,
) -> (ReplicationPlan, ReplanCost) {
    let mut meter = CostMeter::new(scan_budget);
    let bpe = bytes_per_expert.max(1);
    // Per-GPU slot cap: how many extra expert copies any single GPU may hold.
    let slots = budget.replica_memory_bytes / bpe;
    let n_layers = incumbent.base.n_layers();
    let n_units = incumbent.base.n_units();
    let gains = replica_gains_by_unit(objective, &incumbent.base);

    // Candidate A: owner moves only, incumbent subsets carried over —
    // re-packed under the per-GPU slot cap by descending absorbed gain
    // (drops are free), then sanitized against the moved owners.
    let owner_moves = budget.migration_budget_bytes / bpe;
    let base_a = solve_budgeted_with_meter(
        objective,
        &incumbent.base,
        owner_moves,
        &mut meter,
        cache.as_deref_mut(),
    );
    let mut held: Vec<(usize, usize, f64)> = Vec::new();
    for (l, layer) in incumbent.replicas.iter().enumerate() {
        for (x, units) in layer {
            let gain: f64 = units.iter().map(|&u| gains[l][*x][u]).sum();
            held.push((l, *x, gain));
        }
    }
    sort_by_score(&mut held);
    let ranked: Vec<(usize, usize, Vec<usize>)> = held
        .iter()
        .map(|&(l, x, _)| (l, x, incumbent.replica_units(l, x).to_vec()))
        .collect();
    let mut replicas_a = pack_to_gpu_slots(&ranked, n_layers, n_units, slots);
    sanitize_subsets(&mut replicas_a, &base_a);
    let cand_a = ReplicationPlan {
        base: base_a,
        replicas: replicas_a,
    };

    // Candidate B: replica-first under the caller's policy.
    let cand_b = replica_first_candidate(
        objective,
        incumbent,
        &gains,
        policy,
        bpe,
        slots,
        budget,
        &mut meter,
        cache.as_deref_mut(),
    );

    // Candidate C: replica-first with full fan-out — kept in the race so
    // a subset policy degrades gracefully to the Lina-style baseline on
    // instances where only universal copies absorb enough mass.
    let cand_c = if matches!(policy, ReplicaPolicy::Everywhere) {
        None
    } else {
        Some(replica_first_candidate(
            objective,
            incumbent,
            &gains,
            &ReplicaPolicy::Everywhere,
            bpe,
            slots,
            budget,
            &mut meter,
            cache,
        ))
    };

    let mut winner = cand_a;
    let mut best = replicated_cross_mass(objective, &winner);
    for cand in [Some(cand_b), cand_c].into_iter().flatten() {
        let cost = replicated_cross_mass(objective, &cand);
        if cost < best {
            best = cost;
            winner = cand;
        }
    }
    (winner, meter.cost())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::GapBackend;
    use crate::online::{solve_budgeted, solve_budgeted_replicated, MigrationPlan};

    /// Shift affinity with a uniform leak (same instance family the
    /// online tests use).
    fn objective_with(e: usize, gaps: usize, kappa: f64, backend: GapBackend) -> Objective {
        let u = 1.0 / e as f64;
        let mut m = vec![0.0f64; e * e];
        for i in 0..e {
            for p in 0..e {
                let s = f64::from(p == (i + 3) % e);
                m[i * e + p] = kappa * s + (1.0 - kappa) * u;
            }
        }
        Objective::from_raw_with(vec![m; gaps], e, backend)
    }

    /// Sparse shift instance (pure permutation rows keep the gaps CSR).
    fn sparse_objective(e: usize, gaps: usize) -> Objective {
        let mut m = vec![0.0f64; e * e];
        for i in 0..e {
            m[i * e + (i + 3) % e] = 0.7;
            m[i * e + (i + 1) % e] = 0.3;
        }
        Objective::from_raw(vec![m; gaps], e)
    }

    #[test]
    fn cached_solve_is_bit_identical_to_uncached() {
        for obj in [
            objective_with(12, 4, 0.85, GapBackend::Dense),
            objective_with(12, 4, 0.85, GapBackend::Sparse),
            sparse_objective(16, 3),
        ] {
            let incumbent = Placement::round_robin(obj.n_layers(), obj.n_experts(), 4);
            for budget in [0u64, 4, 12, u64::MAX] {
                let plain = solve_budgeted(&obj, &incumbent, budget);
                let (uncached, cost_u) =
                    solve_budgeted_metered(&obj, &incumbent, budget, u64::MAX, None);
                let mut cache = SwapGainCache::for_objective(&obj);
                let (cached, cost_c) =
                    solve_budgeted_metered(&obj, &incumbent, budget, u64::MAX, Some(&mut cache));
                assert_eq!(plain, uncached, "budget {budget}: metered diverged");
                assert_eq!(plain, cached, "budget {budget}: cached diverged");
                assert_eq!(
                    obj.cross_mass(&cached).to_bits(),
                    obj.cross_mass(&plain).to_bits()
                );
                // Considered counts never depend on the cache; evaluated +
                // reused always partitions considered.
                assert_eq!(cost_u.considered, cost_c.considered);
                assert_eq!(cost_u.evaluated, cost_u.considered);
                assert_eq!(cost_u.reused, 0);
                assert_eq!(cost_c.evaluated + cost_c.reused, cost_c.considered);
                assert!(!cost_u.truncated && !cost_c.truncated);
            }
        }
    }

    #[test]
    fn cache_reuse_cuts_evaluations_substantially() {
        let obj = sparse_objective(32, 4);
        let incumbent = Placement::round_robin(obj.n_layers(), 32, 4);
        let (_, uncached) = solve_budgeted_metered(&obj, &incumbent, u64::MAX, u64::MAX, None);
        let mut cache = SwapGainCache::for_objective(&obj);
        let (_, cached) =
            solve_budgeted_metered(&obj, &incumbent, u64::MAX, u64::MAX, Some(&mut cache));
        assert!(cached.reused > 0, "no reuse at all");
        assert!(
            cached.evaluated * 2 < uncached.evaluated,
            "cache saved too little: {} vs {}",
            cached.evaluated,
            uncached.evaluated
        );
    }

    #[test]
    fn scan_budget_truncates_deterministically_and_cache_free() {
        let obj = objective_with(16, 4, 0.9, GapBackend::Dense);
        let incumbent = Placement::round_robin(5, 16, 4);
        let (full, _) = solve_budgeted_metered(&obj, &incumbent, u64::MAX, u64::MAX, None);
        // Zero scan budget: nothing is even considered, incumbent returned.
        let (none, cost0) = solve_budgeted_metered(&obj, &incumbent, u64::MAX, 0, None);
        assert_eq!(none, incumbent);
        assert!(cost0.truncated);
        assert_eq!(cost0.considered, 0);
        for scan in [1u64, 100, 2_000, 50_000] {
            let (a, ca) = solve_budgeted_metered(&obj, &incumbent, u64::MAX, scan, None);
            let mut cache = SwapGainCache::for_objective(&obj);
            let (b, cb) =
                solve_budgeted_metered(&obj, &incumbent, u64::MAX, scan, Some(&mut cache));
            assert_eq!(a, b, "scan {scan}: truncation point depends on cache");
            assert_eq!(ca.considered, cb.considered);
            assert_eq!(ca.truncated, cb.truncated);
            assert!(ca.considered <= scan);
            // A truncated walk still never worsens the incumbent.
            assert!(obj.cross_mass(&a) <= obj.cross_mass(&incumbent) + 1e-12);
        }
        // A generous budget reproduces the untruncated result.
        let (big, cost_big) = solve_budgeted_metered(&obj, &incumbent, u64::MAX, u64::MAX, None);
        assert_eq!(big, full);
        assert!(!cost_big.truncated);
    }

    #[test]
    fn replicated_metered_matches_unmetered_and_respects_budgets() {
        let obj = sparse_objective(16, 4);
        let l = obj.n_layers();
        let mut lists = vec![Vec::new(); l];
        lists[1] = vec![2, 9];
        let incumbent = ReplicationPlan::everywhere(Placement::round_robin(l, 16, 4), lists);
        let budget = ReplicationBudget {
            replica_memory_bytes: 40,
            migration_budget_bytes: 80,
        };
        for policy in [
            ReplicaPolicy::Everywhere,
            ReplicaPolicy::OnePerNode(exflow_topology::ClusterSpec::new(2, 2).unwrap()),
        ] {
            let plain = solve_budgeted_replicated(&obj, &incumbent, 10, &budget, &policy);
            let (uncached, _) = solve_budgeted_replicated_metered(
                &obj,
                &incumbent,
                10,
                &budget,
                &policy,
                u64::MAX,
                None,
            );
            let mut cache = SwapGainCache::for_objective(&obj);
            let (cached, cost) = solve_budgeted_replicated_metered(
                &obj,
                &incumbent,
                10,
                &budget,
                &policy,
                u64::MAX,
                Some(&mut cache),
            );
            assert_eq!(plain, uncached);
            assert_eq!(plain, cached);
            assert!(cost.reused > 0);
            let plan = MigrationPlan::between_replicated(&incumbent, &cached, 10);
            assert!(plan.total_bytes() <= budget.migration_budget_bytes);
        }
    }

    #[test]
    fn note_swap_invalidation_is_exact_on_both_backends() {
        // After any executed swap, every *valid* cache entry must still
        // equal a fresh recomputation — the core soundness property.
        for obj in [
            objective_with(10, 3, 0.8, GapBackend::Dense),
            objective_with(10, 3, 0.8, GapBackend::Sparse),
            sparse_objective(10, 3),
        ] {
            let e = obj.n_experts();
            let l = obj.n_layers();
            let mut placement = Placement::round_robin(l, e, 5);
            let mut cache = SwapGainCache::for_objective(&obj);
            cache.invalidate_all();
            // Fill the cache completely.
            for layer in 0..l {
                for e1 in 0..e {
                    for e2 in (e1 + 1)..e {
                        cache.put(layer, e1, e2, obj.swap_delta(&placement, layer, e1, e2));
                    }
                }
            }
            // Execute a few swaps, each time checking every still-valid
            // entry against a recomputation.
            for (layer, a, b) in [(1, 0, 5), (0, 2, 7), (2, 4, 9), (1, 1, 6)] {
                placement.swap(layer, a, b);
                cache.note_swap(&obj, layer, a, b);
                for layer in 0..l {
                    for e1 in 0..e {
                        for e2 in (e1 + 1)..e {
                            if let Some(v) = cache.get(layer, e1, e2) {
                                let fresh = obj.swap_delta(&placement, layer, e1, e2);
                                assert_eq!(
                                    v.to_bits(),
                                    fresh.to_bits(),
                                    "stale cache entry ({layer},{e1},{e2}) after swap"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn improve_metered_matches_plain_improve() {
        use crate::local_search::improve;
        let obj = objective_with(12, 4, 0.8, GapBackend::Dense);
        let seed = Placement::round_robin(5, 12, 4);
        let mut plain = seed.clone();
        let plain_cost = improve(&obj, &mut plain, 50);
        let mut metered = seed.clone();
        let mut meter = CostMeter::unlimited();
        let metered_cost = improve_metered(&obj, &mut metered, 50, &mut meter, None);
        assert_eq!(plain, metered);
        assert_eq!(plain_cost.to_bits(), metered_cost.to_bits());
        let mut cached = seed.clone();
        let mut meter2 = CostMeter::unlimited();
        let mut cache = SwapGainCache::for_objective(&obj);
        let cached_cost = improve_metered(&obj, &mut cached, 50, &mut meter2, Some(&mut cache));
        assert_eq!(plain, cached);
        assert_eq!(plain_cost.to_bits(), cached_cost.to_bits());
        assert!(meter2.cost().reused > 0);
    }
}
