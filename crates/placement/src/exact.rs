//! Exact solution of the placement ILP by dynamic programming over balanced
//! partitions — the oracle used to validate the heuristics.
//!
//! The objective (paper formula 8) decomposes over consecutive layer pairs,
//! so the optimum is a shortest path through layers where each layer's state
//! is a balanced assignment of experts to units. The labeled state count is
//! `E! / (C!)^P`, so this is only tractable for small instances; larger
//! instances must use the heuristics (which this module's tests certify).

use crate::objective::Objective;
use crate::placement::Placement;

/// Error returned when the instance is too large for exact DP.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TooLarge {
    /// Number of labeled states the instance would need.
    pub states: u64,
    /// The configured limit.
    pub limit: u64,
}

impl std::fmt::Display for TooLarge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "exact DP needs {} states, above the limit of {}",
            self.states, self.limit
        )
    }
}

impl std::error::Error for TooLarge {}

fn count_labeled_states(e: usize, units: usize) -> u64 {
    // E! / (C!)^P, computed carefully to avoid overflow for the small
    // instances we accept.
    let c = e / units;
    let mut num = 1f64;
    for i in 1..=e {
        num *= i as f64;
    }
    let mut den = 1f64;
    for _ in 0..units {
        for i in 1..=c {
            den *= i as f64;
        }
    }
    (num / den).round() as u64
}

/// Enumerate all balanced labeled assignments of `e` experts to `units`
/// units (each holding `e/units`).
fn enumerate_states(e: usize, units: usize) -> Vec<Vec<usize>> {
    let cap = e / units;
    let mut out = Vec::new();
    let mut row = vec![usize::MAX; e];
    let mut loads = vec![0usize; units];
    fn rec(
        idx: usize,
        e: usize,
        units: usize,
        cap: usize,
        row: &mut Vec<usize>,
        loads: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
    ) {
        if idx == e {
            out.push(row.clone());
            return;
        }
        for u in 0..units {
            if loads[u] < cap {
                row[idx] = u;
                loads[u] += 1;
                rec(idx + 1, e, units, cap, row, loads, out);
                loads[u] -= 1;
            }
        }
    }
    rec(0, e, units, cap, &mut row, &mut loads, &mut out);
    out
}

/// Gap cost between two layer states under one transition matrix.
fn gap_cost(objective: &Objective, gap: usize, from: &[usize], to: &[usize]) -> f64 {
    let mut cost = 0.0f64;
    for (i, &from_unit) in from.iter().enumerate() {
        let w = objective.row_weight(gap, i);
        if w == 0.0 {
            continue;
        }
        objective.for_each_in_row(gap, i, |p, prob| {
            if from_unit != to[p] {
                cost += w * prob;
            }
        });
    }
    cost
}

/// Solve the placement ILP exactly. Fails with [`TooLarge`] when the
/// labeled state space exceeds `state_limit` (a practical default is 1000).
pub fn solve_exact(
    objective: &Objective,
    n_units: usize,
    state_limit: u64,
) -> Result<(Placement, f64), TooLarge> {
    let e = objective.n_experts();
    assert!(e.is_multiple_of(n_units));
    let states_count = count_labeled_states(e, n_units);
    if states_count > state_limit {
        return Err(TooLarge {
            states: states_count,
            limit: state_limit,
        });
    }
    let states = enumerate_states(e, n_units);
    let s = states.len();
    let l = objective.n_layers();

    // Unit labels are globally permutable, so pin layer 0 to the first
    // canonical state: partition structure at layer 0 does not matter
    // because cost only counts *changes* between layers... except it does
    // matter (which experts share a unit at layer 0 shapes gap 0). So we
    // must search layer-0 states too, but can quotient out global label
    // permutations by only keeping layer-0 states whose first occurrence
    // order of unit labels is canonical (unit labels appear in increasing
    // order of first use).
    let canonical: Vec<usize> = (0..s)
        .filter(|&i| {
            let row = &states[i];
            let mut next = 0usize;
            for &u in row {
                if u > next {
                    return false;
                }
                if u == next {
                    next += 1;
                }
            }
            true
        })
        .collect();

    // DP forward.
    let mut cost: Vec<f64> = vec![f64::INFINITY; s];
    let mut parent: Vec<Vec<usize>> = vec![vec![0; s]; l];
    for &i in &canonical {
        cost[i] = 0.0;
    }
    for gap in 0..l - 1 {
        let mut next_cost = vec![f64::INFINITY; s];
        for cur in 0..s {
            if !cost[cur].is_finite() {
                continue;
            }
            for (nxt, state) in states.iter().enumerate() {
                let c = cost[cur] + gap_cost(objective, gap, &states[cur], state);
                if c < next_cost[nxt] {
                    next_cost[nxt] = c;
                    parent[gap + 1][nxt] = cur;
                }
            }
        }
        cost = next_cost;
    }

    // Best terminal state, then backtrack.
    let (mut best_state, mut best_cost) = (0usize, f64::INFINITY);
    for (i, &c) in cost.iter().enumerate() {
        if c < best_cost {
            best_cost = c;
            best_state = i;
        }
    }
    let mut chain = vec![0usize; l];
    chain[l - 1] = best_state;
    for layer in (1..l).rev() {
        chain[layer - 1] = parent[layer][chain[layer]];
    }
    let assign = chain.into_iter().map(|i| states[i].clone()).collect();
    Ok((Placement::new(assign, n_units), best_cost))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::solve_greedy;
    use crate::local_search::solve_local_search;

    fn shift_objective(e: usize, gaps: usize) -> Objective {
        let mut m = vec![0.0f64; e * e];
        for i in 0..e {
            m[i * e + (i + 1) % e] = 1.0;
        }
        Objective::from_raw(vec![m; gaps], e)
    }

    fn random_objective(e: usize, gaps: usize, seed: u64) -> Objective {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let gaps_vec = (0..gaps)
            .map(|_| {
                let mut m = vec![0.0f64; e * e];
                for i in 0..e {
                    let mut s = 0.0;
                    for p in 0..e {
                        let v = rng.gen_range(0.0..1.0f64).powi(3);
                        m[i * e + p] = v;
                        s += v;
                    }
                    for p in 0..e {
                        m[i * e + p] /= s;
                    }
                }
                m
            })
            .collect();
        Objective::from_raw(gaps_vec, e)
    }

    #[test]
    fn state_count_formula() {
        assert_eq!(count_labeled_states(4, 2), 6);
        assert_eq!(count_labeled_states(6, 3), 90);
        assert_eq!(count_labeled_states(6, 2), 20);
    }

    #[test]
    fn enumeration_matches_count() {
        for (e, u) in [(4, 2), (6, 2), (6, 3)] {
            assert_eq!(
                enumerate_states(e, u).len() as u64,
                count_labeled_states(e, u)
            );
        }
    }

    #[test]
    fn exact_finds_zero_cost_on_shift() {
        let obj = shift_objective(6, 4);
        let (p, cost) = solve_exact(&obj, 2, 1000).unwrap();
        assert!(cost < 1e-12);
        assert!(obj.cross_mass(&p) < 1e-12);
    }

    #[test]
    fn exact_rejects_large_instances() {
        let obj = shift_objective(16, 2);
        let err = solve_exact(&obj, 4, 1000).unwrap_err();
        assert!(err.states > 1000);
        assert!(err.to_string().contains("states"));
    }

    #[test]
    fn exact_cost_consistent_with_evaluation() {
        let obj = random_objective(6, 3, 1);
        let (p, cost) = solve_exact(&obj, 2, 1000).unwrap();
        assert!((obj.cross_mass(&p) - cost).abs() < 1e-9);
    }

    #[test]
    fn heuristics_close_to_exact_optimum() {
        // The certification test: on random small instances, greedy is
        // within 50% and local search within 10% of the true optimum.
        // (Greedy has no approximation guarantee on these instances; the
        // bound just catches gross regressions across RNG streams.)
        for seed in 0..5 {
            let obj = random_objective(6, 4, seed);
            let (_, opt) = solve_exact(&obj, 2, 1000).unwrap();
            let greedy_cost = obj.cross_mass(&solve_greedy(&obj, 2));
            let ls_cost = obj.cross_mass(&solve_local_search(&obj, 2, 4, seed));
            assert!(
                greedy_cost <= opt * 1.5 + 1e-9,
                "seed {seed}: greedy {greedy_cost} vs opt {opt}"
            );
            assert!(
                ls_cost <= opt * 1.10 + 1e-9,
                "seed {seed}: local search {ls_cost} vs opt {opt}"
            );
        }
    }

    #[test]
    fn exact_never_worse_than_heuristics() {
        for seed in 0..5 {
            let obj = random_objective(4, 3, seed + 100);
            let (_, opt) = solve_exact(&obj, 2, 1000).unwrap();
            let ls = obj.cross_mass(&solve_local_search(&obj, 2, 2, seed));
            assert!(opt <= ls + 1e-9, "seed {seed}: opt {opt} > heuristic {ls}");
        }
    }
}
