//! Incremental re-placement for the online serving mode: warm-started and
//! byte-budgeted solves from an incumbent placement, plus the
//! [`MigrationPlan`] that prices the resulting expert moves.
//!
//! Offline, ExFlow solves placements from scratch; online, a from-scratch
//! re-solve would discard the incumbent and migrate almost every expert.
//! Following the budgeted-re-optimization view of the interval-subset-sum
//! line of work (Diao et al., arXiv:1704.06928), re-placement is instead
//! treated as an *incremental* problem: start from the incumbent, apply
//! the highest-gain balanced swaps first, and stop when the migration
//! budget — bytes of expert weights moved between GPUs — is exhausted.
//! Every function here is sequential and deterministic, so online runs
//! stay bit-identical at any thread count by construction.
//!
//! Moves are priced against the cluster's α–β link costs
//! (`exflow-topology`): a migration is a bulk point-to-point exchange at
//! full link bandwidth, not a derated Alltoall.

use exflow_topology::collective_cost::{BytesByClass, CollectiveCostModel};
use exflow_topology::{ClusterSpec, CostModel, Rank};

use crate::greedy::solve_greedy;
use crate::local_search::improve;
use crate::objective::Objective;
use crate::placement::Placement;

/// Warm-start solve: polish the incumbent in place with first-improvement
/// swap passes (no restarts, no randomness). The cheap end of the
/// re-placement spectrum — returns a placement at least as good as the
/// incumbent, typically after moving only the experts the drift actually
/// affected.
pub fn solve_warm_start(
    objective: &Objective,
    incumbent: &Placement,
    max_passes: usize,
) -> Placement {
    let mut placement = incumbent.clone();
    improve(objective, &mut placement, max_passes);
    placement
}

/// Experts whose unit differs between two placements (the net migration
/// size of jumping from `a` to `b`).
fn net_moves(a: &Placement, b: &Placement) -> u64 {
    let mut n = 0u64;
    for layer in 0..a.n_layers() {
        for expert in 0..a.n_experts() {
            if a.unit_of(layer, expert) != b.unit_of(layer, expert) {
                n += 1;
            }
        }
    }
    n
}

/// Best-improvement swap descent from the incumbent: repeatedly apply the
/// most negative [`Objective::swap_delta`] (scanning `(layer, e1, e2)` in
/// ascending order with strict first-wins ties) while the *net* diff from
/// the incumbent stays within `max_moves`. The descent path does not
/// depend on the budget — a larger budget only walks further — so the
/// result improves monotonically with the budget.
fn budgeted_descent(objective: &Objective, incumbent: &Placement, max_moves: u64) -> Placement {
    let e = objective.n_experts();
    let l = objective.n_layers();
    let mut placement = incumbent.clone();
    loop {
        let mut best: Option<(f64, usize, usize, usize)> = None;
        for layer in 0..l {
            for e1 in 0..e {
                for e2 in (e1 + 1)..e {
                    let delta = objective.swap_delta(&placement, layer, e1, e2);
                    if delta < -1e-12 && best.is_none_or(|(b, _, _, _)| delta < b) {
                        best = Some((delta, layer, e1, e2));
                    }
                }
            }
        }
        let Some((_, layer, e1, e2)) = best else {
            break;
        };
        let mut next = placement.clone();
        next.swap(layer, e1, e2);
        if net_moves(incumbent, &next) > max_moves {
            break;
        }
        placement = next;
    }
    placement
}

/// Budgeted walk from the incumbent *toward* an unconstrained target:
/// repeatedly apply the lowest-delta swap that moves some mismatched
/// expert onto its target unit, stopping when aligned or when the next
/// step would exceed the budget, and return the lowest-cost placement
/// visited. The walk escapes the incumbent's basin (individual aligning
/// swaps may cost mass that later swaps win back), which pure descent
/// cannot do after the routing structure changes wholesale.
fn budgeted_toward(
    objective: &Objective,
    incumbent: &Placement,
    target: &Placement,
    max_moves: u64,
) -> Placement {
    let e = objective.n_experts();
    let l = objective.n_layers();
    let mut placement = incumbent.clone();
    let mut best = (objective.cross_mass(&placement), placement.clone());
    loop {
        // The lowest-delta swap that puts a mismatched expert where the
        // target wants it. The displaced partner must itself be
        // mismatched (one always exists on a wanted unit while any
        // mismatch remains — the target is balanced), so every swap
        // strictly shrinks the mismatch count and the walk terminates.
        let mut pick: Option<(f64, usize, usize, usize)> = None;
        for layer in 0..l {
            for e1 in 0..e {
                let want = target.unit_of(layer, e1);
                if placement.unit_of(layer, e1) == want {
                    continue;
                }
                for e2 in 0..e {
                    if e2 != e1
                        && placement.unit_of(layer, e2) == want
                        && target.unit_of(layer, e2) != want
                    {
                        let delta = objective.swap_delta(&placement, layer, e1, e2);
                        if pick.is_none_or(|(b, _, _, _)| delta < b) {
                            pick = Some((delta, layer, e1, e2));
                        }
                    }
                }
            }
        }
        let Some((_, layer, e1, e2)) = pick else {
            break;
        };
        let mut next = placement.clone();
        next.swap(layer, e1, e2);
        if net_moves(incumbent, &next) > max_moves {
            break;
        }
        placement = next;
        let cost = objective.cross_mass(&placement);
        if cost < best.0 {
            best = (cost, placement.clone());
        }
    }
    best.1
}

/// Budgeted incremental re-placement: starting from the incumbent, spend
/// at most `max_moves` *net* expert relocations (what a
/// [`MigrationPlan`] between incumbent and result would migrate) to
/// reduce the objective as much as possible.
///
/// The budget caps *migration traffic*, not solver compute, so the
/// target of the walk may be as good a solution as the caller can
/// afford to compute. This convenience entry point builds a
/// deterministic from-scratch target (greedy chain + swap polish, no
/// randomness) and delegates to [`solve_budgeted_toward`]; callers that
/// already hold a stronger solution — e.g. an oracle re-solve — should
/// pass it to [`solve_budgeted_toward`] directly.
pub fn solve_budgeted(objective: &Objective, incumbent: &Placement, max_moves: u64) -> Placement {
    let mut target = solve_greedy(objective, incumbent.n_units());
    improve(objective, &mut target, 50);
    solve_budgeted_toward(objective, incumbent, &target, max_moves)
}

/// Budgeted incremental re-placement toward an explicit unconstrained
/// target. Two deterministic strategies race:
///
/// * **descent** — best-improvement swaps from the incumbent (cheap
///   polish; ideal when drift only perturbed the structure);
/// * **toward-target** — walk the incumbent toward `target`
///   best-gain-first, keeping the cheapest placement visited within
///   budget (escapes the stale basin after a regime change).
///
/// The cheaper result wins (descent on ties). Both walks are
/// budget-independent paths that a larger budget merely extends, so the
/// returned cost improves monotonically with `max_moves`, and
/// `max_moves = 0` returns the incumbent unchanged.
pub fn solve_budgeted_toward(
    objective: &Objective,
    incumbent: &Placement,
    target: &Placement,
    max_moves: u64,
) -> Placement {
    let descent = budgeted_descent(objective, incumbent, max_moves);
    let toward = budgeted_toward(objective, incumbent, target, max_moves);
    if objective.cross_mass(&toward) < objective.cross_mass(&descent) {
        toward
    } else {
        descent
    }
}

/// One expert relocation: `expert` at `layer` moves from unit `from` to
/// unit `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpertMove {
    /// The MoE layer of the moving expert.
    pub layer: usize,
    /// The moving expert's id.
    pub expert: usize,
    /// Unit (GPU) that currently holds the weights.
    pub from: usize,
    /// Unit (GPU) that will hold them after the migration.
    pub to: usize,
}

/// The set of expert moves that turns one placement into another, with
/// the byte accounting and α–β pricing the online engine budgets against.
///
/// ```
/// use exflow_placement::online::{solve_budgeted, MigrationPlan};
/// use exflow_placement::{Objective, Placement};
/// use exflow_topology::{ClusterSpec, CostModel};
///
/// // Shift affinity (expert i routes to i+1) on 2 layers, 4 experts.
/// let mut gap = vec![0.0; 16];
/// for i in 0..4 { gap[i * 4 + (i + 1) % 4] = 1.0; }
/// let objective = Objective::from_raw(vec![gap], 4);
/// let incumbent = Placement::round_robin(2, 4, 2);
///
/// // Re-place under a budget of at most 2 expert moves (one swap).
/// let next = solve_budgeted(&objective, &incumbent, 2);
/// let plan = MigrationPlan::between(&incumbent, &next, 1 << 20);
/// assert!(plan.n_moves() <= 2);
/// assert!(plan.total_bytes() <= 2 << 20);
/// assert!(objective.cross_mass(&next) < objective.cross_mass(&incumbent));
///
/// // Moves are priced against the cluster's link costs.
/// let cluster = ClusterSpec::new(1, 2).unwrap();
/// let priced = plan.priced(&cluster, &CostModel::wilkes3());
/// assert_eq!(priced.bytes.total(), plan.total_bytes());
/// assert!(priced.time > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationPlan {
    /// Bytes of weights one expert move transfers.
    pub bytes_per_expert: u64,
    /// Every expert that changes units, in (layer, expert) order.
    pub moves: Vec<ExpertMove>,
}

impl MigrationPlan {
    /// Diff two placements of identical shape into the moves that turn
    /// `old` into `new`. `bytes_per_expert` is the wire size of one
    /// expert's weights (`2 * d_model * d_ff` parameters at 2 bytes each
    /// for the fp16 models the paper serves).
    pub fn between(old: &Placement, new: &Placement, bytes_per_expert: u64) -> Self {
        assert_eq!(old.n_layers(), new.n_layers(), "layer mismatch");
        assert_eq!(old.n_experts(), new.n_experts(), "expert mismatch");
        assert_eq!(old.n_units(), new.n_units(), "unit mismatch");
        let mut moves = Vec::new();
        for layer in 0..old.n_layers() {
            for expert in 0..old.n_experts() {
                let from = old.unit_of(layer, expert);
                let to = new.unit_of(layer, expert);
                if from != to {
                    moves.push(ExpertMove {
                        layer,
                        expert,
                        from,
                        to,
                    });
                }
            }
        }
        MigrationPlan {
            bytes_per_expert,
            moves,
        }
    }

    /// Number of expert relocations.
    pub fn n_moves(&self) -> usize {
        self.moves.len()
    }

    /// Whether no expert moves at all.
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty()
    }

    /// Total bytes of expert weights crossing GPUs.
    pub fn total_bytes(&self) -> u64 {
        self.moves.len() as u64 * self.bytes_per_expert
    }

    /// The `world x world` send matrix of this plan: entry `[src][dst]`
    /// holds the bytes `src` ships to `dst`.
    pub fn send_matrix(&self, world_size: usize) -> Vec<Vec<u64>> {
        let mut matrix = vec![vec![0u64; world_size]; world_size];
        for m in &self.moves {
            assert!(
                m.from < world_size && m.to < world_size,
                "move endpoints must be ranks of the cluster"
            );
            matrix[m.from][m.to] += self.bytes_per_expert;
        }
        matrix
    }

    /// Price the plan on a concrete cluster: per-link-class byte totals
    /// and the completion time of the full-bandwidth point-to-point
    /// exchange under the α–β cost model.
    pub fn priced(&self, cluster: &ClusterSpec, cost: &CostModel) -> PricedMigration {
        let model = CollectiveCostModel::new(*cluster, *cost);
        let matrix = self.send_matrix(cluster.world_size());
        let mut bytes = BytesByClass::default();
        for (src, row) in matrix.iter().enumerate() {
            for (dst, &b) in row.iter().enumerate() {
                if b > 0 {
                    bytes.add(cluster.link_class(Rank(src), Rank(dst)), b);
                }
            }
        }
        PricedMigration {
            time: model.exchange_time(&matrix),
            bytes,
        }
    }
}

/// A [`MigrationPlan`] priced on a concrete cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PricedMigration {
    /// Completion time of the exchange, seconds of virtual time.
    pub time: f64,
    /// Bytes moved, bucketed by link class.
    pub bytes: BytesByClass,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Shift affinity with a uniform leak: optimum differs from
    /// round-robin, so re-placement has work to do.
    fn objective(e: usize, gaps: usize, kappa: f64) -> Objective {
        let u = 1.0 / e as f64;
        let mut m = vec![0.0f64; e * e];
        for i in 0..e {
            for p in 0..e {
                let s = f64::from(p == (i + 3) % e);
                m[i * e + p] = kappa * s + (1.0 - kappa) * u;
            }
        }
        Objective::from_raw(vec![m; gaps], e)
    }

    #[test]
    fn zero_budget_returns_incumbent_unchanged() {
        let obj = objective(8, 3, 0.8);
        let incumbent = Placement::round_robin(4, 8, 4);
        for budget in [0u64, 1] {
            let p = solve_budgeted(&obj, &incumbent, budget);
            assert_eq!(p, incumbent, "budget {budget} must not move anything");
            assert!(MigrationPlan::between(&incumbent, &p, 1).is_empty());
        }
    }

    #[test]
    fn budget_caps_moves_exactly() {
        let obj = objective(16, 4, 0.9);
        let incumbent = Placement::round_robin(5, 16, 4);
        for budget in [2u64, 4, 8, 16] {
            let p = solve_budgeted(&obj, &incumbent, budget);
            let plan = MigrationPlan::between(&incumbent, &p, 1);
            assert!(
                plan.n_moves() as u64 <= budget,
                "budget {budget}: {} moves",
                plan.n_moves()
            );
        }
    }

    #[test]
    fn budgeted_cost_is_monotone_in_budget() {
        let obj = objective(16, 4, 0.9);
        let incumbent = Placement::round_robin(5, 16, 4);
        let mut last = obj.cross_mass(&incumbent);
        for budget in [0u64, 2, 6, 12, 24, 1000] {
            let cost = obj.cross_mass(&solve_budgeted(&obj, &incumbent, budget));
            assert!(
                cost <= last + 1e-12,
                "budget {budget}: cost {cost} worse than {last}"
            );
            last = cost;
        }
    }

    #[test]
    fn unbounded_budget_matches_from_scratch_quality() {
        let obj = objective(8, 3, 0.85);
        let incumbent = Placement::round_robin(4, 8, 2);
        let p = solve_budgeted(&obj, &incumbent, u64::MAX);
        // At least as good as the from-scratch greedy + polish target it
        // races against (the toward-walk visits the target itself), and
        // strictly better than the stale incumbent.
        let mut target = solve_greedy(&obj, 2);
        improve(&obj, &mut target, 50);
        let cost = obj.cross_mass(&p);
        assert!(cost <= obj.cross_mass(&target) + 1e-12);
        assert!(cost < obj.cross_mass(&incumbent));
    }

    #[test]
    fn warm_start_never_worsens_and_is_deterministic() {
        let obj = objective(12, 5, 0.8);
        let incumbent = Placement::round_robin(6, 12, 4);
        let a = solve_warm_start(&obj, &incumbent, 50);
        let b = solve_warm_start(&obj, &incumbent, 50);
        assert_eq!(a, b);
        assert!(obj.cross_mass(&a) <= obj.cross_mass(&incumbent) + 1e-12);
    }

    #[test]
    fn budgeted_beats_warm_start_budget_for_budget_or_ties() {
        // Best-improvement spends a tight budget on the steepest swaps;
        // with the same unlimited budget both reach swap-local optima.
        let obj = objective(16, 4, 0.9);
        let incumbent = Placement::round_robin(5, 16, 4);
        let budgeted = solve_budgeted(&obj, &incumbent, u64::MAX);
        let warm = solve_warm_start(&obj, &incumbent, usize::MAX);
        for p in [&budgeted, &warm] {
            assert!(obj.cross_mass(p) < obj.cross_mass(&incumbent));
        }
    }

    #[test]
    fn plan_between_lists_exactly_the_diff() {
        let old = Placement::round_robin(2, 4, 2);
        let mut new = old.clone();
        new.swap(1, 0, 2);
        let plan = MigrationPlan::between(&old, &new, 100);
        assert_eq!(plan.n_moves(), 2);
        assert_eq!(plan.total_bytes(), 200);
        assert_eq!(
            plan.moves,
            vec![
                ExpertMove {
                    layer: 1,
                    expert: 0,
                    from: 0,
                    to: 1
                },
                ExpertMove {
                    layer: 1,
                    expert: 2,
                    from: 1,
                    to: 0
                },
            ]
        );
        let matrix = plan.send_matrix(2);
        assert_eq!(matrix[0][1], 100);
        assert_eq!(matrix[1][0], 100);
    }

    #[test]
    fn pricing_charges_link_classes_correctly() {
        let cluster = ClusterSpec::new(2, 2).unwrap();
        let cost = CostModel::wilkes3();
        let old = Placement::round_robin(1, 8, 4);
        // Intra-node swap: experts 0 and 2 trade GPUs 0 and 1 (same node).
        let mut intra = old.clone();
        intra.swap(0, 0, 2);
        let p_intra = MigrationPlan::between(&old, &intra, 1 << 20).priced(&cluster, &cost);
        assert_eq!(p_intra.bytes.intra_node, 2 << 20);
        assert_eq!(p_intra.bytes.inter_node, 0);
        // Inter-node swap: experts 0 and 4 trade GPUs 0 and 2.
        let mut inter = old.clone();
        inter.swap(0, 0, 4);
        let p_inter = MigrationPlan::between(&old, &inter, 1 << 20).priced(&cluster, &cost);
        assert_eq!(p_inter.bytes.inter_node, 2 << 20);
        assert!(p_inter.time > p_intra.time, "inter-node moves cost more");
    }

    #[test]
    fn empty_plan_is_free() {
        let cluster = ClusterSpec::new(1, 4).unwrap();
        let p = Placement::round_robin(3, 8, 4);
        let plan = MigrationPlan::between(&p, &p, 1 << 20);
        assert!(plan.is_empty());
        let priced = plan.priced(&cluster, &CostModel::wilkes3());
        assert_eq!(priced.time, 0.0);
        assert_eq!(priced.bytes.total(), 0);
    }

    #[test]
    #[should_panic(expected = "unit mismatch")]
    fn mismatched_placements_rejected() {
        let a = Placement::round_robin(2, 8, 4);
        let b = Placement::round_robin(2, 8, 2);
        let _ = MigrationPlan::between(&a, &b, 1);
    }
}
