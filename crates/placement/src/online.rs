//! Incremental re-placement for the online serving mode: warm-started and
//! byte-budgeted solves from an incumbent placement, plus the
//! [`MigrationPlan`] that prices the resulting expert moves.
//!
//! Offline, ExFlow solves placements from scratch; online, a from-scratch
//! re-solve would discard the incumbent and migrate almost every expert.
//! Following the budgeted-re-optimization view of the interval-subset-sum
//! line of work (Diao et al., arXiv:1704.06928), re-placement is instead
//! treated as an *incremental* problem: start from the incumbent, apply
//! the highest-gain balanced swaps first, and stop when the migration
//! budget — bytes of expert weights moved between GPUs — is exhausted.
//! Every function here is sequential and deterministic, so online runs
//! stay bit-identical at any thread count by construction.
//!
//! Moves are priced against the cluster's α–β link costs
//! (`exflow-topology`): a migration is a bulk point-to-point exchange at
//! full link bandwidth, not a derated Alltoall.

use exflow_topology::collective_cost::{BytesByClass, CollectiveCostModel};
use exflow_topology::{ClusterSpec, CostModel, Rank};

use crate::incremental::{
    solve_budgeted_metered, solve_budgeted_replicated_metered, solve_budgeted_toward_metered,
    CostMeter,
};
use crate::local_search::improve;
use crate::objective::Objective;
use crate::placement::Placement;
use crate::replication::{LayerReplicas, ReplicaPolicy, ReplicationBudget, ReplicationPlan};

/// Warm-start solve: polish the incumbent in place with first-improvement
/// swap passes (no restarts, no randomness). The cheap end of the
/// re-placement spectrum — returns a placement at least as good as the
/// incumbent, typically after moving only the experts the drift actually
/// affected.
pub fn solve_warm_start(
    objective: &Objective,
    incumbent: &Placement,
    max_passes: usize,
) -> Placement {
    let mut placement = incumbent.clone();
    improve(objective, &mut placement, max_passes);
    placement
}

/// Experts whose unit differs between two placements (the net migration
/// size of jumping from `a` to `b`).
pub(crate) fn net_moves(a: &Placement, b: &Placement) -> u64 {
    let mut n = 0u64;
    for layer in 0..a.n_layers() {
        for expert in 0..a.n_experts() {
            if a.unit_of(layer, expert) != b.unit_of(layer, expert) {
                n += 1;
            }
        }
    }
    n
}

/// Budgeted incremental re-placement: starting from the incumbent, spend
/// at most `max_moves` *net* expert relocations (what a
/// [`MigrationPlan`] between incumbent and result would migrate) to
/// reduce the objective as much as possible.
///
/// The budget caps *migration traffic*, not solver compute, so the
/// target of the walk may be as good a solution as the caller can
/// afford to compute. This convenience entry point builds a
/// deterministic from-scratch target (greedy chain + swap polish, no
/// randomness) and delegates to [`solve_budgeted_toward`]; callers that
/// already hold a stronger solution — e.g. an oracle re-solve — should
/// pass it to [`solve_budgeted_toward`] directly.
pub fn solve_budgeted(objective: &Objective, incumbent: &Placement, max_moves: u64) -> Placement {
    solve_budgeted_metered(objective, incumbent, max_moves, u64::MAX, None).0
}

/// Budgeted incremental re-placement toward an explicit unconstrained
/// target. Two deterministic strategies race:
///
/// * **descent** — best-improvement swaps from the incumbent (cheap
///   polish; ideal when drift only perturbed the structure);
/// * **toward-target** — walk the incumbent toward `target`
///   best-gain-first, keeping the cheapest placement visited within
///   budget (escapes the stale basin after a regime change).
///
/// The cheaper result wins (descent on ties). Both walks are
/// budget-independent paths that a larger budget merely extends, so the
/// returned cost improves monotonically with `max_moves`, and
/// `max_moves = 0` returns the incumbent unchanged.
pub fn solve_budgeted_toward(
    objective: &Objective,
    incumbent: &Placement,
    target: &Placement,
    max_moves: u64,
) -> Placement {
    let mut meter = CostMeter::unlimited();
    solve_budgeted_toward_metered(objective, incumbent, target, max_moves, &mut meter, None)
}

/// Rank `(layer, expert, score)` replica candidates best-first under the
/// total order every selection site shares: score descending
/// (`f64::total_cmp`), then layer ascending, then expert ascending. The
/// score is absorbed-cross-mass-per-fan-out-byte for new adds and the raw
/// subset gain for budget trims; one comparator everywhere means the
/// solver's racing candidates can never rank replicas inconsistently.
pub(crate) fn sort_by_score(entries: &mut [(usize, usize, f64)]) {
    entries.sort_by(|a, b| b.2.total_cmp(&a.2).then(a.0.cmp(&b.0)).then(a.1.cmp(&b.1)));
}

/// Greedy per-GPU replica-slot packing: walk `ranked` best-first and keep
/// each `(layer, expert, units)` entry whose whole subset still fits —
/// every unit in `units` must have a free slot (fewer than `slots` copies
/// already packed onto it). Skipped entries do not block later, smaller
/// ones. Returns per-layer entries sorted by expert, upholding the
/// [`LayerReplicas`] invariant.
pub(crate) fn pack_to_gpu_slots(
    ranked: &[(usize, usize, Vec<usize>)],
    n_layers: usize,
    n_units: usize,
    slots: u64,
) -> Vec<LayerReplicas> {
    let mut load = vec![0u64; n_units];
    let mut out: Vec<LayerReplicas> = vec![Vec::new(); n_layers];
    for (layer, expert, units) in ranked {
        if units.is_empty() || units.iter().any(|&u| load[u] >= slots) {
            continue;
        }
        for &u in units {
            load[u] += 1;
        }
        out[*layer].push((*expert, units.clone()));
    }
    for lr in &mut out {
        lr.sort_unstable_by_key(|r| r.0);
    }
    out
}

/// Replication-aware budgeted re-plan: starting from an incumbent
/// [`ReplicationPlan`], spend a joint budget — replica memory per GPU plus
/// migration bytes — on whichever mix of **replica adds/drops** and
/// **owner moves** reduces the replication-aware objective
/// ([`crate::replicated_cross_mass`]) the most. Up to three deterministic
/// candidates race:
///
/// * **owner-moves-only** — the full migration budget goes to
///   [`solve_budgeted`] on the base placement; the incumbent's replica
///   entries are kept, re-packed into the per-GPU memory budget if it
///   shrank;
/// * **replica-first under `policy`** — `(expert, target-subset)`
///   candidates (the subset is what `policy` selects for the expert's
///   owner) are ranked by absorbed incoming cross mass *per fan-out byte*
///   ([`crate::replica_gains_by_unit`] summed over the subset, divided by
///   the bytes the add must ship), in the budgeted-subset-selection style
///   of the interval-subset-sum line of work (Diao et al.,
///   arXiv:1704.06928). Entries the incumbent already holds are free and
///   rank first; new ones are accepted best-density-first while every
///   subset unit has a free memory slot and the migration budget covers
///   the fan-out; whatever bytes remain fund owner-move descent.
/// * **replica-first everywhere** — the same construction under
///   [`ReplicaPolicy::Everywhere`], raced only when `policy` is not
///   already the full fan-out. This makes "partial replication never
///   loses to full replication at equal budgets" structural: the partial
///   solve's candidate set is a superset of the full solve's.
///
/// The candidate with the lower [`crate::replicated_cross_mass`] wins
/// (earlier candidate on ties, so owner-moves-only is the conservative
/// default that never spends memory without a measured win). Every
/// candidate respects both budget axes by construction: extra copies per
/// GPU never exceed `replica_memory_bytes / bytes_per_expert` and a
/// [`MigrationPlan::between_replicated`] diff against the incumbent never
/// exceeds `migration_budget_bytes`. Everything is sequential and
/// deterministic, so online runs stay bit-identical at any thread count.
pub fn solve_budgeted_replicated(
    objective: &Objective,
    incumbent: &ReplicationPlan,
    bytes_per_expert: u64,
    budget: &ReplicationBudget,
    policy: &ReplicaPolicy,
) -> ReplicationPlan {
    solve_budgeted_replicated_metered(
        objective,
        incumbent,
        bytes_per_expert,
        budget,
        policy,
        u64::MAX,
        None,
    )
    .0
}

/// One expert relocation: `expert` at `layer` moves from unit `from` to
/// unit `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpertMove {
    /// The MoE layer of the moving expert.
    pub layer: usize,
    /// The moving expert's id.
    pub expert: usize,
    /// Unit (GPU) that currently holds the weights.
    pub from: usize,
    /// Unit (GPU) that will hold them after the migration.
    pub to: usize,
}

/// One replica creation: `expert` at `layer` is copied from its owner
/// `from` to the units in `to` — the selected replica subset, minus any
/// unit that already held a copy. Under partial replication `to` is a
/// strict subset of the fleet (e.g. one GPU per non-owner node), so the
/// fan-out is priced per selected unit, not per world size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaAdd {
    /// The MoE layer of the replicated expert.
    pub layer: usize,
    /// The replicated expert's id.
    pub expert: usize,
    /// Unit (GPU) that owns the weights and sources the fan-out.
    pub from: usize,
    /// Units receiving a new copy (subset units that did not already hold
    /// one).
    pub to: Vec<usize>,
}

/// The set of expert moves that turns one placement into another, with
/// the byte accounting and α–β pricing the online engine budgets against.
///
/// ```
/// use exflow_placement::online::{solve_budgeted, MigrationPlan};
/// use exflow_placement::{Objective, Placement};
/// use exflow_topology::{ClusterSpec, CostModel};
///
/// // Shift affinity (expert i routes to i+1) on 2 layers, 4 experts.
/// let mut gap = vec![0.0; 16];
/// for i in 0..4 { gap[i * 4 + (i + 1) % 4] = 1.0; }
/// let objective = Objective::from_raw(vec![gap], 4);
/// let incumbent = Placement::round_robin(2, 4, 2);
///
/// // Re-place under a budget of at most 2 expert moves (one swap).
/// let next = solve_budgeted(&objective, &incumbent, 2);
/// let plan = MigrationPlan::between(&incumbent, &next, 1 << 20);
/// assert!(plan.n_moves() <= 2);
/// assert!(plan.total_bytes() <= 2 << 20);
/// assert!(objective.cross_mass(&next) < objective.cross_mass(&incumbent));
///
/// // Moves are priced against the cluster's link costs.
/// let cluster = ClusterSpec::new(1, 2).unwrap();
/// let priced = plan.priced(&cluster, &CostModel::wilkes3());
/// assert_eq!(priced.bytes.total(), plan.total_bytes());
/// assert!(priced.time > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationPlan {
    /// Bytes of weights one expert move transfers.
    pub bytes_per_expert: u64,
    /// Every expert that changes units *and* must ship weights, in
    /// (layer, expert) order.
    pub moves: Vec<ExpertMove>,
    /// Owner relocations whose destination already held a replica of the
    /// expert: the weights are already there, so these are bookkeeping —
    /// zero bytes, but still a placement change the plan must surface
    /// (an "empty" plan must mean *nothing* changed).
    pub free_moves: Vec<ExpertMove>,
    /// Every replica creation, in (layer, expert) order. Each fans the
    /// expert's weights out from its owner to the units of its selected
    /// subset that lack a copy.
    pub replica_adds: Vec<ReplicaAdd>,
    /// Every replica retirement, in (layer, expert) order. Dropping a
    /// replica frees memory but ships nothing.
    pub replica_drops: Vec<(usize, usize)>,
}

impl MigrationPlan {
    /// Diff two placements of identical shape into the moves that turn
    /// `old` into `new`. `bytes_per_expert` is the wire size of one
    /// expert's weights (`2 * d_model * d_ff` parameters at 2 bytes each
    /// for the fp16 models the paper serves).
    pub fn between(old: &Placement, new: &Placement, bytes_per_expert: u64) -> Self {
        assert_eq!(old.n_layers(), new.n_layers(), "layer mismatch");
        assert_eq!(old.n_experts(), new.n_experts(), "expert mismatch");
        assert_eq!(old.n_units(), new.n_units(), "unit mismatch");
        let mut moves = Vec::new();
        for layer in 0..old.n_layers() {
            for expert in 0..old.n_experts() {
                let from = old.unit_of(layer, expert);
                let to = new.unit_of(layer, expert);
                if from != to {
                    moves.push(ExpertMove {
                        layer,
                        expert,
                        from,
                        to,
                    });
                }
            }
        }
        MigrationPlan {
            bytes_per_expert,
            moves,
            free_moves: Vec::new(),
            replica_adds: Vec::new(),
            replica_drops: Vec::new(),
        }
    }

    /// Diff two [`ReplicationPlan`]s into the migration that turns `old`
    /// into `new`: owner moves, replica adds, and replica drops.
    ///
    /// Pricing consults where copies actually were (`old`'s
    /// [`ReplicationPlan::available_on`]), not a universal fan-out:
    ///
    /// * an owner move whose destination already held a copy of the
    ///   expert in `old` is **free** — the relocation is bookkeeping, not
    ///   traffic (such moves land in `free_moves`, never in the send
    ///   matrix);
    /// * a **replica add** ships the expert from its (new) owner to every
    ///   unit of the *selected subset* that did not already hold a copy —
    ///   `to.len()` payloads, not `n_units - 1`;
    /// * a **replica drop** (an expert leaving the replicated set) is
    ///   free. Subset shrinkage of an expert that stays replicated is
    ///   likewise free and ships nothing.
    pub fn between_replicated(
        old: &ReplicationPlan,
        new: &ReplicationPlan,
        bytes_per_expert: u64,
    ) -> Self {
        let mut plan = MigrationPlan::between(&old.base, &new.base, bytes_per_expert);
        let (free, priced) = std::mem::take(&mut plan.moves)
            .into_iter()
            .partition(|m: &ExpertMove| old.available_on(m.layer, m.expert, m.to));
        plan.free_moves = free;
        plan.moves = priced;
        for layer in 0..new.base.n_layers() {
            for (expert, units) in &new.replicas[layer] {
                let to: Vec<usize> = units
                    .iter()
                    .copied()
                    .filter(|&u| !old.available_on(layer, *expert, u))
                    .collect();
                if !to.is_empty() {
                    plan.replica_adds.push(ReplicaAdd {
                        layer,
                        expert: *expert,
                        from: new.base.unit_of(layer, *expert),
                        to,
                    });
                }
            }
            for (expert, _) in &old.replicas[layer] {
                if !new.is_replicated(layer, *expert) {
                    plan.replica_drops.push((layer, *expert));
                }
            }
        }
        plan
    }

    /// Number of *priced* expert relocations (free moves and replica
    /// adds/drops not included).
    pub fn n_moves(&self) -> usize {
        self.moves.len()
    }

    /// Number of owner relocations of any kind, priced or free.
    pub fn n_relocations(&self) -> usize {
        self.moves.len() + self.free_moves.len()
    }

    /// Number of replica creations.
    pub fn n_replica_adds(&self) -> usize {
        self.replica_adds.len()
    }

    /// Number of replica retirements.
    pub fn n_replica_drops(&self) -> usize {
        self.replica_drops.len()
    }

    /// Whether the plan changes nothing at all — no owner relocations
    /// (priced or free), no replica churn. Callers use this to decide
    /// whether a re-plan happened, so a zero-byte plan that still changes
    /// the placement must *not* be empty.
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty()
            && self.free_moves.is_empty()
            && self.replica_adds.is_empty()
            && self.replica_drops.is_empty()
    }

    /// Total bytes of expert weights crossing GPUs: one payload per owner
    /// move plus one payload per unit each replica add fans out to (drops
    /// are free).
    pub fn total_bytes(&self) -> u64 {
        let fan_out: u64 = self.replica_adds.iter().map(|a| a.to.len() as u64).sum();
        (self.moves.len() as u64 + fan_out) * self.bytes_per_expert
    }

    /// The `world x world` send matrix of this plan: entry `[src][dst]`
    /// holds the bytes `src` ships to `dst` (owner moves plus replica
    /// fan-out).
    pub fn send_matrix(&self, world_size: usize) -> Vec<Vec<u64>> {
        let mut matrix = vec![vec![0u64; world_size]; world_size];
        for m in &self.moves {
            assert!(
                m.from < world_size && m.to < world_size,
                "move endpoints must be ranks of the cluster"
            );
            matrix[m.from][m.to] += self.bytes_per_expert;
        }
        for a in &self.replica_adds {
            assert!(a.from < world_size, "replica owner must be a rank");
            for &dst in &a.to {
                assert!(dst < world_size, "replica fan-out must target ranks");
                matrix[a.from][dst] += self.bytes_per_expert;
            }
        }
        matrix
    }

    /// Price the plan on a concrete cluster: per-link-class byte totals
    /// and the completion time of the full-bandwidth point-to-point
    /// exchange under the α–β cost model.
    pub fn priced(&self, cluster: &ClusterSpec, cost: &CostModel) -> PricedMigration {
        let model = CollectiveCostModel::new(*cluster, *cost);
        let matrix = self.send_matrix(cluster.world_size());
        let mut bytes = BytesByClass::default();
        for (src, row) in matrix.iter().enumerate() {
            for (dst, &b) in row.iter().enumerate() {
                if b > 0 {
                    bytes.add(cluster.link_class(Rank(src), Rank(dst)), b);
                }
            }
        }
        PricedMigration {
            time: model.exchange_time(&matrix),
            bytes,
        }
    }
}

/// A [`MigrationPlan`] priced on a concrete cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PricedMigration {
    /// Completion time of the exchange, seconds of virtual time.
    pub time: f64,
    /// Bytes moved, bucketed by link class.
    pub bytes: BytesByClass,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::solve_greedy;
    use crate::replication::replicated_cross_mass;

    /// Shift affinity with a uniform leak: optimum differs from
    /// round-robin, so re-placement has work to do.
    fn objective(e: usize, gaps: usize, kappa: f64) -> Objective {
        let u = 1.0 / e as f64;
        let mut m = vec![0.0f64; e * e];
        for i in 0..e {
            for p in 0..e {
                let s = f64::from(p == (i + 3) % e);
                m[i * e + p] = kappa * s + (1.0 - kappa) * u;
            }
        }
        Objective::from_raw(vec![m; gaps], e)
    }

    #[test]
    fn zero_budget_returns_incumbent_unchanged() {
        let obj = objective(8, 3, 0.8);
        let incumbent = Placement::round_robin(4, 8, 4);
        for budget in [0u64, 1] {
            let p = solve_budgeted(&obj, &incumbent, budget);
            assert_eq!(p, incumbent, "budget {budget} must not move anything");
            assert!(MigrationPlan::between(&incumbent, &p, 1).is_empty());
        }
    }

    #[test]
    fn budget_caps_moves_exactly() {
        let obj = objective(16, 4, 0.9);
        let incumbent = Placement::round_robin(5, 16, 4);
        for budget in [2u64, 4, 8, 16] {
            let p = solve_budgeted(&obj, &incumbent, budget);
            let plan = MigrationPlan::between(&incumbent, &p, 1);
            assert!(
                plan.n_moves() as u64 <= budget,
                "budget {budget}: {} moves",
                plan.n_moves()
            );
        }
    }

    #[test]
    fn budgeted_cost_is_monotone_in_budget() {
        let obj = objective(16, 4, 0.9);
        let incumbent = Placement::round_robin(5, 16, 4);
        let mut last = obj.cross_mass(&incumbent);
        for budget in [0u64, 2, 6, 12, 24, 1000] {
            let cost = obj.cross_mass(&solve_budgeted(&obj, &incumbent, budget));
            assert!(
                cost <= last + 1e-12,
                "budget {budget}: cost {cost} worse than {last}"
            );
            last = cost;
        }
    }

    #[test]
    fn unbounded_budget_matches_from_scratch_quality() {
        let obj = objective(8, 3, 0.85);
        let incumbent = Placement::round_robin(4, 8, 2);
        let p = solve_budgeted(&obj, &incumbent, u64::MAX);
        // At least as good as the from-scratch greedy + polish target it
        // races against (the toward-walk visits the target itself), and
        // strictly better than the stale incumbent.
        let mut target = solve_greedy(&obj, 2);
        improve(&obj, &mut target, 50);
        let cost = obj.cross_mass(&p);
        assert!(cost <= obj.cross_mass(&target) + 1e-12);
        assert!(cost < obj.cross_mass(&incumbent));
    }

    #[test]
    fn warm_start_never_worsens_and_is_deterministic() {
        let obj = objective(12, 5, 0.8);
        let incumbent = Placement::round_robin(6, 12, 4);
        let a = solve_warm_start(&obj, &incumbent, 50);
        let b = solve_warm_start(&obj, &incumbent, 50);
        assert_eq!(a, b);
        assert!(obj.cross_mass(&a) <= obj.cross_mass(&incumbent) + 1e-12);
    }

    #[test]
    fn budgeted_beats_warm_start_budget_for_budget_or_ties() {
        // Best-improvement spends a tight budget on the steepest swaps;
        // with the same unlimited budget both reach swap-local optima.
        let obj = objective(16, 4, 0.9);
        let incumbent = Placement::round_robin(5, 16, 4);
        let budgeted = solve_budgeted(&obj, &incumbent, u64::MAX);
        let warm = solve_warm_start(&obj, &incumbent, usize::MAX);
        for p in [&budgeted, &warm] {
            assert!(obj.cross_mass(p) < obj.cross_mass(&incumbent));
        }
    }

    #[test]
    fn plan_between_lists_exactly_the_diff() {
        let old = Placement::round_robin(2, 4, 2);
        let mut new = old.clone();
        new.swap(1, 0, 2);
        let plan = MigrationPlan::between(&old, &new, 100);
        assert_eq!(plan.n_moves(), 2);
        assert_eq!(plan.total_bytes(), 200);
        assert_eq!(
            plan.moves,
            vec![
                ExpertMove {
                    layer: 1,
                    expert: 0,
                    from: 0,
                    to: 1
                },
                ExpertMove {
                    layer: 1,
                    expert: 2,
                    from: 1,
                    to: 0
                },
            ]
        );
        let matrix = plan.send_matrix(2);
        assert_eq!(matrix[0][1], 100);
        assert_eq!(matrix[1][0], 100);
    }

    #[test]
    fn pricing_charges_link_classes_correctly() {
        let cluster = ClusterSpec::new(2, 2).unwrap();
        let cost = CostModel::wilkes3();
        let old = Placement::round_robin(1, 8, 4);
        // Intra-node swap: experts 0 and 2 trade GPUs 0 and 1 (same node).
        let mut intra = old.clone();
        intra.swap(0, 0, 2);
        let p_intra = MigrationPlan::between(&old, &intra, 1 << 20).priced(&cluster, &cost);
        assert_eq!(p_intra.bytes.intra_node, 2 << 20);
        assert_eq!(p_intra.bytes.inter_node, 0);
        // Inter-node swap: experts 0 and 4 trade GPUs 0 and 2.
        let mut inter = old.clone();
        inter.swap(0, 0, 4);
        let p_inter = MigrationPlan::between(&old, &inter, 1 << 20).priced(&cluster, &cost);
        assert_eq!(p_inter.bytes.inter_node, 2 << 20);
        assert!(p_inter.time > p_intra.time, "inter-node moves cost more");
    }

    #[test]
    fn empty_plan_is_free() {
        let cluster = ClusterSpec::new(1, 4).unwrap();
        let p = Placement::round_robin(3, 8, 4);
        let plan = MigrationPlan::between(&p, &p, 1 << 20);
        assert!(plan.is_empty());
        let priced = plan.priced(&cluster, &CostModel::wilkes3());
        assert_eq!(priced.time, 0.0);
        assert_eq!(priced.bytes.total(), 0);
    }

    #[test]
    #[should_panic(expected = "unit mismatch")]
    fn mismatched_placements_rejected() {
        let a = Placement::round_robin(2, 8, 4);
        let b = Placement::round_robin(2, 8, 2);
        let _ = MigrationPlan::between(&a, &b, 1);
    }

    fn bare(base: Placement) -> ReplicationPlan {
        ReplicationPlan::bare(base)
    }

    #[test]
    fn replicated_diff_prices_adds_and_frees_drops() {
        let base = Placement::round_robin(2, 4, 2);
        let old = ReplicationPlan::everywhere(base.clone(), vec![vec![1], vec![]]);
        let new = ReplicationPlan::everywhere(base.clone(), vec![vec![], vec![2]]);
        let plan = MigrationPlan::between_replicated(&old, &new, 100);
        assert_eq!(plan.n_moves(), 0);
        assert_eq!(plan.n_replica_adds(), 1);
        assert_eq!(plan.n_replica_drops(), 1);
        assert_eq!(plan.replica_drops, vec![(0, 1)]);
        // Expert 2 at layer 1 is owned by unit 1: one payload to unit 0.
        assert_eq!(plan.total_bytes(), 100);
        let matrix = plan.send_matrix(2);
        assert_eq!(matrix[1][0], 100);
        assert_eq!(matrix[0][1], 0);
        assert!(!plan.is_empty());
        // Drops alone still make the plan non-empty but ship nothing.
        let drop_only = MigrationPlan::between_replicated(&old, &bare(base), 100);
        assert!(!drop_only.is_empty());
        assert_eq!(drop_only.total_bytes(), 0);
    }

    #[test]
    fn moves_of_replicated_experts_are_free() {
        let base = Placement::round_robin(1, 4, 2);
        let mut moved = base.clone();
        moved.swap(0, 0, 2); // experts 0 and 2 trade units
        let old = ReplicationPlan::everywhere(base, vec![vec![0]]);
        let new = ReplicationPlan::everywhere(moved, vec![vec![0]]);
        let plan = MigrationPlan::between_replicated(&old, &new, 100);
        // Expert 0 was replicated everywhere: its relocation ships
        // nothing. Expert 2 pays one payload.
        assert_eq!(plan.n_moves(), 1);
        assert_eq!(plan.moves[0].expert, 2);
        assert_eq!(plan.free_moves.len(), 1);
        assert_eq!(plan.free_moves[0].expert, 0);
        assert_eq!(plan.n_relocations(), 2);
        assert_eq!(plan.total_bytes(), 100);
        // A plan whose only change is free moves of replicated experts
        // ships zero bytes but is NOT empty — the placement did change,
        // and callers key re-plan accounting off emptiness.
        let both = ReplicationPlan::everywhere(old.base.clone(), vec![vec![0, 2]]);
        let mut moved_base = old.base.clone();
        moved_base.swap(0, 0, 2);
        let moved = ReplicationPlan::everywhere(moved_base, vec![vec![0, 2]]);
        let free_only = MigrationPlan::between_replicated(&both, &moved, 100);
        assert_eq!(free_only.total_bytes(), 0);
        assert_eq!(free_only.n_moves(), 0);
        assert_eq!(free_only.n_relocations(), 2);
        assert!(!free_only.is_empty());
        assert_eq!(free_only.send_matrix(2), vec![vec![0; 2]; 2]);
    }

    #[test]
    fn joint_solve_respects_both_budget_axes() {
        let obj = objective(16, 4, 0.9);
        let incumbent = bare(Placement::round_robin(5, 16, 4));
        let policies = [
            ReplicaPolicy::Everywhere,
            ReplicaPolicy::OnePerNode(ClusterSpec::new(2, 2).unwrap()),
        ];
        for policy in &policies {
            for (mem_slots, move_slots) in [(0u64, 4u64), (4, 0), (4, 8), (8, 16)] {
                let budget = ReplicationBudget {
                    replica_memory_bytes: mem_slots * 10,
                    migration_budget_bytes: move_slots * 10,
                };
                let next = solve_budgeted_replicated(&obj, &incumbent, 10, &budget, policy);
                let extra = next.extra_copies_per_gpu() as u64;
                assert!(
                    extra <= mem_slots,
                    "{policy:?} ({mem_slots},{move_slots}): {extra} extra copies over budget"
                );
                let plan = MigrationPlan::between_replicated(&incumbent, &next, 10);
                assert!(
                    plan.total_bytes() <= budget.migration_budget_bytes,
                    "{policy:?} ({mem_slots},{move_slots}): {} bytes over budget",
                    plan.total_bytes()
                );
            }
        }
    }

    #[test]
    fn partial_policy_never_loses_to_full_at_equal_budget() {
        // The partial solve races the everywhere candidate too, so at any
        // equal joint budget its winner is at least as good — exactly the
        // bench gate's bar, here as a unit invariant.
        let obj = objective(16, 4, 0.9);
        let incumbent = bare(Placement::round_robin(5, 16, 4));
        let partial = ReplicaPolicy::OnePerNode(ClusterSpec::new(2, 2).unwrap());
        for (mem_slots, move_slots) in [(2u64, 8u64), (4, 8), (6, 16)] {
            let budget = ReplicationBudget {
                replica_memory_bytes: mem_slots * 10,
                migration_budget_bytes: move_slots * 10,
            };
            let full_plan = solve_budgeted_replicated(
                &obj,
                &incumbent,
                10,
                &budget,
                &ReplicaPolicy::Everywhere,
            );
            let partial_plan = solve_budgeted_replicated(&obj, &incumbent, 10, &budget, &partial);
            let full_cross = replicated_cross_mass(&obj, &full_plan);
            let partial_cross = replicated_cross_mass(&obj, &partial_plan);
            assert!(
                partial_cross <= full_cross,
                "({mem_slots},{move_slots}): partial {partial_cross} vs full {full_cross}"
            );
        }
    }

    #[test]
    fn joint_solve_never_loses_to_owner_moves_only() {
        let obj = objective(16, 4, 0.9);
        let incumbent = bare(Placement::round_robin(5, 16, 4));
        for move_slots in [4u64, 8, 24] {
            let bytes = move_slots * 10;
            let owner_only = solve_budgeted(&obj, &incumbent.base, move_slots);
            let owner_cost = obj.cross_mass(&owner_only);
            let joint = solve_budgeted_replicated(
                &obj,
                &incumbent,
                10,
                &ReplicationBudget {
                    replica_memory_bytes: 6 * 10,
                    migration_budget_bytes: bytes,
                },
                &ReplicaPolicy::Everywhere,
            );
            let joint_cost = replicated_cross_mass(&obj, &joint);
            assert!(
                joint_cost <= owner_cost + 1e-12,
                "moves {move_slots}: joint {joint_cost} vs owner-only {owner_cost}"
            );
        }
    }

    #[test]
    fn zero_memory_budget_reduces_to_owner_moves() {
        let obj = objective(12, 3, 0.85);
        let incumbent = bare(Placement::round_robin(4, 12, 4));
        let budget = ReplicationBudget {
            replica_memory_bytes: 0,
            migration_budget_bytes: 8 * 10,
        };
        let next =
            solve_budgeted_replicated(&obj, &incumbent, 10, &budget, &ReplicaPolicy::Everywhere);
        assert!(!next.has_replicas());
        assert_eq!(next.base, solve_budgeted(&obj, &incumbent.base, 8));
    }

    #[test]
    fn joint_solve_is_deterministic_and_drops_stale_replicas() {
        let obj = objective(16, 4, 0.9);
        // Incumbent replicates two experts the drifted objective gives no
        // incoming cross mass... pick experts and verify drop behavior on
        // a shrunken memory budget.
        let mut lists = vec![Vec::new(); 5];
        lists[2] = vec![3, 7];
        let incumbent = ReplicationPlan::everywhere(Placement::round_robin(5, 16, 4), lists);
        let budget = ReplicationBudget {
            replica_memory_bytes: 10, // one slot per GPU
            migration_budget_bytes: 6 * 10,
        };
        let a =
            solve_budgeted_replicated(&obj, &incumbent, 10, &budget, &ReplicaPolicy::Everywhere);
        let b =
            solve_budgeted_replicated(&obj, &incumbent, 10, &budget, &ReplicaPolicy::Everywhere);
        assert_eq!(a, b, "joint solve must be deterministic");
        assert!(a.extra_copies_per_gpu() <= 1);
    }
}
