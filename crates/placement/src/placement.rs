//! The placement data structure: which unit (GPU or node) holds which
//! expert at each layer.

/// A balanced assignment of experts to `n_units` units for every layer.
///
/// This is the solution variable `x^p_{i,j}` of the paper's ILP in dense
/// form: `unit_of(layer, expert)` is the unit `p` with `x^p_{expert,layer} =
/// 1`. Constraints (formulas 9–10) are enforced structurally: every
/// constructor validates that each unit holds exactly `E / P` experts per
/// layer and that every expert is owned by exactly one unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    n_units: usize,
    /// `assign[layer][expert]` = owning unit.
    assign: Vec<Vec<usize>>,
}

impl Placement {
    /// Build from an explicit assignment table, validating balance.
    pub fn new(assign: Vec<Vec<usize>>, n_units: usize) -> Self {
        assert!(!assign.is_empty(), "placement needs at least one layer");
        assert!(n_units >= 1);
        let e = assign[0].len();
        assert!(
            e >= n_units && e.is_multiple_of(n_units),
            "experts ({e}) must be a positive multiple of units ({n_units})"
        );
        let cap = e / n_units;
        for (layer, row) in assign.iter().enumerate() {
            assert_eq!(row.len(), e, "layer {layer} has wrong expert count");
            let mut loads = vec![0usize; n_units];
            for &u in row {
                assert!(u < n_units, "layer {layer}: unit {u} out of range");
                loads[u] += 1;
            }
            assert!(
                loads.iter().all(|&l| l == cap),
                "layer {layer} violates load balance: {loads:?}"
            );
        }
        Placement { n_units, assign }
    }

    /// Build from an explicit assignment table *without* the per-unit
    /// balance check, for degraded fleets: after a GPU loss the failed
    /// unit owns nothing and the survivors run over capacity until the
    /// fleet heals. Shape and unit-range are still validated. The
    /// budgeted online solvers mutate placements only through balance-
    /// *preserving* [`Placement::swap`]s, so a degraded placement stays
    /// evacuated through any number of re-plans.
    pub fn new_degraded(assign: Vec<Vec<usize>>, n_units: usize) -> Self {
        assert!(!assign.is_empty(), "placement needs at least one layer");
        assert!(n_units >= 1);
        let e = assign[0].len();
        assert!(e >= 1, "placement needs at least one expert");
        for (layer, row) in assign.iter().enumerate() {
            assert_eq!(row.len(), e, "layer {layer} has wrong expert count");
            for &u in row {
                assert!(u < n_units, "layer {layer}: unit {u} out of range");
            }
        }
        Placement { n_units, assign }
    }

    /// The vanilla (DeepSpeed-MoE) placement: expert `i` lives on unit
    /// `i / capacity` at every layer — experts are packed contiguously by
    /// rank, with no awareness of inter-layer affinity.
    pub fn round_robin(n_layers: usize, n_experts: usize, n_units: usize) -> Self {
        assert!(n_experts.is_multiple_of(n_units));
        let cap = n_experts / n_units;
        let row: Vec<usize> = (0..n_experts).map(|i| i / cap).collect();
        Placement::new(vec![row; n_layers], n_units)
    }

    /// Number of units (GPUs or nodes).
    pub fn n_units(&self) -> usize {
        self.n_units
    }

    /// Number of layers.
    pub fn n_layers(&self) -> usize {
        self.assign.len()
    }

    /// Experts per layer.
    pub fn n_experts(&self) -> usize {
        self.assign[0].len()
    }

    /// Experts each unit holds per layer.
    pub fn capacity(&self) -> usize {
        self.n_experts() / self.n_units
    }

    /// The unit holding `expert` at `layer`.
    #[inline]
    pub fn unit_of(&self, layer: usize, expert: usize) -> usize {
        self.assign[layer][expert]
    }

    /// All experts held by `unit` at `layer`, ascending.
    pub fn experts_on(&self, layer: usize, unit: usize) -> Vec<usize> {
        self.assign[layer]
            .iter()
            .enumerate()
            .filter_map(|(e, &u)| (u == unit).then_some(e))
            .collect()
    }

    /// One layer's assignment row.
    pub fn layer(&self, layer: usize) -> &[usize] {
        &self.assign[layer]
    }

    /// Swap the units of two experts within a layer (keeps balance).
    pub fn swap(&mut self, layer: usize, e1: usize, e2: usize) {
        self.assign[layer].swap(e1, e2);
    }

    /// Map each unit through `f` (used by the staged solver to refine a
    /// node-level placement into a GPU-level one).
    pub fn relabel<F: Fn(usize, usize, usize) -> usize>(
        &self,
        n_new_units: usize,
        f: F,
    ) -> Placement {
        let assign = self
            .assign
            .iter()
            .enumerate()
            .map(|(layer, row)| {
                row.iter()
                    .enumerate()
                    .map(|(expert, &unit)| f(layer, expert, unit))
                    .collect()
            })
            .collect();
        Placement::new(assign, n_new_units)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_is_contiguous() {
        let p = Placement::round_robin(3, 8, 4);
        assert_eq!(p.layer(0), &[0, 0, 1, 1, 2, 2, 3, 3]);
        assert_eq!(p.capacity(), 2);
        assert_eq!(p.unit_of(2, 5), 2);
    }

    #[test]
    fn experts_on_returns_owned_set() {
        let p = Placement::round_robin(2, 8, 2);
        assert_eq!(p.experts_on(0, 0), vec![0, 1, 2, 3]);
        assert_eq!(p.experts_on(1, 1), vec![4, 5, 6, 7]);
    }

    #[test]
    fn swap_preserves_balance() {
        let mut p = Placement::round_robin(2, 4, 2);
        p.swap(0, 0, 3);
        assert_eq!(p.unit_of(0, 0), 1);
        assert_eq!(p.unit_of(0, 3), 0);
        // Re-validating through the constructor must not panic.
        let _ = Placement::new((0..2).map(|l| p.layer(l).to_vec()).collect(), 2);
    }

    #[test]
    fn relabel_expands_units() {
        // Node-level (2 nodes) -> GPU-level (4 GPUs, 2 per node): send each
        // expert to its node's first or second GPU by parity of its index
        // within the node set.
        let node_level = Placement::round_robin(2, 8, 2);
        let gpu_level = node_level.relabel(4, |layer, expert, node| {
            let within: Vec<usize> = node_level.experts_on(layer, node);
            let pos = within.iter().position(|&e| e == expert).unwrap();
            node * 2 + pos % 2
        });
        assert_eq!(gpu_level.n_units(), 4);
        assert_eq!(gpu_level.capacity(), 2);
    }

    #[test]
    #[should_panic(expected = "load balance")]
    fn unbalanced_rejected() {
        let _ = Placement::new(vec![vec![0, 0, 0, 1]], 2);
    }

    #[test]
    fn degraded_constructor_accepts_evacuated_units() {
        // Unit 1 owns nothing (it failed); `new` would reject this exact
        // table, the degraded constructor must not.
        let p = Placement::new_degraded(vec![vec![0, 0, 2, 2], vec![2, 0, 0, 2]], 3);
        assert_eq!(p.n_units(), 3);
        assert_eq!(p.experts_on(0, 1), Vec::<usize>::new());
        assert_eq!(p.experts_on(0, 0), vec![0, 1]);
        assert_eq!(p.unit_of(1, 0), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn degraded_constructor_still_validates_unit_range() {
        let _ = Placement::new_degraded(vec![vec![0, 3]], 3);
    }

    #[test]
    #[should_panic(expected = "wrong expert count")]
    fn degraded_constructor_still_validates_row_shape() {
        let _ = Placement::new_degraded(vec![vec![0, 1], vec![0]], 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_unit_rejected() {
        let _ = Placement::new(vec![vec![0, 2]], 2);
    }

    #[test]
    #[should_panic(expected = "multiple of units")]
    fn non_divisible_rejected() {
        let _ = Placement::new(vec![vec![0, 1, 0]], 2);
    }
}
