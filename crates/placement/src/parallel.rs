//! Deterministic parallelism primitives shared by every solver in this
//! crate (and re-exported through `exflow-core` for engine configuration).
//!
//! Two rules make "same answer at any thread count" hold by construction:
//!
//! 1. **Independent streams.** Every parallel task derives its own RNG
//!    stream with [`split_seed`] (a SplitMix64 finalizer over the master
//!    seed and the task index) instead of consuming a shared sequential
//!    stream, so the random numbers a task sees do not depend on
//!    scheduling.
//! 2. **Ordered reduction.** Task results are reassembled in task-index
//!    order (the rayon shim's executor guarantees this) and reduced with
//!    first-wins tie-breaks, so the selected winner does not depend on
//!    completion order.

use rayon::iter::{IntoParallelIterator, ParallelIterator};
use rayon::ThreadPool;

/// How many worker threads a solver (or an engine's placement solve) may
/// use. Plain data, threaded explicitly through call stacks — no global
/// state, so two engines in one process can use different widths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    /// Worker threads (>= 1). `1` means fully sequential.
    pub threads: usize,
}

impl Parallelism {
    /// A width of `threads` workers. Panics if `threads == 0`.
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1, "parallelism width must be >= 1");
        Parallelism { threads }
    }

    /// Sequential execution (the default everywhere: parallelism is
    /// opt-in).
    pub fn single() -> Self {
        Parallelism { threads: 1 }
    }

    /// One worker per available hardware thread.
    pub fn available() -> Self {
        Parallelism {
            threads: rayon::max_num_threads(),
        }
    }

    /// A pool of this width (the shim never fails for threads >= 1).
    fn pool(self) -> ThreadPool {
        ThreadPool::new(self.threads).expect("threads >= 1 by construction")
    }

    /// Map `f` over `0..n` on up to `self.threads` workers; results come
    /// back in index order, bit-identical to the sequential run for pure
    /// `f`.
    pub fn map_indexed<T, F>(self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.pool()
            .install(|| (0..n).into_par_iter().map(f).collect())
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism::single()
    }
}

/// Derive an independent, well-mixed seed for parallel stream `stream` of
/// master seed `seed` (SplitMix64 finalizer; the same mixing used by the
/// workspace's `StdRng`). Stream 0 is *not* the identity, so sibling
/// streams never collide with the master stream itself.
pub fn split_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed
        ^ stream
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(0x243F_6A88_85A3_08D3);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Select the lowest-cost result with a first-wins tie-break: the winner
/// is the earliest index attaining the minimum, which is independent of
/// how the costs were computed (sequentially or on any number of
/// threads). Costs are ordered by `total_cmp`, so a NaN cost (a broken
/// objective) never displaces a finite one. Returns `None` on an empty
/// slate.
pub fn argmin_by_cost<T>(results: Vec<(f64, T)>) -> Option<T> {
    let mut best: Option<(f64, T)> = None;
    for (cost, value) in results {
        match &best {
            Some((best_cost, _)) if cost.total_cmp(best_cost) == std::cmp::Ordering::Less => {
                best = Some((cost, value));
            }
            None => best = Some((cost, value)),
            _ => {}
        }
    }
    best.map(|(_, v)| v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_seed_streams_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for stream in 0..1000u64 {
            assert!(
                seen.insert(split_seed(42, stream)),
                "stream {stream} collided"
            );
        }
        // And not the identity on stream 0.
        assert_ne!(split_seed(42, 0), 42);
    }

    #[test]
    fn split_seed_depends_on_master_seed() {
        assert_ne!(split_seed(1, 5), split_seed(2, 5));
    }

    #[test]
    fn map_indexed_is_width_independent() {
        let seq = Parallelism::single().map_indexed(33, |i| i * 7);
        for threads in [2, 3, 8] {
            let par = Parallelism::new(threads).map_indexed(33, |i| i * 7);
            assert_eq!(par, seq, "width {threads}");
        }
    }

    #[test]
    fn argmin_breaks_ties_by_earliest_index() {
        let results = vec![(2.0, "a"), (1.0, "b"), (1.0, "c"), (3.0, "d")];
        assert_eq!(argmin_by_cost(results), Some("b"));
        assert_eq!(argmin_by_cost::<&str>(vec![]), None);
    }

    #[test]
    fn argmin_never_picks_nan_over_finite() {
        assert_eq!(argmin_by_cost(vec![(1.0, "a"), (f64::NAN, "b")]), Some("a"));
        assert_eq!(argmin_by_cost(vec![(f64::NAN, "a"), (1.0, "b")]), Some("b"));
        // All-NaN still returns something (the earliest).
        assert_eq!(
            argmin_by_cost(vec![(f64::NAN, "a"), (f64::NAN, "b")]),
            Some("a")
        );
    }

    #[test]
    #[should_panic(expected = "must be >= 1")]
    fn zero_width_rejected() {
        let _ = Parallelism::new(0);
    }
}
