//! Text serialization of placements — the deployable artifact ExFlow's
//! offline stage hands to the model loader ("variable x^p_{i,j} in the
//! solution will be directly used as the expert placement strategy when
//! loading the MoE model to GPUs", paper §IV-D).

use std::fmt;

use crate::placement::Placement;

/// Parse errors for the placement text format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlacementIoError {
    /// Input was empty or the header was malformed.
    BadHeader,
    /// A cell failed to parse.
    BadNumber {
        /// 1-based line number.
        line: usize,
        /// Offending cell.
        cell: String,
    },
    /// A layer row had the wrong number of experts.
    RaggedRow {
        /// 1-based line number.
        line: usize,
    },
    /// The parsed table violates the balance/ownership constraints.
    Invalid(String),
}

impl fmt::Display for PlacementIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementIoError::BadHeader => write!(f, "missing or malformed header"),
            PlacementIoError::BadNumber { line, cell } => {
                write!(f, "line {line}: cannot parse `{cell}`")
            }
            PlacementIoError::RaggedRow { line } => {
                write!(f, "line {line}: wrong expert count")
            }
            PlacementIoError::Invalid(msg) => write!(f, "invalid placement: {msg}"),
        }
    }
}

impl std::error::Error for PlacementIoError {}

/// Serialize: header `# units=P experts=E layers=L`, then one CSV row per
/// layer where cell `i` is the unit owning expert `i`.
pub fn write_placement(p: &Placement) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# units={} experts={} layers={}\n",
        p.n_units(),
        p.n_experts(),
        p.n_layers()
    ));
    for layer in 0..p.n_layers() {
        let cells: Vec<String> = p.layer(layer).iter().map(|u| u.to_string()).collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

/// Parse the format produced by [`write_placement`], re-validating the ILP
/// constraints (balance, exclusive ownership) on the way in.
pub fn parse_placement(text: &str) -> Result<Placement, PlacementIoError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or(PlacementIoError::BadHeader)?;
    let field = |name: &str| -> Option<usize> {
        header
            .split_whitespace()
            .find_map(|tok| tok.strip_prefix(&format!("{name}=")))
            .and_then(|s| s.parse().ok())
    };
    let units = field("units").ok_or(PlacementIoError::BadHeader)?;
    let experts = field("experts").ok_or(PlacementIoError::BadHeader)?;
    let layers = field("layers").ok_or(PlacementIoError::BadHeader)?;

    let mut assign: Vec<Vec<usize>> = Vec::with_capacity(layers);
    for (idx, line) in lines {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let row: Result<Vec<usize>, _> = line
            .split(',')
            .map(|cell| {
                cell.trim()
                    .parse::<usize>()
                    .map_err(|_| PlacementIoError::BadNumber {
                        line: idx + 1,
                        cell: cell.to_string(),
                    })
            })
            .collect();
        let row = row?;
        if row.len() != experts {
            return Err(PlacementIoError::RaggedRow { line: idx + 1 });
        }
        assign.push(row);
    }
    if assign.len() != layers {
        return Err(PlacementIoError::Invalid(format!(
            "expected {layers} layers, found {}",
            assign.len()
        )));
    }
    // Placement::new panics on constraint violations; convert to an error.
    std::panic::catch_unwind(|| Placement::new(assign, units))
        .map_err(|_| PlacementIoError::Invalid("balance or ownership violated".into()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let p = Placement::round_robin(4, 8, 2);
        let text = write_placement(&p);
        assert_eq!(parse_placement(&text).unwrap(), p);
    }

    #[test]
    fn header_carries_dimensions() {
        let p = Placement::round_robin(3, 6, 3);
        let text = write_placement(&p);
        assert!(text.starts_with("# units=3 experts=6 layers=3\n"));
    }

    #[test]
    fn bad_header_rejected() {
        assert_eq!(
            parse_placement("nonsense\n0,0,1,1\n"),
            Err(PlacementIoError::BadHeader)
        );
    }

    #[test]
    fn unbalanced_rejected() {
        let text = "# units=2 experts=4 layers=1\n0,0,0,1\n";
        match parse_placement(text) {
            Err(PlacementIoError::Invalid(_)) => {}
            other => panic!("expected Invalid, got {other:?}"),
        }
    }

    #[test]
    fn missing_layers_rejected() {
        let text = "# units=2 experts=4 layers=2\n0,0,1,1\n";
        match parse_placement(text) {
            Err(PlacementIoError::Invalid(msg)) => assert!(msg.contains("expected 2")),
            other => panic!("expected Invalid, got {other:?}"),
        }
    }

    #[test]
    fn bad_cell_reported() {
        let text = "# units=2 experts=2 layers=1\n0,q\n";
        assert_eq!(
            parse_placement(text),
            Err(PlacementIoError::BadNumber {
                line: 2,
                cell: "q".into()
            })
        );
    }
}
