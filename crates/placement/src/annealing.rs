//! Simulated annealing over swap moves — escapes the local optima that
//! plain hill climbing can get stuck in on rugged instances (many layers,
//! moderate affinity).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::greedy::solve_greedy;
use crate::local_search::improve;
use crate::objective::Objective;
use crate::placement::Placement;

/// Annealing schedule parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnealParams {
    /// Starting temperature (in cross-mass units).
    pub t_start: f64,
    /// Final temperature.
    pub t_end: f64,
    /// Swap proposals per temperature step.
    pub moves_per_temp: usize,
    /// Geometric cooling factor per step, in (0, 1).
    pub cooling: f64,
}

impl Default for AnnealParams {
    fn default() -> Self {
        AnnealParams {
            t_start: 0.05,
            t_end: 1e-4,
            moves_per_temp: 200,
            cooling: 0.9,
        }
    }
}

/// Solve by simulated annealing, seeded from the greedy chain and finished
/// with a hill-climbing polish. Deterministic in `seed`.
pub fn solve_annealing(
    objective: &Objective,
    n_units: usize,
    params: AnnealParams,
    seed: u64,
) -> Placement {
    assert!(params.t_start > params.t_end && params.t_end > 0.0);
    assert!((0.0..1.0).contains(&params.cooling) && params.cooling > 0.0);
    let e = objective.n_experts();
    let l = objective.n_layers();
    let mut rng = StdRng::seed_from_u64(seed);

    let mut current = solve_greedy(objective, n_units);
    let mut current_cost = objective.cross_mass(&current);
    let mut best = current.clone();
    let mut best_cost = current_cost;

    let mut temp = params.t_start;
    while temp > params.t_end {
        for _ in 0..params.moves_per_temp {
            let layer = rng.gen_range(0..l);
            let e1 = rng.gen_range(0..e);
            let e2 = rng.gen_range(0..e);
            if current.unit_of(layer, e1) == current.unit_of(layer, e2) {
                continue;
            }
            let delta = objective.swap_delta(&current, layer, e1, e2);
            if delta < 0.0 || rng.gen::<f64>() < (-delta / temp).exp() {
                current.swap(layer, e1, e2);
                current_cost += delta;
                if current_cost < best_cost {
                    best_cost = current_cost;
                    best = current.clone();
                }
            }
        }
        temp *= params.cooling;
    }

    // Polish: annealing's accumulated float drift is corrected by the final
    // exact evaluation inside `improve`.
    improve(objective, &mut best, 20);
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hard_objective(e: usize, gaps: usize, seed: u64) -> Objective {
        // A blend of two competing permutation structures: greedy chains
        // follow one and miss the other.
        let mut rng = StdRng::seed_from_u64(seed);
        let gaps_vec = (0..gaps)
            .map(|_| {
                let mut m = vec![0.0f64; e * e];
                for i in 0..e {
                    let a = (i + 1) % e;
                    let b = rng.gen_range(0..e);
                    m[i * e + a] += 0.5;
                    m[i * e + b] += 0.3;
                    let u = 0.2 / e as f64;
                    for p in 0..e {
                        m[i * e + p] += u;
                    }
                }
                m
            })
            .collect();
        Objective::from_raw(gaps_vec, e)
    }

    #[test]
    fn annealing_is_deterministic_per_seed() {
        let obj = hard_objective(8, 4, 1);
        let a = solve_annealing(&obj, 4, AnnealParams::default(), 42);
        let b = solve_annealing(&obj, 4, AnnealParams::default(), 42);
        assert_eq!(a, b);
    }

    #[test]
    fn annealing_output_is_balanced() {
        let obj = hard_objective(12, 3, 2);
        let p = solve_annealing(&obj, 3, AnnealParams::default(), 0);
        for layer in 0..4 {
            for unit in 0..3 {
                assert_eq!(p.experts_on(layer, unit).len(), 4);
            }
        }
    }

    #[test]
    fn annealing_not_worse_than_round_robin() {
        let obj = hard_objective(8, 5, 3);
        let rr = Placement::round_robin(6, 8, 4);
        let annealed = solve_annealing(&obj, 4, AnnealParams::default(), 7);
        assert!(obj.cross_mass(&annealed) <= obj.cross_mass(&rr) + 1e-12);
    }

    #[test]
    #[should_panic]
    fn bad_schedule_rejected() {
        let obj = hard_objective(4, 2, 4);
        let _ = solve_annealing(
            &obj,
            2,
            AnnealParams {
                t_start: 0.001,
                t_end: 0.01,
                ..AnnealParams::default()
            },
            0,
        );
    }
}
