//! Simulated annealing over swap moves — escapes the local optima that
//! plain hill climbing can get stuck in on rugged instances (many layers,
//! moderate affinity).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::greedy::solve_greedy;
use crate::local_search::{improve, random_placement};
use crate::objective::Objective;
use crate::parallel::{argmin_by_cost, split_seed, Parallelism};
use crate::placement::Placement;

/// Annealing schedule parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnealParams {
    /// Starting temperature (in cross-mass units).
    pub t_start: f64,
    /// Final temperature.
    pub t_end: f64,
    /// Swap proposals per temperature step.
    pub moves_per_temp: usize,
    /// Geometric cooling factor per step, in (0, 1).
    pub cooling: f64,
    /// Independent annealing starts (>= 1). Start 0 is seeded from the
    /// greedy chain, further starts from random placements; each start
    /// gets its own derived RNG stream, so multi-start results are
    /// bit-identical at any thread count and the best start wins.
    pub n_starts: usize,
}

impl Default for AnnealParams {
    fn default() -> Self {
        AnnealParams {
            t_start: 0.05,
            t_end: 1e-4,
            moves_per_temp: 200,
            cooling: 0.9,
            n_starts: 1,
        }
    }
}

impl AnnealParams {
    /// This schedule with `n` independent starts.
    pub fn with_starts(mut self, n: usize) -> Self {
        assert!(n >= 1, "annealing needs at least one start");
        self.n_starts = n;
        self
    }
}

/// Solve by simulated annealing (multi-start per `params.n_starts`),
/// finished with a hill-climbing polish. Deterministic in `seed`.
/// Sequential convenience wrapper around [`solve_annealing_with`].
pub fn solve_annealing(
    objective: &Objective,
    n_units: usize,
    params: AnnealParams,
    seed: u64,
) -> Placement {
    solve_annealing_with(objective, n_units, params, seed, Parallelism::single())
}

/// Multi-start simulated annealing with explicit parallelism. Start 0
/// reproduces the classic greedy-seeded single run on the master seed's
/// stream; starts `1..n_starts` anneal from random placements on
/// [`split_seed`]-derived streams. The lowest final cross mass (earliest
/// start on ties) wins, independent of thread count.
pub fn solve_annealing_with(
    objective: &Objective,
    n_units: usize,
    params: AnnealParams,
    seed: u64,
    par: Parallelism,
) -> Placement {
    assert!(params.t_start > params.t_end && params.t_end > 0.0);
    assert!((0.0..1.0).contains(&params.cooling) && params.cooling > 0.0);
    assert!(params.n_starts >= 1, "annealing needs at least one start");
    let results = par.map_indexed(params.n_starts, |start| {
        let (initial, mut rng) = if start == 0 {
            (
                solve_greedy(objective, n_units),
                StdRng::seed_from_u64(seed),
            )
        } else {
            let mut rng = StdRng::seed_from_u64(split_seed(seed, start as u64));
            let initial = random_placement(
                objective.n_layers(),
                objective.n_experts(),
                n_units,
                &mut rng,
            );
            (initial, rng)
        };
        let placement = anneal_once(objective, initial, params, &mut rng);
        (objective.cross_mass(&placement), placement)
    });
    argmin_by_cost(results).expect("n_starts >= 1 produces a placement")
}

/// One annealing run from `initial` over `rng`'s stream, with the final
/// hill-climbing polish.
fn anneal_once(
    objective: &Objective,
    initial: Placement,
    params: AnnealParams,
    rng: &mut StdRng,
) -> Placement {
    let e = objective.n_experts();
    let l = objective.n_layers();

    let mut current = initial;
    let mut current_cost = objective.cross_mass(&current);
    let mut best = current.clone();
    let mut best_cost = current_cost;

    let mut temp = params.t_start;
    while temp > params.t_end {
        for _ in 0..params.moves_per_temp {
            let layer = rng.gen_range(0..l);
            let e1 = rng.gen_range(0..e);
            let e2 = rng.gen_range(0..e);
            if current.unit_of(layer, e1) == current.unit_of(layer, e2) {
                continue;
            }
            let delta = objective.swap_delta(&current, layer, e1, e2);
            if delta < 0.0 || rng.gen::<f64>() < (-delta / temp).exp() {
                current.swap(layer, e1, e2);
                current_cost += delta;
                if current_cost < best_cost {
                    best_cost = current_cost;
                    best = current.clone();
                }
            }
        }
        temp *= params.cooling;
    }

    // Polish: annealing's accumulated float drift is corrected by the final
    // exact evaluation inside `improve`.
    improve(objective, &mut best, 20);
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hard_objective(e: usize, gaps: usize, seed: u64) -> Objective {
        // A blend of two competing permutation structures: greedy chains
        // follow one and miss the other.
        let mut rng = StdRng::seed_from_u64(seed);
        let gaps_vec = (0..gaps)
            .map(|_| {
                let mut m = vec![0.0f64; e * e];
                for i in 0..e {
                    let a = (i + 1) % e;
                    let b = rng.gen_range(0..e);
                    m[i * e + a] += 0.5;
                    m[i * e + b] += 0.3;
                    let u = 0.2 / e as f64;
                    for p in 0..e {
                        m[i * e + p] += u;
                    }
                }
                m
            })
            .collect();
        Objective::from_raw(gaps_vec, e)
    }

    #[test]
    fn annealing_is_deterministic_per_seed() {
        let obj = hard_objective(8, 4, 1);
        let a = solve_annealing(&obj, 4, AnnealParams::default(), 42);
        let b = solve_annealing(&obj, 4, AnnealParams::default(), 42);
        assert_eq!(a, b);
    }

    #[test]
    fn annealing_output_is_balanced() {
        let obj = hard_objective(12, 3, 2);
        let p = solve_annealing(&obj, 3, AnnealParams::default(), 0);
        for layer in 0..4 {
            for unit in 0..3 {
                assert_eq!(p.experts_on(layer, unit).len(), 4);
            }
        }
    }

    #[test]
    fn annealing_not_worse_than_round_robin() {
        let obj = hard_objective(8, 5, 3);
        let rr = Placement::round_robin(6, 8, 4);
        let annealed = solve_annealing(&obj, 4, AnnealParams::default(), 7);
        assert!(obj.cross_mass(&annealed) <= obj.cross_mass(&rr) + 1e-12);
    }

    #[test]
    fn multi_start_is_thread_count_invariant() {
        let obj = hard_objective(8, 4, 6);
        let params = AnnealParams::default().with_starts(4);
        let seq = solve_annealing_with(&obj, 4, params, 42, Parallelism::single());
        for threads in [2, 8] {
            let par = solve_annealing_with(&obj, 4, params, 42, Parallelism::new(threads));
            assert_eq!(par, seq, "{threads} threads diverged");
        }
    }

    #[test]
    fn more_starts_never_hurt() {
        let obj = hard_objective(10, 5, 9);
        let one = solve_annealing(&obj, 2, AnnealParams::default(), 3);
        let four = solve_annealing(&obj, 2, AnnealParams::default().with_starts(4), 3);
        assert!(obj.cross_mass(&four) <= obj.cross_mass(&one) + 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one start")]
    fn zero_starts_rejected() {
        let obj = hard_objective(4, 2, 4);
        let params = AnnealParams {
            n_starts: 0,
            ..AnnealParams::default()
        };
        let _ = solve_annealing(&obj, 2, params, 0);
    }

    #[test]
    #[should_panic]
    fn bad_schedule_rejected() {
        let obj = hard_objective(4, 2, 4);
        let _ = solve_annealing(
            &obj,
            2,
            AnnealParams {
                t_start: 0.001,
                t_end: 0.01,
                ..AnnealParams::default()
            },
            0,
        );
    }
}
