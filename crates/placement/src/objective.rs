//! The ILP objective (paper formula 8) and locality measurement.

use exflow_affinity::{AffinityMatrix, RoutingTrace};

use crate::placement::Placement;

/// The placement objective: expected number of cross-unit transitions per
/// token per forward pass, computed from consecutive-layer affinity
/// matrices.
///
/// This is the expectation of the paper's formula 8 (`Σ_k Σ_j R_{k,j}`)
/// under the estimated routing distribution. Each source expert's row is
/// weighted by its *empirical marginal* (its share of traced tokens at that
/// layer): for the GShard-balanced models the paper studies this is simply
/// `1/E`, but it stays correct for skewed checkpoints (early training,
/// Fig. 12a) where a uniform weighting would dilute the objective with
/// never-visited experts.
#[derive(Debug, Clone)]
pub struct Objective {
    n_experts: usize,
    /// Flattened `E x E` conditional matrix per layer gap.
    gaps: Vec<Vec<f64>>,
    /// Per-gap source-expert marginal weights (each sums to 1).
    weights: Vec<Vec<f64>>,
}

impl Objective {
    /// Build from consecutive-layer affinity matrices (length `L - 1`,
    /// ordered by layer), weighting each row by its observed marginal.
    pub fn from_affinities(matrices: &[AffinityMatrix]) -> Self {
        assert!(!matrices.is_empty(), "need at least one layer gap");
        let e = matrices[0].n_experts();
        let mut gaps = Vec::with_capacity(matrices.len());
        let mut weights = Vec::with_capacity(matrices.len());
        for m in matrices {
            assert_eq!(m.n_experts(), e, "matrices must agree on expert count");
            let mut flat = Vec::with_capacity(e * e);
            for i in 0..e {
                flat.extend_from_slice(m.row(i));
            }
            gaps.push(flat);
            let total: u64 = (0..e).map(|i| m.row_count(i)).sum();
            weights.push(if total == 0 {
                vec![1.0 / e as f64; e]
            } else {
                (0..e)
                    .map(|i| m.row_count(i) as f64 / total as f64)
                    .collect()
            });
        }
        Objective {
            n_experts: e,
            gaps,
            weights,
        }
    }

    /// Build from raw flattened transition matrices (each row-stochastic
    /// `E x E`), e.g. a routing model's exact transitions, with uniform
    /// (balanced) source marginals.
    pub fn from_raw(gaps: Vec<Vec<f64>>, n_experts: usize) -> Self {
        assert!(!gaps.is_empty());
        for g in &gaps {
            assert_eq!(g.len(), n_experts * n_experts);
        }
        let weights = vec![vec![1.0 / n_experts as f64; n_experts]; gaps.len()];
        Objective {
            n_experts,
            gaps,
            weights,
        }
    }

    /// Experts per layer.
    pub fn n_experts(&self) -> usize {
        self.n_experts
    }

    /// Number of layer gaps (`L - 1`).
    pub fn n_gaps(&self) -> usize {
        self.gaps.len()
    }

    /// Number of layers (`gaps + 1`).
    pub fn n_layers(&self) -> usize {
        self.gaps.len() + 1
    }

    /// The conditional probability `P(expert p at layer gap+1 | expert i at
    /// layer gap)` this objective was built from.
    #[inline]
    pub fn gap_prob(&self, gap: usize, i: usize, p: usize) -> f64 {
        self.gaps[gap][i * self.n_experts + p]
    }

    /// The marginal weight of source expert `i` at layer `gap` (its share
    /// of traced tokens; `1/E` for balanced models).
    #[inline]
    pub fn row_weight(&self, gap: usize, i: usize) -> f64 {
        self.weights[gap][i]
    }

    /// Expected cross-unit transitions per token across the whole forward
    /// pass (lower is better; range `[0, L-1]`).
    pub fn cross_mass(&self, placement: &Placement) -> f64 {
        assert_eq!(placement.n_layers(), self.n_layers());
        assert_eq!(placement.n_experts(), self.n_experts);
        let e = self.n_experts;
        let mut total = 0.0f64;
        for (gap, matrix) in self.gaps.iter().enumerate() {
            for i in 0..e {
                let w = self.weights[gap][i];
                if w == 0.0 {
                    continue;
                }
                let ui = placement.unit_of(gap, i);
                let row = &matrix[i * e..(i + 1) * e];
                let mut cross = 0.0f64;
                for (p, &prob) in row.iter().enumerate() {
                    if placement.unit_of(gap + 1, p) != ui {
                        cross += prob;
                    }
                }
                total += w * cross;
            }
        }
        total
    }

    /// Expected fraction of layer transitions that stay on their unit
    /// (`1 - cross_mass / (L-1)`; the quantity behind the paper's Fig. 7
    /// bars).
    pub fn local_fraction(&self, placement: &Placement) -> f64 {
        1.0 - self.cross_mass(placement) / self.n_gaps() as f64
    }

    /// Change in [`Objective::cross_mass`] if `e1` and `e2` swapped units
    /// at `layer` (negative = improvement). O(E) — the enabler for
    /// large-instance local search.
    pub fn swap_delta(&self, placement: &Placement, layer: usize, e1: usize, e2: usize) -> f64 {
        let e = self.n_experts;
        let u1 = placement.unit_of(layer, e1);
        let u2 = placement.unit_of(layer, e2);
        if u1 == u2 || e1 == e2 {
            return 0.0;
        }
        let mut delta = 0.0f64;
        // Incoming gap: transitions from layer-1 experts into e1/e2.
        if layer > 0 {
            let m = &self.gaps[layer - 1];
            let weights = &self.weights[layer - 1];
            for i in 0..e {
                let w = weights[i];
                if w == 0.0 {
                    continue;
                }
                let ui = placement.unit_of(layer - 1, i);
                let p1 = m[i * e + e1];
                let p2 = m[i * e + e2];
                let before = f64::from(u1 != ui) * p1 + f64::from(u2 != ui) * p2;
                let after = f64::from(u2 != ui) * p1 + f64::from(u1 != ui) * p2;
                delta += w * (after - before);
            }
        }
        // Outgoing gap: transitions from e1/e2 into layer+1 experts, each
        // row carrying its own marginal weight.
        if layer + 1 < self.n_layers() {
            let m = &self.gaps[layer];
            let w1 = self.weights[layer][e1];
            let w2 = self.weights[layer][e2];
            for p in 0..e {
                let up = placement.unit_of(layer + 1, p);
                let p1 = m[e1 * e + p];
                let p2 = m[e2 * e + p];
                let before = w1 * f64::from(up != u1) * p1 + w2 * f64::from(up != u2) * p2;
                let after = w1 * f64::from(up != u2) * p1 + w2 * f64::from(up != u1) * p2;
                delta += after - before;
            }
        }
        delta
    }
}

/// Realized locality of a placement on a concrete routing trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceLocality {
    /// Total layer transitions counted (`tokens x (L-1)`).
    pub transitions: u64,
    /// Transitions where the next expert lived on the same unit.
    pub local: u64,
}

impl TraceLocality {
    /// Fraction of transitions that stayed unit-local.
    pub fn fraction(&self) -> f64 {
        if self.transitions == 0 {
            1.0
        } else {
            self.local as f64 / self.transitions as f64
        }
    }
}

/// Count, over a concrete trace, how many layer transitions stay on their
/// unit under `placement` (the measured counterpart of
/// [`Objective::local_fraction`]; the paper's "% tokens staying on the same
/// GPU", Fig. 7).
pub fn measure_trace_locality(trace: &RoutingTrace, placement: &Placement) -> TraceLocality {
    assert_eq!(trace.n_layers(), placement.n_layers());
    assert_eq!(trace.n_experts(), placement.n_experts());
    let mut local = 0u64;
    let mut transitions = 0u64;
    for t in 0..trace.n_tokens() {
        for j in 0..trace.n_layers() - 1 {
            let a = placement.unit_of(j, trace.expert_at(t, j));
            let b = placement.unit_of(j + 1, trace.expert_at(t, j + 1));
            transitions += 1;
            if a == b {
                local += 1;
            }
        }
    }
    TraceLocality { transitions, local }
}

/// Like [`measure_trace_locality`] but at node granularity: `placement`
/// assigns experts to GPUs (node-major ranks, `gpus_per_node` each) and a
/// transition counts as local when both GPUs share a node (Fig. 8).
pub fn measure_trace_node_locality(
    trace: &RoutingTrace,
    placement: &Placement,
    gpus_per_node: usize,
) -> TraceLocality {
    assert!(gpus_per_node >= 1 && placement.n_units().is_multiple_of(gpus_per_node));
    let mut local = 0u64;
    let mut transitions = 0u64;
    for t in 0..trace.n_tokens() {
        for j in 0..trace.n_layers() - 1 {
            let a = placement.unit_of(j, trace.expert_at(t, j)) / gpus_per_node;
            let b = placement.unit_of(j + 1, trace.expert_at(t, j + 1)) / gpus_per_node;
            transitions += 1;
            if a == b {
                local += 1;
            }
        }
    }
    TraceLocality { transitions, local }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Identity affinity: expert i always routes to expert i next.
    fn identity_objective(e: usize, gaps: usize) -> Objective {
        let mut m = vec![0.0f64; e * e];
        for i in 0..e {
            m[i * e + i] = 1.0;
        }
        Objective::from_raw(vec![m; gaps], e)
    }

    /// Shift affinity: expert i routes to (i+1) mod E.
    fn shift_objective(e: usize, gaps: usize) -> Objective {
        let mut m = vec![0.0f64; e * e];
        for i in 0..e {
            m[i * e + (i + 1) % e] = 1.0;
        }
        Objective::from_raw(vec![m; gaps], e)
    }

    #[test]
    fn identity_affinity_makes_round_robin_perfect() {
        let obj = identity_objective(8, 3);
        let p = Placement::round_robin(4, 8, 4);
        assert!(obj.cross_mass(&p) < 1e-12);
        assert!((obj.local_fraction(&p) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shift_affinity_breaks_round_robin_at_boundaries() {
        // Capacity 2, shift-by-one: expert 1 -> 2 crosses, 3 -> 4 crosses,
        // etc. Half the experts cross per gap.
        let obj = shift_objective(8, 1);
        let p = Placement::round_robin(2, 8, 4);
        assert!((obj.cross_mass(&p) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cross_mass_bounded_by_gaps() {
        let obj = shift_objective(4, 5);
        let p = Placement::round_robin(6, 4, 4); // capacity 1: every shift crosses
        assert!((obj.cross_mass(&p) - 5.0).abs() < 1e-12);
        assert!(obj.local_fraction(&p).abs() < 1e-12);
    }

    #[test]
    fn swap_delta_matches_recomputation() {
        // Random-ish dense matrix; verify delta == full recompute diff.
        let e = 6;
        let mut m = vec![0.0f64; e * e];
        for i in 0..e {
            for p in 0..e {
                m[i * e + p] = ((i * 7 + p * 3) % 11) as f64 + 1.0;
            }
            let s: f64 = m[i * e..(i + 1) * e].iter().sum();
            for p in 0..e {
                m[i * e + p] /= s;
            }
        }
        let obj = Objective::from_raw(vec![m.clone(), m], e);
        let p = Placement::round_robin(3, e, 3);
        for layer in 0..3 {
            for e1 in 0..e {
                for e2 in 0..e {
                    let delta = obj.swap_delta(&p, layer, e1, e2);
                    let mut q = p.clone();
                    q.swap(layer, e1, e2);
                    let full = obj.cross_mass(&q) - obj.cross_mass(&p);
                    assert!(
                        (delta - full).abs() < 1e-12,
                        "layer {layer} swap({e1},{e2}): delta {delta} vs {full}"
                    );
                }
            }
        }
    }

    #[test]
    fn swap_same_unit_is_free() {
        let obj = identity_objective(4, 2);
        let p = Placement::round_robin(3, 4, 2);
        // Experts 0,1 share unit 0.
        assert_eq!(obj.swap_delta(&p, 1, 0, 1), 0.0);
    }

    #[test]
    fn trace_locality_counts_by_hand() {
        let trace = RoutingTrace::new(vec![vec![0, 1, 2], vec![3, 3, 3]], 4);
        let p = Placement::round_robin(3, 4, 2); // units: {0,1}, {2,3}
                                                 // Token 0: 0->1 local, 1->2 cross. Token 1: 3->3 local, 3->3 local.
        let loc = measure_trace_locality(&trace, &p);
        assert_eq!(loc.transitions, 4);
        assert_eq!(loc.local, 3);
        assert!((loc.fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn node_locality_is_coarser_than_gpu() {
        let trace = RoutingTrace::new(vec![vec![0, 1], vec![0, 3]], 4);
        let p = Placement::round_robin(2, 4, 4); // 1 expert per GPU
        let gpu = measure_trace_locality(&trace, &p);
        let node = measure_trace_node_locality(&trace, &p, 2); // 2 GPUs/node
                                                               // 0->1 crosses GPU but stays on node; 0->3 crosses both.
        assert_eq!(gpu.local, 0);
        assert_eq!(node.local, 1);
        assert!(node.fraction() >= gpu.fraction());
    }

    #[test]
    fn expected_and_measured_locality_agree_on_large_traces() {
        use exflow_model::routing::AffinityModelSpec;
        use exflow_model::{CorpusSpec, TokenBatch};
        let model = AffinityModelSpec::new(6, 8).with_affinity(0.7).build();
        let batch = TokenBatch::sample(&model, &CorpusSpec::pile_proxy(4), 20_000, 1, 3);
        let trace = RoutingTrace::from_batch(&batch, 8);
        let mats = AffinityMatrix::consecutive(&trace);
        let obj = Objective::from_affinities(&mats);
        let p = Placement::round_robin(6, 8, 4);
        let expected = obj.local_fraction(&p);
        let measured = measure_trace_locality(&trace, &p).fraction();
        assert!(
            (expected - measured).abs() < 0.02,
            "expected {expected} vs measured {measured}"
        );
    }
}
