//! The ILP objective (paper formula 8) and locality measurement, with
//! selectable dense / sparse (CSR) gap storage.

use exflow_affinity::{
    AffinityMatrix, AffinitySnapshot, RoutingTrace, SnapshotDelta, SparseAffinity,
};

use crate::placement::Placement;

/// How [`Objective`] stores each layer gap's conditional matrix.
///
/// Both backends define exactly the same matrix, and every consumer
/// (`cross_mass`, `swap_delta`, the solvers) is arranged so the two
/// produce **bit-identical** results — the backend is purely a
/// speed/memory choice. Dense work is `O(E^2)` per gap; sparse work is
/// `O(nnz)`, which is what top-k routing leaves at `E = 256/512`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GapBackend {
    /// Pick per gap: CSR when the gap's density is below
    /// [`SPARSE_DENSITY_THRESHOLD`], dense otherwise.
    #[default]
    Auto,
    /// Force the flattened row-major `E x E` layout for every gap.
    Dense,
    /// Force the CSR layout for every gap.
    Sparse,
}

/// Density (`nnz / E^2`) below which [`GapBackend::Auto`] stores a gap as
/// CSR. Below ~25% the CSR traversals win despite their index indirection;
/// near-dense matrices are faster flat.
pub const SPARSE_DENSITY_THRESHOLD: f64 = 0.25;

/// A CSR layer-gap matrix with a transposed (CSC) companion index.
///
/// The CSR side serves row access (`cross_mass`, the outgoing half of
/// `swap_delta`, greedy gain accumulation); the CSC side serves column
/// access (the incoming half of `swap_delta`) in `O(col-nnz)` instead of
/// `O(E)`. Entries are ascending within each row/column.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseGap {
    row_ptr: Vec<usize>,
    cols: Vec<usize>,
    vals: Vec<f64>,
    col_ptr: Vec<usize>,
    rows: Vec<usize>,
    tvals: Vec<f64>,
}

impl SparseGap {
    /// Build from CSR parts, deriving the CSC index (counting sort keeps
    /// rows ascending within each column).
    fn from_csr(n: usize, row_ptr: Vec<usize>, cols: Vec<usize>, vals: Vec<f64>) -> Self {
        debug_assert_eq!(row_ptr.len(), n + 1);
        debug_assert_eq!(cols.len(), vals.len());
        let nnz = cols.len();
        let mut col_ptr = vec![0usize; n + 1];
        for &c in &cols {
            col_ptr[c + 1] += 1;
        }
        for c in 0..n {
            col_ptr[c + 1] += col_ptr[c];
        }
        let mut cursor = col_ptr.clone();
        let mut rows = vec![0usize; nnz];
        let mut tvals = vec![0.0f64; nnz];
        for i in 0..n {
            for idx in row_ptr[i]..row_ptr[i + 1] {
                let slot = cursor[cols[idx]];
                cursor[cols[idx]] += 1;
                rows[slot] = i;
                tvals[slot] = vals[idx];
            }
        }
        SparseGap {
            row_ptr,
            cols,
            vals,
            col_ptr,
            rows,
            tvals,
        }
    }

    /// Compress a flattened row-major `E x E` matrix.
    fn from_dense(flat: &[f64], n: usize) -> Self {
        let mut row_ptr = Vec::with_capacity(n + 1);
        row_ptr.push(0usize);
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        for i in 0..n {
            for (p, &v) in flat[i * n..(i + 1) * n].iter().enumerate() {
                if v != 0.0 {
                    cols.push(p);
                    vals.push(v);
                }
            }
            row_ptr.push(cols.len());
        }
        SparseGap::from_csr(n, row_ptr, cols, vals)
    }

    /// Stored entries of row `i`: `(columns, values)`, columns ascending.
    #[inline]
    pub fn row(&self, i: usize) -> (&[usize], &[f64]) {
        let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
        (&self.cols[lo..hi], &self.vals[lo..hi])
    }

    /// Stored entries of column `p`: `(rows, values)`, rows ascending.
    #[inline]
    pub fn col(&self, p: usize) -> (&[usize], &[f64]) {
        let (lo, hi) = (self.col_ptr[p], self.col_ptr[p + 1]);
        (&self.rows[lo..hi], &self.tvals[lo..hi])
    }

    /// The value at `(i, p)` (0 for cells not stored).
    pub fn get(&self, i: usize, p: usize) -> f64 {
        let (cols, vals) = self.row(i);
        match cols.binary_search(&p) {
            Ok(k) => vals[k],
            Err(_) => 0.0,
        }
    }

    /// Number of stored cells.
    pub fn nnz(&self) -> usize {
        self.cols.len()
    }

    /// The raw CSR triplet `(row_ptr, cols, vals)` this gap stores — the
    /// stored-cell structure incremental maintenance splices.
    pub fn csr(&self) -> (&[usize], &[usize], &[f64]) {
        (&self.row_ptr, &self.cols, &self.vals)
    }
}

/// One layer gap's conditional matrix, in whichever layout the builder
/// selected.
#[derive(Debug, Clone, PartialEq)]
pub enum GapStorage {
    /// Flattened row-major `E x E` conditional probabilities.
    Dense(Vec<f64>),
    /// CSR (plus a CSC companion index) over the structural nonzeros.
    Sparse(SparseGap),
}

impl GapStorage {
    /// Whether this gap is stored as CSR.
    pub fn is_sparse(&self) -> bool {
        matches!(self, GapStorage::Sparse(_))
    }
}

/// The stored-cell CSR structure of a *dense*-stored gap.
///
/// [`Objective::apply_snapshot_delta`] splices whole rows of the
/// stored-cell structure (exactly what the snapshot emits, including any
/// explicitly stored zeros), which the flat array alone cannot represent.
/// Sparse-stored gaps already carry this structure inside [`SparseGap`],
/// so their mirror stays empty.
#[derive(Debug, Clone, Default, PartialEq)]
struct CsrMirror {
    row_ptr: Vec<usize>,
    cols: Vec<usize>,
    vals: Vec<f64>,
}

impl CsrMirror {
    fn from_parts(row_ptr: Vec<usize>, cols: Vec<usize>, vals: Vec<f64>) -> Self {
        CsrMirror {
            row_ptr,
            cols,
            vals,
        }
    }

    /// Derive the structure of a flattened dense matrix (every nonzero
    /// cell is a stored cell).
    fn from_flat(flat: &[f64], n: usize) -> Self {
        let mut row_ptr = Vec::with_capacity(n + 1);
        row_ptr.push(0usize);
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        for i in 0..n {
            for (p, &v) in flat[i * n..(i + 1) * n].iter().enumerate() {
                if v != 0.0 {
                    cols.push(p);
                    vals.push(v);
                }
            }
            row_ptr.push(cols.len());
        }
        CsrMirror {
            row_ptr,
            cols,
            vals,
        }
    }
}

fn count_nnz(flat: &[f64]) -> usize {
    flat.iter().filter(|&&v| v != 0.0).count()
}

fn pick_sparse(nnz: usize, e: usize, backend: GapBackend) -> bool {
    match backend {
        GapBackend::Dense => false,
        GapBackend::Sparse => true,
        GapBackend::Auto => (nnz as f64) < SPARSE_DENSITY_THRESHOLD * (e * e) as f64,
    }
}

/// The placement objective: expected number of cross-unit transitions per
/// token per forward pass, computed from consecutive-layer affinity
/// matrices.
///
/// This is the expectation of the paper's formula 8 (`Σ_k Σ_j R_{k,j}`)
/// under the estimated routing distribution. Each source expert's row is
/// weighted by its *empirical marginal* (its share of traced tokens at that
/// layer): for the GShard-balanced models the paper studies this is simply
/// `1/E`, but it stays correct for skewed checkpoints (early training,
/// Fig. 12a) where a uniform weighting would dilute the objective with
/// never-visited experts.
///
/// Gaps are stored behind [`GapStorage`]: dense `E x E` or CSR, selected
/// by the builder ([`GapBackend`]); all evaluations are bit-identical
/// across backends.
#[derive(Debug, Clone, PartialEq)]
pub struct Objective {
    n_experts: usize,
    /// The backend policy the objective was built with; re-applied when a
    /// window delta moves a gap across the `Auto` density threshold.
    backend: GapBackend,
    /// Per-gap conditional matrix (dense or CSR).
    gaps: Vec<GapStorage>,
    /// Stored-cell CSR mirror for dense-stored gaps (empty for sparse
    /// gaps, which carry their structure themselves).
    csr: Vec<CsrMirror>,
    /// Per-gap source-expert marginal weights (each sums to 1).
    weights: Vec<Vec<f64>>,
    /// Per-gap structural nonzero count (backend-independent).
    nnz: Vec<usize>,
}

impl Objective {
    /// Build from consecutive-layer affinity matrices (length `L - 1`,
    /// ordered by layer), weighting each row by its observed marginal.
    /// Storage is selected per gap by [`GapBackend::Auto`].
    pub fn from_affinities(matrices: &[AffinityMatrix]) -> Self {
        Self::from_affinities_with(matrices, GapBackend::Auto)
    }

    /// [`Objective::from_affinities`] with an explicit backend override.
    pub fn from_affinities_with(matrices: &[AffinityMatrix], backend: GapBackend) -> Self {
        assert!(!matrices.is_empty(), "need at least one layer gap");
        let e = matrices[0].n_experts();
        let mut gaps = Vec::with_capacity(matrices.len());
        let mut csr = Vec::with_capacity(matrices.len());
        let mut weights = Vec::with_capacity(matrices.len());
        let mut nnz = Vec::with_capacity(matrices.len());
        for m in matrices {
            assert_eq!(m.n_experts(), e, "matrices must agree on expert count");
            let mut flat = Vec::with_capacity(e * e);
            for i in 0..e {
                flat.extend_from_slice(m.row(i));
            }
            let gap_nnz = count_nnz(&flat);
            gaps.push(if pick_sparse(gap_nnz, e, backend) {
                csr.push(CsrMirror::default());
                GapStorage::Sparse(SparseGap::from_dense(&flat, e))
            } else {
                csr.push(CsrMirror::from_flat(&flat, e));
                GapStorage::Dense(flat)
            });
            nnz.push(gap_nnz);
            let total: u64 = (0..e).map(|i| m.row_count(i)).sum();
            weights.push(if total == 0 {
                vec![1.0 / e as f64; e]
            } else {
                (0..e)
                    .map(|i| m.row_count(i) as f64 / total as f64)
                    .collect()
            });
        }
        Objective {
            n_experts: e,
            backend,
            gaps,
            csr,
            weights,
            nnz,
        }
    }

    /// Build from CSR affinity estimates without ever materializing the
    /// dense `E x E` tables (the large-expert path). Defines the same
    /// objective — bit for bit — as [`Objective::from_affinities`] on the
    /// dense estimates of the same trace. Storage is selected per gap by
    /// [`GapBackend::Auto`].
    pub fn from_sparse_affinities(matrices: &[SparseAffinity]) -> Self {
        Self::from_sparse_affinities_with(matrices, GapBackend::Auto)
    }

    /// [`Objective::from_sparse_affinities`] with an explicit backend
    /// override (`Dense` expands the CSR estimates).
    pub fn from_sparse_affinities_with(matrices: &[SparseAffinity], backend: GapBackend) -> Self {
        assert!(!matrices.is_empty(), "need at least one layer gap");
        let e = matrices[0].n_experts();
        let mut gaps = Vec::with_capacity(matrices.len());
        let mut csr = Vec::with_capacity(matrices.len());
        let mut weights = Vec::with_capacity(matrices.len());
        let mut nnz = Vec::with_capacity(matrices.len());
        for m in matrices {
            assert_eq!(m.n_experts(), e, "matrices must agree on expert count");
            let gap_nnz = m.nnz();
            let (row_ptr, cols, vals) = m.csr();
            gaps.push(if pick_sparse(gap_nnz, e, backend) {
                csr.push(CsrMirror::default());
                GapStorage::Sparse(SparseGap::from_csr(
                    e,
                    row_ptr.to_vec(),
                    cols.to_vec(),
                    vals.to_vec(),
                ))
            } else {
                csr.push(CsrMirror::from_parts(
                    row_ptr.to_vec(),
                    cols.to_vec(),
                    vals.to_vec(),
                ));
                GapStorage::Dense(m.to_dense_probs())
            });
            nnz.push(gap_nnz);
            let total: u64 = (0..e).map(|i| m.row_count(i)).sum();
            weights.push(if total == 0 {
                vec![1.0 / e as f64; e]
            } else {
                (0..e)
                    .map(|i| m.row_count(i) as f64 / total as f64)
                    .collect()
            });
        }
        Objective {
            n_experts: e,
            backend,
            gaps,
            csr,
            weights,
            nnz,
        }
    }

    /// Build from a frozen [`AffinitySnapshot`] of the online streaming
    /// estimator — the re-placement path of the online serving mode.
    /// Conditional rows come in CSR form and source marginals come from
    /// the snapshot's decayed row mass, so a snapshot of a single
    /// undecayed window defines the same objective — bit for bit — as
    /// [`Objective::from_sparse_affinities`] on that window's trace.
    /// Storage is selected per gap by [`GapBackend::Auto`].
    pub fn from_snapshot(snapshot: &AffinitySnapshot) -> Self {
        Self::from_snapshot_with(snapshot, GapBackend::Auto)
    }

    /// [`Objective::from_snapshot`] with an explicit backend override
    /// (`Dense` expands the CSR rows).
    pub fn from_snapshot_with(snapshot: &AffinitySnapshot, backend: GapBackend) -> Self {
        let e = snapshot.n_experts();
        let mut gaps = Vec::with_capacity(snapshot.n_gaps());
        let mut csr = Vec::with_capacity(snapshot.n_gaps());
        let mut weights = Vec::with_capacity(snapshot.n_gaps());
        let mut nnz = Vec::with_capacity(snapshot.n_gaps());
        for gap in 0..snapshot.n_gaps() {
            let (row_ptr, cols, probs) = snapshot.gap_csr(gap);
            let gap_nnz = cols.len();
            gaps.push(if pick_sparse(gap_nnz, e, backend) {
                csr.push(CsrMirror::default());
                GapStorage::Sparse(SparseGap::from_csr(
                    e,
                    row_ptr.to_vec(),
                    cols.to_vec(),
                    probs.to_vec(),
                ))
            } else {
                csr.push(CsrMirror::from_parts(
                    row_ptr.to_vec(),
                    cols.to_vec(),
                    probs.to_vec(),
                ));
                let mut flat = vec![0.0f64; e * e];
                for i in 0..e {
                    for idx in row_ptr[i]..row_ptr[i + 1] {
                        flat[i * e + cols[idx]] = probs[idx];
                    }
                }
                GapStorage::Dense(flat)
            });
            nnz.push(gap_nnz);
            weights.push(snapshot.gap_weights(gap).to_vec());
        }
        Objective {
            n_experts: e,
            backend,
            gaps,
            csr,
            weights,
            nnz,
        }
    }

    /// Build from raw flattened transition matrices (each row-stochastic
    /// `E x E`), e.g. a routing model's exact transitions, with uniform
    /// (balanced) source marginals. An empty `gaps` list models a
    /// single-layer (L = 1) instance with no transitions at all. Storage
    /// is selected per gap by [`GapBackend::Auto`].
    pub fn from_raw(gaps: Vec<Vec<f64>>, n_experts: usize) -> Self {
        Self::from_raw_with(gaps, n_experts, GapBackend::Auto)
    }

    /// [`Objective::from_raw`] with an explicit backend override.
    pub fn from_raw_with(gaps: Vec<Vec<f64>>, n_experts: usize, backend: GapBackend) -> Self {
        assert!(n_experts >= 1);
        for g in &gaps {
            assert_eq!(g.len(), n_experts * n_experts);
        }
        let weights = vec![vec![1.0 / n_experts as f64; n_experts]; gaps.len()];
        let nnz: Vec<usize> = gaps.iter().map(|g| count_nnz(g)).collect();
        let mut csr = Vec::with_capacity(gaps.len());
        let gaps = gaps
            .into_iter()
            .zip(&nnz)
            .map(|(flat, &gap_nnz)| {
                if pick_sparse(gap_nnz, n_experts, backend) {
                    csr.push(CsrMirror::default());
                    GapStorage::Sparse(SparseGap::from_dense(&flat, n_experts))
                } else {
                    csr.push(CsrMirror::from_flat(&flat, n_experts));
                    GapStorage::Dense(flat)
                }
            })
            .collect();
        Objective {
            n_experts,
            backend,
            gaps,
            csr,
            weights,
            nnz,
        }
    }

    /// Fold a [`SnapshotDelta`] — the rows one streaming window actually
    /// changed — into the objective **in place**, instead of rebuilding it
    /// from the full snapshot.
    ///
    /// Postcondition (the incremental-maintenance contract, enforced by
    /// unit tests here and the cross-crate proptests): after this call the
    /// objective equals `Objective::from_snapshot_with(&s, backend)` —
    /// bit for bit — where `s` is the snapshot the estimator would freeze
    /// after the same `observe` call that produced the delta. That holds
    /// for values, for the storage choice (the `Auto` density rule is
    /// re-applied with the updated stored-cell count, so a gap can flip
    /// layout mid-stream), and therefore for every downstream evaluation
    /// (`cross_mass`, `swap_delta`, the solvers).
    ///
    /// Work is `O(touched-row cells)` of float stores plus an integer
    /// memcpy/counting-sort pass over the gap's stored cells when its CSR
    /// structure shifts; no floating-point arithmetic happens at all —
    /// stored probabilities move verbatim, which is what makes the
    /// bit-identity structural rather than numerical.
    pub fn apply_snapshot_delta(&mut self, delta: &SnapshotDelta) {
        assert_eq!(
            delta.n_experts(),
            self.n_experts,
            "delta expert count mismatch"
        );
        assert_eq!(delta.n_gaps(), self.gaps.len(), "delta gap count mismatch");
        let e = self.n_experts;
        for gap in 0..self.gaps.len() {
            // Marginal weights shift globally whenever any mass decays, so
            // the delta always carries each gap's vector whole.
            self.weights[gap].clear();
            self.weights[gap].extend_from_slice(delta.gap_weights(gap));
            let rows = delta.touched_rows(gap);
            if rows.is_empty() {
                continue;
            }
            // Splice the stored-cell CSR: untouched rows are copied from
            // the current structure, touched rows come from the fragment.
            let (old_row_ptr, old_cols, old_vals) = match &self.gaps[gap] {
                GapStorage::Sparse(s) => s.csr(),
                GapStorage::Dense(_) => (
                    self.csr[gap].row_ptr.as_slice(),
                    self.csr[gap].cols.as_slice(),
                    self.csr[gap].vals.as_slice(),
                ),
            };
            let mut row_ptr = Vec::with_capacity(e + 1);
            row_ptr.push(0usize);
            let mut cols = Vec::with_capacity(old_cols.len());
            let mut vals = Vec::with_capacity(old_vals.len());
            let mut k = 0usize;
            for i in 0..e {
                if k < rows.len() && rows[k] == i {
                    let (fc, fv) = delta.fragment(gap, k);
                    cols.extend_from_slice(fc);
                    vals.extend_from_slice(fv);
                    k += 1;
                } else {
                    let (lo, hi) = (old_row_ptr[i], old_row_ptr[i + 1]);
                    cols.extend_from_slice(&old_cols[lo..hi]);
                    vals.extend_from_slice(&old_vals[lo..hi]);
                }
                row_ptr.push(cols.len());
            }
            debug_assert_eq!(k, rows.len(), "delta rows must be ascending in [0, E)");
            let gap_nnz = cols.len();
            self.nnz[gap] = gap_nnz;
            if pick_sparse(gap_nnz, e, self.backend) {
                // CSR gap (or a dense gap the Auto rule just flipped):
                // adopt the spliced arrays; the CSC companion is re-derived
                // by the same integer counting sort `from_snapshot` runs.
                self.gaps[gap] = GapStorage::Sparse(SparseGap::from_csr(e, row_ptr, cols, vals));
                self.csr[gap] = CsrMirror::default();
            } else {
                match &mut self.gaps[gap] {
                    GapStorage::Dense(flat) => {
                        // The truly in-place path: rewrite only touched rows.
                        for (k, &i) in rows.iter().enumerate() {
                            let (fc, fv) = delta.fragment(gap, k);
                            let row = &mut flat[i * e..(i + 1) * e];
                            row.fill(0.0);
                            for (&c, &v) in fc.iter().zip(fv) {
                                row[c] = v;
                            }
                        }
                    }
                    GapStorage::Sparse(_) => {
                        // Auto flipped CSR -> dense: expand, as from_snapshot does.
                        let mut flat = vec![0.0f64; e * e];
                        for i in 0..e {
                            for idx in row_ptr[i]..row_ptr[i + 1] {
                                flat[i * e + cols[idx]] = vals[idx];
                            }
                        }
                        self.gaps[gap] = GapStorage::Dense(flat);
                    }
                }
                self.csr[gap] = CsrMirror {
                    row_ptr,
                    cols,
                    vals,
                };
            }
        }
    }

    /// The backend policy this objective was built with.
    pub fn backend(&self) -> GapBackend {
        self.backend
    }

    /// Experts per layer.
    pub fn n_experts(&self) -> usize {
        self.n_experts
    }

    /// Number of layer gaps (`L - 1`).
    pub fn n_gaps(&self) -> usize {
        self.gaps.len()
    }

    /// Number of layers (`gaps + 1`).
    pub fn n_layers(&self) -> usize {
        self.gaps.len() + 1
    }

    /// The storage one gap was built into.
    pub fn gap_storage(&self, gap: usize) -> &GapStorage {
        &self.gaps[gap]
    }

    /// Whether `gap` is stored as CSR.
    pub fn gap_is_sparse(&self, gap: usize) -> bool {
        self.gaps[gap].is_sparse()
    }

    /// Structural nonzeros of one gap's conditional matrix
    /// (backend-independent).
    pub fn gap_nnz(&self, gap: usize) -> usize {
        self.nnz[gap]
    }

    /// Structural nonzeros across all gaps.
    pub fn nnz(&self) -> usize {
        self.nnz.iter().sum()
    }

    /// `nnz` over the dense cell count (`gaps x E^2`); 0 for a gapless
    /// (single-layer) objective.
    pub fn density(&self) -> f64 {
        if self.gaps.is_empty() {
            return 0.0;
        }
        self.nnz() as f64 / (self.gaps.len() * self.n_experts * self.n_experts) as f64
    }

    /// The conditional probability `P(expert p at layer gap+1 | expert i at
    /// layer gap)` this objective was built from. `O(1)` dense,
    /// `O(log row-nnz)` sparse.
    #[inline]
    pub fn gap_prob(&self, gap: usize, i: usize, p: usize) -> f64 {
        match &self.gaps[gap] {
            GapStorage::Dense(m) => m[i * self.n_experts + p],
            GapStorage::Sparse(s) => s.get(i, p),
        }
    }

    /// The marginal weight of source expert `i` at layer `gap` (its share
    /// of traced tokens; `1/E` for balanced models).
    #[inline]
    pub fn row_weight(&self, gap: usize, i: usize) -> f64 {
        self.weights[gap][i]
    }

    /// Visit the structurally nonzero entries of one conditional row in
    /// ascending column order: `f(p, P(p | i))`. `O(row-nnz)` sparse,
    /// `O(E)` dense (zero cells are skipped either way — they cannot
    /// change any sum this crate accumulates).
    #[inline]
    pub fn for_each_in_row<F: FnMut(usize, f64)>(&self, gap: usize, i: usize, mut f: F) {
        let e = self.n_experts;
        match &self.gaps[gap] {
            GapStorage::Dense(m) => {
                for (p, &v) in m[i * e..(i + 1) * e].iter().enumerate() {
                    if v != 0.0 {
                        f(p, v);
                    }
                }
            }
            GapStorage::Sparse(s) => {
                let (cols, vals) = s.row(i);
                for (&p, &v) in cols.iter().zip(vals) {
                    f(p, v);
                }
            }
        }
    }

    /// Visit the structurally nonzero entries of one conditional *column*
    /// in ascending row order: `f(i, P(p | i))` — the predecessor set the
    /// swap-gain cache invalidates when expert `p` moves. `O(col-nnz)`
    /// sparse (via the CSC companion), `O(E)` dense.
    #[inline]
    pub fn for_each_in_col<F: FnMut(usize, f64)>(&self, gap: usize, p: usize, mut f: F) {
        let e = self.n_experts;
        match &self.gaps[gap] {
            GapStorage::Dense(m) => {
                for i in 0..e {
                    let v = m[i * e + p];
                    if v != 0.0 {
                        f(i, v);
                    }
                }
            }
            GapStorage::Sparse(s) => {
                let (rows, vals) = s.col(p);
                for (&i, &v) in rows.iter().zip(vals) {
                    f(i, v);
                }
            }
        }
    }

    /// Expected cross-unit transitions per token across the whole forward
    /// pass (lower is better; range `[0, L-1]`). `O(nnz)` on sparse gaps.
    pub fn cross_mass(&self, placement: &Placement) -> f64 {
        assert_eq!(placement.n_layers(), self.n_layers());
        assert_eq!(placement.n_experts(), self.n_experts);
        let e = self.n_experts;
        let mut total = 0.0f64;
        for (gap, storage) in self.gaps.iter().enumerate() {
            for i in 0..e {
                let w = self.weights[gap][i];
                if w == 0.0 {
                    continue;
                }
                let ui = placement.unit_of(gap, i);
                let mut cross = 0.0f64;
                match storage {
                    GapStorage::Dense(m) => {
                        for (p, &prob) in m[i * e..(i + 1) * e].iter().enumerate() {
                            if placement.unit_of(gap + 1, p) != ui {
                                cross += prob;
                            }
                        }
                    }
                    GapStorage::Sparse(s) => {
                        let (cols, vals) = s.row(i);
                        for (&p, &prob) in cols.iter().zip(vals) {
                            if placement.unit_of(gap + 1, p) != ui {
                                cross += prob;
                            }
                        }
                    }
                }
                total += w * cross;
            }
        }
        total
    }

    /// Expected fraction of layer transitions that stay on their unit
    /// (`1 - cross_mass / (L-1)`; the quantity behind the paper's Fig. 7
    /// bars). A single-layer model (no gaps) has no transitions to lose,
    /// so everything is local: 1.0, not the `0/0` NaN the naive formula
    /// yields.
    pub fn local_fraction(&self, placement: &Placement) -> f64 {
        if self.n_gaps() == 0 {
            assert_eq!(placement.n_layers(), self.n_layers());
            assert_eq!(placement.n_experts(), self.n_experts);
            return 1.0;
        }
        1.0 - self.cross_mass(placement) / self.n_gaps() as f64
    }

    /// Change in [`Objective::cross_mass`] if `e1` and `e2` swapped units
    /// at `layer` (negative = improvement). `O(E)` dense — the enabler for
    /// large-instance local search — and `O(col-nnz + row-nnz)` sparse:
    /// the incoming direction walks the CSC index of columns `e1`/`e2`,
    /// the outgoing direction merges the CSR rows.
    pub fn swap_delta(&self, placement: &Placement, layer: usize, e1: usize, e2: usize) -> f64 {
        let e = self.n_experts;
        let u1 = placement.unit_of(layer, e1);
        let u2 = placement.unit_of(layer, e2);
        if u1 == u2 || e1 == e2 {
            return 0.0;
        }
        let mut delta = 0.0f64;
        // Incoming gap: transitions from layer-1 experts into e1/e2.
        if layer > 0 {
            let gap = layer - 1;
            let weights = &self.weights[gap];
            match &self.gaps[gap] {
                GapStorage::Dense(m) => {
                    for (i, &w) in weights.iter().enumerate() {
                        if w == 0.0 {
                            continue;
                        }
                        let ui = placement.unit_of(gap, i);
                        let p1 = m[i * e + e1];
                        let p2 = m[i * e + e2];
                        let before = f64::from(u1 != ui) * p1 + f64::from(u2 != ui) * p2;
                        let after = f64::from(u2 != ui) * p1 + f64::from(u1 != ui) * p2;
                        delta += w * (after - before);
                    }
                }
                GapStorage::Sparse(s) => {
                    let (r1, v1) = s.col(e1);
                    let (r2, v2) = s.col(e2);
                    merge_indexed(r1, v1, r2, v2, |i, p1, p2| {
                        let w = weights[i];
                        if w == 0.0 {
                            return;
                        }
                        let ui = placement.unit_of(gap, i);
                        let before = f64::from(u1 != ui) * p1 + f64::from(u2 != ui) * p2;
                        let after = f64::from(u2 != ui) * p1 + f64::from(u1 != ui) * p2;
                        delta += w * (after - before);
                    });
                }
            }
        }
        // Outgoing gap: transitions from e1/e2 into layer+1 experts, each
        // row carrying its own marginal weight.
        if layer + 1 < self.n_layers() {
            let w1 = self.weights[layer][e1];
            let w2 = self.weights[layer][e2];
            match &self.gaps[layer] {
                GapStorage::Dense(m) => {
                    for p in 0..e {
                        let up = placement.unit_of(layer + 1, p);
                        let p1 = m[e1 * e + p];
                        let p2 = m[e2 * e + p];
                        let before = w1 * f64::from(up != u1) * p1 + w2 * f64::from(up != u2) * p2;
                        let after = w1 * f64::from(up != u2) * p1 + w2 * f64::from(up != u1) * p2;
                        delta += after - before;
                    }
                }
                GapStorage::Sparse(s) => {
                    let (c1, v1) = s.row(e1);
                    let (c2, v2) = s.row(e2);
                    merge_indexed(c1, v1, c2, v2, |p, p1, p2| {
                        let up = placement.unit_of(layer + 1, p);
                        let before = w1 * f64::from(up != u1) * p1 + w2 * f64::from(up != u2) * p2;
                        let after = w1 * f64::from(up != u2) * p1 + w2 * f64::from(up != u1) * p2;
                        delta += after - before;
                    });
                }
            }
        }
        delta
    }
}

/// Walk two index-sorted sparse vectors in lockstep, calling
/// `f(index, value_a, value_b)` for every index present in either (the
/// absent side contributes 0.0). The indices f sees are strictly
/// ascending — the same order the dense loops visit them in, which is
/// what keeps sparse and dense accumulation bit-identical.
#[inline]
fn merge_indexed<F: FnMut(usize, f64, f64)>(
    ia: &[usize],
    va: &[f64],
    ib: &[usize],
    vb: &[f64],
    mut f: F,
) {
    let (mut a, mut b) = (0usize, 0usize);
    while a < ia.len() || b < ib.len() {
        let ka = if a < ia.len() { ia[a] } else { usize::MAX };
        let kb = if b < ib.len() { ib[b] } else { usize::MAX };
        if ka < kb {
            f(ka, va[a], 0.0);
            a += 1;
        } else if kb < ka {
            f(kb, 0.0, vb[b]);
            b += 1;
        } else {
            f(ka, va[a], vb[b]);
            a += 1;
            b += 1;
        }
    }
}

/// Realized locality of a placement on a concrete routing trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceLocality {
    /// Total layer transitions counted (`tokens x (L-1)`).
    pub transitions: u64,
    /// Transitions where the next expert lived on the same unit.
    pub local: u64,
}

impl TraceLocality {
    /// Fraction of transitions that stayed unit-local.
    pub fn fraction(&self) -> f64 {
        if self.transitions == 0 {
            1.0
        } else {
            self.local as f64 / self.transitions as f64
        }
    }
}

/// Count, over a concrete trace, how many layer transitions stay on their
/// unit under `placement` (the measured counterpart of
/// [`Objective::local_fraction`]; the paper's "% tokens staying on the same
/// GPU", Fig. 7).
pub fn measure_trace_locality(trace: &RoutingTrace, placement: &Placement) -> TraceLocality {
    assert_eq!(trace.n_layers(), placement.n_layers());
    assert_eq!(trace.n_experts(), placement.n_experts());
    let mut local = 0u64;
    let mut transitions = 0u64;
    for t in 0..trace.n_tokens() {
        for j in 0..trace.n_layers() - 1 {
            let a = placement.unit_of(j, trace.expert_at(t, j));
            let b = placement.unit_of(j + 1, trace.expert_at(t, j + 1));
            transitions += 1;
            if a == b {
                local += 1;
            }
        }
    }
    TraceLocality { transitions, local }
}

/// Like [`measure_trace_locality`] but at node granularity: `placement`
/// assigns experts to GPUs (node-major ranks, `gpus_per_node` each) and a
/// transition counts as local when both GPUs share a node (Fig. 8).
pub fn measure_trace_node_locality(
    trace: &RoutingTrace,
    placement: &Placement,
    gpus_per_node: usize,
) -> TraceLocality {
    assert!(gpus_per_node >= 1 && placement.n_units().is_multiple_of(gpus_per_node));
    let mut local = 0u64;
    let mut transitions = 0u64;
    for t in 0..trace.n_tokens() {
        for j in 0..trace.n_layers() - 1 {
            let a = placement.unit_of(j, trace.expert_at(t, j)) / gpus_per_node;
            let b = placement.unit_of(j + 1, trace.expert_at(t, j + 1)) / gpus_per_node;
            transitions += 1;
            if a == b {
                local += 1;
            }
        }
    }
    TraceLocality { transitions, local }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Identity affinity: expert i always routes to expert i next.
    fn identity_objective(e: usize, gaps: usize) -> Objective {
        let mut m = vec![0.0f64; e * e];
        for i in 0..e {
            m[i * e + i] = 1.0;
        }
        Objective::from_raw(vec![m; gaps], e)
    }

    /// Shift affinity: expert i routes to (i+1) mod E.
    fn shift_objective(e: usize, gaps: usize) -> Objective {
        let mut m = vec![0.0f64; e * e];
        for i in 0..e {
            m[i * e + (i + 1) % e] = 1.0;
        }
        Objective::from_raw(vec![m; gaps], e)
    }

    /// A dense-ish random row-stochastic matrix.
    fn dense_matrix(e: usize) -> Vec<f64> {
        let mut m = vec![0.0f64; e * e];
        for i in 0..e {
            for p in 0..e {
                m[i * e + p] = ((i * 7 + p * 3) % 11) as f64 + 1.0;
            }
            let s: f64 = m[i * e..(i + 1) * e].iter().sum();
            for p in 0..e {
                m[i * e + p] /= s;
            }
        }
        m
    }

    #[test]
    fn identity_affinity_makes_round_robin_perfect() {
        let obj = identity_objective(8, 3);
        let p = Placement::round_robin(4, 8, 4);
        assert!(obj.cross_mass(&p) < 1e-12);
        assert!((obj.local_fraction(&p) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shift_affinity_breaks_round_robin_at_boundaries() {
        // Capacity 2, shift-by-one: expert 1 -> 2 crosses, 3 -> 4 crosses,
        // etc. Half the experts cross per gap.
        let obj = shift_objective(8, 1);
        let p = Placement::round_robin(2, 8, 4);
        assert!((obj.cross_mass(&p) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cross_mass_bounded_by_gaps() {
        let obj = shift_objective(4, 5);
        let p = Placement::round_robin(6, 4, 4); // capacity 1: every shift crosses
        assert!((obj.cross_mass(&p) - 5.0).abs() < 1e-12);
        assert!(obj.local_fraction(&p).abs() < 1e-12);
    }

    #[test]
    fn auto_selection_follows_the_density_threshold() {
        // Identity: density 1/8 << threshold -> sparse.
        let sparse = identity_objective(8, 2);
        assert!(sparse.gap_is_sparse(0) && sparse.gap_is_sparse(1));
        assert!((sparse.density() - 1.0 / 8.0).abs() < 1e-12);
        // Fully dense random matrix: density 1.0 -> dense.
        let dense = Objective::from_raw(vec![dense_matrix(6)], 6);
        assert!(!dense.gap_is_sparse(0));
        assert_eq!(dense.nnz(), 36);
    }

    #[test]
    fn explicit_backend_overrides_auto() {
        let m = dense_matrix(6);
        let forced = Objective::from_raw_with(vec![m.clone()], 6, GapBackend::Sparse);
        assert!(forced.gap_is_sparse(0));
        let forced_dense = Objective::from_raw_with(vec![vec![0.0; 36]], 6, GapBackend::Dense);
        assert!(!forced_dense.gap_is_sparse(0));
    }

    #[test]
    fn backends_agree_bitwise_on_everything() {
        let e = 8;
        let mut m = vec![0.0f64; e * e];
        for i in 0..e {
            m[i * e + (i + 1) % e] = 0.6;
            m[i * e + (i + 3) % e] = 0.4;
        }
        let dense = Objective::from_raw_with(vec![m.clone(), m.clone()], e, GapBackend::Dense);
        let sparse = Objective::from_raw_with(vec![m.clone(), m], e, GapBackend::Sparse);
        let p = Placement::round_robin(3, e, 4);
        assert_eq!(
            dense.cross_mass(&p).to_bits(),
            sparse.cross_mass(&p).to_bits()
        );
        for layer in 0..3 {
            for e1 in 0..e {
                for e2 in 0..e {
                    assert_eq!(
                        dense.swap_delta(&p, layer, e1, e2).to_bits(),
                        sparse.swap_delta(&p, layer, e1, e2).to_bits(),
                        "swap({layer},{e1},{e2})"
                    );
                    assert_eq!(
                        dense.gap_prob(layer.min(1), e1, e2).to_bits(),
                        sparse.gap_prob(layer.min(1), e1, e2).to_bits()
                    );
                }
            }
        }
    }

    #[test]
    fn row_iteration_skips_zeros_in_column_order() {
        let obj = shift_objective(6, 1);
        for backend in [GapBackend::Dense, GapBackend::Sparse] {
            let mut m = vec![0.0f64; 36];
            for i in 0..6 {
                m[i * 6 + (i + 1) % 6] = 1.0;
            }
            let o = Objective::from_raw_with(vec![m], 6, backend);
            let mut seen = Vec::new();
            o.for_each_in_row(0, 2, |p, v| seen.push((p, v)));
            assert_eq!(seen, vec![(3, 1.0)], "{backend:?}");
        }
        assert_eq!(obj.gap_nnz(0), 6);
    }

    #[test]
    fn single_layer_objective_is_fully_local() {
        // L = 1: no gaps, no transitions — the naive formula would be 0/0.
        let obj = Objective::from_raw(vec![], 8);
        assert_eq!(obj.n_layers(), 1);
        assert_eq!(obj.n_gaps(), 0);
        let p = Placement::round_robin(1, 8, 4);
        assert_eq!(obj.cross_mass(&p), 0.0);
        let f = obj.local_fraction(&p);
        assert_eq!(f, 1.0, "single-layer locality must be 1.0, got {f}");
        assert!(!f.is_nan());
        assert_eq!(obj.density(), 0.0);
    }

    #[test]
    fn swap_delta_matches_recomputation() {
        // Random-ish dense matrix; verify delta == full recompute diff on
        // both backends.
        let e = 6;
        let m = dense_matrix(e);
        for backend in [GapBackend::Dense, GapBackend::Sparse] {
            let obj = Objective::from_raw_with(vec![m.clone(), m.clone()], e, backend);
            let p = Placement::round_robin(3, e, 3);
            for layer in 0..3 {
                for e1 in 0..e {
                    for e2 in 0..e {
                        let delta = obj.swap_delta(&p, layer, e1, e2);
                        let mut q = p.clone();
                        q.swap(layer, e1, e2);
                        let full = obj.cross_mass(&q) - obj.cross_mass(&p);
                        assert!(
                            (delta - full).abs() < 1e-12,
                            "{backend:?} layer {layer} swap({e1},{e2}): delta {delta} vs {full}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn swap_delta_is_symmetric_bitwise() {
        // The swap-gain cache stores entries on the unordered pair, which
        // is sound only if both argument orders produce the same bits
        // (IEEE addition is commutative and both orders visit indices
        // ascending).
        let e = 8;
        let m = dense_matrix(e);
        for backend in [GapBackend::Dense, GapBackend::Sparse] {
            let obj = Objective::from_raw_with(vec![m.clone(), m.clone()], e, backend);
            let p = Placement::round_robin(3, e, 4);
            for layer in 0..3 {
                for e1 in 0..e {
                    for e2 in 0..e {
                        assert_eq!(
                            obj.swap_delta(&p, layer, e1, e2).to_bits(),
                            obj.swap_delta(&p, layer, e2, e1).to_bits(),
                            "{backend:?} swap({layer},{e1},{e2})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn swap_same_unit_is_free() {
        let obj = identity_objective(4, 2);
        let p = Placement::round_robin(3, 4, 2);
        // Experts 0,1 share unit 0.
        assert_eq!(obj.swap_delta(&p, 1, 0, 1), 0.0);
    }

    #[test]
    fn trace_locality_counts_by_hand() {
        let trace = RoutingTrace::new(vec![vec![0, 1, 2], vec![3, 3, 3]], 4);
        let p = Placement::round_robin(3, 4, 2); // units: {0,1}, {2,3}
                                                 // Token 0: 0->1 local, 1->2 cross. Token 1: 3->3 local, 3->3 local.
        let loc = measure_trace_locality(&trace, &p);
        assert_eq!(loc.transitions, 4);
        assert_eq!(loc.local, 3);
        assert!((loc.fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn node_locality_is_coarser_than_gpu() {
        let trace = RoutingTrace::new(vec![vec![0, 1], vec![0, 3]], 4);
        let p = Placement::round_robin(2, 4, 4); // 1 expert per GPU
        let gpu = measure_trace_locality(&trace, &p);
        let node = measure_trace_node_locality(&trace, &p, 2); // 2 GPUs/node
                                                               // 0->1 crosses GPU but stays on node; 0->3 crosses both.
        assert_eq!(gpu.local, 0);
        assert_eq!(node.local, 1);
        assert!(node.fraction() >= gpu.fraction());
    }

    #[test]
    fn expected_and_measured_locality_agree_on_large_traces() {
        use exflow_model::routing::AffinityModelSpec;
        use exflow_model::{CorpusSpec, TokenBatch};
        let model = AffinityModelSpec::new(6, 8).with_affinity(0.7).build();
        let batch = TokenBatch::sample(&model, &CorpusSpec::pile_proxy(4), 20_000, 1, 3);
        let trace = RoutingTrace::from_batch(&batch, 8);
        let mats = AffinityMatrix::consecutive(&trace);
        let obj = Objective::from_affinities(&mats);
        let p = Placement::round_robin(6, 8, 4);
        let expected = obj.local_fraction(&p);
        let measured = measure_trace_locality(&trace, &p).fraction();
        assert!(
            (expected - measured).abs() < 0.02,
            "expected {expected} vs measured {measured}"
        );
    }

    #[test]
    fn snapshot_build_matches_offline_build_bitwise() {
        use exflow_affinity::StreamingAffinity;
        use exflow_model::routing::AffinityModelSpec;
        use exflow_model::{CorpusSpec, TokenBatch};
        let model = AffinityModelSpec::new(4, 16).with_affinity(0.9).build();
        let batch = TokenBatch::sample(&model, &CorpusSpec::pile_proxy(4), 2500, 1, 21);
        let trace = RoutingTrace::from_batch(&batch, 16);
        // One undecayed window == the offline estimate.
        let mut streaming = StreamingAffinity::new(4, 16, 1.0);
        streaming.observe(&trace);
        let offline = Objective::from_sparse_affinities(&SparseAffinity::consecutive(&trace));
        for backend in [GapBackend::Dense, GapBackend::Sparse] {
            let online = Objective::from_snapshot_with(&streaming.snapshot(), backend);
            assert_eq!(online.nnz(), offline.nnz());
            let p = Placement::round_robin(4, 16, 4);
            assert_eq!(
                online.cross_mass(&p).to_bits(),
                offline.cross_mass(&p).to_bits()
            );
            for i in 0..16 {
                assert_eq!(
                    online.row_weight(1, i).to_bits(),
                    offline.row_weight(1, i).to_bits()
                );
                for j in 0..16 {
                    assert_eq!(
                        online.gap_prob(2, i, j).to_bits(),
                        offline.gap_prob(2, i, j).to_bits()
                    );
                }
            }
        }
    }

    #[test]
    fn sparse_affinity_build_matches_dense_build_bitwise() {
        use exflow_model::routing::AffinityModelSpec;
        use exflow_model::{CorpusSpec, TokenBatch};
        let model = AffinityModelSpec::new(4, 16).with_affinity(0.9).build();
        let batch = TokenBatch::sample(&model, &CorpusSpec::pile_proxy(4), 2500, 1, 21);
        let trace = RoutingTrace::from_batch(&batch, 16);
        let dense_mats = AffinityMatrix::consecutive(&trace);
        let sparse_mats = SparseAffinity::consecutive(&trace);
        for backend in [GapBackend::Dense, GapBackend::Sparse] {
            let a = Objective::from_affinities_with(&dense_mats, backend);
            let b = Objective::from_sparse_affinities_with(&sparse_mats, backend);
            assert_eq!(a.nnz(), b.nnz());
            let p = Placement::round_robin(4, 16, 4);
            assert_eq!(a.cross_mass(&p).to_bits(), b.cross_mass(&p).to_bits());
            for i in 0..16 {
                assert_eq!(a.row_weight(0, i).to_bits(), b.row_weight(0, i).to_bits());
                for j in 0..16 {
                    assert_eq!(a.gap_prob(1, i, j).to_bits(), b.gap_prob(1, i, j).to_bits());
                }
            }
        }
    }

    #[test]
    fn snapshot_delta_application_matches_cold_rebuild_bitwise() {
        use exflow_affinity::StreamingAffinity;
        use exflow_model::routing::AffinityModelSpec;
        use exflow_model::{CorpusSpec, TokenBatch};
        let model = AffinityModelSpec::new(4, 16).with_affinity(0.8).build();
        for backend in [GapBackend::Auto, GapBackend::Dense, GapBackend::Sparse] {
            let mut streaming = StreamingAffinity::new(4, 16, 0.5);
            let seed = TokenBatch::sample(&model, &CorpusSpec::pile_proxy(4), 800, 1, 3);
            streaming.observe(&RoutingTrace::from_batch(&seed, 16));
            let mut incremental = Objective::from_snapshot_with(&streaming.snapshot(), backend);
            for w in 0..6u64 {
                let batch = TokenBatch::sample(&model, &CorpusSpec::pile_proxy(4), 400, 1, 100 + w);
                let delta = streaming.observe_delta(&RoutingTrace::from_batch(&batch, 16));
                incremental.apply_snapshot_delta(&delta);
                let rebuilt = Objective::from_snapshot_with(&streaming.snapshot(), backend);
                assert_eq!(incremental, rebuilt, "{backend:?} window {w}");
                let p = Placement::round_robin(4, 16, 4);
                assert_eq!(
                    incremental.cross_mass(&p).to_bits(),
                    rebuilt.cross_mass(&p).to_bits()
                );
            }
        }
    }

    #[test]
    fn delta_can_flip_the_auto_storage_choice() {
        use exflow_affinity::StreamingAffinity;
        let e = 8usize;
        let mut streaming = StreamingAffinity::new(2, e, 1.0);
        // Window 1: the identity routing (i -> i); 8 of 64 cells -> CSR.
        let identity: Vec<Vec<u16>> = (0..e as u16).map(|i| vec![i, i]).collect();
        streaming.observe(&RoutingTrace::new(identity, e));
        let mut obj = Objective::from_snapshot(&streaming.snapshot());
        assert!(obj.gap_is_sparse(0));
        // Window 2: every (i -> p) pair appears; 64 of 64 cells -> the
        // Auto rule must flip the spliced gap to dense mid-stream.
        let all_pairs: Vec<Vec<u16>> = (0..e as u16)
            .flat_map(|i| (0..e as u16).map(move |p| vec![i, p]))
            .collect();
        let delta = streaming.observe_delta(&RoutingTrace::new(all_pairs, e));
        obj.apply_snapshot_delta(&delta);
        assert!(!obj.gap_is_sparse(0));
        assert_eq!(obj.gap_nnz(0), 64);
        assert_eq!(obj, Objective::from_snapshot(&streaming.snapshot()));
    }

    #[test]
    fn column_iteration_matches_row_structure_across_backends() {
        let e = 8;
        let mut m = vec![0.0f64; e * e];
        for i in 0..e {
            m[i * e + (i + 1) % e] = 0.7;
            m[i * e + (i + 5) % e] = 0.3;
        }
        for backend in [GapBackend::Dense, GapBackend::Sparse] {
            let o = Objective::from_raw_with(vec![m.clone()], e, backend);
            for p in 0..e {
                let mut seen = Vec::new();
                o.for_each_in_col(0, p, |i, v| seen.push((i, v)));
                let mut expect = Vec::new();
                for i in 0..e {
                    let v = m[i * e + p];
                    if v != 0.0 {
                        expect.push((i, v));
                    }
                }
                assert_eq!(seen, expect, "{backend:?} col {p}");
            }
        }
    }
}
