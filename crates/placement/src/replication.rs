//! The expert-*replication* baseline (Li et al., "Accelerating Distributed
//! MoE Training and Inference with Lina", USENIX ATC'23 — the paper's §VI).
//!
//! Instead of moving experts to better GPUs, this family of systems keeps
//! the vanilla placement and spends *extra memory* replicating the most
//! popular (or most-affine, per the paper's formula 2) experts onto every
//! GPU, so tokens whose next expert has a local replica skip the Alltoall.
//! The paper's criticism: per-expert local optima and an explicit memory
//! cost, versus ExFlow's zero-replica global optimization. This module
//! implements the baseline so the trade-off can be measured.

use exflow_affinity::{AffinitySnapshot, RoutingTrace};

use crate::objective::{Objective, TraceLocality};
use crate::placement::Placement;

/// Joint resource budget of one replication-aware online re-plan: how many
/// bytes of replica copies each GPU may hold, and how many bytes of expert
/// weights the re-plan may ship (owner moves plus replica fan-out).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicationBudget {
    /// Per-GPU byte budget for *extra* replica copies, under the
    /// [`ReplicationPlan::extra_copies_per_gpu`] convention (a copy on the
    /// owner GPU is the original and costs nothing). `0` disables
    /// replication entirely (owner moves only).
    pub replica_memory_bytes: u64,
    /// Byte budget of the migration traffic one re-plan may generate.
    /// A replica add ships the expert from its owner to every other unit;
    /// a replica drop (and an owner move of an already-replicated expert)
    /// is free.
    pub migration_budget_bytes: u64,
}

/// A replication plan on top of a base placement: per layer, the experts
/// replicated onto *every* GPU.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicationPlan {
    /// Base (owning) placement.
    pub base: Placement,
    /// `replicated[layer]` lists expert ids with replicas everywhere.
    pub replicated: Vec<Vec<usize>>,
}

impl ReplicationPlan {
    /// Replicate, at every layer, the `budget` experts that receive the
    /// most tokens (the "expert popularity" heuristic). The marginal comes
    /// from the objective's row weights.
    ///
    /// ```
    /// use exflow_placement::replication::ReplicationPlan;
    /// use exflow_placement::{Objective, Placement};
    ///
    /// // Identity affinity over 4 experts: every expert equally popular.
    /// let mut gap = vec![0.0; 16];
    /// for i in 0..4 { gap[i * 4 + i] = 1.0; }
    /// let objective = Objective::from_raw(vec![gap], 4);
    /// let base = Placement::round_robin(2, 4, 2);
    ///
    /// let plan = ReplicationPlan::most_popular(&objective, base.clone(), 1);
    /// // One expert replicated everywhere at each of the 2 layers; only
    /// // the non-owner GPU stores an extra copy, so the worst-case extra
    /// // memory is 2 expert payloads (one per layer).
    /// assert_eq!(plan.extra_copies_per_gpu(), 2);
    /// // ... and it is available on every GPU, not just its owner.
    /// let expert = plan.replicated[0][0];
    /// assert!(plan.available_on(0, expert, 0) && plan.available_on(0, expert, 1));
    ///
    /// // Replicating *everything* costs each GPU only the experts it does
    /// // not already own: 2 extra per layer here, not 4.
    /// let full = ReplicationPlan::most_popular(&objective, base, 4);
    /// assert_eq!(full.extra_copies_per_gpu(), 4);
    /// ```
    pub fn most_popular(objective: &Objective, base: Placement, budget: usize) -> Self {
        let e = objective.n_experts();
        let l = base.n_layers();
        // Popularity of an expert at `layer` = its marginal share. Row
        // weights exist per gap; the last layer reuses the incoming gap's
        // successor mass.
        let popularity: Vec<Vec<f64>> = (0..l)
            .map(|layer| {
                (0..e)
                    .map(|expert| {
                        if layer < objective.n_gaps() {
                            objective.row_weight(layer, expert)
                        } else if objective.n_gaps() == 0 {
                            // Gapless single-layer instance: no routing
                            // information — every expert is equally popular.
                            1.0 / e as f64
                        } else {
                            (0..e)
                                .map(|i| {
                                    objective.row_weight(layer - 1, i)
                                        * objective.gap_prob(layer - 1, i, expert)
                                })
                                .sum()
                        }
                    })
                    .collect()
            })
            .collect();
        Self::from_popularity(&popularity, base, budget)
    }

    /// [`ReplicationPlan::most_popular`] driven by a frozen streaming
    /// estimate instead of an offline objective: popularity per layer is
    /// [`AffinitySnapshot::layer_popularity`], so the online serving mode
    /// can rank replica candidates without rebuilding a placement
    /// objective first.
    pub fn most_popular_from_snapshot(
        snapshot: &AffinitySnapshot,
        base: Placement,
        budget: usize,
    ) -> Self {
        let popularity: Vec<Vec<f64>> = (0..base.n_layers())
            .map(|layer| snapshot.layer_popularity(layer))
            .collect();
        Self::from_popularity(&popularity, base, budget)
    }

    /// Replicate, at every layer, the `budget` experts with the highest
    /// `popularity[layer][expert]` score. Selection uses a *total* order —
    /// popularity descending, expert index ascending on ties — so NaN
    /// scores (a degenerate estimate) and exact ties resolve
    /// deterministically instead of panicking or leaning on sort
    /// stability. (Under `f64::total_cmp`, NaN orders above every finite
    /// popularity, so NaN-scored experts are selected first — and
    /// deterministically — rather than poisoning the sort.)
    pub fn from_popularity(popularity: &[Vec<f64>], base: Placement, budget: usize) -> Self {
        let e = base.n_experts();
        assert!(budget <= e, "cannot replicate more experts than exist");
        assert_eq!(popularity.len(), base.n_layers(), "layer mismatch");
        let replicated = popularity
            .iter()
            .map(|scores| {
                assert_eq!(scores.len(), e, "expert mismatch");
                let mut ranked: Vec<usize> = (0..e).collect();
                ranked.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then(a.cmp(&b)));
                let mut chosen: Vec<usize> = ranked.into_iter().take(budget).collect();
                chosen.sort_unstable();
                chosen
            })
            .collect();
        ReplicationPlan { base, replicated }
    }

    /// Whether `expert` at `layer` is available on `unit` (owned there or
    /// replicated everywhere).
    pub fn available_on(&self, layer: usize, expert: usize, unit: usize) -> bool {
        self.base.unit_of(layer, expert) == unit || self.replicated[layer].contains(&expert)
    }

    /// Worst-case *extra* expert copies any one GPU stores, summed over
    /// layers — the "Extra Memory" column of the paper's Table I, in units
    /// of one expert's parameters.
    ///
    /// Convention (Table-I-consistent): a replicated expert's copy on its
    /// *owner* GPU is the original, not an extra — only the copies on the
    /// other GPUs cost memory. Different GPUs own different replicated
    /// experts, so the per-GPU extra counts differ; the reported number is
    /// the maximum over GPUs, i.e. the memory headroom every GPU must
    /// provision to hold the plan.
    pub fn extra_copies_per_gpu(&self) -> usize {
        let units = self.base.n_units();
        (0..units)
            .map(|unit| {
                self.replicated
                    .iter()
                    .enumerate()
                    .map(|(layer, r)| {
                        r.iter()
                            .filter(|&&e| self.base.unit_of(layer, e) != unit)
                            .count()
                    })
                    .sum::<usize>()
            })
            .max()
            .unwrap_or(0)
    }

    /// Realized locality of this plan on a concrete trace, counting
    /// replicas as local: the replication-aware counterpart of
    /// [`measure_trace_locality`](crate::objective::measure_trace_locality).
    ///
    /// A token's "current unit" follows its served experts: a transition is
    /// local when the next expert is available (owned or replicated) on the
    /// token's unit; otherwise the token moves to the next expert's owner.
    /// While *every* expert served so far was replicated everywhere, the
    /// token's unit is unconstrained — the scheduler may have started it on
    /// whichever GPU serves the next expert — so those transitions count as
    /// local and the first non-replicated expert pins the token to its
    /// owner. (Seeding the unit with the layer-0 *owner* instead, as this
    /// method once did, wrongly charged a cross-unit hop to tokens whose
    /// first expert was replicated everywhere.)
    pub fn trace_locality(&self, trace: &RoutingTrace) -> TraceLocality {
        assert_eq!(trace.n_layers(), self.base.n_layers());
        let mut local = 0u64;
        let mut transitions = 0u64;
        for t in 0..trace.n_tokens() {
            let first = trace.expert_at(t, 0);
            let mut unit = if self.replicated[0].contains(&first) {
                None
            } else {
                Some(self.base.unit_of(0, first))
            };
            for j in 1..trace.n_layers() {
                let expert = trace.expert_at(t, j);
                transitions += 1;
                match unit {
                    None => {
                        // Unpinned: the token can be co-located with any
                        // expert, so the hop is free; a non-replicated
                        // expert pins it.
                        local += 1;
                        if !self.replicated[j].contains(&expert) {
                            unit = Some(self.base.unit_of(j, expert));
                        }
                    }
                    Some(u) if self.available_on(j, expert, u) => local += 1,
                    Some(_) => unit = Some(self.base.unit_of(j, expert)),
                }
            }
        }
        TraceLocality { transitions, local }
    }

    /// Fraction of a trace's layer transitions that can be served without
    /// leaving the current unit, counting replicas as local (see
    /// [`ReplicationPlan::trace_locality`] for the exact semantics).
    ///
    /// A gapless single-layer trace has no transitions to lose, so the
    /// fraction is 1.0 — agreeing with `Objective::local_fraction` on the
    /// same L = 1 instance (the naive `0 / 0` ratio would report 0).
    pub fn trace_local_fraction(&self, trace: &RoutingTrace) -> f64 {
        self.trace_locality(trace).fraction()
    }
}

/// Expected cross-unit transition mass a replica add would absorb, per
/// `(layer, expert)`: the mass flowing *into* `expert` at `layer` from
/// source experts placed on a different unit. A replica everywhere turns
/// exactly those incoming hops local, so this is the marginal value of
/// replicating that expert (layer 0 has no incoming gap — its entries are
/// 0). Accumulation visits cells in ascending `(gap, source, column)`
/// order and skips structural zeros, so the scores are bit-identical
/// across dense/CSR gap backends.
pub fn replica_gains(objective: &Objective, base: &Placement) -> Vec<Vec<f64>> {
    assert_eq!(base.n_layers(), objective.n_layers());
    assert_eq!(base.n_experts(), objective.n_experts());
    let e = objective.n_experts();
    let mut gains = vec![vec![0.0f64; e]; base.n_layers()];
    for gap in 0..objective.n_gaps() {
        for i in 0..e {
            let w = objective.row_weight(gap, i);
            if w == 0.0 {
                continue;
            }
            let from = base.unit_of(gap, i);
            objective.for_each_in_row(gap, i, |p, prob| {
                if base.unit_of(gap + 1, p) != from {
                    gains[gap + 1][p] += w * prob;
                }
            });
        }
    }
    gains
}

/// Expected cross-unit transitions per token under a replication plan:
/// [`Objective::cross_mass`] minus the mass absorbed by replicas (a hop
/// into an expert replicated everywhere is local wherever the token
/// sits). First-order model: a token that used a replica is assumed to
/// continue from the replicated expert's *owner* for the next gap, mirroring
/// the owner-marginal view the objective itself takes. Lower is better;
/// equals `cross_mass` exactly when no expert is replicated.
pub fn replicated_cross_mass(objective: &Objective, plan: &ReplicationPlan) -> f64 {
    assert_eq!(plan.base.n_layers(), objective.n_layers());
    assert_eq!(plan.base.n_experts(), objective.n_experts());
    let e = objective.n_experts();
    let mut total = 0.0f64;
    for gap in 0..objective.n_gaps() {
        for i in 0..e {
            let w = objective.row_weight(gap, i);
            if w == 0.0 {
                continue;
            }
            let from = plan.base.unit_of(gap, i);
            objective.for_each_in_row(gap, i, |p, prob| {
                if plan.base.unit_of(gap + 1, p) != from && !plan.replicated[gap + 1].contains(&p) {
                    total += w * prob;
                }
            });
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use exflow_affinity::AffinityMatrix;
    use exflow_model::routing::AffinityModelSpec;
    use exflow_model::{CorpusSpec, TokenBatch};

    fn instance(e: usize, l: usize) -> (Objective, RoutingTrace) {
        let model = AffinityModelSpec::new(l, e).build();
        let batch = TokenBatch::sample(&model, &CorpusSpec::pile_proxy(4), 4000, 1, 21);
        let trace = RoutingTrace::from_batch(&batch, e);
        let obj = Objective::from_affinities(&AffinityMatrix::consecutive(&trace));
        (obj, trace)
    }

    #[test]
    fn zero_budget_changes_nothing() {
        let (obj, trace) = instance(8, 5);
        let base = Placement::round_robin(5, 8, 4);
        let plan = ReplicationPlan::most_popular(&obj, base.clone(), 0);
        assert_eq!(plan.extra_copies_per_gpu(), 0);
        let plain = crate::objective::measure_trace_locality(&trace, &base).fraction();
        assert!((plan.trace_local_fraction(&trace) - plain).abs() < 0.15);
    }

    #[test]
    fn full_budget_makes_everything_local() {
        let (obj, trace) = instance(8, 5);
        let base = Placement::round_robin(5, 8, 4);
        let plan = ReplicationPlan::most_popular(&obj, base, 8);
        assert!((plan.trace_local_fraction(&trace) - 1.0).abs() < 1e-12);
        // Each GPU owns 2 of the 8 experts per layer, so full replication
        // costs it the other 6 per layer — owner copies are not "extra".
        assert_eq!(plan.extra_copies_per_gpu(), 30);
    }

    #[test]
    fn extra_copies_exclude_owner_copies() {
        let (obj, _) = instance(8, 2);
        let base = Placement::round_robin(2, 8, 4);
        // One replicated expert per layer: its owner GPU stores nothing
        // extra, every other GPU stores one copy per layer.
        let plan = ReplicationPlan::most_popular(&obj, base.clone(), 1);
        assert_eq!(plan.extra_copies_per_gpu(), 2);
        // Hand-built plan replicating a different owner's expert per
        // layer: experts 0 (unit 0) and 7 (unit 3). Units 1 and 2 store
        // both extras; units 0 and 3 store one each. Worst case: 2.
        let plan = ReplicationPlan {
            base,
            replicated: vec![vec![0], vec![7]],
        };
        assert_eq!(plan.extra_copies_per_gpu(), 2);
    }

    #[test]
    fn popularity_sort_is_total_and_breaks_ties_by_index() {
        // NaN popularity (a degenerate affinity estimate) must not panic,
        // and exact ties must resolve by ascending expert index.
        let e = 4;
        let mut gap = vec![f64::NAN; e * e];
        for i in 0..e {
            gap[i * e + i] = 1.0;
        }
        let obj = Objective::from_raw(vec![gap], e);
        let base = Placement::round_robin(2, e, 2);
        let plan = ReplicationPlan::most_popular(&obj, base.clone(), 2);
        // Layer-0 popularity is the uniform marginal (all tied): lowest
        // indices win. Layer-1 popularity is NaN-tainted successor mass:
        // selection stays deterministic either way.
        assert_eq!(plan.replicated[0], vec![0, 1]);
        assert_eq!(plan.replicated[1].len(), 2);
        let again = ReplicationPlan::most_popular(&obj, base.clone(), 2);
        assert_eq!(plan, again, "NaN selection must be deterministic");

        // Explicit popularity: tie on 0.4 between experts 1 and 3.
        let pop = vec![vec![0.1, 0.4, 0.1, 0.4]; 2];
        let tied = ReplicationPlan::from_popularity(&pop, base, 1);
        assert_eq!(tied.replicated, vec![vec![1], vec![1]]);
    }

    #[test]
    fn locality_is_monotone_in_budget() {
        let (obj, trace) = instance(16, 6);
        let base = Placement::round_robin(6, 16, 4);
        let mut last = 0.0;
        for budget in [0usize, 2, 4, 8, 16] {
            let plan = ReplicationPlan::most_popular(&obj, base.clone(), budget);
            let frac = plan.trace_local_fraction(&trace);
            assert!(
                frac + 1e-9 >= last,
                "budget {budget}: locality {frac} fell below {last}"
            );
            last = frac;
        }
    }

    #[test]
    fn exflow_placement_beats_replication_at_zero_memory() {
        // The paper's §VI point: ExFlow reaches comparable locality with
        // no replicas. Replication needs a non-trivial budget to catch the
        // affinity placement.
        let (obj, trace) = instance(16, 6);
        let base = Placement::round_robin(6, 16, 4);
        let exflow = crate::local_search::solve_local_search(&obj, 4, 1, 0);
        let exflow_local = crate::objective::measure_trace_locality(&trace, &exflow).fraction();
        let rep0 =
            ReplicationPlan::most_popular(&obj, base.clone(), 0).trace_local_fraction(&trace);
        assert!(
            exflow_local > rep0,
            "exflow {exflow_local} vs zero-budget replication {rep0}"
        );
        // Replication with large budget eventually wins (it spends memory).
        let rep_full = ReplicationPlan::most_popular(&obj, base, 16).trace_local_fraction(&trace);
        assert!(rep_full >= exflow_local);
    }

    #[test]
    fn replicated_experts_are_available_everywhere() {
        let (obj, _) = instance(8, 4);
        let base = Placement::round_robin(4, 8, 4);
        let plan = ReplicationPlan::most_popular(&obj, base, 3);
        for layer in 0..4 {
            for &expert in &plan.replicated[layer] {
                for unit in 0..4 {
                    assert!(plan.available_on(layer, expert, unit));
                }
            }
        }
    }

    #[test]
    fn replicated_first_expert_does_not_charge_the_start() {
        // Token path: expert 0 (layer 0, replicated everywhere) -> expert
        // 3 (layer 1, owned by unit 1). The scheduler can start the token
        // on unit 1, so the single transition is local. The old seeding
        // (pin to expert 0's owner, unit 0) wrongly counted it cross-unit.
        let base = Placement::round_robin(2, 4, 2);
        let plan = ReplicationPlan {
            base: base.clone(),
            replicated: vec![vec![0], vec![]],
        };
        let trace = RoutingTrace::new(vec![vec![0, 3]], 4);
        assert_eq!(plan.trace_local_fraction(&trace), 1.0);
        let loc = plan.trace_locality(&trace);
        assert_eq!((loc.local, loc.transitions), (1, 1));
        // Once pinned (layer 1's expert is not replicated), later hops are
        // charged normally: 3 (unit 1) -> 0 (unit 0) is cross.
        let base3 = Placement::round_robin(3, 4, 2);
        let plan3 = ReplicationPlan {
            base: base3,
            replicated: vec![vec![0], vec![], vec![]],
        };
        let t3 = RoutingTrace::new(vec![vec![0, 3, 0]], 4);
        let loc3 = plan3.trace_locality(&t3);
        assert_eq!((loc3.local, loc3.transitions), (1, 2));
        // A fully-replicated prefix stays unpinned across layers.
        let all = ReplicationPlan {
            base: Placement::round_robin(3, 4, 2),
            replicated: vec![vec![0, 1, 2, 3], vec![0, 1, 2, 3], vec![]],
        };
        let loc_all = all.trace_locality(&RoutingTrace::new(vec![vec![0, 3, 1]], 4));
        assert_eq!((loc_all.local, loc_all.transitions), (2, 2));
    }

    #[test]
    fn replica_gains_score_incoming_cross_mass() {
        // Shift affinity: expert i always routes to i + 1 (mod 4).
        let e = 4;
        let mut gap = vec![0.0; e * e];
        for i in 0..e {
            gap[i * e + (i + 1) % e] = 1.0;
        }
        let obj = Objective::from_raw(vec![gap], e);
        let base = Placement::round_robin(2, e, 2);
        let gains = replica_gains(&obj, &base);
        // Layer 0 has no incoming gap.
        assert_eq!(gains[0], vec![0.0; e]);
        // Units: {0,1} on GPU 0, {2,3} on GPU 1. Cross hops: 1 -> 2 and
        // 3 -> 0, each with marginal 1/4.
        assert_eq!(gains[1], vec![0.25, 0.0, 0.25, 0.0]);
        // Replicating expert 2 at layer 1 absorbs exactly its gain.
        let plan = ReplicationPlan {
            base: base.clone(),
            replicated: vec![vec![], vec![2]],
        };
        let absorbed = obj.cross_mass(&base) - replicated_cross_mass(&obj, &plan);
        assert!((absorbed - 0.25).abs() < 1e-12);
        // No replicas: replicated_cross_mass is exactly cross_mass.
        let bare = ReplicationPlan {
            base: base.clone(),
            replicated: vec![vec![], vec![]],
        };
        assert_eq!(
            replicated_cross_mass(&obj, &bare).to_bits(),
            obj.cross_mass(&base).to_bits()
        );
    }

    #[test]
    fn snapshot_popularity_matches_objective_popularity() {
        use exflow_affinity::StreamingAffinity;
        let (_, trace) = instance(8, 4);
        let mut s = StreamingAffinity::new(4, 8, 1.0);
        s.observe(&trace);
        let snap = s.snapshot();
        let obj = crate::objective::Objective::from_snapshot(&snap);
        let base = Placement::round_robin(4, 8, 4);
        let a = ReplicationPlan::most_popular(&obj, base.clone(), 3);
        let b = ReplicationPlan::most_popular_from_snapshot(&snap, base, 3);
        assert_eq!(a, b, "snapshot and objective popularity must agree");
    }

    #[test]
    fn single_layer_trace_agrees_with_objective_local_fraction() {
        // Regression: PR 3 fixed the L = 1 edge case in
        // Objective::local_fraction (0/0 -> 1.0) but left this path
        // returning 0. Both views of a gapless instance must agree: with
        // no transitions, nothing can leave its unit.
        let trace = RoutingTrace::new(vec![vec![0], vec![3], vec![1]], 4);
        let base = Placement::round_robin(1, 4, 2);
        let obj = Objective::from_raw(vec![], 4);
        let expected = obj.local_fraction(&base);
        assert_eq!(expected, 1.0);
        for budget in [0usize, 2, 4] {
            let plan = ReplicationPlan::most_popular(&obj, base.clone(), budget);
            let measured = plan.trace_local_fraction(&trace);
            assert_eq!(
                measured, expected,
                "budget {budget}: trace fraction {measured} vs objective {expected}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "more experts than exist")]
    fn over_budget_rejected() {
        let (obj, _) = instance(8, 4);
        let base = Placement::round_robin(4, 8, 4);
        let _ = ReplicationPlan::most_popular(&obj, base, 9);
    }
}
