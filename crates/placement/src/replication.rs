//! The expert-*replication* baseline (Li et al., "Accelerating Distributed
//! MoE Training and Inference with Lina", USENIX ATC'23 — the paper's §VI).
//!
//! Instead of moving experts to better GPUs, this family of systems keeps
//! the vanilla placement and spends *extra memory* replicating the most
//! popular (or most-affine, per the paper's formula 2) experts onto every
//! GPU, so tokens whose next expert has a local replica skip the Alltoall.
//! The paper's criticism: per-expert local optima and an explicit memory
//! cost, versus ExFlow's zero-replica global optimization. This module
//! implements the baseline so the trade-off can be measured.

use exflow_affinity::RoutingTrace;

use crate::objective::Objective;
use crate::placement::Placement;

/// A replication plan on top of a base placement: per layer, the experts
/// replicated onto *every* GPU.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicationPlan {
    /// Base (owning) placement.
    pub base: Placement,
    /// `replicated[layer]` lists expert ids with replicas everywhere.
    pub replicated: Vec<Vec<usize>>,
}

impl ReplicationPlan {
    /// Replicate, at every layer, the `budget` experts that receive the
    /// most tokens (the "expert popularity" heuristic). The marginal comes
    /// from the objective's row weights.
    ///
    /// ```
    /// use exflow_placement::replication::ReplicationPlan;
    /// use exflow_placement::{Objective, Placement};
    ///
    /// // Identity affinity over 4 experts: every expert equally popular.
    /// let mut gap = vec![0.0; 16];
    /// for i in 0..4 { gap[i * 4 + i] = 1.0; }
    /// let objective = Objective::from_raw(vec![gap], 4);
    /// let base = Placement::round_robin(2, 4, 2);
    ///
    /// let plan = ReplicationPlan::most_popular(&objective, base, 1);
    /// // One expert replicated everywhere at each of the 2 layers ...
    /// assert_eq!(plan.extra_copies_per_gpu(), 2);
    /// // ... so it is available on every GPU, not just its owner.
    /// let expert = plan.replicated[0][0];
    /// assert!(plan.available_on(0, expert, 0) && plan.available_on(0, expert, 1));
    /// ```
    pub fn most_popular(objective: &Objective, base: Placement, budget: usize) -> Self {
        let e = objective.n_experts();
        assert!(budget <= e, "cannot replicate more experts than exist");
        let l = base.n_layers();
        let mut replicated = Vec::with_capacity(l);
        for layer in 0..l {
            // Popularity of an expert at `layer` = its marginal share.
            // Row weights exist per gap; the last layer reuses the
            // incoming gap's successor mass.
            let mut popularity: Vec<(usize, f64)> = (0..e)
                .map(|expert| {
                    let p = if layer < objective.n_gaps() {
                        objective.row_weight(layer, expert)
                    } else if objective.n_gaps() == 0 {
                        // Gapless single-layer instance: no routing
                        // information — every expert is equally popular.
                        1.0 / e as f64
                    } else {
                        // Successor mass into the last layer.
                        (0..e)
                            .map(|i| {
                                objective.row_weight(layer - 1, i)
                                    * objective.gap_prob(layer - 1, i, expert)
                            })
                            .sum()
                    };
                    (expert, p)
                })
                .collect();
            popularity.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
            let mut chosen: Vec<usize> = popularity
                .into_iter()
                .take(budget)
                .map(|(e, _)| e)
                .collect();
            chosen.sort_unstable();
            replicated.push(chosen);
        }
        ReplicationPlan { base, replicated }
    }

    /// Whether `expert` at `layer` is available on `unit` (owned there or
    /// replicated everywhere).
    pub fn available_on(&self, layer: usize, expert: usize, unit: usize) -> bool {
        self.base.unit_of(layer, expert) == unit || self.replicated[layer].contains(&expert)
    }

    /// Extra expert copies this plan stores per GPU, summed over layers —
    /// the "Extra Memory" column of the paper's Table I, in units of one
    /// expert's parameters.
    pub fn extra_copies_per_gpu(&self) -> usize {
        self.replicated.iter().map(|r| r.len()).sum()
    }

    /// Fraction of a trace's layer transitions that can be served without
    /// leaving the current unit, counting replicas as local.
    ///
    /// A gapless single-layer trace has no transitions to lose, so the
    /// fraction is 1.0 — agreeing with `Objective::local_fraction` on the
    /// same L = 1 instance (the naive `0 / 0` ratio would report 0).
    pub fn trace_local_fraction(&self, trace: &RoutingTrace) -> f64 {
        assert_eq!(trace.n_layers(), self.base.n_layers());
        let mut local = 0u64;
        let mut total = 0u64;
        for t in 0..trace.n_tokens() {
            // A token's "current unit" follows its served experts: if the
            // expert was replicated, the token stays where it was.
            let mut unit = self.base.unit_of(0, trace.expert_at(t, 0));
            for j in 1..trace.n_layers() {
                let expert = trace.expert_at(t, j);
                total += 1;
                if self.available_on(j, expert, unit) {
                    local += 1;
                } else {
                    unit = self.base.unit_of(j, expert);
                }
            }
        }
        if total == 0 {
            return 1.0;
        }
        local as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exflow_affinity::AffinityMatrix;
    use exflow_model::routing::AffinityModelSpec;
    use exflow_model::{CorpusSpec, TokenBatch};

    fn instance(e: usize, l: usize) -> (Objective, RoutingTrace) {
        let model = AffinityModelSpec::new(l, e).build();
        let batch = TokenBatch::sample(&model, &CorpusSpec::pile_proxy(4), 4000, 1, 21);
        let trace = RoutingTrace::from_batch(&batch, e);
        let obj = Objective::from_affinities(&AffinityMatrix::consecutive(&trace));
        (obj, trace)
    }

    #[test]
    fn zero_budget_changes_nothing() {
        let (obj, trace) = instance(8, 5);
        let base = Placement::round_robin(5, 8, 4);
        let plan = ReplicationPlan::most_popular(&obj, base.clone(), 0);
        assert_eq!(plan.extra_copies_per_gpu(), 0);
        let plain = crate::objective::measure_trace_locality(&trace, &base).fraction();
        assert!((plan.trace_local_fraction(&trace) - plain).abs() < 0.15);
    }

    #[test]
    fn full_budget_makes_everything_local() {
        let (obj, trace) = instance(8, 5);
        let base = Placement::round_robin(5, 8, 4);
        let plan = ReplicationPlan::most_popular(&obj, base, 8);
        assert!((plan.trace_local_fraction(&trace) - 1.0).abs() < 1e-12);
        assert_eq!(plan.extra_copies_per_gpu(), 40);
    }

    #[test]
    fn locality_is_monotone_in_budget() {
        let (obj, trace) = instance(16, 6);
        let base = Placement::round_robin(6, 16, 4);
        let mut last = 0.0;
        for budget in [0usize, 2, 4, 8, 16] {
            let plan = ReplicationPlan::most_popular(&obj, base.clone(), budget);
            let frac = plan.trace_local_fraction(&trace);
            assert!(
                frac + 1e-9 >= last,
                "budget {budget}: locality {frac} fell below {last}"
            );
            last = frac;
        }
    }

    #[test]
    fn exflow_placement_beats_replication_at_zero_memory() {
        // The paper's §VI point: ExFlow reaches comparable locality with
        // no replicas. Replication needs a non-trivial budget to catch the
        // affinity placement.
        let (obj, trace) = instance(16, 6);
        let base = Placement::round_robin(6, 16, 4);
        let exflow = crate::local_search::solve_local_search(&obj, 4, 1, 0);
        let exflow_local = crate::objective::measure_trace_locality(&trace, &exflow).fraction();
        let rep0 =
            ReplicationPlan::most_popular(&obj, base.clone(), 0).trace_local_fraction(&trace);
        assert!(
            exflow_local > rep0,
            "exflow {exflow_local} vs zero-budget replication {rep0}"
        );
        // Replication with large budget eventually wins (it spends memory).
        let rep_full = ReplicationPlan::most_popular(&obj, base, 16).trace_local_fraction(&trace);
        assert!(rep_full >= exflow_local);
    }

    #[test]
    fn replicated_experts_are_available_everywhere() {
        let (obj, _) = instance(8, 4);
        let base = Placement::round_robin(4, 8, 4);
        let plan = ReplicationPlan::most_popular(&obj, base, 3);
        for layer in 0..4 {
            for &expert in &plan.replicated[layer] {
                for unit in 0..4 {
                    assert!(plan.available_on(layer, expert, unit));
                }
            }
        }
    }

    #[test]
    fn single_layer_trace_agrees_with_objective_local_fraction() {
        // Regression: PR 3 fixed the L = 1 edge case in
        // Objective::local_fraction (0/0 -> 1.0) but left this path
        // returning 0. Both views of a gapless instance must agree: with
        // no transitions, nothing can leave its unit.
        let trace = RoutingTrace::new(vec![vec![0], vec![3], vec![1]], 4);
        let base = Placement::round_robin(1, 4, 2);
        let obj = Objective::from_raw(vec![], 4);
        let expected = obj.local_fraction(&base);
        assert_eq!(expected, 1.0);
        for budget in [0usize, 2, 4] {
            let plan = ReplicationPlan::most_popular(&obj, base.clone(), budget);
            let measured = plan.trace_local_fraction(&trace);
            assert_eq!(
                measured, expected,
                "budget {budget}: trace fraction {measured} vs objective {expected}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "more experts than exist")]
    fn over_budget_rejected() {
        let (obj, _) = instance(8, 4);
        let base = Placement::round_robin(4, 8, 4);
        let _ = ReplicationPlan::most_popular(&obj, base, 9);
    }
}
