//! Expert *replication* on top of a base placement: from the all-GPUs
//! baseline (Li et al., "Accelerating Distributed MoE Training and
//! Inference with Lina", USENIX ATC'23 — the paper's §VI) to partial,
//! node-aware replica subsets.
//!
//! Instead of moving experts to better GPUs, replication keeps the owning
//! placement and spends *extra memory* on copies of hot experts, so tokens
//! whose next expert has a nearby replica skip (or shorten) the Alltoall
//! hop. The Lina baseline fans every replica out to *every* GPU; that is
//! exactly why it degenerates to owner moves at large expert counts — each
//! copy costs `world - 1` payloads of traffic and a memory slot on every
//! GPU. This module therefore represents a replica as an explicit **unit
//! subset**: [`ReplicationPlan`] records, per `(layer, expert)`, the
//! non-owner GPUs holding a copy, and [`ReplicaPolicy`] names the two
//! placement-dependent subset shapes the suite uses (everywhere, or one
//! replica per non-owner node — the paper's node-then-GPU topology). Full
//! replication is the special case where every subset is "all other GPUs",
//! so the Lina baseline remains expressible and all its constructors
//! survive unchanged.

use exflow_affinity::{AffinitySnapshot, RoutingTrace};
use exflow_topology::{ClusterSpec, Rank};

use crate::objective::{Objective, TraceLocality};
use crate::placement::Placement;

/// One layer's replica entries: `(expert, units)` pairs sorted by expert,
/// where `units` is the sorted list of *non-owner* GPUs holding a copy
/// (never empty, never containing the owner).
pub type LayerReplicas = Vec<(usize, Vec<usize>)>;

/// Joint resource budget of one replication-aware online re-plan: how many
/// bytes of replica copies each GPU may hold, and how many bytes of expert
/// weights the re-plan may ship (owner moves plus replica fan-out).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicationBudget {
    /// Per-GPU byte budget for *extra* replica copies, under the
    /// [`ReplicationPlan::extra_copies_per_gpu`] convention (a copy on the
    /// owner GPU is the original and costs nothing). `0` disables
    /// replication entirely (owner moves only).
    pub replica_memory_bytes: u64,
    /// Byte budget of the migration traffic one re-plan may generate.
    /// A replica add ships the expert from its owner to every unit of the
    /// selected subset that does not already hold a copy; a replica drop
    /// (and an owner move landing on a unit that already holds a copy) is
    /// free.
    pub migration_budget_bytes: u64,
}

/// Which unit subset a replica fans out to — the placement-dependent shape
/// behind [`ReplicationPlan::available_units`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaPolicy {
    /// A copy on every non-owner GPU: the Lina-style full fan-out.
    Everywhere,
    /// One copy per non-owner *node*, on a salt-rotated GPU slot within
    /// each node (the paper's topology: the owner's node is already
    /// covered by the owner itself). On a single-node cluster this subset
    /// is empty and replication degenerates to owner moves.
    OnePerNode(ClusterSpec),
}

impl ReplicaPolicy {
    /// The replica target subset for `expert` at `layer` owned by `owner`:
    /// sorted ascending, never containing `owner`. Deterministic in its
    /// arguments, so re-plans at any thread width derive identical
    /// subsets.
    pub fn target_units(
        &self,
        layer: usize,
        expert: usize,
        owner: usize,
        n_units: usize,
    ) -> Vec<usize> {
        match self {
            ReplicaPolicy::Everywhere => (0..n_units).filter(|&u| u != owner).collect(),
            ReplicaPolicy::OnePerNode(cluster) => {
                assert_eq!(
                    cluster.world_size(),
                    n_units,
                    "replica policy cluster does not match the placement's world size"
                );
                cluster
                    .one_per_node(Rank(owner), layer.wrapping_mul(31).wrapping_add(expert))
                    .into_iter()
                    .map(Rank::index)
                    .collect()
            }
        }
    }
}

/// A replication plan on top of a base placement: per layer, the experts
/// holding extra copies and the exact non-owner GPU subset each copy set
/// occupies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicationPlan {
    /// Base (owning) placement.
    pub base: Placement,
    /// `replicas[layer]` lists `(expert, units)` entries sorted by expert;
    /// `units` is the sorted non-owner holder subset (see
    /// [`LayerReplicas`]).
    pub replicas: Vec<LayerReplicas>,
}

impl ReplicationPlan {
    /// The plan with no replicas at any layer: exactly the base placement.
    pub fn bare(base: Placement) -> Self {
        let replicas = vec![Vec::new(); base.n_layers()];
        ReplicationPlan { base, replicas }
    }

    /// Expand per-layer expert lists into all-GPUs replica subsets (the
    /// Lina baseline's semantics): every listed expert gets a copy on
    /// every non-owner unit.
    pub fn everywhere(base: Placement, replicated: Vec<Vec<usize>>) -> Self {
        Self::with_policy(base, replicated, &ReplicaPolicy::Everywhere)
    }

    /// Expand per-layer expert lists into the subsets `policy` selects.
    /// Input lists are sorted and deduplicated; experts whose target
    /// subset is empty (a single-node [`ReplicaPolicy::OnePerNode`]) are
    /// dropped — there is nowhere to put a copy.
    pub fn with_policy(
        base: Placement,
        replicated: Vec<Vec<usize>>,
        policy: &ReplicaPolicy,
    ) -> Self {
        assert_eq!(replicated.len(), base.n_layers(), "layer mismatch");
        let units = base.n_units();
        let replicas: Vec<LayerReplicas> = replicated
            .into_iter()
            .enumerate()
            .map(|(layer, mut xs)| {
                xs.sort_unstable();
                xs.dedup();
                xs.into_iter()
                    .filter_map(|x| {
                        let owner = base.unit_of(layer, x);
                        let tu = policy.target_units(layer, x, owner, units);
                        (!tu.is_empty()).then_some((x, tu))
                    })
                    .collect()
            })
            .collect();
        ReplicationPlan { base, replicas }
    }

    /// Replicate, at every layer, the `budget` experts that receive the
    /// most tokens (the "expert popularity" heuristic), everywhere. The
    /// marginal comes from the objective's row weights.
    ///
    /// ```
    /// use exflow_placement::replication::ReplicationPlan;
    /// use exflow_placement::{Objective, Placement};
    ///
    /// // Identity affinity over 4 experts: every expert equally popular.
    /// let mut gap = vec![0.0; 16];
    /// for i in 0..4 { gap[i * 4 + i] = 1.0; }
    /// let objective = Objective::from_raw(vec![gap], 4);
    /// let base = Placement::round_robin(2, 4, 2);
    ///
    /// let plan = ReplicationPlan::most_popular(&objective, base.clone(), 1);
    /// // One expert replicated everywhere at each of the 2 layers; only
    /// // the non-owner GPU stores an extra copy, so the worst-case extra
    /// // memory is 2 expert payloads (one per layer).
    /// assert_eq!(plan.extra_copies_per_gpu(), 2);
    /// // ... and it is available on every GPU, not just its owner.
    /// let expert = plan.replicated_experts(0).next().unwrap();
    /// assert!(plan.available_on(0, expert, 0) && plan.available_on(0, expert, 1));
    ///
    /// // Replicating *everything* costs each GPU only the experts it does
    /// // not already own: 2 extra per layer here, not 4.
    /// let full = ReplicationPlan::most_popular(&objective, base, 4);
    /// assert_eq!(full.extra_copies_per_gpu(), 4);
    /// ```
    pub fn most_popular(objective: &Objective, base: Placement, budget: usize) -> Self {
        let e = objective.n_experts();
        let l = base.n_layers();
        // Popularity of an expert at `layer` = its marginal share. Row
        // weights exist per gap; the last layer reuses the incoming gap's
        // successor mass.
        let popularity: Vec<Vec<f64>> = (0..l)
            .map(|layer| {
                (0..e)
                    .map(|expert| {
                        if layer < objective.n_gaps() {
                            objective.row_weight(layer, expert)
                        } else if objective.n_gaps() == 0 {
                            // Gapless single-layer instance: no routing
                            // information — every expert is equally popular.
                            1.0 / e as f64
                        } else {
                            (0..e)
                                .map(|i| {
                                    objective.row_weight(layer - 1, i)
                                        * objective.gap_prob(layer - 1, i, expert)
                                })
                                .sum()
                        }
                    })
                    .collect()
            })
            .collect();
        Self::from_popularity(&popularity, base, budget)
    }

    /// [`ReplicationPlan::most_popular`] driven by a frozen streaming
    /// estimate instead of an offline objective: popularity per layer is
    /// [`AffinitySnapshot::layer_popularity`], so the online serving mode
    /// can rank replica candidates without rebuilding a placement
    /// objective first.
    pub fn most_popular_from_snapshot(
        snapshot: &AffinitySnapshot,
        base: Placement,
        budget: usize,
    ) -> Self {
        let popularity: Vec<Vec<f64>> = (0..base.n_layers())
            .map(|layer| snapshot.layer_popularity(layer))
            .collect();
        Self::from_popularity(&popularity, base, budget)
    }

    /// Replicate everywhere, at every layer, the `budget` experts with the
    /// highest `popularity[layer][expert]` score. Selection uses a *total*
    /// order — popularity descending, expert index ascending on ties — so
    /// NaN scores (a degenerate estimate) and exact ties resolve
    /// deterministically instead of panicking or leaning on sort
    /// stability. (Under `f64::total_cmp`, NaN orders above every finite
    /// popularity, so NaN-scored experts are selected first — and
    /// deterministically — rather than poisoning the sort.)
    pub fn from_popularity(popularity: &[Vec<f64>], base: Placement, budget: usize) -> Self {
        let e = base.n_experts();
        assert!(budget <= e, "cannot replicate more experts than exist");
        assert_eq!(popularity.len(), base.n_layers(), "layer mismatch");
        let replicated = popularity
            .iter()
            .map(|scores| {
                assert_eq!(scores.len(), e, "expert mismatch");
                let mut ranked: Vec<usize> = (0..e).collect();
                ranked.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then(a.cmp(&b)));
                ranked.into_iter().take(budget).collect()
            })
            .collect();
        Self::everywhere(base, replicated)
    }

    /// The sorted non-owner units holding a copy of `expert` at `layer`
    /// (empty if the expert is not replicated).
    pub fn replica_units(&self, layer: usize, expert: usize) -> &[usize] {
        match self.replicas[layer].binary_search_by_key(&expert, |r| r.0) {
            Ok(i) => &self.replicas[layer][i].1,
            Err(_) => &[],
        }
    }

    /// Whether `expert` at `layer` has at least one replica.
    pub fn is_replicated(&self, layer: usize, expert: usize) -> bool {
        !self.replica_units(layer, expert).is_empty()
    }

    /// Whether any layer replicates anything.
    pub fn has_replicas(&self) -> bool {
        self.replicas.iter().any(|lr| !lr.is_empty())
    }

    /// The experts replicated at `layer`, ascending.
    pub fn replicated_experts(&self, layer: usize) -> impl Iterator<Item = usize> + '_ {
        self.replicas[layer].iter().map(|r| r.0)
    }

    /// Whether `expert` at `layer` is available on `unit` (owned there or
    /// holding a replica there).
    pub fn available_on(&self, layer: usize, expert: usize, unit: usize) -> bool {
        self.base.unit_of(layer, expert) == unit
            || self.replica_units(layer, expert).contains(&unit)
    }

    /// Every unit `expert` at `layer` is available on: the owner merged
    /// into the replica subset, sorted ascending. Always contains the
    /// owner, so dispatch and failover can treat "where can this expert be
    /// served" as one question.
    pub fn available_units(&self, layer: usize, expert: usize) -> Vec<usize> {
        let owner = self.base.unit_of(layer, expert);
        let units = self.replica_units(layer, expert);
        let mut all = Vec::with_capacity(units.len() + 1);
        let mut placed = false;
        for &u in units {
            if !placed && owner < u {
                all.push(owner);
                placed = true;
            }
            all.push(u);
        }
        if !placed {
            all.push(owner);
        }
        all
    }

    /// Worst-case *extra* expert copies any one GPU stores, summed over
    /// layers — the "Extra Memory" column of the paper's Table I, in units
    /// of one expert's parameters.
    ///
    /// Convention (Table-I-consistent): a replicated expert's copy on its
    /// *owner* GPU is the original, not an extra — only the copies on the
    /// other GPUs cost memory. A GPU is charged exactly for the replica
    /// subsets it belongs to, **not** for a world-size fan-out: partial
    /// subsets cost proportionally less. The reported number is the
    /// maximum over GPUs, i.e. the memory headroom every GPU must
    /// provision to hold the plan.
    ///
    /// ```
    /// use exflow_placement::replication::{ReplicaPolicy, ReplicationPlan};
    /// use exflow_placement::Placement;
    /// use exflow_topology::ClusterSpec;
    ///
    /// // 4 experts on 2 nodes x 2 GPUs, expert i owned by GPU i.
    /// let base = Placement::round_robin(1, 4, 4);
    /// // Lina-style full fan-out: one replicated expert costs every
    /// // non-owner GPU a slot.
    /// let full = ReplicationPlan::everywhere(base.clone(), vec![vec![0]]);
    /// assert_eq!(full.extra_copies_per_gpu(), 1); // 3 GPUs hold 1 each
    /// // One-per-node subset: the same expert costs exactly one GPU (on
    /// // the far node) a slot — not world-size minus one.
    /// let policy = ReplicaPolicy::OnePerNode(ClusterSpec::new(2, 2).unwrap());
    /// let partial = ReplicationPlan::with_policy(base, vec![vec![0]], &policy);
    /// assert_eq!(partial.replica_units(0, 0).len(), 1);
    /// assert_eq!(partial.extra_copies_per_gpu(), 1);
    /// ```
    pub fn extra_copies_per_gpu(&self) -> usize {
        let units = self.base.n_units();
        (0..units)
            .map(|unit| {
                self.replicas
                    .iter()
                    .map(|lr| lr.iter().filter(|(_, us)| us.contains(&unit)).count())
                    .sum::<usize>()
            })
            .max()
            .unwrap_or(0)
    }

    /// Realized locality of this plan on a concrete trace, counting
    /// replicas as local: the replication-aware counterpart of
    /// [`measure_trace_locality`](crate::objective::measure_trace_locality).
    ///
    /// A token's position is tracked as the *set* of units it may sit on:
    /// it starts on any unit serving its first expert, a transition is
    /// local when some feasible unit also serves the next expert (the set
    /// then narrows to that intersection), and otherwise the token moves —
    /// a cross hop — to any unit serving the next expert. For everywhere
    /// plans this reduces to the classic unpinned-prefix rule (fully
    /// replicated prefixes are free, the first owned-only expert pins the
    /// token); for partial subsets it charges exactly the hops no holder
    /// of the previous expert could absorb.
    pub fn trace_locality(&self, trace: &RoutingTrace) -> TraceLocality {
        assert_eq!(trace.n_layers(), self.base.n_layers());
        let mut local = 0u64;
        let mut transitions = 0u64;
        for t in 0..trace.n_tokens() {
            let mut feasible = self.available_units(0, trace.expert_at(t, 0));
            for j in 1..trace.n_layers() {
                let expert = trace.expert_at(t, j);
                transitions += 1;
                let owner = self.base.unit_of(j, expert);
                let units = self.replica_units(j, expert);
                let overlap: Vec<usize> = feasible
                    .iter()
                    .copied()
                    .filter(|&u| u == owner || units.contains(&u))
                    .collect();
                if overlap.is_empty() {
                    feasible = self.available_units(j, expert);
                } else {
                    local += 1;
                    feasible = overlap;
                }
            }
        }
        TraceLocality { transitions, local }
    }

    /// Fraction of a trace's layer transitions that can be served without
    /// leaving the current unit, counting replicas as local (see
    /// [`ReplicationPlan::trace_locality`] for the exact semantics).
    ///
    /// A gapless single-layer trace has no transitions to lose, so the
    /// fraction is 1.0 — agreeing with `Objective::local_fraction` on the
    /// same L = 1 instance (the naive `0 / 0` ratio would report 0).
    pub fn trace_local_fraction(&self, trace: &RoutingTrace) -> f64 {
        self.trace_locality(trace).fraction()
    }
}

/// Expected cross-unit transition mass a replica-everywhere add would
/// absorb, per `(layer, expert)`: the mass flowing *into* `expert` at
/// `layer` from source experts placed on a different unit. A replica
/// everywhere turns exactly those incoming hops local, so this is the
/// marginal value of full replication (layer 0 has no incoming gap — its
/// entries are 0). Accumulation visits cells in ascending `(gap, source,
/// column)` order and skips structural zeros, so the scores are
/// bit-identical across dense/CSR gap backends. For subset-resolved gains
/// see [`replica_gains_by_unit`].
pub fn replica_gains(objective: &Objective, base: &Placement) -> Vec<Vec<f64>> {
    assert_eq!(base.n_layers(), objective.n_layers());
    assert_eq!(base.n_experts(), objective.n_experts());
    let e = objective.n_experts();
    let mut gains = vec![vec![0.0f64; e]; base.n_layers()];
    for gap in 0..objective.n_gaps() {
        for i in 0..e {
            let w = objective.row_weight(gap, i);
            if w == 0.0 {
                continue;
            }
            let from = base.unit_of(gap, i);
            objective.for_each_in_row(gap, i, |p, prob| {
                if base.unit_of(gap + 1, p) != from {
                    gains[gap + 1][p] += w * prob;
                }
            });
        }
    }
    gains
}

/// [`replica_gains`] resolved per source unit: `gains[layer][expert][unit]`
/// is the cross mass flowing into `expert` at `layer` from tokens sitting
/// on `unit`. A copy of `expert` placed on the subset `S` absorbs exactly
/// `sum over u in S of gains[layer][expert][u]`, which is what the
/// budgeted solver ranks `(expert, target-subset)` candidates by. Entries
/// at the owner unit are zero (those hops were already local), so subset
/// sums never double-count. Accumulation order matches [`replica_gains`]
/// (ascending `(gap, source, column)`, structural zeros skipped), keeping
/// the scores bit-identical across dense/CSR gap backends.
pub fn replica_gains_by_unit(objective: &Objective, base: &Placement) -> Vec<Vec<Vec<f64>>> {
    assert_eq!(base.n_layers(), objective.n_layers());
    assert_eq!(base.n_experts(), objective.n_experts());
    let e = objective.n_experts();
    let units = base.n_units();
    let mut gains = vec![vec![vec![0.0f64; units]; e]; base.n_layers()];
    for gap in 0..objective.n_gaps() {
        for i in 0..e {
            let w = objective.row_weight(gap, i);
            if w == 0.0 {
                continue;
            }
            let from = base.unit_of(gap, i);
            objective.for_each_in_row(gap, i, |p, prob| {
                if base.unit_of(gap + 1, p) != from {
                    gains[gap + 1][p][from] += w * prob;
                }
            });
        }
    }
    gains
}

/// Expected cross-unit transitions per token under a replication plan:
/// [`Objective::cross_mass`] minus the mass absorbed by replicas. A hop
/// into an expert is absorbed exactly when the *source* unit holds a copy
/// (owned or replica) of the destination expert — partial subsets absorb
/// only the hops they cover. First-order model: a token that used a
/// replica is assumed to continue from the destination expert's *owner*
/// for the next gap, mirroring the owner-marginal view the objective
/// itself takes. Lower is better; equals `cross_mass` exactly when no
/// expert is replicated.
pub fn replicated_cross_mass(objective: &Objective, plan: &ReplicationPlan) -> f64 {
    assert_eq!(plan.base.n_layers(), objective.n_layers());
    assert_eq!(plan.base.n_experts(), objective.n_experts());
    let e = objective.n_experts();
    let mut total = 0.0f64;
    for gap in 0..objective.n_gaps() {
        for i in 0..e {
            let w = objective.row_weight(gap, i);
            if w == 0.0 {
                continue;
            }
            let from = plan.base.unit_of(gap, i);
            objective.for_each_in_row(gap, i, |p, prob| {
                if !plan.available_on(gap + 1, p, from) {
                    total += w * prob;
                }
            });
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use exflow_affinity::AffinityMatrix;
    use exflow_model::routing::AffinityModelSpec;
    use exflow_model::{CorpusSpec, TokenBatch};

    fn instance(e: usize, l: usize) -> (Objective, RoutingTrace) {
        let model = AffinityModelSpec::new(l, e).build();
        let batch = TokenBatch::sample(&model, &CorpusSpec::pile_proxy(4), 4000, 1, 21);
        let trace = RoutingTrace::from_batch(&batch, e);
        let obj = Objective::from_affinities(&AffinityMatrix::consecutive(&trace));
        (obj, trace)
    }

    #[test]
    fn zero_budget_changes_nothing() {
        let (obj, trace) = instance(8, 5);
        let base = Placement::round_robin(5, 8, 4);
        let plan = ReplicationPlan::most_popular(&obj, base.clone(), 0);
        assert_eq!(plan.extra_copies_per_gpu(), 0);
        assert!(!plan.has_replicas());
        let plain = crate::objective::measure_trace_locality(&trace, &base).fraction();
        assert!((plan.trace_local_fraction(&trace) - plain).abs() < 0.15);
    }

    #[test]
    fn full_budget_makes_everything_local() {
        let (obj, trace) = instance(8, 5);
        let base = Placement::round_robin(5, 8, 4);
        let plan = ReplicationPlan::most_popular(&obj, base, 8);
        assert!((plan.trace_local_fraction(&trace) - 1.0).abs() < 1e-12);
        // Each GPU owns 2 of the 8 experts per layer, so full replication
        // costs it the other 6 per layer — owner copies are not "extra".
        assert_eq!(plan.extra_copies_per_gpu(), 30);
    }

    #[test]
    fn extra_copies_exclude_owner_copies() {
        let (obj, _) = instance(8, 2);
        let base = Placement::round_robin(2, 8, 4);
        // One replicated expert per layer: its owner GPU stores nothing
        // extra, every other GPU stores one copy per layer.
        let plan = ReplicationPlan::most_popular(&obj, base.clone(), 1);
        assert_eq!(plan.extra_copies_per_gpu(), 2);
        // Hand-built plan replicating a different owner's expert per
        // layer: experts 0 (unit 0) and 7 (unit 3). Units 1 and 2 store
        // both extras; units 0 and 3 store one each. Worst case: 2.
        let plan = ReplicationPlan::everywhere(base, vec![vec![0], vec![7]]);
        assert_eq!(plan.extra_copies_per_gpu(), 2);
    }

    #[test]
    fn one_per_node_subsets_cover_exactly_the_other_nodes() {
        let cluster = ClusterSpec::new(2, 2).unwrap();
        let policy = ReplicaPolicy::OnePerNode(cluster);
        let base = Placement::round_robin(2, 8, 4);
        let plan =
            ReplicationPlan::with_policy(base, vec![(0..8).collect(), (0..8).collect()], &policy);
        for layer in 0..2 {
            for expert in 0..8 {
                let owner = plan.base.unit_of(layer, expert);
                let units = plan.replica_units(layer, expert);
                assert_eq!(units.len(), 1, "one replica on the single other node");
                assert!(!units.contains(&owner), "owner never appears in a subset");
                assert_ne!(
                    cluster.node_of(Rank(units[0])),
                    cluster.node_of(Rank(owner)),
                    "the replica must sit on the other node"
                );
                // The owner is always available, plus exactly the subset.
                let avail = plan.available_units(layer, expert);
                assert!(avail.contains(&owner));
                assert!(avail.windows(2).all(|w| w[0] < w[1]), "sorted + unique");
                assert_eq!(avail.len(), 2);
            }
        }
        // Full replication of everything costs each GPU up to 6 extra per
        // layer (8 experts minus its own 2); one-per-node costs far less.
        assert!(plan.extra_copies_per_gpu() <= 2 * 8 / 2);
        let full = ReplicationPlan::everywhere(
            plan.base.clone(),
            vec![(0..8).collect(), (0..8).collect()],
        );
        assert!(plan.extra_copies_per_gpu() < full.extra_copies_per_gpu());
    }

    #[test]
    fn partial_plan_absorbs_only_hops_from_holder_units() {
        // 4 experts, expert i owned by unit i (2 nodes x 2 GPUs). Gap:
        // experts 0 and 1 both route into expert 2; experts 2 and 3
        // self-loop (local).
        let e = 4;
        let mut gap = vec![0.0; e * e];
        gap[2] = 1.0; // 0 -> 2 (cross: unit 0 -> 2)
        gap[e + 2] = 1.0; // 1 -> 2 (cross: unit 1 -> 2)
        gap[2 * e + 2] = 1.0; // 2 -> 2 (local)
        gap[3 * e + 3] = 1.0; // 3 -> 3 (local)
        let obj = Objective::from_raw(vec![gap], e);
        let base = Placement::round_robin(2, e, 4);
        let cross = obj.cross_mass(&base);
        assert!((cross - 0.5).abs() < 1e-12);

        // One-per-node replica of expert 2 (owner unit 2, node 1) lands on
        // one GPU of node 0 — it absorbs the hop from that unit only.
        let policy = ReplicaPolicy::OnePerNode(ClusterSpec::new(2, 2).unwrap());
        let partial = ReplicationPlan::with_policy(base.clone(), vec![vec![], vec![2]], &policy);
        let holder = partial.replica_units(1, 2)[0];
        assert!(holder < 2, "replica sits on node 0");
        let partial_cross = replicated_cross_mass(&obj, &partial);
        assert!((partial_cross - 0.25).abs() < 1e-12);

        // Everywhere absorbs both incoming hops.
        let full = ReplicationPlan::everywhere(base.clone(), vec![vec![], vec![2]]);
        let full_cross = replicated_cross_mass(&obj, &full);
        assert!(full_cross.abs() < 1e-12);
        assert!(partial_cross > full_cross);

        // By-unit gains resolve exactly which source units a copy helps.
        let by_unit = replica_gains_by_unit(&obj, &base);
        assert!((by_unit[1][2][0] - 0.25).abs() < 1e-12);
        assert!((by_unit[1][2][1] - 0.25).abs() < 1e-12);
        assert_eq!(by_unit[1][2][2], 0.0, "owner-unit hops were never cross");
    }

    #[test]
    fn by_unit_gains_sum_to_replica_gains() {
        let (obj, _) = instance(16, 5);
        let base = Placement::round_robin(5, 16, 4);
        let rows = replica_gains(&obj, &base);
        let by_unit = replica_gains_by_unit(&obj, &base);
        for layer in 0..5 {
            for x in 0..16 {
                let total: f64 = by_unit[layer][x].iter().sum();
                assert!(
                    (total - rows[layer][x]).abs() <= 1e-12 * rows[layer][x].abs().max(1.0),
                    "layer {layer} expert {x}: {total} vs {}",
                    rows[layer][x]
                );
            }
        }
    }

    #[test]
    fn popularity_sort_is_total_and_breaks_ties_by_index() {
        // NaN popularity (a degenerate affinity estimate) must not panic,
        // and exact ties must resolve by ascending expert index.
        let e = 4;
        let mut gap = vec![f64::NAN; e * e];
        for i in 0..e {
            gap[i * e + i] = 1.0;
        }
        let obj = Objective::from_raw(vec![gap], e);
        let base = Placement::round_robin(2, e, 2);
        let plan = ReplicationPlan::most_popular(&obj, base.clone(), 2);
        // Layer-0 popularity is the uniform marginal (all tied): lowest
        // indices win. Layer-1 popularity is NaN-tainted successor mass:
        // selection stays deterministic either way.
        assert_eq!(plan.replicated_experts(0).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(plan.replicated_experts(1).count(), 2);
        let again = ReplicationPlan::most_popular(&obj, base.clone(), 2);
        assert_eq!(plan, again, "NaN selection must be deterministic");

        // Explicit popularity: tie on 0.4 between experts 1 and 3.
        let pop = vec![vec![0.1, 0.4, 0.1, 0.4]; 2];
        let tied = ReplicationPlan::from_popularity(&pop, base, 1);
        assert_eq!(tied.replicated_experts(0).collect::<Vec<_>>(), vec![1]);
        assert_eq!(tied.replicated_experts(1).collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn locality_is_monotone_in_budget() {
        let (obj, trace) = instance(16, 6);
        let base = Placement::round_robin(6, 16, 4);
        let mut last = 0.0;
        for budget in [0usize, 2, 4, 8, 16] {
            let plan = ReplicationPlan::most_popular(&obj, base.clone(), budget);
            let frac = plan.trace_local_fraction(&trace);
            assert!(
                frac + 1e-9 >= last,
                "budget {budget}: locality {frac} fell below {last}"
            );
            last = frac;
        }
    }

    #[test]
    fn exflow_placement_beats_replication_at_zero_memory() {
        // The paper's §VI point: ExFlow reaches comparable locality with
        // no replicas. Replication needs a non-trivial budget to catch the
        // affinity placement.
        let (obj, trace) = instance(16, 6);
        let base = Placement::round_robin(6, 16, 4);
        let exflow = crate::local_search::solve_local_search(&obj, 4, 1, 0);
        let exflow_local = crate::objective::measure_trace_locality(&trace, &exflow).fraction();
        let rep0 =
            ReplicationPlan::most_popular(&obj, base.clone(), 0).trace_local_fraction(&trace);
        assert!(
            exflow_local > rep0,
            "exflow {exflow_local} vs zero-budget replication {rep0}"
        );
        // Replication with large budget eventually wins (it spends memory).
        let rep_full = ReplicationPlan::most_popular(&obj, base, 16).trace_local_fraction(&trace);
        assert!(rep_full >= exflow_local);
    }

    #[test]
    fn replicated_experts_are_available_everywhere() {
        let (obj, _) = instance(8, 4);
        let base = Placement::round_robin(4, 8, 4);
        let plan = ReplicationPlan::most_popular(&obj, base, 3);
        for layer in 0..4 {
            let experts: Vec<usize> = plan.replicated_experts(layer).collect();
            assert_eq!(experts.len(), 3);
            for expert in experts {
                for unit in 0..4 {
                    assert!(plan.available_on(layer, expert, unit));
                }
            }
        }
    }

    #[test]
    fn replicated_first_expert_does_not_charge_the_start() {
        // Token path: expert 0 (layer 0, replicated everywhere) -> expert
        // 3 (layer 1, owned by unit 1). The scheduler can start the token
        // on unit 1, so the single transition is local. The old seeding
        // (pin to expert 0's owner, unit 0) wrongly counted it cross-unit.
        let base = Placement::round_robin(2, 4, 2);
        let plan = ReplicationPlan::everywhere(base.clone(), vec![vec![0], vec![]]);
        let trace = RoutingTrace::new(vec![vec![0, 3]], 4);
        assert_eq!(plan.trace_local_fraction(&trace), 1.0);
        let loc = plan.trace_locality(&trace);
        assert_eq!((loc.local, loc.transitions), (1, 1));
        // Once pinned (layer 1's expert is not replicated), later hops are
        // charged normally: 3 (unit 1) -> 0 (unit 0) is cross.
        let base3 = Placement::round_robin(3, 4, 2);
        let plan3 = ReplicationPlan::everywhere(base3, vec![vec![0], vec![], vec![]]);
        let t3 = RoutingTrace::new(vec![vec![0, 3, 0]], 4);
        let loc3 = plan3.trace_locality(&t3);
        assert_eq!((loc3.local, loc3.transitions), (1, 2));
        // A fully-replicated prefix stays unpinned across layers.
        let all = ReplicationPlan::everywhere(
            Placement::round_robin(3, 4, 2),
            vec![vec![0, 1, 2, 3], vec![0, 1, 2, 3], vec![]],
        );
        let loc_all = all.trace_locality(&RoutingTrace::new(vec![vec![0, 3, 1]], 4));
        assert_eq!((loc_all.local, loc_all.transitions), (2, 2));
    }

    #[test]
    fn partial_subset_locality_narrows_the_feasible_set() {
        // 4 experts on 4 units (expert i owned by unit i), 3 layers.
        // Expert 2 at layer 1 is replicated onto unit 0 only. A token
        // routed 0 -> 2 -> 0 can stay on unit 0 the whole way: the layer-1
        // hop is absorbed by the replica and the layer-2 hop returns to
        // the narrowed position {0}.
        let base = Placement::round_robin(3, 4, 4);
        let mut plan = ReplicationPlan::bare(base);
        plan.replicas[1] = vec![(2, vec![0])];
        let loc = plan.trace_locality(&RoutingTrace::new(vec![vec![0, 2, 0]], 4));
        assert_eq!((loc.local, loc.transitions), (2, 2));
        // A token starting on unit 1 gains nothing from that subset:
        // 1 -> 2 is cross (no copy on unit 1), and the move lands it on a
        // holder {0, 2}; 2 -> 3 is cross again.
        let loc2 = plan.trace_locality(&RoutingTrace::new(vec![vec![1, 2, 3]], 4));
        assert_eq!((loc2.local, loc2.transitions), (0, 2));
    }

    #[test]
    fn replica_gains_score_incoming_cross_mass() {
        // Shift affinity: expert i always routes to i + 1 (mod 4).
        let e = 4;
        let mut gap = vec![0.0; e * e];
        for i in 0..e {
            gap[i * e + (i + 1) % e] = 1.0;
        }
        let obj = Objective::from_raw(vec![gap], e);
        let base = Placement::round_robin(2, e, 2);
        let gains = replica_gains(&obj, &base);
        // Layer 0 has no incoming gap.
        assert_eq!(gains[0], vec![0.0; e]);
        // Units: {0,1} on GPU 0, {2,3} on GPU 1. Cross hops: 1 -> 2 and
        // 3 -> 0, each with marginal 1/4.
        assert_eq!(gains[1], vec![0.25, 0.0, 0.25, 0.0]);
        // Replicating expert 2 at layer 1 absorbs exactly its gain.
        let plan = ReplicationPlan::everywhere(base.clone(), vec![vec![], vec![2]]);
        let absorbed = obj.cross_mass(&base) - replicated_cross_mass(&obj, &plan);
        assert!((absorbed - 0.25).abs() < 1e-12);
        // No replicas: replicated_cross_mass is exactly cross_mass.
        let bare = ReplicationPlan::bare(base.clone());
        assert_eq!(
            replicated_cross_mass(&obj, &bare).to_bits(),
            obj.cross_mass(&base).to_bits()
        );
    }

    #[test]
    fn snapshot_popularity_matches_objective_popularity() {
        use exflow_affinity::StreamingAffinity;
        let (_, trace) = instance(8, 4);
        let mut s = StreamingAffinity::new(4, 8, 1.0);
        s.observe(&trace);
        let snap = s.snapshot();
        let obj = crate::objective::Objective::from_snapshot(&snap);
        let base = Placement::round_robin(4, 8, 4);
        let a = ReplicationPlan::most_popular(&obj, base.clone(), 3);
        let b = ReplicationPlan::most_popular_from_snapshot(&snap, base, 3);
        assert_eq!(a, b, "snapshot and objective popularity must agree");
    }

    #[test]
    fn single_layer_trace_agrees_with_objective_local_fraction() {
        // Regression: PR 3 fixed the L = 1 edge case in
        // Objective::local_fraction (0/0 -> 1.0) but left this path
        // returning 0. Both views of a gapless instance must agree: with
        // no transitions, nothing can leave its unit.
        let trace = RoutingTrace::new(vec![vec![0], vec![3], vec![1]], 4);
        let base = Placement::round_robin(1, 4, 2);
        let obj = Objective::from_raw(vec![], 4);
        let expected = obj.local_fraction(&base);
        assert_eq!(expected, 1.0);
        for budget in [0usize, 2, 4] {
            let plan = ReplicationPlan::most_popular(&obj, base.clone(), budget);
            let measured = plan.trace_local_fraction(&trace);
            assert_eq!(
                measured, expected,
                "budget {budget}: trace fraction {measured} vs objective {expected}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "more experts than exist")]
    fn over_budget_rejected() {
        let (obj, _) = instance(8, 4);
        let base = Placement::round_robin(4, 8, 4);
        let _ = ReplicationPlan::most_popular(&obj, base, 9);
    }
}
