//! The paper's staged optimization (§IV-C/D): stage 1 places experts on
//! *nodes* to minimize inter-node token routing; stage 2 refines each
//! node's expert sets onto its *GPUs* to minimize intra-node cross-GPU
//! routing, holding stage 1 fixed. "In stage 1, we will reduce the
//! inter-node routing as much as possible, and in stage 2, we will minimize
//! the intra-node routing based on stage 1 results."

use exflow_topology::ClusterSpec;

use crate::local_search::solve_local_search_with;
use crate::objective::Objective;
use crate::parallel::Parallelism;
use crate::placement::Placement;

/// Result of the two-stage optimization: the node-level placement from
/// stage 1 and the final GPU-level placement after stage 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StagedPlacement {
    /// Stage-1 output: units = nodes.
    pub node_level: Placement,
    /// Final output: units = GPUs (node-major rank order).
    pub gpu_level: Placement,
}

/// Run the staged solve. `restarts` controls the local-search effort of
/// each stage; `seed` makes the whole pipeline deterministic. Sequential
/// convenience wrapper around [`solve_staged_with`].
pub fn solve_staged(
    objective: &Objective,
    cluster: &ClusterSpec,
    restarts: usize,
    seed: u64,
) -> StagedPlacement {
    solve_staged_with(objective, cluster, restarts, seed, Parallelism::single())
}

/// Run the staged solve with explicit parallelism. Stage 1 fans its
/// restarts across the pool; stage 2's per-node sub-solves are mutually
/// independent (each is a pure function of the stage-1 result and its own
/// derived seed), so nodes are solved in parallel and the merged result
/// is bit-identical for every thread count.
pub fn solve_staged_with(
    objective: &Objective,
    cluster: &ClusterSpec,
    restarts: usize,
    seed: u64,
    par: Parallelism,
) -> StagedPlacement {
    let e = objective.n_experts();
    let l = objective.n_layers();
    let n_nodes = cluster.n_nodes();
    let gpn = cluster.gpus_per_node();
    assert!(
        e.is_multiple_of(cluster.world_size()),
        "experts must divide across GPUs"
    );

    // Stage 1: units = nodes. With one node this is trivially all-zero.
    let node_level = if n_nodes == 1 {
        Placement::new(vec![vec![0usize; e]; l], 1)
    } else {
        solve_local_search_with(objective, n_nodes, restarts, seed, par)
    };

    // Stage 2: within each node, place its per-layer expert sets onto the
    // node's GPUs. The sub-instance for node `n` keeps only transitions
    // between experts the node owns at consecutive layers; mass that leaves
    // the node is a constant under stage-2 moves and is dropped.
    let gpu_level = if gpn == 1 {
        // GPUs == nodes: stage 1 already decided everything.
        node_level.clone()
    } else {
        // Each node's sub-solve reads only the immutable stage-1 result;
        // fan nodes across the pool and merge in node order.
        let per_node: Vec<Vec<Vec<(usize, usize)>>> = par.map_indexed(n_nodes, |node| {
            // Per-layer expert lists this node owns (each of size cap2).
            let owned: Vec<Vec<usize>> = (0..l).map(|j| node_level.experts_on(j, node)).collect();
            let cap2 = owned[0].len();
            debug_assert!(owned.iter().all(|o| o.len() == cap2));

            // Sub-objective over local indices 0..cap2 per layer. Row
            // iteration keeps extraction O(cap2 x row-nnz) on the sparse
            // backend (per-cell `gap_prob` would binary-search every one
            // of the cap2^2 cells); the copied values are identical
            // either way.
            let sub_gaps: Vec<Vec<f64>> = (0..l - 1)
                .map(|gap| {
                    let mut local_next = vec![usize::MAX; e];
                    for (lp, &gp) in owned[gap + 1].iter().enumerate() {
                        local_next[gp] = lp;
                    }
                    let mut m = vec![0.0f64; cap2 * cap2];
                    for (li, &gi) in owned[gap].iter().enumerate() {
                        objective.for_each_in_row(gap, gi, |p, prob| {
                            if local_next[p] != usize::MAX {
                                m[li * cap2 + local_next[p]] = prob;
                            }
                        });
                    }
                    m
                })
                .collect();
            let sub_obj = Objective::from_raw(sub_gaps, cap2);
            // The node itself is the parallel grain here: its sub-solve
            // runs sequentially on a seed derived exactly as before.
            let sub_placement = solve_local_search_with(
                &sub_obj,
                gpn,
                restarts,
                seed ^ (node as u64 + 1),
                Parallelism::single(),
            );

            (0..l)
                .map(|layer| {
                    owned[layer]
                        .iter()
                        .enumerate()
                        .map(|(local, &global)| {
                            (global, node * gpn + sub_placement.unit_of(layer, local))
                        })
                        .collect()
                })
                .collect()
        });

        let mut assign: Vec<Vec<usize>> = vec![vec![usize::MAX; e]; l];
        for node_assign in per_node {
            for (layer, pairs) in node_assign.into_iter().enumerate() {
                for (global, gpu) in pairs {
                    assign[layer][global] = gpu;
                }
            }
        }
        Placement::new(assign, cluster.world_size())
    };

    StagedPlacement {
        node_level,
        gpu_level,
    }
}

impl StagedPlacement {
    /// Check that the GPU-level placement is consistent with the node-level
    /// one (every expert's GPU lives on the node stage 1 chose).
    pub fn is_consistent(&self, cluster: &ClusterSpec) -> bool {
        let gpn = cluster.gpus_per_node();
        for layer in 0..self.gpu_level.n_layers() {
            for expert in 0..self.gpu_level.n_experts() {
                let gpu = self.gpu_level.unit_of(layer, expert);
                let node = self.node_level.unit_of(layer, expert);
                if self.node_level.n_units() > 1 && gpu / gpn != node {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::measure_trace_node_locality;
    use exflow_affinity::{AffinityMatrix, RoutingTrace};
    use exflow_model::routing::AffinityModelSpec;
    use exflow_model::{CorpusSpec, TokenBatch};

    fn build_instance(e: usize, l: usize, kappa: f64) -> (Objective, RoutingTrace) {
        let model = AffinityModelSpec::new(l, e).with_affinity(kappa).build();
        let batch = TokenBatch::sample(&model, &CorpusSpec::pile_proxy(4), 6000, 1, 9);
        let trace = RoutingTrace::from_batch(&batch, e);
        let obj = Objective::from_affinities(&AffinityMatrix::consecutive(&trace));
        (obj, trace)
    }

    #[test]
    fn staged_output_is_consistent_and_balanced() {
        let (obj, _) = build_instance(16, 6, 0.85);
        let cluster = ClusterSpec::new(2, 2).unwrap();
        let staged = solve_staged(&obj, &cluster, 1, 0);
        assert!(staged.is_consistent(&cluster));
        assert_eq!(staged.gpu_level.n_units(), 4);
        assert_eq!(staged.gpu_level.capacity(), 4);
        assert_eq!(staged.node_level.capacity(), 8);
    }

    #[test]
    fn single_node_skips_stage_one() {
        let (obj, _) = build_instance(8, 4, 0.8);
        let cluster = ClusterSpec::single_node(4).unwrap();
        let staged = solve_staged(&obj, &cluster, 1, 0);
        assert_eq!(staged.node_level.n_units(), 1);
        assert_eq!(staged.gpu_level.n_units(), 4);
        assert!(staged.is_consistent(&cluster));
    }

    #[test]
    fn one_gpu_per_node_reuses_stage_one() {
        let (obj, _) = build_instance(8, 4, 0.8);
        let cluster = ClusterSpec::new(4, 1).unwrap();
        let staged = solve_staged(&obj, &cluster, 1, 0);
        assert_eq!(staged.gpu_level, staged.node_level);
    }

    #[test]
    fn staged_reduces_internode_traffic_vs_round_robin() {
        let (obj, trace) = build_instance(16, 8, 0.9);
        let cluster = ClusterSpec::new(2, 2).unwrap();
        let staged = solve_staged(&obj, &cluster, 2, 0);
        let rr = Placement::round_robin(8, 16, 4);
        let rr_node = measure_trace_node_locality(&trace, &rr, 2).fraction();
        let st_node = measure_trace_node_locality(&trace, &staged.gpu_level, 2).fraction();
        assert!(
            st_node > rr_node,
            "staged node locality {st_node} should beat round-robin {rr_node}"
        );
    }

    #[test]
    fn staged_is_deterministic() {
        let (obj, _) = build_instance(8, 5, 0.8);
        let cluster = ClusterSpec::new(2, 2).unwrap();
        let a = solve_staged(&obj, &cluster, 1, 3);
        let b = solve_staged(&obj, &cluster, 1, 3);
        assert_eq!(a.gpu_level, b.gpu_level);
    }

    #[test]
    fn staged_is_thread_count_invariant() {
        let (obj, _) = build_instance(16, 6, 0.85);
        let cluster = ClusterSpec::new(2, 2).unwrap();
        let seq = solve_staged_with(&obj, &cluster, 2, 5, Parallelism::single());
        for threads in [2, 8] {
            let par = solve_staged_with(&obj, &cluster, 2, 5, Parallelism::new(threads));
            assert_eq!(par.gpu_level, seq.gpu_level, "{threads} threads diverged");
            assert_eq!(par.node_level, seq.node_level);
        }
    }
}
