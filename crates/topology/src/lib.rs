//! # exflow-topology
//!
//! Hierarchical cluster topology model for the ExFlow Mixture-of-Experts
//! inference suite.
//!
//! The paper ("Exploiting Inter-Layer Expert Affinity for Accelerating
//! Mixture-of-Experts Model Inference", IPDPS 2024) evaluates on clusters of
//! nodes with 4 NVLink-connected A100 GPUs each, joined by HDR200 InfiniBand.
//! Everything ExFlow decides — expert placement, which transfers are "cheap"
//! (intra-node) and which are "expensive" (inter-node) — depends only on the
//! *shape* of that hierarchy and the *relative* cost of its link classes, so
//! this crate models exactly that:
//!
//! * [`ClusterSpec`] — how many nodes, how many GPUs per node, and the
//!   bijection between flat ranks and `(node, gpu)` coordinates.
//! * [`LinkClass`] — the three-level hierarchy (same GPU, intra-node,
//!   inter-node) that classifies any rank pair.
//! * [`CostModel`] — an α–β (latency–bandwidth) model per link class, with
//!   presets calibrated to the paper's hardware.
//! * [`collective_cost`] — closed-form cost estimates for the collectives the
//!   engine issues (AlltoallV, AllGatherV), used for cross-checking the
//!   simulated communicator in `exflow-collectives`.
//!
//! ```
//! use exflow_topology::{ClusterSpec, CostModel, LinkClass, Rank};
//!
//! let cluster = ClusterSpec::new(2, 4).unwrap(); // 2 nodes x 4 GPUs
//! assert_eq!(cluster.world_size(), 8);
//! assert_eq!(cluster.link_class(Rank(0), Rank(3)), LinkClass::IntraNode);
//! assert_eq!(cluster.link_class(Rank(0), Rank(4)), LinkClass::InterNode);
//!
//! let cost = CostModel::wilkes3();
//! // A 1 MiB transfer across InfiniBand is slower than across NVLink.
//! let ib = cost.transfer_time(LinkClass::InterNode, 1 << 20);
//! let nv = cost.transfer_time(LinkClass::IntraNode, 1 << 20);
//! assert!(ib > nv);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod collective_cost;
pub mod cost;
pub mod error;
pub mod link;

pub use cluster::{ClusterSpec, DeviceId, Rank};
pub use collective_cost::CollectiveCostModel;
pub use cost::{CostModel, LinkCost};
pub use error::TopologyError;
pub use link::LinkClass;
