//! Error type for topology construction and queries.

use std::fmt;

/// Errors produced when building or querying a cluster topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A cluster dimension (nodes or GPUs per node) was zero.
    EmptyDimension {
        /// Which dimension was empty (`"nodes"` or `"gpus_per_node"`).
        what: &'static str,
    },
    /// A rank was out of range for the cluster's world size.
    RankOutOfRange {
        /// The offending rank.
        rank: usize,
        /// The cluster world size.
        world_size: usize,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::EmptyDimension { what } => {
                write!(f, "cluster dimension `{what}` must be non-zero")
            }
            TopologyError::RankOutOfRange { rank, world_size } => {
                write!(f, "rank {rank} out of range for world size {world_size}")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_empty_dimension() {
        let e = TopologyError::EmptyDimension { what: "nodes" };
        assert!(e.to_string().contains("nodes"));
    }

    #[test]
    fn display_rank_out_of_range() {
        let e = TopologyError::RankOutOfRange {
            rank: 9,
            world_size: 8,
        };
        let s = e.to_string();
        assert!(s.contains('9') && s.contains('8'));
    }
}
