//! Cluster shape: nodes, GPUs per node, and rank <-> device mapping.

use crate::error::TopologyError;
use crate::link::LinkClass;

/// A flat rank in the expert-parallel group (one rank per simulated GPU).
///
/// Ranks are assigned node-major: ranks `0..gpus_per_node` live on node 0,
/// the next `gpus_per_node` on node 1, and so on — the same convention
/// MPI + one-process-per-GPU launchers use on the paper's Wilkes3 cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Rank(pub usize);

impl Rank {
    /// The flat index of this rank.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for Rank {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rank{}", self.0)
    }
}

/// Physical coordinates of a simulated GPU: which node, which local slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DeviceId {
    /// Node index within the cluster.
    pub node: usize,
    /// GPU index within the node.
    pub gpu: usize,
}

/// The shape of a cluster: `n_nodes` nodes, each with `gpus_per_node` GPUs.
///
/// This is the only topology information ExFlow's placement stage consumes:
/// the staged ILP first partitions experts across *nodes*, then across the
/// *GPUs* of each node (paper §IV-C/D).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterSpec {
    n_nodes: usize,
    gpus_per_node: usize,
}

impl ClusterSpec {
    /// Build a cluster of `n_nodes` nodes with `gpus_per_node` GPUs each.
    ///
    /// Returns an error if either dimension is zero.
    pub fn new(n_nodes: usize, gpus_per_node: usize) -> Result<Self, TopologyError> {
        if n_nodes == 0 {
            return Err(TopologyError::EmptyDimension { what: "nodes" });
        }
        if gpus_per_node == 0 {
            return Err(TopologyError::EmptyDimension {
                what: "gpus_per_node",
            });
        }
        Ok(ClusterSpec {
            n_nodes,
            gpus_per_node,
        })
    }

    /// A single node with `gpus` GPUs (the paper's 1-node baseline case).
    pub fn single_node(gpus: usize) -> Result<Self, TopologyError> {
        ClusterSpec::new(1, gpus)
    }

    /// The paper's evaluation node shape: 4 A100 GPUs per node.
    pub fn wilkes3(n_nodes: usize) -> Result<Self, TopologyError> {
        ClusterSpec::new(n_nodes, 4)
    }

    /// Number of nodes.
    #[inline]
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// GPUs per node.
    #[inline]
    pub fn gpus_per_node(&self) -> usize {
        self.gpus_per_node
    }

    /// Total number of ranks (GPUs) in the cluster.
    #[inline]
    pub fn world_size(&self) -> usize {
        self.n_nodes * self.gpus_per_node
    }

    /// Map a flat rank to its `(node, gpu)` coordinates.
    #[inline]
    pub fn device_of(&self, rank: Rank) -> DeviceId {
        debug_assert!(rank.0 < self.world_size());
        DeviceId {
            node: rank.0 / self.gpus_per_node,
            gpu: rank.0 % self.gpus_per_node,
        }
    }

    /// Map `(node, gpu)` coordinates to a flat rank.
    #[inline]
    pub fn rank_of(&self, device: DeviceId) -> Rank {
        debug_assert!(device.node < self.n_nodes && device.gpu < self.gpus_per_node);
        Rank(device.node * self.gpus_per_node + device.gpu)
    }

    /// Node index of a flat rank.
    #[inline]
    pub fn node_of(&self, rank: Rank) -> usize {
        rank.0 / self.gpus_per_node
    }

    /// Validate a rank against the cluster's world size.
    pub fn check_rank(&self, rank: Rank) -> Result<(), TopologyError> {
        if rank.0 >= self.world_size() {
            Err(TopologyError::RankOutOfRange {
                rank: rank.0,
                world_size: self.world_size(),
            })
        } else {
            Ok(())
        }
    }

    /// Classify the link between two ranks into the three-level hierarchy.
    #[inline]
    pub fn link_class(&self, a: Rank, b: Rank) -> LinkClass {
        if a == b {
            LinkClass::Local
        } else if self.node_of(a) == self.node_of(b) {
            LinkClass::IntraNode
        } else {
            LinkClass::InterNode
        }
    }

    /// Iterate over all ranks.
    pub fn ranks(&self) -> impl Iterator<Item = Rank> {
        (0..self.world_size()).map(Rank)
    }

    /// Iterate over the ranks that live on `node`.
    pub fn ranks_on_node(&self, node: usize) -> impl Iterator<Item = Rank> {
        let g = self.gpus_per_node;
        (0..g).map(move |i| Rank(node * g + i))
    }

    /// One rank on every node *other than* `owner`'s, chosen by rotating
    /// `salt` through each node's local GPU slots — the node-aware replica
    /// fan-out subset of the paper's topology (the owner's node is already
    /// covered by the owner itself). The result is sorted ascending and
    /// never contains `owner`; different salts land on different local
    /// GPUs so many subsets spread across a node instead of piling onto
    /// slot 0.
    ///
    /// ```
    /// use exflow_topology::{ClusterSpec, Rank};
    ///
    /// let c = ClusterSpec::new(3, 2).unwrap();
    /// assert_eq!(c.one_per_node(Rank(0), 0), vec![Rank(3), Rank(4)]);
    /// assert_eq!(c.one_per_node(Rank(0), 1), vec![Rank(2), Rank(5)]);
    /// assert!(ClusterSpec::single_node(4).unwrap().one_per_node(Rank(1), 7).is_empty());
    /// ```
    pub fn one_per_node(&self, owner: Rank, salt: usize) -> Vec<Rank> {
        debug_assert!(owner.0 < self.world_size());
        let g = self.gpus_per_node;
        (0..self.n_nodes)
            .filter(|&n| n != self.node_of(owner))
            .map(|n| Rank(n * g + (salt + n) % g))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_dimensions() {
        assert!(ClusterSpec::new(0, 4).is_err());
        assert!(ClusterSpec::new(2, 0).is_err());
    }

    #[test]
    fn world_size_and_mapping_round_trip() {
        let c = ClusterSpec::new(3, 4).unwrap();
        assert_eq!(c.world_size(), 12);
        for r in c.ranks() {
            let d = c.device_of(r);
            assert_eq!(c.rank_of(d), r);
        }
    }

    #[test]
    fn node_major_rank_layout() {
        let c = ClusterSpec::new(2, 4).unwrap();
        assert_eq!(c.device_of(Rank(0)), DeviceId { node: 0, gpu: 0 });
        assert_eq!(c.device_of(Rank(3)), DeviceId { node: 0, gpu: 3 });
        assert_eq!(c.device_of(Rank(4)), DeviceId { node: 1, gpu: 0 });
        assert_eq!(c.device_of(Rank(7)), DeviceId { node: 1, gpu: 3 });
    }

    #[test]
    fn link_classification() {
        let c = ClusterSpec::new(2, 2).unwrap();
        assert_eq!(c.link_class(Rank(1), Rank(1)), LinkClass::Local);
        assert_eq!(c.link_class(Rank(0), Rank(1)), LinkClass::IntraNode);
        assert_eq!(c.link_class(Rank(1), Rank(2)), LinkClass::InterNode);
        // Symmetry.
        assert_eq!(c.link_class(Rank(2), Rank(1)), LinkClass::InterNode);
    }

    #[test]
    fn ranks_on_node_enumerates_local_gpus() {
        let c = ClusterSpec::new(3, 2).unwrap();
        let on1: Vec<_> = c.ranks_on_node(1).collect();
        assert_eq!(on1, vec![Rank(2), Rank(3)]);
    }

    #[test]
    fn check_rank_bounds() {
        let c = ClusterSpec::new(1, 4).unwrap();
        assert!(c.check_rank(Rank(3)).is_ok());
        assert!(c.check_rank(Rank(4)).is_err());
    }

    #[test]
    fn one_per_node_skips_the_owner_node_and_rotates_slots() {
        let c = ClusterSpec::new(2, 4).unwrap();
        for salt in 0..8 {
            for owner in c.ranks() {
                let subset = c.one_per_node(owner, salt);
                assert_eq!(subset.len(), 1, "one replica target per other node");
                assert_ne!(c.node_of(subset[0]), c.node_of(owner));
            }
        }
        // Distinct salts rotate through every local slot of the far node.
        let slots: std::collections::HashSet<usize> =
            (0..4).map(|s| c.one_per_node(Rank(0), s)[0].0).collect();
        assert_eq!(slots.len(), 4);
    }

    #[test]
    fn single_node_has_no_internode_links() {
        let c = ClusterSpec::single_node(8).unwrap();
        for a in c.ranks() {
            for b in c.ranks() {
                assert_ne!(c.link_class(a, b), LinkClass::InterNode);
            }
        }
    }
}
