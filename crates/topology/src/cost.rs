//! The α–β (latency–bandwidth) point-to-point cost model.

use crate::link::LinkClass;

/// Cost parameters of one link class: `time(bytes) = alpha + bytes * beta`.
///
/// `alpha` is the fixed per-message latency in seconds, `beta` the inverse
/// bandwidth in seconds per byte. This is the standard Hockney model used
/// throughout the collective-communication literature the paper builds on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkCost {
    /// Fixed per-message startup latency, seconds.
    pub alpha: f64,
    /// Inverse bandwidth, seconds per byte.
    pub beta: f64,
}

impl LinkCost {
    /// Construct from latency (seconds) and bandwidth (bytes/second).
    pub fn from_latency_bandwidth(latency_s: f64, bandwidth_bytes_per_s: f64) -> Self {
        assert!(latency_s >= 0.0, "latency must be non-negative");
        assert!(bandwidth_bytes_per_s > 0.0, "bandwidth must be positive");
        LinkCost {
            alpha: latency_s,
            beta: 1.0 / bandwidth_bytes_per_s,
        }
    }

    /// Time to move `bytes` over this link.
    #[inline]
    pub fn time(&self, bytes: u64) -> f64 {
        self.alpha + bytes as f64 * self.beta
    }
}

/// Per-link-class cost model for a cluster.
///
/// The presets are calibrated against the paper's Wilkes3 testbed
/// (A100-SXM4 with NVLink 3.0 intra-node, dual-rail HDR200 InfiniBand
/// inter-node). Absolute values only set the time *scale*; every figure the
/// suite reproduces depends on the *ratios* between the classes.
///
/// Alltoall traffic additionally pays a per-class **derate**: unlike ring
/// collectives, Alltoall stresses every link simultaneously (incast, QP
/// contention on the shared IB rails), so its measured effective per-GPU
/// bus bandwidth sits well below line rate — the phenomenon that makes the
/// paper's multi-node inference "almost purely communication-bounded"
/// (Fig. 9d).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    costs: [LinkCost; 3],
    /// Bandwidth efficiency of Alltoall traffic per link class (1.0 = full
    /// link bandwidth).
    alltoall_efficiency: [f64; 3],
}

impl CostModel {
    /// Build from explicit per-class costs (Alltoall at full efficiency).
    pub fn new(local: LinkCost, intra_node: LinkCost, inter_node: LinkCost) -> Self {
        CostModel {
            costs: [local, intra_node, inter_node],
            alltoall_efficiency: [1.0; 3],
        }
    }

    /// Set the Alltoall bandwidth efficiency per class
    /// `[local, intra, inter]`.
    pub fn with_alltoall_efficiency(mut self, eff: [f64; 3]) -> Self {
        assert!(eff.iter().all(|&e| e > 0.0 && e <= 1.0));
        self.alltoall_efficiency = eff;
        self
    }

    /// Preset matching the paper's evaluation hardware:
    ///
    /// * local (same-GPU "transfer"): device-memory copy, ~1.5 TB/s HBM2e,
    ///   negligible latency;
    /// * intra-node: NVLink 3.0, ~300 GB/s per GPU pair, ~1 µs startup;
    /// * inter-node: HDR200 InfiniBand, 2 x 25 GB/s, ~3.5 µs (GPU-direct).
    ///
    /// Alltoall efficiencies: ~0.5 over NVLink (protocol overhead) and
    /// ~0.16 over IB (≈8 GB/s effective per-GPU Alltoall busbw, matching
    /// published NCCL measurements on comparable systems).
    pub fn wilkes3() -> Self {
        CostModel::new(
            LinkCost::from_latency_bandwidth(0.3e-6, 1.5e12),
            LinkCost::from_latency_bandwidth(1.0e-6, 300.0e9),
            LinkCost::from_latency_bandwidth(3.5e-6, 50.0e9),
        )
        .with_alltoall_efficiency([1.0, 0.5, 0.16])
    }

    /// A deliberately flat model (all classes identical) for tests that must
    /// isolate algorithmic effects from topology effects.
    pub fn uniform(latency_s: f64, bandwidth_bytes_per_s: f64) -> Self {
        let c = LinkCost::from_latency_bandwidth(latency_s, bandwidth_bytes_per_s);
        CostModel::new(c, c, c)
    }

    /// The cost parameters of one link class.
    #[inline]
    pub fn link(&self, class: LinkClass) -> LinkCost {
        self.costs[class.index()]
    }

    /// Time to move `bytes` over a link of `class` (point-to-point or ring
    /// collectives: full link bandwidth).
    #[inline]
    pub fn transfer_time(&self, class: LinkClass, bytes: u64) -> f64 {
        self.link(class).time(bytes)
    }

    /// Time to move `bytes` over a link of `class` as part of an Alltoall
    /// (derated bandwidth, same startup).
    #[inline]
    pub fn alltoall_transfer_time(&self, class: LinkClass, bytes: u64) -> f64 {
        let c = self.link(class);
        c.alpha + bytes as f64 * c.beta / self.alltoall_efficiency[class.index()]
    }

    /// Ratio of inter-node to intra-node bandwidth (>1 means NVLink faster).
    pub fn intra_over_inter_bandwidth(&self) -> f64 {
        self.link(LinkClass::InterNode).beta / self.link(LinkClass::IntraNode).beta
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::wilkes3()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_is_affine_in_bytes() {
        let c = LinkCost::from_latency_bandwidth(1e-6, 1e9);
        let t0 = c.time(0);
        let t1 = c.time(1_000_000);
        let t2 = c.time(2_000_000);
        assert!((t0 - 1e-6).abs() < 1e-12);
        // Slope is constant: t2 - t1 == t1 - t0.
        assert!(((t2 - t1) - (t1 - t0)).abs() < 1e-12);
    }

    #[test]
    fn wilkes3_hierarchy_is_monotone() {
        let m = CostModel::wilkes3();
        let bytes = 1 << 20;
        let local = m.transfer_time(LinkClass::Local, bytes);
        let intra = m.transfer_time(LinkClass::IntraNode, bytes);
        let inter = m.transfer_time(LinkClass::InterNode, bytes);
        assert!(local < intra, "local {local} should beat intra {intra}");
        assert!(intra < inter, "intra {intra} should beat inter {inter}");
    }

    #[test]
    fn uniform_model_is_flat() {
        let m = CostModel::uniform(1e-6, 1e9);
        let b = 12345;
        let t = m.transfer_time(LinkClass::Local, b);
        for lc in LinkClass::ALL {
            assert_eq!(m.transfer_time(lc, b), t);
        }
    }

    #[test]
    fn bandwidth_ratio_reflects_nvlink_advantage() {
        let m = CostModel::wilkes3();
        assert!(m.intra_over_inter_bandwidth() > 1.0);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = LinkCost::from_latency_bandwidth(0.0, 0.0);
    }
}
