//! Link classes: the three-level communication hierarchy.

/// Classification of the path between two ranks.
///
/// The paper's optimization is entirely organized around this hierarchy
/// (§IV-C "Staged Experts Affinity"): keep the most affine experts on the
/// *same GPU* (no transfer at all), the next tier within the *same node*
/// (NVLink), and only the residue crosses the *inter-node* fabric
/// (InfiniBand), which has the highest latency and lowest bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LinkClass {
    /// Same GPU: a token's next expert lives where the token already is.
    Local,
    /// Different GPUs on the same node (NVLink in the paper's testbed).
    IntraNode,
    /// GPUs on different nodes (InfiniBand in the paper's testbed).
    InterNode,
}

impl LinkClass {
    /// All link classes, cheapest first.
    pub const ALL: [LinkClass; 3] = [LinkClass::Local, LinkClass::IntraNode, LinkClass::InterNode];

    /// A stable small index for table/array addressing.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            LinkClass::Local => 0,
            LinkClass::IntraNode => 1,
            LinkClass::InterNode => 2,
        }
    }

    /// Human-readable label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            LinkClass::Local => "local",
            LinkClass::IntraNode => "intra-node",
            LinkClass::InterNode => "inter-node",
        }
    }

    /// Whether traffic over this link class leaves the GPU.
    #[inline]
    pub fn crosses_gpu(self) -> bool {
        self != LinkClass::Local
    }

    /// Whether traffic over this link class leaves the node.
    #[inline]
    pub fn crosses_node(self) -> bool {
        self == LinkClass::InterNode
    }
}

impl std::fmt::Display for LinkClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_cost_hierarchy() {
        assert!(LinkClass::Local < LinkClass::IntraNode);
        assert!(LinkClass::IntraNode < LinkClass::InterNode);
    }

    #[test]
    fn indices_are_dense_and_stable() {
        for (i, lc) in LinkClass::ALL.iter().enumerate() {
            assert_eq!(lc.index(), i);
        }
    }

    #[test]
    fn crossing_predicates() {
        assert!(!LinkClass::Local.crosses_gpu());
        assert!(LinkClass::IntraNode.crosses_gpu());
        assert!(!LinkClass::IntraNode.crosses_node());
        assert!(LinkClass::InterNode.crosses_node());
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            LinkClass::ALL.iter().map(|l| l.label()).collect();
        assert_eq!(labels.len(), 3);
    }
}
