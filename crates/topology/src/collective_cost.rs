//! Closed-form cost estimates for the collectives ExFlow issues.
//!
//! The simulated communicator in `exflow-collectives` moves real buffers
//! between rank threads and advances a virtual clock with the same α–β
//! arithmetic; this module provides the analytic counterpart used (a) by the
//! Table I reproduction, which is purely analytic in the paper, and (b) as a
//! cross-check oracle in integration tests.

use crate::cluster::{ClusterSpec, Rank};
use crate::cost::CostModel;
use crate::link::LinkClass;

/// Per-link-class byte totals for one collective operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BytesByClass {
    /// Bytes that stayed on the source GPU (self-sends).
    pub local: u64,
    /// Bytes that crossed GPUs within a node.
    pub intra_node: u64,
    /// Bytes that crossed nodes.
    pub inter_node: u64,
}

impl BytesByClass {
    /// Total bytes that actually moved between GPUs (excludes self-sends).
    pub fn cross_gpu(&self) -> u64 {
        self.intra_node + self.inter_node
    }

    /// Total bytes including self-sends.
    pub fn total(&self) -> u64 {
        self.local + self.intra_node + self.inter_node
    }

    /// Add bytes to the bucket of `class`.
    pub fn add(&mut self, class: LinkClass, bytes: u64) {
        match class {
            LinkClass::Local => self.local += bytes,
            LinkClass::IntraNode => self.intra_node += bytes,
            LinkClass::InterNode => self.inter_node += bytes,
        }
    }

    /// Element-wise sum.
    pub fn merge(&mut self, other: &BytesByClass) {
        self.local += other.local;
        self.intra_node += other.intra_node;
        self.inter_node += other.inter_node;
    }
}

/// Analytic cost model for collectives on a concrete cluster.
#[derive(Debug, Clone, Copy)]
pub struct CollectiveCostModel {
    cluster: ClusterSpec,
    cost: CostModel,
}

impl CollectiveCostModel {
    /// Bind a cost model to a cluster shape.
    pub fn new(cluster: ClusterSpec, cost: CostModel) -> Self {
        CollectiveCostModel { cluster, cost }
    }

    /// The underlying cluster.
    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    /// The underlying per-link cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Estimated completion time of an AlltoallV where rank `i` sends
    /// `send_bytes[i][j]` bytes to rank `j`.
    ///
    /// Model: every rank serializes its outgoing messages (one NIC / copy
    /// engine per GPU) while receives from distinct peers overlap; the
    /// operation completes when the busiest sender *and* the busiest
    /// receiver are done. Self-sends cost a local memcpy. This matches the
    /// linear pairwise-exchange bound commonly used for Alltoall analysis.
    pub fn alltoallv_time(&self, send_bytes: &[Vec<u64>]) -> f64 {
        let w = self.cluster.world_size();
        assert_eq!(send_bytes.len(), w, "send matrix must be world-size rows");
        let mut max_send = 0.0f64;
        let mut recv_time = vec![0.0f64; w];
        for (i, row) in send_bytes.iter().enumerate() {
            assert_eq!(row.len(), w, "send matrix must be world-size columns");
            let mut send = 0.0f64;
            for (j, &bytes) in row.iter().enumerate() {
                if bytes == 0 {
                    continue;
                }
                let class = self.cluster.link_class(Rank(i), Rank(j));
                let t = self.cost.alltoall_transfer_time(class, bytes);
                send += t;
                recv_time[j] += t;
            }
            max_send = max_send.max(send);
        }
        let max_recv = recv_time.iter().copied().fold(0.0f64, f64::max);
        max_send.max(max_recv)
    }

    /// Byte accounting for an AlltoallV send matrix.
    pub fn alltoallv_bytes(&self, send_bytes: &[Vec<u64>]) -> BytesByClass {
        let w = self.cluster.world_size();
        let mut acc = BytesByClass::default();
        for (i, row) in send_bytes.iter().enumerate() {
            for (j, &bytes) in row.iter().enumerate().take(w) {
                if bytes > 0 {
                    acc.add(self.cluster.link_class(Rank(i), Rank(j)), bytes);
                }
            }
        }
        acc
    }

    /// Estimated completion time of a ring AllGatherV where rank `i`
    /// contributes `contrib_bytes[i]` bytes and every rank ends up with all
    /// contributions.
    ///
    /// Model: the standard `W-1`-step ring. In step `s`, rank `i` forwards
    /// the block originating at rank `(i - s).rem_euclid(W)` to rank `i+1`.
    /// Steps synchronize (each needs the previous step's block), so the op
    /// time is the sum over steps of the slowest link in that step.
    pub fn allgatherv_time(&self, contrib_bytes: &[u64]) -> f64 {
        let w = self.cluster.world_size();
        assert_eq!(contrib_bytes.len(), w);
        if w == 1 {
            return 0.0;
        }
        let mut total = 0.0f64;
        for step in 0..w - 1 {
            let mut slowest = 0.0f64;
            for i in 0..w {
                let origin = (i + w - step % w) % w;
                let dst = (i + 1) % w;
                let class = self.cluster.link_class(Rank(i), Rank(dst));
                let t = self.cost.transfer_time(class, contrib_bytes[origin]);
                slowest = slowest.max(t);
            }
            total += slowest;
        }
        total
    }

    /// Estimated completion time of a bulk point-to-point exchange where
    /// rank `i` sends `send_bytes[i][j]` bytes to rank `j` at **full link
    /// bandwidth** (no Alltoall derate).
    ///
    /// This prices expert-weight migration during online re-placement:
    /// unlike token dispatch, a migration is a handful of large,
    /// schedule-friendly transfers (NCCL send/recv pairs, not an incast
    /// Alltoall), so each link runs at line rate. The completion model is
    /// the same linear pairwise-exchange bound as
    /// [`CollectiveCostModel::alltoallv_time`]: sends serialize per source,
    /// receives serialize per destination, and the exchange completes when
    /// the busiest endpoint is done. Self-sends (an expert "moving" within
    /// its GPU) cost a local memcpy.
    pub fn exchange_time(&self, send_bytes: &[Vec<u64>]) -> f64 {
        let w = self.cluster.world_size();
        assert_eq!(send_bytes.len(), w, "send matrix must be world-size rows");
        let mut max_send = 0.0f64;
        let mut recv_time = vec![0.0f64; w];
        for (i, row) in send_bytes.iter().enumerate() {
            assert_eq!(row.len(), w, "send matrix must be world-size columns");
            let mut send = 0.0f64;
            for (j, &bytes) in row.iter().enumerate() {
                if bytes == 0 {
                    continue;
                }
                let class = self.cluster.link_class(Rank(i), Rank(j));
                let t = self.cost.transfer_time(class, bytes);
                send += t;
                recv_time[j] += t;
            }
            max_send = max_send.max(send);
        }
        let max_recv = recv_time.iter().copied().fold(0.0f64, f64::max);
        max_send.max(max_recv)
    }

    /// Byte accounting for a ring AllGatherV.
    pub fn allgatherv_bytes(&self, contrib_bytes: &[u64]) -> BytesByClass {
        let w = self.cluster.world_size();
        let mut acc = BytesByClass::default();
        if w == 1 {
            return acc;
        }
        for step in 0..w - 1 {
            for i in 0..w {
                let origin = (i + w - step % w) % w;
                let dst = (i + 1) % w;
                let class = self.cluster.link_class(Rank(i), Rank(dst));
                acc.add(class, contrib_bytes[origin]);
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(nodes: usize, gpn: usize) -> CollectiveCostModel {
        CollectiveCostModel::new(ClusterSpec::new(nodes, gpn).unwrap(), CostModel::wilkes3())
    }

    fn uniform_matrix(w: usize, bytes: u64) -> Vec<Vec<u64>> {
        vec![vec![bytes; w]; w]
    }

    #[test]
    fn alltoall_time_grows_with_bytes() {
        let m = model(2, 2);
        let small = m.alltoallv_time(&uniform_matrix(4, 1 << 10));
        let big = m.alltoallv_time(&uniform_matrix(4, 1 << 20));
        assert!(big > small);
    }

    #[test]
    fn alltoall_on_one_gpu_is_local_only() {
        let m = model(1, 1);
        let bytes = m.alltoallv_bytes(&uniform_matrix(1, 1024));
        assert_eq!(bytes.local, 1024);
        assert_eq!(bytes.cross_gpu(), 0);
    }

    #[test]
    fn alltoall_byte_accounting_partitions_total() {
        let m = model(2, 2);
        let mat = uniform_matrix(4, 100);
        let b = m.alltoallv_bytes(&mat);
        // 4 self sends local, 4 intra pairs (2 per node, bidirectional),
        // 8 inter pairs.
        assert_eq!(b.local, 400);
        assert_eq!(b.intra_node, 400);
        assert_eq!(b.inter_node, 800);
        assert_eq!(b.total(), 1600);
    }

    #[test]
    fn internode_traffic_dominates_cost() {
        // Same total bytes, but one matrix keeps traffic intra-node.
        let m = model(2, 2);
        let mut intra = vec![vec![0u64; 4]; 4];
        intra[0][1] = 1 << 20;
        intra[1][0] = 1 << 20;
        let mut inter = vec![vec![0u64; 4]; 4];
        inter[0][2] = 1 << 20;
        inter[2][0] = 1 << 20;
        assert!(m.alltoallv_time(&inter) > m.alltoallv_time(&intra));
    }

    #[test]
    fn allgather_single_rank_is_free() {
        let m = model(1, 1);
        assert_eq!(m.allgatherv_time(&[123]), 0.0);
    }

    #[test]
    fn allgather_time_scales_with_world() {
        let small = model(1, 2);
        let big = model(2, 4);
        let t_small = small.allgatherv_time(&[1 << 16; 2]);
        let t_big = big.allgatherv_time(&[1 << 16; 8]);
        assert!(t_big > t_small);
    }

    #[test]
    fn allgather_bytes_count_every_forward() {
        let m = model(1, 4);
        let b = m.allgatherv_bytes(&[10, 10, 10, 10]);
        // Ring: (W-1) steps x W forwards per step = 12 forwards of 10 bytes.
        assert_eq!(b.total(), 120);
        assert_eq!(b.local, 0);
    }

    #[test]
    #[should_panic(expected = "world-size rows")]
    fn alltoall_rejects_bad_matrix() {
        let m = model(1, 2);
        let _ = m.alltoallv_time(&uniform_matrix(3, 1));
    }

    #[test]
    fn exchange_runs_at_full_bandwidth() {
        // Same matrix priced as a migration exchange vs an Alltoall: the
        // exchange never pays the Alltoall bandwidth derate, so it is at
        // least as fast on every topology with derated classes.
        let m = model(2, 2);
        let mat = uniform_matrix(4, 1 << 20);
        assert!(m.exchange_time(&mat) < m.alltoallv_time(&mat));
        // On a derate-free model the two bounds coincide.
        let flat = CollectiveCostModel::new(
            ClusterSpec::new(2, 2).unwrap(),
            CostModel::uniform(1e-6, 1e9),
        );
        assert_eq!(flat.exchange_time(&mat), flat.alltoallv_time(&mat));
    }

    #[test]
    fn exchange_of_nothing_is_free() {
        let m = model(2, 2);
        assert_eq!(m.exchange_time(&uniform_matrix(4, 0)), 0.0);
    }

    #[test]
    fn exchange_prefers_intranode_moves() {
        let m = model(2, 2);
        let mut intra = vec![vec![0u64; 4]; 4];
        intra[0][1] = 1 << 22;
        let mut inter = vec![vec![0u64; 4]; 4];
        inter[0][2] = 1 << 22;
        assert!(m.exchange_time(&inter) > m.exchange_time(&intra));
    }
}
