//! Property-based tests for the topology crate.

use exflow_topology::{ClusterSpec, CollectiveCostModel, CostModel, LinkClass, Rank};
use proptest::prelude::*;

fn arb_cluster() -> impl Strategy<Value = ClusterSpec> {
    (1usize..=8, 1usize..=8).prop_map(|(n, g)| ClusterSpec::new(n, g).unwrap())
}

proptest! {
    #[test]
    fn rank_device_round_trip(cluster in arb_cluster(), r in 0usize..64) {
        prop_assume!(r < cluster.world_size());
        let d = cluster.device_of(Rank(r));
        prop_assert_eq!(cluster.rank_of(d), Rank(r));
        prop_assert!(d.node < cluster.n_nodes());
        prop_assert!(d.gpu < cluster.gpus_per_node());
    }

    #[test]
    fn link_class_is_symmetric(cluster in arb_cluster(), a in 0usize..64, b in 0usize..64) {
        let a = a % cluster.world_size();
        let b = b % cluster.world_size();
        prop_assert_eq!(
            cluster.link_class(Rank(a), Rank(b)),
            cluster.link_class(Rank(b), Rank(a))
        );
    }

    #[test]
    fn link_class_local_iff_same_rank(cluster in arb_cluster(), a in 0usize..64, b in 0usize..64) {
        let a = a % cluster.world_size();
        let b = b % cluster.world_size();
        let lc = cluster.link_class(Rank(a), Rank(b));
        prop_assert_eq!(lc == LinkClass::Local, a == b);
    }

    #[test]
    fn transfer_time_monotone_in_bytes(
        bytes_a in 0u64..1_000_000,
        bytes_b in 0u64..1_000_000,
    ) {
        let m = CostModel::wilkes3();
        prop_assume!(bytes_a <= bytes_b);
        for lc in LinkClass::ALL {
            prop_assert!(m.transfer_time(lc, bytes_a) <= m.transfer_time(lc, bytes_b));
        }
    }

    #[test]
    fn alltoall_bytes_total_equals_matrix_sum(
        cluster in arb_cluster(),
        seed in 0u64..1000,
    ) {
        let w = cluster.world_size();
        // Deterministic pseudo-random matrix from the seed.
        let mat: Vec<Vec<u64>> = (0..w)
            .map(|i| (0..w).map(|j| (seed * 31 + (i * w + j) as u64 * 7) % 10_000).collect())
            .collect();
        let model = CollectiveCostModel::new(cluster, CostModel::wilkes3());
        let acc = model.alltoallv_bytes(&mat);
        let expect: u64 = mat.iter().flatten().sum();
        prop_assert_eq!(acc.total(), expect);
    }

    #[test]
    fn alltoall_time_nonnegative_and_monotone_in_scaling(
        cluster in arb_cluster(),
        base in 1u64..10_000,
    ) {
        let w = cluster.world_size();
        let model = CollectiveCostModel::new(cluster, CostModel::wilkes3());
        let m1 = vec![vec![base; w]; w];
        let m2 = vec![vec![base * 2; w]; w];
        let t1 = model.alltoallv_time(&m1);
        let t2 = model.alltoallv_time(&m2);
        prop_assert!(t1 >= 0.0);
        prop_assert!(t2 >= t1);
    }

    #[test]
    fn allgather_time_zero_only_for_singleton(cluster in arb_cluster()) {
        let w = cluster.world_size();
        let model = CollectiveCostModel::new(cluster, CostModel::wilkes3());
        let t = model.allgatherv_time(&vec![1024u64; w]);
        if w == 1 {
            prop_assert_eq!(t, 0.0);
        } else {
            prop_assert!(t > 0.0);
        }
    }
}
