//! A single expert: the feed-forward network tokens are routed to.

use rand::Rng;

use crate::tensor::Matrix;

/// One expert FFN: `y = W2 · gelu(W1 · x)`.
///
/// The paper's observation that experts "are essentially FFNs that only
/// perform a non-linear transformation on tokens" and need no context is
/// what makes context-coherent parallelism possible: this struct is
/// deliberately context-free — `forward` depends only on the input rows.
#[derive(Debug, Clone)]
pub struct Expert {
    w1: Matrix,
    w2: Matrix,
}

impl Expert {
    /// Random expert of shape `dim -> hidden -> dim`.
    pub fn random<R: Rng>(dim: usize, hidden: usize, rng: &mut R) -> Self {
        Expert {
            w1: Matrix::random(dim, hidden, rng),
            w2: Matrix::random(hidden, dim, rng),
        }
    }

    /// Input/output dimension.
    pub fn dim(&self) -> usize {
        self.w1.rows()
    }

    /// Hidden (inner FFN) dimension.
    pub fn hidden(&self) -> usize {
        self.w1.cols()
    }

    /// Apply the FFN to a batch of tokens (rows of `x`).
    pub fn forward(&self, x: &Matrix) -> Matrix {
        assert_eq!(
            x.cols(),
            self.dim(),
            "token dim {} does not match expert dim {}",
            x.cols(),
            self.dim()
        );
        let mut h = x.matmul(&self.w1);
        h.gelu_inplace();
        h.matmul(&self.w2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_preserves_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let e = Expert::random(8, 32, &mut rng);
        let x = Matrix::random(5, 8, &mut rng);
        let y = e.forward(&x);
        assert_eq!(y.rows(), 5);
        assert_eq!(y.cols(), 8);
    }

    #[test]
    fn forward_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(2);
        let e = Expert::random(4, 16, &mut rng);
        let x = Matrix::random(3, 4, &mut rng);
        assert_eq!(e.forward(&x), e.forward(&x));
    }

    #[test]
    fn distinct_experts_transform_differently() {
        let mut rng = StdRng::seed_from_u64(3);
        let e1 = Expert::random(4, 16, &mut rng);
        let e2 = Expert::random(4, 16, &mut rng);
        let x = Matrix::random(3, 4, &mut rng);
        assert_ne!(e1.forward(&x), e2.forward(&x));
    }

    #[test]
    fn forward_is_batch_consistent() {
        // Processing rows together or separately gives the same result —
        // the property that lets the engine batch tokens per expert.
        let mut rng = StdRng::seed_from_u64(4);
        let e = Expert::random(4, 8, &mut rng);
        let x = Matrix::random(2, 4, &mut rng);
        let batched = e.forward(&x);
        for r in 0..2 {
            let single = e.forward(&Matrix::from_vec(1, 4, x.row(r).to_vec()));
            for c in 0..4 {
                assert!((batched.get(r, c) - single.get(0, c)).abs() < 1e-5);
            }
        }
    }

    #[test]
    #[should_panic(expected = "does not match expert dim")]
    fn forward_rejects_bad_dim() {
        let mut rng = StdRng::seed_from_u64(5);
        let e = Expert::random(4, 8, &mut rng);
        let x = Matrix::zeros(1, 5);
        let _ = e.forward(&x);
    }
}
