//! Model configuration: the shape of a GPT MoE model.

/// Gating strategy used at each MoE layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateKind {
    /// Route each token to its single best expert (the paper's inference
    /// setting: "all models are with Top-1 gating").
    Top1,
    /// Route each token to its two best experts; doubles dispatch traffic
    /// (Table I's "Forward comm. in Top-2 gating" column).
    Top2,
}

impl GateKind {
    /// Number of experts each token is routed to.
    #[inline]
    pub fn k(self) -> usize {
        match self {
            GateKind::Top1 => 1,
            GateKind::Top2 => 2,
        }
    }
}

/// Static shape of a GPT MoE model (one row of the paper's Table II).
///
/// `d_model`/`d_ff` describe the *true* model dimensions and drive all byte
/// and FLOP accounting; `sim_dim` is the reduced dimension at which the
/// engine actually executes expert matmuls so that simulations stay fast
/// while still exercising real parallel compute.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelConfig {
    /// Human-readable name, e.g. `"MoE-GPT-M/32e"`.
    pub name: String,
    /// Dense base parameter count (350M, 470M, 590M, 1.3B in Table II).
    pub base_params: u64,
    /// Number of MoE (transformer) layers.
    pub n_layers: usize,
    /// Experts per MoE layer.
    pub n_experts: usize,
    /// Hidden dimension of the transformer.
    pub d_model: usize,
    /// FFN inner dimension of each expert (4x `d_model` for GPT).
    pub d_ff: usize,
    /// Gating strategy.
    pub gate: GateKind,
    /// Reduced dimension used for the engine's real matmuls.
    pub sim_dim: usize,
}

impl ModelConfig {
    /// Construct a config with GPT conventions (`d_ff = 4 * d_model`).
    pub fn new(
        name: impl Into<String>,
        base_params: u64,
        n_layers: usize,
        n_experts: usize,
        d_model: usize,
    ) -> Self {
        assert!(n_layers >= 1, "a model needs at least one MoE layer");
        assert!(n_experts >= 1, "a model needs at least one expert");
        assert!(d_model >= 1, "d_model must be positive");
        ModelConfig {
            name: name.into(),
            base_params,
            n_layers,
            n_experts,
            d_model,
            d_ff: 4 * d_model,
            gate: GateKind::Top1,
            sim_dim: 16,
        }
    }

    /// Switch to top-2 gating.
    pub fn with_gate(mut self, gate: GateKind) -> Self {
        self.gate = gate;
        self
    }

    /// Override the reduced simulation dimension.
    pub fn with_sim_dim(mut self, sim_dim: usize) -> Self {
        assert!(sim_dim >= 1);
        self.sim_dim = sim_dim;
        self
    }

    /// Bytes of one token activation crossing the wire (f16 activations on
    /// the paper's testbed: 2 bytes per element).
    #[inline]
    pub fn token_bytes(&self) -> u64 {
        (self.d_model * 2) as u64
    }

    /// Parameters of a single expert FFN (two projection matrices).
    pub fn expert_params(&self) -> u64 {
        (2 * self.d_model * self.d_ff) as u64
    }

    /// Total parameters including all experts across all layers.
    pub fn total_params(&self) -> u64 {
        self.base_params + self.n_layers as u64 * self.n_experts as u64 * self.expert_params()
    }

    /// Experts per GPU when the model is expert-parallel across `gpus`
    /// GPUs. Panics if the expert count does not divide evenly (the paper's
    /// placement ILP requires load-balanced capacity, formula 9).
    pub fn experts_per_gpu(&self, gpus: usize) -> usize {
        assert!(gpus >= 1);
        assert_eq!(
            self.n_experts % gpus,
            0,
            "experts ({}) must divide evenly across {} GPUs",
            self.n_experts,
            gpus
        );
        self.n_experts / gpus
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_k() {
        assert_eq!(GateKind::Top1.k(), 1);
        assert_eq!(GateKind::Top2.k(), 2);
    }

    #[test]
    fn gpt_ffn_convention() {
        let c = ModelConfig::new("t", 0, 12, 8, 1024);
        assert_eq!(c.d_ff, 4096);
    }

    #[test]
    fn token_bytes_are_fp16() {
        let c = ModelConfig::new("t", 0, 12, 8, 1024);
        assert_eq!(c.token_bytes(), 2048);
    }

    #[test]
    fn expert_and_total_params() {
        let c = ModelConfig::new("t", 1000, 2, 4, 8);
        // expert: 2 * 8 * 32 = 512 params; total: 1000 + 2*4*512 = 5096.
        assert_eq!(c.expert_params(), 512);
        assert_eq!(c.total_params(), 5096);
    }

    #[test]
    fn experts_per_gpu_even_division() {
        let c = ModelConfig::new("t", 0, 2, 32, 8);
        assert_eq!(c.experts_per_gpu(8), 4);
        assert_eq!(c.experts_per_gpu(32), 1);
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn experts_per_gpu_uneven_rejected() {
        let c = ModelConfig::new("t", 0, 2, 32, 8);
        let _ = c.experts_per_gpu(3);
    }

    #[test]
    fn builder_overrides() {
        let c = ModelConfig::new("t", 0, 2, 4, 8)
            .with_gate(GateKind::Top2)
            .with_sim_dim(4);
        assert_eq!(c.gate, GateKind::Top2);
        assert_eq!(c.sim_dim, 4);
    }
}
