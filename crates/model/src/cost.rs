//! Compute-time model for the four operators the paper profiles (Fig. 9):
//! gating, attention, expert FFN — plus the collectives, whose cost lives in
//! `exflow-topology`.
//!
//! Autoregressive decode runs small per-token GEMVs, so each operator's
//! time is the max of two terms modeled separately:
//!
//! * an **arithmetic term** — FLOPs over the accelerator's peak throughput
//!   (scales with the token count);
//! * a **memory term** — weight/KV bytes over HBM bandwidth. Weights are
//!   read once per *batch* (and, for experts, once per expert that receives
//!   any token), so this term amortizes across tokens — the property that
//!   makes small-batch decode memory-bound and MoE FFN cost proportional to
//!   the number of experts touched rather than the number of tokens.

use crate::config::ModelConfig;

/// Decode-calibrated compute-time model for one simulated GPU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComputeCostModel {
    /// Peak dense throughput (FLOPs/s), e.g. A100 fp16 tensor cores.
    pub peak_flops: f64,
    /// HBM bandwidth in bytes/s.
    pub hbm_bytes_per_s: f64,
}

impl ComputeCostModel {
    /// A100-SXM4-80GB: 312 TFLOP/s fp16 peak, ~2 TB/s HBM2e.
    pub fn a100() -> Self {
        ComputeCostModel {
            peak_flops: 312.0e12,
            hbm_bytes_per_s: 2.0e12,
        }
    }

    /// Build with explicit rates.
    pub fn new(peak_flops: f64, hbm_bytes_per_s: f64) -> Self {
        assert!(peak_flops > 0.0 && hbm_bytes_per_s > 0.0);
        ComputeCostModel {
            peak_flops,
            hbm_bytes_per_s,
        }
    }

    fn time(&self, flops: f64, bytes: f64) -> f64 {
        (flops / self.peak_flops).max(bytes / self.hbm_bytes_per_s)
    }

    /// Seconds to gate `n_tokens` at one layer: an `d x E` projection whose
    /// weights are read once.
    pub fn gating_time(&self, cfg: &ModelConfig, n_tokens: usize) -> f64 {
        if n_tokens == 0 {
            return 0.0;
        }
        let d = cfg.d_model as f64;
        let e = cfg.n_experts as f64;
        let flops = 2.0 * d * e * n_tokens as f64;
        let bytes = d * e * 2.0;
        self.time(flops, bytes)
    }

    /// Seconds of decode attention for `n_tokens` with `ctx_len` context:
    /// QKVO projection weights (`4·d²` fp16 elements) are read once per
    /// batch; each token additionally streams its K/V cache
    /// (`2·ctx·d` fp16 elements).
    pub fn attention_time(&self, cfg: &ModelConfig, n_tokens: usize, ctx_len: usize) -> f64 {
        if n_tokens == 0 {
            return 0.0;
        }
        let d = cfg.d_model as f64;
        let n = n_tokens as f64;
        let ctx = ctx_len as f64;
        let flops = (8.0 * d * d + 4.0 * d * ctx) * n;
        let bytes = 4.0 * d * d * 2.0 + n * 2.0 * ctx * d * 2.0;
        self.time(flops, bytes)
    }

    /// Seconds of expert FFN for `n_tokens` spread over `experts_touched`
    /// local experts, each token visiting `k` experts. Every touched
    /// expert's weights (`2·d·d_ff` fp16 elements) are read once.
    pub fn expert_time(
        &self,
        cfg: &ModelConfig,
        n_tokens: usize,
        experts_touched: usize,
        k: usize,
    ) -> f64 {
        if n_tokens == 0 || experts_touched == 0 {
            return 0.0;
        }
        let d = cfg.d_model as f64;
        let dff = cfg.d_ff as f64;
        let flops = 4.0 * d * dff * (n_tokens * k) as f64;
        let bytes = experts_touched as f64 * 2.0 * d * dff * 2.0;
        self.time(flops, bytes)
    }
}

impl Default for ComputeCostModel {
    fn default() -> Self {
        ComputeCostModel::a100()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::moe_gpt_m;

    #[test]
    fn small_batches_are_memory_bound() {
        // One token through one expert: dominated by the weight read.
        let m = ComputeCostModel::a100();
        let cfg = moe_gpt_m(8);
        let t = m.expert_time(&cfg, 1, 1, 1);
        let weight_bytes = 2.0 * 1024.0 * 4096.0 * 2.0;
        assert!((t - weight_bytes / m.hbm_bytes_per_s).abs() / t < 1e-9);
    }

    #[test]
    fn expert_time_amortizes_over_batch() {
        // 64 tokens through the same expert cost far less than 64x one
        // token (weights read once).
        let m = ComputeCostModel::a100();
        let cfg = moe_gpt_m(8);
        let one = m.expert_time(&cfg, 1, 1, 1);
        let batch = m.expert_time(&cfg, 64, 1, 1);
        assert!(batch < 8.0 * one, "batch {batch} vs one {one}");
    }

    #[test]
    fn expert_time_scales_with_experts_touched() {
        let m = ComputeCostModel::a100();
        let cfg = moe_gpt_m(8);
        let one = m.expert_time(&cfg, 16, 1, 1);
        let four = m.expert_time(&cfg, 16, 4, 1);
        assert!(four > 3.0 * one);
    }

    #[test]
    fn huge_batches_become_compute_bound() {
        let m = ComputeCostModel::a100();
        let cfg = moe_gpt_m(8);
        let n = 1 << 16;
        let t = m.expert_time(&cfg, n, 1, 1);
        let flops = 4.0 * 1024.0 * 4096.0 * n as f64;
        assert!((t - flops / m.peak_flops).abs() / t < 1e-9);
    }

    #[test]
    fn attention_grows_with_context() {
        let m = ComputeCostModel::a100();
        let cfg = moe_gpt_m(32);
        assert!(m.attention_time(&cfg, 16, 2048) > m.attention_time(&cfg, 16, 64));
    }

    #[test]
    fn ffn_dominates_gating() {
        let m = ComputeCostModel::a100();
        let cfg = moe_gpt_m(32);
        assert!(m.expert_time(&cfg, 16, 2, 1) > 20.0 * m.gating_time(&cfg, 16));
    }

    #[test]
    fn zero_tokens_cost_nothing() {
        let m = ComputeCostModel::a100();
        let cfg = moe_gpt_m(8);
        assert_eq!(m.gating_time(&cfg, 0), 0.0);
        assert_eq!(m.attention_time(&cfg, 0, 128), 0.0);
        assert_eq!(m.expert_time(&cfg, 0, 0, 1), 0.0);
    }

    #[test]
    #[should_panic]
    fn zero_rates_rejected() {
        let _ = ComputeCostModel::new(0.0, 1.0);
    }
}
