//! # exflow-model
//!
//! The GPT Mixture-of-Experts model substrate for the ExFlow (IPDPS 2024)
//! reproduction.
//!
//! The paper evaluates on pre-trained GPT MoE checkpoints (350M–1.3B
//! parameters, 8–64 experts per layer) served by DeepSpeed-Megatron on A100
//! clusters, and profiles token routing on the Pile corpus. Neither trained
//! checkpoints nor corpora are available here, so this crate builds the
//! closest synthetic equivalents (documented in `DESIGN.md` §2):
//!
//! * [`config`] / [`presets`] — the paper's Table II model zoo, plus a
//!   FLOP/byte cost model per operator ([`cost`]);
//! * [`tensor`] / [`expert`] — small but *real* dense linear algebra
//!   (rayon-parallel matmul, GELU) so the engine genuinely computes expert
//!   FFNs on token vectors;
//! * [`routing`] — the core substitution: a layer-to-layer Markov routing
//!   process over experts whose transition structure is a mixture of
//!   permutation matrices (doubly stochastic, hence GShard-load-balanced)
//!   with tunable *affinity concentration*. This reproduces the class of
//!   conditional-probability structure the paper's Fig. 2 heatmaps show;
//! * [`corpus`] — domain-mixture token streams standing in for Pile / C4 /
//!   Dolma / Yelp (Table III);
//! * [`drift`] — non-stationary routing schedules (piecewise-phase and
//!   smoothly-interpolating drift presets) feeding the online serving
//!   mode's streaming-affinity and re-placement machinery;
//! * [`arrival`] — seeded request arrival processes (Poisson, diurnal,
//!   flash-crowd) feeding the request-level serving front-end's
//!   discrete-event loop;
//! * [`fault`] — deterministic fleet fault/elasticity schedules (GPU and
//!   node loss, rejoin, scale-down/up) driving the serving engine's
//!   failover and emergency re-placement paths;
//! * [`training`] — a gating-evolution simulator reproducing the training
//!   dynamics of Figs. 11–12 (early expert collapse, rebalancing, steady
//!   affinity growth).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrival;
pub mod capacity;
pub mod config;
pub mod corpus;
pub mod cost;
pub mod drift;
pub mod expert;
pub mod fault;
pub mod presets;
pub mod routing;
pub mod tensor;
pub mod training;

pub use arrival::{ArrivalKind, ArrivalProcess};
pub use config::{GateKind, ModelConfig};
pub use corpus::{CorpusSpec, TokenBatch};
pub use cost::ComputeCostModel;
pub use drift::{DriftKind, DriftSchedule};
pub use expert::Expert;
pub use fault::{FaultEvent, FaultKind, FaultSchedule};
pub use routing::{AffinityModelSpec, RoutingModel};
pub use tensor::Matrix;
pub use training::TrainingSimulator;
