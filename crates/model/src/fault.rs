//! Fleet fault and elasticity schedules for the serving front-end.
//!
//! Production clusters lose GPUs mid-run (ECC faults, preemptions, host
//! reboots) and gain them back; elastic deployments also scale the fleet
//! up and down on purpose. This module provides the deterministic
//! analogue: a [`FaultSchedule`] is a validated, time-sorted list of
//! per-GPU down/up events over a *provisioned* fleet of `n_units` GPUs.
//! Node loss and fleet scale-down/up are expressed in the same vocabulary
//! — they simply drop (or revive) several GPUs at once — so the serving
//! engine needs exactly one event kind per direction.
//!
//! Schedules are pure data: the engine decides what failover, emergency
//! re-placement, and re-queueing mean. Everything here is a deterministic
//! function of the constructor arguments (the churn preset additionally
//! of its seed), so faulted serving runs stay bit-identical at any thread
//! width.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Direction of a fleet event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The GPU fails (or is scaled out) and stops serving instantly.
    Down,
    /// The GPU rejoins the fleet and may serve again.
    Up,
}

/// One fleet-membership change: GPU `gpu` goes down or comes back at
/// virtual time `time`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Virtual time the event fires (non-negative, finite).
    pub time: f64,
    /// Absolute GPU index in the provisioned fleet.
    pub gpu: usize,
    /// Down or up.
    pub kind: FaultKind,
}

/// A deterministic, validated schedule of GPU loss/recovery events.
///
/// Construction enforces the invariants the serving loop relies on:
/// events are time-sorted, every index is in range, a GPU is never
/// dropped twice without rejoining (nor revived while live), and at
/// least one GPU survives at every instant.
///
/// ```
/// use exflow_model::fault::{FaultKind, FaultSchedule};
///
/// let f = FaultSchedule::loss_and_rejoin(4, 2, 1.0, 3.0);
/// assert_eq!(f.n_events(), 2);
/// assert_eq!(f.events()[0].kind, FaultKind::Down);
/// assert_eq!(f.live_at(2.0), vec![true, true, false, true]);
/// assert_eq!(f.live_at(3.0), vec![true, true, true, true]);
/// assert_eq!(f.first_down_time(), Some(1.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSchedule {
    name: String,
    n_units: usize,
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    fn build(name: String, n_units: usize, events: Vec<FaultEvent>) -> Self {
        assert!(n_units >= 1, "fleet needs at least one GPU");
        let mut live = vec![true; n_units];
        let mut last = 0.0f64;
        for ev in &events {
            assert!(
                ev.time.is_finite() && ev.time >= 0.0,
                "fault times must be non-negative and finite"
            );
            assert!(ev.time >= last, "fault events must be time-sorted");
            last = ev.time;
            assert!(ev.gpu < n_units, "GPU {} out of range", ev.gpu);
            match ev.kind {
                FaultKind::Down => {
                    assert!(live[ev.gpu], "GPU {} is already down", ev.gpu);
                    live[ev.gpu] = false;
                    assert!(live.iter().any(|&l| l), "cannot drop the last live GPU");
                }
                FaultKind::Up => {
                    assert!(!live[ev.gpu], "GPU {} is already up", ev.gpu);
                    live[ev.gpu] = true;
                }
            }
        }
        FaultSchedule {
            name,
            n_units,
            events,
        }
    }

    /// The empty schedule: a fleet that never changes. Serving runs with
    /// this schedule take exactly the fault-free code path.
    pub fn none(n_units: usize) -> Self {
        FaultSchedule::build("no-faults".to_string(), n_units, Vec::new())
    }

    /// A single unrecovered GPU loss at `time`.
    pub fn gpu_loss(n_units: usize, gpu: usize, time: f64) -> Self {
        FaultSchedule::build(
            "gpu-loss".to_string(),
            n_units,
            vec![FaultEvent {
                time,
                gpu,
                kind: FaultKind::Down,
            }],
        )
    }

    /// A GPU loss at `down` followed by the same GPU rejoining at `up`.
    pub fn loss_and_rejoin(n_units: usize, gpu: usize, down: f64, up: f64) -> Self {
        assert!(up > down, "rejoin must come after the loss");
        FaultSchedule::build(
            "gpu-loss+rejoin".to_string(),
            n_units,
            vec![
                FaultEvent {
                    time: down,
                    gpu,
                    kind: FaultKind::Down,
                },
                FaultEvent {
                    time: up,
                    gpu,
                    kind: FaultKind::Up,
                },
            ],
        )
    }

    /// Two staggered unrecovered GPU losses: `first` fails at `t1`,
    /// `second` at `t2`. The second loss lands on a fleet that already
    /// failed over once, so it exercises the case where the first
    /// failover consumed replica capacity the second loss would have
    /// relied on.
    pub fn double_loss(n_units: usize, first: usize, second: usize, t1: f64, t2: f64) -> Self {
        assert!(first != second, "the two losses must hit distinct GPUs");
        assert!(t2 >= t1, "the second loss cannot precede the first");
        FaultSchedule::build(
            "double-loss".to_string(),
            n_units,
            vec![
                FaultEvent {
                    time: t1,
                    gpu: first,
                    kind: FaultKind::Down,
                },
                FaultEvent {
                    time: t2,
                    gpu: second,
                    kind: FaultKind::Down,
                },
            ],
        )
    }

    /// A whole node (its `gpus_per_node` consecutive GPUs) fails at
    /// `time`.
    pub fn node_loss(n_units: usize, gpus_per_node: usize, node: usize, time: f64) -> Self {
        assert!(gpus_per_node >= 1, "node needs at least one GPU");
        assert!(
            n_units.is_multiple_of(gpus_per_node),
            "GPUs must divide into nodes"
        );
        let events = (0..gpus_per_node)
            .map(|g| FaultEvent {
                time,
                gpu: node * gpus_per_node + g,
                kind: FaultKind::Down,
            })
            .collect();
        FaultSchedule::build("node-loss".to_string(), n_units, events)
    }

    /// Planned elastic scale-down: the `k` highest-indexed GPUs leave the
    /// fleet at `time` and do not return.
    pub fn scale_down(n_units: usize, k: usize, time: f64) -> Self {
        assert!(k >= 1 && k < n_units, "must keep at least one GPU");
        let events = (0..k)
            .map(|i| FaultEvent {
                time,
                gpu: n_units - k + i,
                kind: FaultKind::Down,
            })
            .collect();
        FaultSchedule::build(format!("scale-down-{k}"), n_units, events)
    }

    /// An elastic scale cycle: the `k` highest-indexed GPUs leave at
    /// `down` and rejoin at `up` (scale-down followed by scale-up).
    pub fn scale_cycle(n_units: usize, k: usize, down: f64, up: f64) -> Self {
        assert!(k >= 1 && k < n_units, "must keep at least one GPU");
        assert!(up > down, "scale-up must come after the scale-down");
        let mut events: Vec<FaultEvent> = (0..k)
            .map(|i| FaultEvent {
                time: down,
                gpu: n_units - k + i,
                kind: FaultKind::Down,
            })
            .collect();
        events.extend((0..k).map(|i| FaultEvent {
            time: up,
            gpu: n_units - k + i,
            kind: FaultKind::Up,
        }));
        FaultSchedule::build(format!("scale-cycle-{k}"), n_units, events)
    }

    /// Seeded churn: `n_faults` loss-and-rejoin episodes spread evenly
    /// over `(0, horizon)`. Episode `i` drops a seeded choice of live GPU
    /// at `horizon * (i + 1) / (n_faults + 1)` and revives it after a
    /// seeded dwell shorter than the inter-episode gap, so episodes never
    /// overlap and the schedule stays valid for any seed.
    pub fn random_churn(n_units: usize, n_faults: usize, horizon: f64, seed: u64) -> Self {
        assert!(n_units >= 2, "churn needs at least two GPUs");
        assert!(n_faults >= 1, "need at least one fault");
        assert!(
            horizon > 0.0 && horizon.is_finite(),
            "horizon must be positive"
        );
        let mut rng = StdRng::seed_from_u64(seed ^ 0xfa_17_5c_4e_d1);
        let gap = horizon / (n_faults + 1) as f64;
        let mut events = Vec::with_capacity(2 * n_faults);
        for i in 0..n_faults {
            let down = gap * (i + 1) as f64;
            let gpu = rng.gen_range(0..n_units);
            let dwell = gap * (0.2 + 0.6 * rng.gen::<f64>());
            events.push(FaultEvent {
                time: down,
                gpu,
                kind: FaultKind::Down,
            });
            events.push(FaultEvent {
                time: down + dwell,
                gpu,
                kind: FaultKind::Up,
            });
        }
        FaultSchedule::build(format!("churn-{n_faults}x"), n_units, events)
    }

    /// Stable scenario name (`gpu-loss`, `scale-cycle-2`, ...), used as
    /// the key in benchmark artifacts.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Size of the provisioned fleet.
    pub fn n_units(&self) -> usize {
        self.n_units
    }

    /// The validated, time-sorted event list.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of events.
    pub fn n_events(&self) -> usize {
        self.events.len()
    }

    /// Whether the fleet ever changes.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Per-GPU liveness after applying every event with
    /// `event.time <= t`.
    pub fn live_at(&self, t: f64) -> Vec<bool> {
        let mut live = vec![true; self.n_units];
        for ev in &self.events {
            if ev.time > t {
                break;
            }
            live[ev.gpu] = ev.kind == FaultKind::Up;
        }
        live
    }

    /// Time of the first GPU loss, if any (the disruption clock's zero).
    pub fn first_down_time(&self) -> Option<f64> {
        self.events
            .iter()
            .find(|ev| ev.kind == FaultKind::Down)
            .map(|ev| ev.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_empty_and_always_live() {
        let f = FaultSchedule::none(4);
        assert!(f.is_empty());
        assert_eq!(f.name(), "no-faults");
        assert_eq!(f.live_at(1e9), vec![true; 4]);
        assert_eq!(f.first_down_time(), None);
    }

    #[test]
    fn node_loss_drops_every_gpu_on_the_node() {
        let f = FaultSchedule::node_loss(8, 2, 1, 5.0);
        assert_eq!(f.n_events(), 2);
        assert_eq!(
            f.live_at(5.0),
            vec![true, true, false, false, true, true, true, true]
        );
        assert_eq!(f.live_at(4.9), vec![true; 8]);
    }

    #[test]
    fn scale_cycle_restores_the_fleet() {
        let f = FaultSchedule::scale_cycle(4, 2, 1.0, 2.0);
        assert_eq!(f.name(), "scale-cycle-2");
        assert_eq!(f.live_at(1.5), vec![true, true, false, false]);
        assert_eq!(f.live_at(2.0), vec![true; 4]);
    }

    #[test]
    fn random_churn_is_seeded_and_valid() {
        let a = FaultSchedule::random_churn(4, 3, 100.0, 7);
        let b = FaultSchedule::random_churn(4, 3, 100.0, 7);
        assert_eq!(a, b, "churn must be deterministic per seed");
        assert_ne!(a, FaultSchedule::random_churn(4, 3, 100.0, 8));
        assert_eq!(a.n_events(), 6);
        // Every episode heals before the horizon's next episode begins.
        assert!(a.events().windows(2).all(|w| w[0].time <= w[1].time));
        assert_eq!(a.live_at(100.0), vec![true; 4]);
    }

    #[test]
    fn double_loss_drops_both_gpus_for_good() {
        let f = FaultSchedule::double_loss(4, 1, 3, 1.0, 2.0);
        assert_eq!(f.name(), "double-loss");
        assert_eq!(f.live_at(1.5), vec![true, false, true, true]);
        assert_eq!(f.live_at(2.0), vec![true, false, true, false]);
        assert_eq!(f.first_down_time(), Some(1.0));
    }

    #[test]
    #[should_panic(expected = "distinct GPUs")]
    fn double_loss_same_gpu_rejected() {
        let _ = FaultSchedule::double_loss(4, 1, 1, 1.0, 2.0);
    }

    #[test]
    #[should_panic(expected = "already down")]
    fn double_down_rejected() {
        let _ = FaultSchedule::build(
            "bad".to_string(),
            3,
            vec![
                FaultEvent {
                    time: 1.0,
                    gpu: 0,
                    kind: FaultKind::Down,
                },
                FaultEvent {
                    time: 2.0,
                    gpu: 0,
                    kind: FaultKind::Down,
                },
            ],
        );
    }

    #[test]
    #[should_panic(expected = "last live GPU")]
    fn dropping_the_whole_fleet_rejected() {
        let _ = FaultSchedule::node_loss(2, 2, 0, 1.0);
    }

    #[test]
    #[should_panic(expected = "time-sorted")]
    fn unsorted_events_rejected() {
        let _ = FaultSchedule::build(
            "bad".to_string(),
            3,
            vec![
                FaultEvent {
                    time: 2.0,
                    gpu: 0,
                    kind: FaultKind::Down,
                },
                FaultEvent {
                    time: 1.0,
                    gpu: 1,
                    kind: FaultKind::Down,
                },
            ],
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_gpu_rejected() {
        let _ = FaultSchedule::gpu_loss(2, 5, 1.0);
    }

    #[test]
    #[should_panic(expected = "rejoin must come after")]
    fn backwards_rejoin_rejected() {
        let _ = FaultSchedule::loss_and_rejoin(4, 1, 3.0, 2.0);
    }
}
