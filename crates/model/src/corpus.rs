//! Synthetic corpora: domain-mixture token streams standing in for the
//! Pile / C4 / Dolma / Yelp datasets of the paper's Table III.
//!
//! A corpus is a distribution over *domains*; a token drawn from a corpus
//! carries a domain label and routes through the [`RoutingModel`] using that
//! domain's transition structure. Different corpora remix the same domains
//! with different weights — the controlled analogue of "out-of-distribution
//! data that still flows through the same pre-trained model".

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::routing::RoutingModel;

/// A named domain-mixture specification.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusSpec {
    /// Corpus name (e.g. `"pile-proxy"`).
    pub name: String,
    /// Unnormalized weight of each domain. Length must match the routing
    /// model's domain count when sampling.
    pub domain_weights: Vec<f64>,
}

impl CorpusSpec {
    /// Build a corpus from explicit weights.
    pub fn new(name: impl Into<String>, domain_weights: Vec<f64>) -> Self {
        assert!(
            !domain_weights.is_empty(),
            "corpus needs at least one domain"
        );
        assert!(
            domain_weights.iter().all(|&w| w >= 0.0) && domain_weights.iter().sum::<f64>() > 0.0,
            "weights must be non-negative with positive sum"
        );
        CorpusSpec {
            name: name.into(),
            domain_weights,
        }
    }

    /// The profiling corpus: a broad, even mixture (the Pile is "an 800GB
    /// dataset of *diverse* text").
    pub fn pile_proxy(n_domains: usize) -> Self {
        CorpusSpec::new("pile-proxy", vec![1.0; n_domains])
    }

    /// Web-crawl proxy: skewed towards the first domains.
    pub fn c4_proxy(n_domains: usize) -> Self {
        let w = (0..n_domains)
            .map(|d| 1.0 / (1.0 + d as f64 * 0.5))
            .collect();
        CorpusSpec::new("c4-proxy", w)
    }

    /// Curated-corpus proxy: skewed towards the last domains.
    pub fn dolma_proxy(n_domains: usize) -> Self {
        let w = (0..n_domains)
            .map(|d| 1.0 / (1.0 + (n_domains - 1 - d) as f64 * 0.5))
            .collect();
        CorpusSpec::new("dolma-proxy", w)
    }

    /// Narrow-domain proxy (reviews): almost all mass on one domain — the
    /// most out-of-distribution of the four.
    pub fn yelp_proxy(n_domains: usize) -> Self {
        let mut w = vec![0.1; n_domains];
        w[n_domains / 2] = 3.0;
        CorpusSpec::new("yelp-proxy", w)
    }

    /// All four Table III corpora.
    pub fn table3(n_domains: usize) -> Vec<CorpusSpec> {
        vec![
            CorpusSpec::pile_proxy(n_domains),
            CorpusSpec::c4_proxy(n_domains),
            CorpusSpec::dolma_proxy(n_domains),
            CorpusSpec::yelp_proxy(n_domains),
        ]
    }

    /// Sample a domain index according to the weights.
    pub fn sample_domain<R: Rng>(&self, rng: &mut R) -> usize {
        let total: f64 = self.domain_weights.iter().sum();
        let mut target = rng.gen::<f64>() * total;
        for (d, &w) in self.domain_weights.iter().enumerate() {
            if target < w {
                return d;
            }
            target -= w;
        }
        self.domain_weights.len() - 1
    }
}

/// A batch of routed tokens: the unit of work the engine and the affinity
/// profiler both consume.
#[derive(Debug, Clone, PartialEq)]
pub struct TokenBatch {
    /// `routes[token][layer]` lists the expert(s) the token visits at that
    /// layer; entry 0 is the primary expert.
    pub routes: Vec<Vec<Vec<u16>>>,
    /// Domain label of each token.
    pub domains: Vec<usize>,
}

impl TokenBatch {
    /// Sample `n_tokens` from `corpus`, routing each through `model` with
    /// `k` experts per layer. Deterministic in `seed`.
    pub fn sample(
        model: &RoutingModel,
        corpus: &CorpusSpec,
        n_tokens: usize,
        k: usize,
        seed: u64,
    ) -> Self {
        assert_eq!(
            corpus.domain_weights.len(),
            model.n_domains(),
            "corpus domain count must match routing model"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut routes = Vec::with_capacity(n_tokens);
        let mut domains = Vec::with_capacity(n_tokens);
        for _ in 0..n_tokens {
            let d = corpus.sample_domain(&mut rng);
            routes.push(model.sample_route(&mut rng, d, k));
            domains.push(d);
        }
        TokenBatch { routes, domains }
    }

    /// Number of tokens.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// Number of layers in each route.
    pub fn n_layers(&self) -> usize {
        self.routes.first().map_or(0, |r| r.len())
    }

    /// Primary (top-1) expert path of each token.
    pub fn top1_paths(&self) -> Vec<Vec<u16>> {
        self.routes
            .iter()
            .map(|route| route.iter().map(|experts| experts[0]).collect())
            .collect()
    }

    /// Split the batch round-robin across `n` shards (how requests spread
    /// across the data-parallel group before inference).
    pub fn shard(&self, n: usize) -> Vec<TokenBatch> {
        assert!(n >= 1);
        let mut shards: Vec<TokenBatch> = (0..n)
            .map(|_| TokenBatch {
                routes: Vec::new(),
                domains: Vec::new(),
            })
            .collect();
        for (i, (route, &domain)) in self.routes.iter().zip(self.domains.iter()).enumerate() {
            shards[i % n].routes.push(route.clone());
            shards[i % n].domains.push(domain);
        }
        shards
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::AffinityModelSpec;

    fn model() -> RoutingModel {
        AffinityModelSpec::new(6, 8).build()
    }

    #[test]
    fn table3_has_four_named_corpora() {
        let corpora = CorpusSpec::table3(4);
        let names: Vec<_> = corpora.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["pile-proxy", "c4-proxy", "dolma-proxy", "yelp-proxy"]
        );
    }

    #[test]
    fn domain_sampling_respects_weights() {
        let c = CorpusSpec::new("t", vec![0.0, 1.0, 0.0]);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(c.sample_domain(&mut rng), 1);
        }
    }

    #[test]
    fn batch_shapes_are_consistent() {
        let m = model();
        let b = TokenBatch::sample(&m, &CorpusSpec::pile_proxy(4), 100, 1, 42);
        assert_eq!(b.len(), 100);
        assert_eq!(b.n_layers(), 6);
        assert_eq!(b.domains.len(), 100);
        for route in &b.routes {
            assert_eq!(route.len(), 6);
            for experts in route {
                assert_eq!(experts.len(), 1);
            }
        }
    }

    #[test]
    fn batch_is_deterministic_per_seed() {
        let m = model();
        let c = CorpusSpec::pile_proxy(4);
        let a = TokenBatch::sample(&m, &c, 50, 1, 7);
        let b = TokenBatch::sample(&m, &c, 50, 1, 7);
        assert_eq!(a, b);
        let c2 = TokenBatch::sample(&m, &c, 50, 1, 8);
        assert_ne!(a, c2);
    }

    #[test]
    fn top1_paths_extract_primary() {
        let m = model();
        let b = TokenBatch::sample(&m, &CorpusSpec::pile_proxy(4), 10, 2, 3);
        let paths = b.top1_paths();
        for (t, path) in paths.iter().enumerate() {
            for (l, &e) in path.iter().enumerate() {
                assert_eq!(e, b.routes[t][l][0]);
            }
        }
    }

    #[test]
    fn shard_partitions_every_token() {
        let m = model();
        let b = TokenBatch::sample(&m, &CorpusSpec::pile_proxy(4), 103, 1, 3);
        let shards = b.shard(4);
        assert_eq!(shards.iter().map(|s| s.len()).sum::<usize>(), 103);
        // Round-robin: shard sizes differ by at most 1.
        let sizes: Vec<_> = shards.iter().map(|s| s.len()).collect();
        assert_eq!(sizes, vec![26, 26, 26, 25]);
    }

    #[test]
    #[should_panic(expected = "domain count must match")]
    fn mismatched_domain_count_rejected() {
        let m = model(); // 4 domains
        let _ = TokenBatch::sample(&m, &CorpusSpec::pile_proxy(3), 10, 1, 0);
    }

    #[test]
    fn yelp_proxy_is_most_concentrated() {
        let yelp = CorpusSpec::yelp_proxy(4);
        let pile = CorpusSpec::pile_proxy(4);
        let h = |w: &[f64]| {
            let s: f64 = w.iter().sum();
            -w.iter()
                .filter(|&&x| x > 0.0)
                .map(|&x| (x / s) * (x / s).ln())
                .sum::<f64>()
        };
        assert!(h(&yelp.domain_weights) < h(&pile.domain_weights));
    }
}
