//! Non-stationary routing: drifting token streams for the online serving
//! mode.
//!
//! ExFlow's placements are only as good as the affinity they were computed
//! from, and under live traffic the routing distribution *drifts*: the
//! corpus mixture shifts, fine-tuning nudges the gates, new workloads
//! arrive. This module generates the controlled analogue — a sequence of
//! serving *windows* whose routing process changes over time — so the
//! online subsystem (streaming estimation, drift detection, incremental
//! re-placement) has scenarios to be measured on.
//!
//! Two preset families cover the qualitative regimes:
//!
//! * **Piecewise** — the routing structure is replaced wholesale every few
//!   windows (a regime change: a new dominant workload, a swapped
//!   checkpoint). Between phase boundaries the process is stationary.
//! * **Smooth** — every window interpolates a little further from the
//!   starting structure towards a target structure (gradual drift: slow
//!   corpus shift, continual fine-tuning). No window matches the last.
//!
//! All drift models are built from [`AffinityModelSpec`] endpoints with
//! derived seeds, so a [`DriftSchedule`] is a pure deterministic function
//! of its inputs.

use crate::routing::{AffinityModelSpec, RoutingModel};

/// How the routing process evolves across windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftKind {
    /// Distinct stationary phases; the transition structure jumps at phase
    /// boundaries.
    Piecewise,
    /// Convex interpolation from the start structure to the target, one
    /// step per window.
    Smooth,
}

/// A deterministic sequence of per-window routing models.
///
/// Window `w`'s tokens should be sampled from [`DriftSchedule::model_at`]
/// with a per-window seed; the schedule itself holds fully materialized
/// models so repeated window access is cheap and allocation-free.
///
/// ```
/// use exflow_model::drift::DriftSchedule;
/// use exflow_model::routing::AffinityModelSpec;
///
/// let spec = AffinityModelSpec::new(4, 8);
/// let drift = DriftSchedule::piecewise(&spec, 2, 6);
/// assert_eq!(drift.n_windows(), 6);
/// // Windows 0..3 share a phase; window 3 starts the second phase.
/// assert_eq!(
///     drift.model_at(0).transition(0, 0),
///     drift.model_at(2).transition(0, 0)
/// );
/// assert_ne!(
///     drift.model_at(2).transition(0, 0),
///     drift.model_at(3).transition(0, 0)
/// );
/// ```
#[derive(Debug, Clone)]
pub struct DriftSchedule {
    name: String,
    kind: DriftKind,
    windows: Vec<RoutingModel>,
}

/// Seed-stream tags for phase/endpoint derivation (SplitMix-style mixing
/// lives in the routing module; here a simple odd-multiplier fold is
/// enough to keep phases distinct).
fn phase_seed(seed: u64, phase: u64) -> u64 {
    seed ^ (phase + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

impl DriftSchedule {
    /// A piecewise schedule: `n_phases` stationary phases spread evenly
    /// over `n_windows` windows. Phase `p` rebuilds the spec with a
    /// derived seed, so consecutive phases share the spec's shape and
    /// affinity concentration but none of its permutation structure.
    pub fn piecewise(spec: &AffinityModelSpec, n_phases: usize, n_windows: usize) -> Self {
        assert!(n_phases >= 1, "need at least one phase");
        assert!(n_windows >= n_phases, "need at least one window per phase");
        let models: Vec<RoutingModel> = (0..n_phases)
            .map(|p| {
                spec.clone()
                    .with_seed(phase_seed(spec.seed, p as u64))
                    .build()
            })
            .collect();
        let windows = (0..n_windows)
            .map(|w| models[w * n_phases / n_windows].clone())
            .collect();
        DriftSchedule {
            name: format!("piecewise-{n_phases}phase"),
            kind: DriftKind::Piecewise,
            windows,
        }
    }

    /// A smooth schedule: window `w` is the convex blend
    /// `(1 - w/(W-1)) * start + (w/(W-1)) * target`, where the target is
    /// the spec rebuilt with a derived seed. Window 0 is exactly the start
    /// structure, the last window exactly the target.
    pub fn smooth(spec: &AffinityModelSpec, n_windows: usize) -> Self {
        assert!(n_windows >= 2, "smooth drift needs at least two windows");
        let start = spec.build();
        let target = spec
            .clone()
            .with_seed(phase_seed(spec.seed, 0x005a_007f))
            .build();
        let windows = (0..n_windows)
            .map(|w| start.interpolate(&target, w as f64 / (n_windows - 1) as f64))
            .collect();
        DriftSchedule {
            name: "smooth".to_string(),
            kind: DriftKind::Smooth,
            windows,
        }
    }

    /// The drift presets the online benchmarks sweep: an abrupt two-phase
    /// regime change, a faster four-phase churn, and gradual smooth drift.
    pub fn presets(spec: &AffinityModelSpec, n_windows: usize) -> Vec<DriftSchedule> {
        vec![
            DriftSchedule::piecewise(spec, 2, n_windows),
            DriftSchedule::piecewise(spec, 4, n_windows),
            DriftSchedule::smooth(spec, n_windows),
        ]
    }

    /// Stable preset name (`piecewise-2phase`, `smooth`, ...), used as the
    /// scenario key in benchmark artifacts.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Which drift family this schedule belongs to.
    pub fn kind(&self) -> DriftKind {
        self.kind
    }

    /// Number of serving windows.
    pub fn n_windows(&self) -> usize {
        self.windows.len()
    }

    /// The routing model governing window `w`.
    pub fn model_at(&self, w: usize) -> &RoutingModel {
        &self.windows[w]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> AffinityModelSpec {
        AffinityModelSpec::new(5, 8)
    }

    #[test]
    fn piecewise_phases_partition_windows_evenly() {
        let d = DriftSchedule::piecewise(&spec(), 2, 8);
        assert_eq!(d.n_windows(), 8);
        assert_eq!(d.kind(), DriftKind::Piecewise);
        // First four windows identical, last four identical, halves differ.
        for w in 1..4 {
            assert_eq!(
                d.model_at(w).transition(0, 0),
                d.model_at(0).transition(0, 0)
            );
            assert_eq!(
                d.model_at(4 + w).transition(0, 0),
                d.model_at(4).transition(0, 0)
            );
        }
        assert_ne!(
            d.model_at(0).transition(0, 0),
            d.model_at(4).transition(0, 0)
        );
    }

    #[test]
    fn piecewise_single_phase_is_stationary() {
        let d = DriftSchedule::piecewise(&spec(), 1, 5);
        for w in 1..5 {
            assert_eq!(
                d.model_at(w).transition(0, 0),
                d.model_at(0).transition(0, 0)
            );
        }
    }

    #[test]
    fn smooth_drift_starts_at_spec_and_moves_monotonically() {
        let d = DriftSchedule::smooth(&spec(), 6);
        let start = spec().build();
        assert_eq!(d.model_at(0).transition(0, 0), start.transition(0, 0));
        // Distance from the start structure grows with the window index.
        let dist = |w: usize| {
            d.model_at(w)
                .transition(0, 0)
                .iter()
                .zip(start.transition(0, 0))
                .map(|(a, b)| (a - b).abs())
                .sum::<f64>()
        };
        let mut last = 0.0;
        for w in 1..6 {
            let now = dist(w);
            assert!(now > last, "window {w}: distance {now} <= {last}");
            last = now;
        }
    }

    #[test]
    fn every_window_stays_row_stochastic() {
        for d in DriftSchedule::presets(&spec(), 6) {
            for w in 0..d.n_windows() {
                let t = d.model_at(w).transition(0, 0);
                for row in 0..8 {
                    let s: f64 = t[row * 8..(row + 1) * 8].iter().sum();
                    assert!((s - 1.0).abs() < 1e-9, "{} window {w}", d.name());
                }
            }
        }
    }

    #[test]
    fn presets_have_stable_distinct_names() {
        let names: Vec<String> = DriftSchedule::presets(&spec(), 4)
            .iter()
            .map(|d| d.name().to_string())
            .collect();
        assert_eq!(
            names,
            vec!["piecewise-2phase", "piecewise-4phase", "smooth"]
        );
    }

    #[test]
    fn schedules_are_deterministic() {
        let a = DriftSchedule::piecewise(&spec(), 4, 8);
        let b = DriftSchedule::piecewise(&spec(), 4, 8);
        for w in 0..8 {
            assert_eq!(
                a.model_at(w).transition(1, 2),
                b.model_at(w).transition(1, 2)
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one window per phase")]
    fn too_few_windows_rejected() {
        let _ = DriftSchedule::piecewise(&spec(), 4, 3);
    }
}
