//! Request arrival processes for the serving front-end.
//!
//! The online mode (`exflow-core`'s `run_online`) consumes pre-aggregated
//! windows of traffic; a production deployment instead sees *requests*
//! arriving over time. This module provides the three arrival patterns the
//! serving simulator exercises — homogeneous Poisson traffic, a diurnal
//! (sinusoidally-modulated) load curve, and a flash crowd (a step spike on
//! top of a base rate) — as seeded, deterministic generators of arrival
//! timestamps.
//!
//! Non-homogeneous variants are sampled by Lewis–Shedler thinning: draw
//! candidate arrivals from a homogeneous process at the peak rate, then
//! accept each with probability `rate(t) / peak`. Everything is a pure
//! function of `(process, n, seed)`, so serving runs built on top stay
//! bit-identical at any thread width.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The arrival-pattern families the serving benchmarks compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalKind {
    /// Homogeneous Poisson: memoryless, constant rate.
    Poisson,
    /// Sinusoidal day/night load curve (non-homogeneous Poisson).
    Diurnal,
    /// Constant base rate with a multiplicative spike window.
    FlashCrowd,
}

impl ArrivalKind {
    /// Every kind, in presentation order.
    pub const ALL: [ArrivalKind; 3] = [
        ArrivalKind::Poisson,
        ArrivalKind::Diurnal,
        ArrivalKind::FlashCrowd,
    ];

    /// Stable lowercase label (bench row / scenario key).
    pub fn label(&self) -> &'static str {
        match self {
            ArrivalKind::Poisson => "poisson",
            ArrivalKind::Diurnal => "diurnal",
            ArrivalKind::FlashCrowd => "flash-crowd",
        }
    }
}

/// A seeded generator of request arrival timestamps.
///
/// Construct one of the three patterns, then [`ArrivalProcess::sample`]
/// the first `n` arrival times. Sampling is deterministic per seed and
/// times are non-decreasing.
///
/// ```
/// use exflow_model::arrival::ArrivalProcess;
///
/// let p = ArrivalProcess::poisson(2.0);
/// let a = p.sample(200, 7);
/// assert_eq!(a, p.sample(200, 7)); // seeded: bit-identical
/// assert!(a.windows(2).all(|w| w[0] <= w[1])); // time moves forward
/// // The empirical rate lands near the nominal 2.0 req/s.
/// let rate = 200.0 / a.last().unwrap();
/// assert!((rate - 2.0).abs() < 0.4, "empirical rate {rate}");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalProcess {
    kind: ArrivalKind,
    base_rate: f64,
    peak_rate: f64,
    /// Diurnal only: one full day/night cycle in virtual seconds.
    period: f64,
    /// Flash crowd only: spike window `[spike_start, spike_end)`.
    spike_start: f64,
    spike_end: f64,
}

impl ArrivalProcess {
    /// Homogeneous Poisson arrivals at `rate` requests per virtual second.
    pub fn poisson(rate: f64) -> Self {
        assert!(rate > 0.0 && rate.is_finite(), "rate must be positive");
        ArrivalProcess {
            kind: ArrivalKind::Poisson,
            base_rate: rate,
            peak_rate: rate,
            period: 0.0,
            spike_start: 0.0,
            spike_end: 0.0,
        }
    }

    /// Diurnal load curve: instantaneous rate
    /// `mean_rate * (1 - swing * cos(2π t / period))`, starting at the
    /// trough. Over whole periods the mean rate is exactly `mean_rate`;
    /// the peak is `mean_rate * (1 + swing)`. `swing` must lie in
    /// `[0, 1)` so the rate never reaches zero.
    pub fn diurnal(mean_rate: f64, swing: f64, period: f64) -> Self {
        assert!(
            mean_rate > 0.0 && mean_rate.is_finite(),
            "rate must be positive"
        );
        assert!((0.0..1.0).contains(&swing), "swing must be in [0, 1)");
        assert!(
            period > 0.0 && period.is_finite(),
            "period must be positive"
        );
        ArrivalProcess {
            kind: ArrivalKind::Diurnal,
            base_rate: mean_rate,
            peak_rate: mean_rate * (1.0 + swing),
            period,
            spike_start: 0.0,
            spike_end: 0.0,
        }
    }

    /// Flash crowd: `base_rate` everywhere except the window
    /// `[spike_start, spike_start + spike_len)`, where the rate jumps to
    /// `base_rate * spike_mult`.
    pub fn flash_crowd(base_rate: f64, spike_mult: f64, spike_start: f64, spike_len: f64) -> Self {
        assert!(
            base_rate > 0.0 && base_rate.is_finite(),
            "rate must be positive"
        );
        assert!(
            spike_mult >= 1.0 && spike_mult.is_finite(),
            "spike must amplify"
        );
        assert!(
            spike_start >= 0.0 && spike_len > 0.0,
            "spike window must be forward"
        );
        ArrivalProcess {
            kind: ArrivalKind::FlashCrowd,
            base_rate,
            peak_rate: base_rate * spike_mult,
            period: 0.0,
            spike_start,
            spike_end: spike_start + spike_len,
        }
    }

    /// Which pattern family this process belongs to.
    pub fn kind(&self) -> ArrivalKind {
        self.kind
    }

    /// Stable scenario name (the kind's label).
    pub fn name(&self) -> &'static str {
        self.kind.label()
    }

    /// Instantaneous arrival rate at virtual time `t`.
    pub fn rate_at(&self, t: f64) -> f64 {
        match self.kind {
            ArrivalKind::Poisson => self.base_rate,
            ArrivalKind::Diurnal => {
                let swing = self.peak_rate / self.base_rate - 1.0;
                let phase = 2.0 * std::f64::consts::PI * t / self.period;
                self.base_rate * (1.0 - swing * phase.cos())
            }
            ArrivalKind::FlashCrowd => {
                if (self.spike_start..self.spike_end).contains(&t) {
                    self.peak_rate
                } else {
                    self.base_rate
                }
            }
        }
    }

    /// The maximum instantaneous rate (the thinning envelope).
    pub fn peak_rate(&self) -> f64 {
        self.peak_rate
    }

    /// The first `n` arrival timestamps, by Lewis–Shedler thinning against
    /// the peak rate. Pure function of `(self, n, seed)`; timestamps are
    /// non-decreasing.
    pub fn sample(&self, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0a11_4a15_5eed_77c3);
        let mut t = 0.0f64;
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            // Exponential inter-arrival at the envelope rate; `1 - u`
            // keeps the log argument in (0, 1].
            let u: f64 = rng.gen();
            t += -(1.0 - u).ln() / self.peak_rate;
            let accept: f64 = rng.gen();
            if accept * self.peak_rate < self.rate_at(t) {
                out.push(t);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable() {
        assert_eq!(ArrivalKind::Poisson.label(), "poisson");
        assert_eq!(ArrivalKind::Diurnal.label(), "diurnal");
        assert_eq!(ArrivalKind::FlashCrowd.label(), "flash-crowd");
        assert_eq!(ArrivalKind::ALL.len(), 3);
    }

    #[test]
    fn all_kinds_sample_deterministically_and_in_order() {
        let horizon = 100.0;
        for p in [
            ArrivalProcess::poisson(3.0),
            ArrivalProcess::diurnal(3.0, 0.8, horizon / 2.0),
            ArrivalProcess::flash_crowd(2.0, 4.0, 20.0, 10.0),
        ] {
            let a = p.sample(300, 42);
            assert_eq!(a, p.sample(300, 42), "{} not deterministic", p.name());
            assert_eq!(a.len(), 300);
            assert!(
                a.windows(2).all(|w| w[0] <= w[1]),
                "{} out of order",
                p.name()
            );
            assert!(a[0] >= 0.0);
        }
    }

    #[test]
    fn diurnal_mean_rate_is_the_nominal_rate() {
        let period = 50.0;
        let p = ArrivalProcess::diurnal(4.0, 0.8, period);
        let a = p.sample(2000, 9);
        let rate = 2000.0 / a.last().unwrap();
        assert!((rate - 4.0).abs() < 0.5, "empirical {rate}");
        // The trough really is quieter than the crest.
        assert!(p.rate_at(0.0) < p.rate_at(period / 2.0));
        assert!((p.peak_rate() - 4.0 * 1.8).abs() < 1e-12);
    }

    #[test]
    fn flash_crowd_spikes_inside_its_window() {
        let p = ArrivalProcess::flash_crowd(2.0, 5.0, 10.0, 5.0);
        assert_eq!(p.rate_at(9.9), 2.0);
        assert_eq!(p.rate_at(10.0), 10.0);
        assert_eq!(p.rate_at(14.9), 10.0);
        assert_eq!(p.rate_at(15.0), 2.0);
        // Arrivals cluster in the spike: the window holds far more than
        // its share of uniform time would suggest.
        let a = p.sample(400, 3);
        let in_spike = a.iter().filter(|t| (10.0..15.0).contains(*t)).count();
        assert!(in_spike > 40, "only {in_spike} arrivals in the spike");
    }

    #[test]
    fn different_seeds_differ() {
        let p = ArrivalProcess::poisson(1.0);
        assert_ne!(p.sample(50, 1), p.sample(50, 2));
    }
}
