//! Expert capacity and token overflow — the GShard-style capacity factor.
//!
//! Training systems bound each expert's per-batch load with a *capacity
//! factor* `CF`: an expert accepts at most `CF · N / E` tokens; overflow is
//! dropped (its layer output becomes the residual only). The paper's
//! inference setting uses "variable token capacity" (no dropping), but the
//! mechanism matters for two reasons this crate covers:
//!
//! * it is the reason GShard-trained models are load-balanced — the
//!   property the affinity placement's balance constraint assumes;
//! * a deployment that *does* cap capacity changes the traffic the
//!   Alltoall carries, which the ablation benches quantify.

/// Capacity policy for one MoE layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CapacityPolicy {
    /// The paper's inference setting: every routed token is served.
    Variable,
    /// GShard: each expert serves at most `ceil(factor * n_tokens / E)`
    /// tokens per batch; the rest overflow.
    Fixed {
        /// The capacity factor (1.0 = exactly even shares).
        factor: f64,
    },
}

impl CapacityPolicy {
    /// Per-expert token cap for a batch of `n_tokens` over `n_experts`.
    /// `None` means unbounded.
    pub fn cap(&self, n_tokens: usize, n_experts: usize) -> Option<usize> {
        match *self {
            CapacityPolicy::Variable => None,
            CapacityPolicy::Fixed { factor } => {
                assert!(factor > 0.0, "capacity factor must be positive");
                Some((factor * n_tokens as f64 / n_experts as f64).ceil() as usize)
            }
        }
    }
}

/// Result of applying a capacity policy to a routed batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CapacityOutcome {
    /// For each token, whether it was admitted to its expert.
    pub admitted: Vec<bool>,
    /// Tokens dropped per expert.
    pub dropped_per_expert: Vec<u64>,
}

impl CapacityOutcome {
    /// Number of dropped tokens.
    pub fn dropped(&self) -> u64 {
        self.dropped_per_expert.iter().sum()
    }

    /// Fraction of tokens dropped.
    pub fn drop_rate(&self) -> f64 {
        if self.admitted.is_empty() {
            0.0
        } else {
            self.dropped() as f64 / self.admitted.len() as f64
        }
    }
}

/// Apply `policy` to a batch: `expert_of[t]` is token `t`'s routed expert.
/// Tokens are admitted in batch order (the deterministic tie-break GShard
/// uses within a device).
pub fn apply_capacity(
    expert_of: &[u16],
    n_experts: usize,
    policy: CapacityPolicy,
) -> CapacityOutcome {
    let cap = policy.cap(expert_of.len(), n_experts);
    let mut load = vec![0usize; n_experts];
    let mut dropped_per_expert = vec![0u64; n_experts];
    let admitted = expert_of
        .iter()
        .map(|&e| {
            let e = e as usize;
            assert!(e < n_experts, "expert id out of range");
            match cap {
                Some(c) if load[e] >= c => {
                    dropped_per_expert[e] += 1;
                    false
                }
                _ => {
                    load[e] += 1;
                    true
                }
            }
        })
        .collect();
    CapacityOutcome {
        admitted,
        dropped_per_expert,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::AffinityModelSpec;
    use crate::{CorpusSpec, TokenBatch};

    #[test]
    fn variable_capacity_admits_everything() {
        let experts = vec![0u16, 0, 0, 0, 1];
        let out = apply_capacity(&experts, 2, CapacityPolicy::Variable);
        assert!(out.admitted.iter().all(|&a| a));
        assert_eq!(out.dropped(), 0);
    }

    #[test]
    fn fixed_capacity_drops_overflow_in_order() {
        // 6 tokens, 2 experts, CF=1.0 -> cap = 3 per expert.
        let experts = vec![0u16, 0, 0, 0, 1, 1];
        let out = apply_capacity(&experts, 2, CapacityPolicy::Fixed { factor: 1.0 });
        assert_eq!(out.admitted, vec![true, true, true, false, true, true]);
        assert_eq!(out.dropped_per_expert, vec![1, 0]);
        assert!((out.drop_rate() - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn larger_factor_drops_less() {
        let spec = AffinityModelSpec::new(2, 8);
        let model = spec.build();
        let batch = TokenBatch::sample(&model, &CorpusSpec::pile_proxy(spec.n_domains), 2000, 1, 3);
        let experts: Vec<u16> = batch.routes.iter().map(|r| r[0][0]).collect();
        let tight = apply_capacity(&experts, 8, CapacityPolicy::Fixed { factor: 1.0 });
        let loose = apply_capacity(&experts, 8, CapacityPolicy::Fixed { factor: 1.5 });
        assert!(loose.dropped() <= tight.dropped());
    }

    #[test]
    fn balanced_routing_needs_little_headroom() {
        // Our doubly-stochastic routing is load balanced, so CF=1.25
        // already drops almost nothing — the connection between GShard
        // training and the placement's balance assumption.
        let spec = AffinityModelSpec::new(2, 16);
        let model = spec.build();
        let batch = TokenBatch::sample(&model, &CorpusSpec::pile_proxy(spec.n_domains), 4000, 1, 9);
        let experts: Vec<u16> = batch.routes.iter().map(|r| r[0][0]).collect();
        let out = apply_capacity(&experts, 16, CapacityPolicy::Fixed { factor: 1.25 });
        assert!(
            out.drop_rate() < 0.01,
            "balanced routing dropped {:.3}",
            out.drop_rate()
        );
    }

    #[test]
    fn cap_formula() {
        let p = CapacityPolicy::Fixed { factor: 1.0 };
        assert_eq!(p.cap(100, 8), Some(13)); // ceil(12.5)
        assert_eq!(CapacityPolicy::Variable.cap(100, 8), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_expert_id_rejected() {
        let _ = apply_capacity(&[5], 4, CapacityPolicy::Variable);
    }
}
