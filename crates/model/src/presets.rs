//! The paper's Table II model zoo, plus the large-expert extrapolations
//! (`E = 256/512`) that drive the sparse placement backend.

use crate::config::{GateKind, ModelConfig};

/// MoE GPT-M (350M base, 24 layers, d=1024) with `n_experts` per layer.
/// Table II lists the 8/16/32/64-expert variants.
pub fn moe_gpt_m(n_experts: usize) -> ModelConfig {
    ModelConfig::new(
        format!("MoE-GPT-M/{n_experts}e-24L"),
        350_000_000,
        24,
        n_experts,
        1024,
    )
}

/// MoE GPT-M with 32 experts and 32 layers (470M base in Table II).
pub fn moe_gpt_m_32e_32l() -> ModelConfig {
    ModelConfig::new("MoE-GPT-M/32e-32L", 470_000_000, 32, 32, 1024)
}

/// MoE GPT-M with 32 experts and 40 layers (590M base in Table II).
pub fn moe_gpt_m_32e_40l() -> ModelConfig {
    ModelConfig::new("MoE-GPT-M/32e-40L", 590_000_000, 40, 32, 1024)
}

/// MoE GPT-XL (1.3B base, 24 layers, d=2048, 16 experts).
pub fn moe_gpt_xl_16e() -> ModelConfig {
    ModelConfig::new("MoE-GPT-XL/16e-24L", 1_300_000_000, 24, 16, 2048)
}

/// The 12-layer, 32-expert profiling model used for the paper's Fig. 2 and
/// appendix heatmaps ("a pre-trained GPT model with 12 MoE layers, and each
/// layer has 32 experts").
pub fn heatmap_model() -> ModelConfig {
    ModelConfig::new("MoE-GPT-350M/32e-12L", 350_000_000, 12, 32, 1024)
}

/// MoE GPT-XXL: the large-expert extrapolation beyond Table II. Same
/// 24-layer, d=1024 trunk as GPT-M, but with `n_experts` in the hundreds —
/// the regime where top-k routing makes affinity matrices overwhelmingly
/// sparse and the placement objective's CSR backend pays off.
/// `n_experts` must be 256 or 512 (the supported sweep points).
pub fn moe_gpt_xxl(n_experts: usize, gate: GateKind) -> ModelConfig {
    assert!(
        n_experts == 256 || n_experts == 512,
        "XXL presets are defined for 256 or 512 experts, got {n_experts}"
    );
    let k = gate.k();
    ModelConfig::new(
        format!("MoE-GPT-XXL/{n_experts}e-24L-top{k}"),
        350_000_000,
        24,
        n_experts,
        1024,
    )
    .with_gate(gate)
}

/// The large-expert zoo the sparse-backend benchmarks sweep:
/// `E ∈ {256, 512} × k ∈ {1, 2}`, in (experts-major, gate-minor) order.
pub fn large_zoo() -> Vec<ModelConfig> {
    vec![
        moe_gpt_xxl(256, GateKind::Top1),
        moe_gpt_xxl(256, GateKind::Top2),
        moe_gpt_xxl(512, GateKind::Top1),
        moe_gpt_xxl(512, GateKind::Top2),
    ]
}

/// All seven Table II variants, in the order Fig. 10 plots them.
pub fn table2() -> Vec<ModelConfig> {
    vec![
        moe_gpt_m(8),
        moe_gpt_m(16),
        moe_gpt_m(32),
        moe_gpt_m(64),
        moe_gpt_m_32e_32l(),
        moe_gpt_m_32e_40l(),
        moe_gpt_xl_16e(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_seven_variants() {
        assert_eq!(table2().len(), 7);
    }

    #[test]
    fn names_are_unique() {
        let names: std::collections::HashSet<_> = table2().into_iter().map(|c| c.name).collect();
        assert_eq!(names.len(), 7);
    }

    #[test]
    fn gpt_m_dimensions_match_table2() {
        let c = moe_gpt_m(32);
        assert_eq!(c.n_layers, 24);
        assert_eq!(c.d_model, 1024);
        assert_eq!(c.base_params, 350_000_000);
    }

    #[test]
    fn xl_is_wider() {
        assert_eq!(moe_gpt_xl_16e().d_model, 2048);
        assert_eq!(moe_gpt_xl_16e().n_experts, 16);
    }

    #[test]
    fn layer_variants() {
        assert_eq!(moe_gpt_m_32e_32l().n_layers, 32);
        assert_eq!(moe_gpt_m_32e_40l().n_layers, 40);
    }

    #[test]
    fn moe_params_dominate_total() {
        // 64 experts x 24 layers of 1024x4096 FFNs dwarf the 350M base.
        let c = moe_gpt_m(64);
        assert!(c.total_params() > 10 * c.base_params);
    }

    #[test]
    fn large_zoo_covers_both_scales_and_gates() {
        let zoo = large_zoo();
        assert_eq!(zoo.len(), 4);
        let names: std::collections::HashSet<_> = zoo.iter().map(|c| c.name.clone()).collect();
        assert_eq!(names.len(), 4);
        assert!(zoo.iter().any(|c| c.n_experts == 256 && c.gate.k() == 1));
        assert!(zoo.iter().any(|c| c.n_experts == 512 && c.gate.k() == 2));
        for c in &zoo {
            assert_eq!(c.n_layers, 24);
            assert!(c.name.contains(&format!("top{}", c.gate.k())));
        }
    }

    #[test]
    #[should_panic(expected = "256 or 512")]
    fn xxl_rejects_unsupported_expert_counts() {
        let _ = moe_gpt_xxl(128, GateKind::Top1);
    }

    #[test]
    fn heatmap_model_matches_fig2_caption() {
        let c = heatmap_model();
        assert_eq!(c.n_layers, 12);
        assert_eq!(c.n_experts, 32);
    }
}
