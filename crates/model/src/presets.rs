//! The paper's Table II model zoo.

use crate::config::ModelConfig;

/// MoE GPT-M (350M base, 24 layers, d=1024) with `n_experts` per layer.
/// Table II lists the 8/16/32/64-expert variants.
pub fn moe_gpt_m(n_experts: usize) -> ModelConfig {
    ModelConfig::new(
        format!("MoE-GPT-M/{n_experts}e-24L"),
        350_000_000,
        24,
        n_experts,
        1024,
    )
}

/// MoE GPT-M with 32 experts and 32 layers (470M base in Table II).
pub fn moe_gpt_m_32e_32l() -> ModelConfig {
    ModelConfig::new("MoE-GPT-M/32e-32L", 470_000_000, 32, 32, 1024)
}

/// MoE GPT-M with 32 experts and 40 layers (590M base in Table II).
pub fn moe_gpt_m_32e_40l() -> ModelConfig {
    ModelConfig::new("MoE-GPT-M/32e-40L", 590_000_000, 40, 32, 1024)
}

/// MoE GPT-XL (1.3B base, 24 layers, d=2048, 16 experts).
pub fn moe_gpt_xl_16e() -> ModelConfig {
    ModelConfig::new("MoE-GPT-XL/16e-24L", 1_300_000_000, 24, 16, 2048)
}

/// The 12-layer, 32-expert profiling model used for the paper's Fig. 2 and
/// appendix heatmaps ("a pre-trained GPT model with 12 MoE layers, and each
/// layer has 32 experts").
pub fn heatmap_model() -> ModelConfig {
    ModelConfig::new("MoE-GPT-350M/32e-12L", 350_000_000, 12, 32, 1024)
}

/// All seven Table II variants, in the order Fig. 10 plots them.
pub fn table2() -> Vec<ModelConfig> {
    vec![
        moe_gpt_m(8),
        moe_gpt_m(16),
        moe_gpt_m(32),
        moe_gpt_m(64),
        moe_gpt_m_32e_32l(),
        moe_gpt_m_32e_40l(),
        moe_gpt_xl_16e(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_seven_variants() {
        assert_eq!(table2().len(), 7);
    }

    #[test]
    fn names_are_unique() {
        let names: std::collections::HashSet<_> = table2().into_iter().map(|c| c.name).collect();
        assert_eq!(names.len(), 7);
    }

    #[test]
    fn gpt_m_dimensions_match_table2() {
        let c = moe_gpt_m(32);
        assert_eq!(c.n_layers, 24);
        assert_eq!(c.d_model, 1024);
        assert_eq!(c.base_params, 350_000_000);
    }

    #[test]
    fn xl_is_wider() {
        assert_eq!(moe_gpt_xl_16e().d_model, 2048);
        assert_eq!(moe_gpt_xl_16e().n_experts, 16);
    }

    #[test]
    fn layer_variants() {
        assert_eq!(moe_gpt_m_32e_32l().n_layers, 32);
        assert_eq!(moe_gpt_m_32e_40l().n_layers, 40);
    }

    #[test]
    fn moe_params_dominate_total() {
        // 64 experts x 24 layers of 1024x4096 FFNs dwarf the 350M base.
        let c = moe_gpt_m(64);
        assert!(c.total_params() > 10 * c.base_params);
    }

    #[test]
    fn heatmap_model_matches_fig2_caption() {
        let c = heatmap_model();
        assert_eq!(c.n_layers, 12);
        assert_eq!(c.n_experts, 32);
    }
}
