//! Training-dynamics simulator: how gating (and hence affinity) evolves as
//! an MoE model trains from scratch.
//!
//! The paper's §V-F documents three phases, which this module models
//! directly:
//!
//! 1. **Collapse (iteration ~0–500).** "Training starts with random model
//!    parameters, the first hundreds of iterations see a few experts getting
//!    most of tokens" (Fig. 11). Modeled as a small *active set* of experts
//!    that all tokens route through.
//! 2. **Rebalancing (~500–2000).** The GShard auxiliary loss pushes the
//!    routing towards load balance; the active set grows until every expert
//!    participates, and measured affinity *dips* because more experts share
//!    the traffic (Fig. 12a's oscillation).
//! 3. **Specialization (2000+).** "As the training proceeds, expert affinity
//!    steadily increases" (Fig. 12b). Modeled as the affinity concentration
//!    κ rising along a saturating curve as experts become domain-specific.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::routing::{AffinityModelSpec, RoutingModel};

/// Simulates the routing behaviour of an MoE model at any training
/// iteration.
#[derive(Debug, Clone)]
pub struct TrainingSimulator {
    base: AffinityModelSpec,
    /// Iteration by which every expert is active (end of rebalancing).
    pub balance_iters: u64,
    /// Time constant of the affinity saturation (specialization phase).
    pub affinity_tau: f64,
    /// κ floor during early training.
    pub kappa_floor: f64,
    /// κ ceiling late in training.
    pub kappa_ceil: f64,
    /// The (deterministic, seed-derived) order in which experts activate.
    activation_order: Vec<usize>,
}

impl TrainingSimulator {
    /// Build a simulator over the given routing-model spec. The spec's own
    /// `affinity` field is ignored — κ is derived from the iteration.
    pub fn new(base: AffinityModelSpec) -> Self {
        let mut order: Vec<usize> = (0..base.n_experts).collect();
        // Deterministic shuffle: which experts win the early collapse.
        let mut rng = StdRng::seed_from_u64(base.seed ^ 0xacc0_7d3a);
        for i in (1..order.len()).rev() {
            let j = rand::Rng::gen_range(&mut rng, 0..=i);
            order.swap(i, j);
        }
        TrainingSimulator {
            base,
            balance_iters: 1000,
            affinity_tau: 6000.0,
            kappa_floor: 0.35,
            kappa_ceil: 0.92,
            activation_order: order,
        }
    }

    /// The underlying spec.
    pub fn spec(&self) -> &AffinityModelSpec {
        &self.base
    }

    /// Number of experts active at `iteration`: starts at ~5% of the expert
    /// count (at least 1) and grows linearly until every expert is active at
    /// `balance_iters`.
    pub fn active_count_at(&self, iteration: u64) -> usize {
        let e = self.base.n_experts;
        let frac = 0.05 + 0.95 * (iteration as f64 / self.balance_iters as f64).min(1.0);
        ((e as f64 * frac).round() as usize).clamp(1, e)
    }

    /// The active expert set at `iteration`, or `None` once all are active.
    pub fn active_set_at(&self, iteration: u64) -> Option<Vec<usize>> {
        let count = self.active_count_at(iteration);
        if count == self.base.n_experts {
            None
        } else {
            let mut set = self.activation_order[..count].to_vec();
            set.sort_unstable();
            Some(set)
        }
    }

    /// The affinity concentration κ at `iteration` (saturating growth).
    pub fn kappa_at(&self, iteration: u64) -> f64 {
        self.kappa_floor
            + (self.kappa_ceil - self.kappa_floor)
                * (1.0 - (-(iteration as f64) / self.affinity_tau).exp())
    }

    /// The routing model that describes the checkpoint at `iteration`.
    pub fn model_at(&self, iteration: u64) -> RoutingModel {
        let spec = self.base.clone().with_affinity(self.kappa_at(iteration));
        let mut model = spec.build();
        model.set_active_experts(self.active_set_at(iteration));
        model
    }

    /// Analytic per-expert token share at `iteration` (Fig. 11's Y axis):
    /// active experts split the traffic evenly; inactive experts get none.
    pub fn expert_share_at(&self, iteration: u64) -> Vec<f64> {
        let e = self.base.n_experts;
        let count = self.active_count_at(iteration);
        let mut shares = vec![0.0f64; e];
        for &idx in &self.activation_order[..count] {
            shares[idx] = 1.0 / count as f64;
        }
        shares
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim(e: usize) -> TrainingSimulator {
        TrainingSimulator::new(AffinityModelSpec::new(8, e))
    }

    #[test]
    fn collapse_starts_with_few_experts() {
        let s = sim(32);
        assert!(s.active_count_at(0) <= 3);
        assert_eq!(s.active_count_at(10_000), 32);
    }

    #[test]
    fn active_count_is_monotone() {
        let s = sim(64);
        let mut last = 0;
        for it in (0..2000).step_by(50) {
            let c = s.active_count_at(it);
            assert!(c >= last, "active count decreased at iter {it}");
            last = c;
        }
    }

    #[test]
    fn active_set_none_after_balance() {
        let s = sim(16);
        assert!(s.active_set_at(0).is_some());
        assert!(s.active_set_at(s.balance_iters).is_none());
    }

    #[test]
    fn kappa_grows_and_saturates() {
        let s = sim(8);
        assert!(s.kappa_at(0) < s.kappa_at(2000));
        assert!(s.kappa_at(2000) < s.kappa_at(18_000));
        assert!(s.kappa_at(1_000_000) <= s.kappa_ceil + 1e-9);
        assert!((s.kappa_at(0) - s.kappa_floor).abs() < 1e-9);
    }

    #[test]
    fn shares_sum_to_one_and_concentrate_early() {
        let s = sim(32);
        let early = s.expert_share_at(0);
        let late = s.expert_share_at(5000);
        assert!((early.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((late.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let max_early = early.iter().copied().fold(0.0f64, f64::max);
        let max_late = late.iter().copied().fold(0.0f64, f64::max);
        assert!(max_early > max_late, "early shares should be skewed");
        assert!((max_late - 1.0 / 32.0).abs() < 1e-9, "late shares balanced");
    }

    #[test]
    fn model_at_respects_active_set() {
        let s = sim(16);
        let m = s.model_at(0);
        let active = s.active_set_at(0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let p = m.sample_path(&mut rng, 0);
            assert!(p.iter().all(|&e| active.contains(&(e as usize))));
        }
    }

    #[test]
    fn activation_order_is_deterministic() {
        let a = sim(16);
        let b = sim(16);
        assert_eq!(a.active_set_at(100), b.active_set_at(100));
    }
}
