//! The synthetic routing process: a layer-to-layer Markov chain over experts
//! with controllable inter-layer affinity.
//!
//! This is the repo's stand-in for "tracing a pre-trained GPT MoE model on
//! the Pile" (paper §IV-B). The construction mirrors the two facts the paper
//! establishes about pre-trained models:
//!
//! 1. **Load balance** (Fig. 11): models trained with the GShard auxiliary
//!    loss route tokens near-uniformly across experts *marginally*. We get
//!    this for free by building every transition matrix as a convex mixture
//!    of permutation matrices and the uniform matrix — all doubly
//!    stochastic, so a uniform layer-0 marginal stays uniform at every layer.
//! 2. **Sparse conditional structure** (Fig. 2): *conditioned* on the expert
//!    at layer `j`, only a few experts at `j+1` are likely ("for each row,
//!    only a few columns are red"). The permutation mixture puts the
//!    conditional mass on `n_permutations` successors per expert; the
//!    `affinity` knob (κ) sets how much mass stays on them versus leaking
//!    uniformly.
//!
//! Domains model corpus heterogeneity: each domain blends a shared core
//! structure (weight `domain_share`) with domain-specific structure, which
//! is what makes affinity estimated on one corpus transfer to others
//! (Table III).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the synthetic routing process.
#[derive(Debug, Clone, PartialEq)]
pub struct AffinityModelSpec {
    /// Number of MoE layers (the chain has `n_layers - 1` transitions).
    pub n_layers: usize,
    /// Experts per layer.
    pub n_experts: usize,
    /// Affinity concentration κ ∈ [0, 1]: fraction of conditional mass on
    /// the preferred successors. 0 → routing is independent across layers;
    /// 1 → routing is a deterministic function of the previous expert (up to
    /// the permutation mixture).
    pub affinity: f64,
    /// Number of permutation matrices mixed into the preferred structure,
    /// i.e. roughly how many "red columns" each heatmap row has.
    pub n_permutations: usize,
    /// Number of token domains (corpus heterogeneity).
    pub n_domains: usize,
    /// Weight of the domain-shared core structure versus domain-specific
    /// structure, ∈ [0, 1]. High values make affinity corpus-invariant.
    pub domain_share: f64,
    /// RNG seed; everything derived from it is deterministic.
    pub seed: u64,
}

impl AffinityModelSpec {
    /// A spec with the defaults used throughout the evaluation: strong
    /// affinity (κ=0.85), 2 preferred successors, 4 domains sharing 85% of
    /// structure — the regime the paper's Fig. 2 heatmaps display ("for
    /// each row ... only a few columns are red").
    pub fn new(n_layers: usize, n_experts: usize) -> Self {
        assert!(n_layers >= 1 && n_experts >= 1);
        AffinityModelSpec {
            n_layers,
            n_experts,
            affinity: 0.85,
            n_permutations: 2,
            n_domains: 4,
            domain_share: 0.85,
            seed: 0x5eed_ef10,
        }
    }

    /// Override the affinity concentration κ.
    pub fn with_affinity(mut self, affinity: f64) -> Self {
        assert!((0.0..=1.0).contains(&affinity), "κ must be in [0,1]");
        self.affinity = affinity;
        self
    }

    /// Override the number of preferred successors per expert.
    pub fn with_permutations(mut self, n: usize) -> Self {
        assert!(n >= 1);
        self.n_permutations = n;
        self
    }

    /// Override the number of domains.
    pub fn with_domains(mut self, n_domains: usize, domain_share: f64) -> Self {
        assert!(n_domains >= 1);
        assert!((0.0..=1.0).contains(&domain_share));
        self.n_domains = n_domains;
        self.domain_share = domain_share;
        self
    }

    /// Override the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Build the concrete routing model.
    pub fn build(&self) -> RoutingModel {
        RoutingModel::new(self.clone())
    }
}

/// splitmix64 — used to derive independent sub-seeds deterministically.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn sub_seed(seed: u64, parts: &[u64]) -> u64 {
    let mut s = mix(seed);
    for &p in parts {
        s = mix(s ^ p);
    }
    s
}

/// Sample a random permutation of `0..n` (Fisher–Yates).
fn random_permutation<R: Rng>(n: usize, rng: &mut R) -> Vec<usize> {
    let mut p: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        p.swap(i, j);
    }
    p
}

/// The concrete Markov routing process. See the module docs for the
/// construction; all matrices are row-stochastic and (in the unrestricted
/// case) doubly stochastic.
#[derive(Debug, Clone)]
pub struct RoutingModel {
    spec: AffinityModelSpec,
    /// `transitions[domain][gap]` is a flattened `E x E` row-stochastic
    /// matrix for the transition from layer `gap` to `gap + 1`.
    transitions: Vec<Vec<Vec<f64>>>,
    /// Optional restriction to a subset of active experts (used by the
    /// training simulator to model early-training expert collapse).
    active: Option<Vec<bool>>,
}

impl RoutingModel {
    fn new(spec: AffinityModelSpec) -> Self {
        let e = spec.n_experts;
        let gaps = spec.n_layers.saturating_sub(1);
        let uniform = 1.0 / e as f64;

        // Shared core structure: per gap, an average of m permutations.
        let core: Vec<Vec<f64>> = (0..gaps)
            .map(|gap| {
                let mut s = vec![0.0f64; e * e];
                for i in 0..spec.n_permutations {
                    let mut rng =
                        StdRng::seed_from_u64(sub_seed(spec.seed, &[1, gap as u64, i as u64]));
                    let p = random_permutation(e, &mut rng);
                    for (row, &col) in p.iter().enumerate() {
                        s[row * e + col] += 1.0 / spec.n_permutations as f64;
                    }
                }
                s
            })
            .collect();

        let transitions = (0..spec.n_domains)
            .map(|d| {
                (0..gaps)
                    .map(|gap| {
                        // Domain-specific structure.
                        let mut dom = vec![0.0f64; e * e];
                        for i in 0..spec.n_permutations {
                            let mut rng = StdRng::seed_from_u64(sub_seed(
                                spec.seed,
                                &[2, gap as u64, d as u64, i as u64],
                            ));
                            let p = random_permutation(e, &mut rng);
                            for (row, &col) in p.iter().enumerate() {
                                dom[row * e + col] += 1.0 / spec.n_permutations as f64;
                            }
                        }
                        let mu = spec.domain_share;
                        let kappa = spec.affinity;
                        (0..e * e)
                            .map(|idx| {
                                let s = mu * core[gap][idx] + (1.0 - mu) * dom[idx];
                                kappa * s + (1.0 - kappa) * uniform
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect();

        RoutingModel {
            spec,
            transitions,
            active: None,
        }
    }

    /// The spec this model was built from.
    pub fn spec(&self) -> &AffinityModelSpec {
        &self.spec
    }

    /// Number of MoE layers.
    pub fn n_layers(&self) -> usize {
        self.spec.n_layers
    }

    /// Experts per layer.
    pub fn n_experts(&self) -> usize {
        self.spec.n_experts
    }

    /// Number of domains.
    pub fn n_domains(&self) -> usize {
        self.spec.n_domains
    }

    /// Restrict routing to a subset of experts (training-collapse model).
    /// Pass `None` to lift the restriction.
    pub fn set_active_experts(&mut self, active: Option<Vec<usize>>) {
        self.active = active.map(|list| {
            assert!(!list.is_empty(), "active set must be non-empty");
            let mut mask = vec![false; self.spec.n_experts];
            for idx in list {
                assert!(idx < self.spec.n_experts, "active expert out of range");
                mask[idx] = true;
            }
            mask
        });
    }

    /// Exact transition matrix (flattened row-major `E x E`) for `domain`
    /// between layers `gap` and `gap + 1`, ignoring any active restriction.
    pub fn transition(&self, domain: usize, gap: usize) -> &[f64] {
        &self.transitions[domain][gap]
    }

    /// Exact transition matrix for `domain` between layers `gap` and
    /// `gap + 1` in CSR form: `(row_ptr, cols, vals)` with ascending
    /// columns per row, zero cells dropped. With `affinity < 1` the
    /// uniform leak makes every cell nonzero, so this equals the dense
    /// table; at `affinity = 1` (pure permutation mixture) each row holds
    /// at most `2 * n_permutations` cells. The triplet feeds
    /// `exflow_affinity::SparseAffinity::from_exact` — the oracle
    /// counterpart of trace estimation for the CSR placement backend.
    pub fn transition_sparse(
        &self,
        domain: usize,
        gap: usize,
    ) -> (Vec<usize>, Vec<usize>, Vec<f64>) {
        let e = self.spec.n_experts;
        let flat = self.transition(domain, gap);
        let mut row_ptr = Vec::with_capacity(e + 1);
        row_ptr.push(0usize);
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        for i in 0..e {
            for (p, &v) in flat[i * e..(i + 1) * e].iter().enumerate() {
                if v != 0.0 {
                    cols.push(p);
                    vals.push(v);
                }
            }
            row_ptr.push(cols.len());
        }
        (row_ptr, cols, vals)
    }

    /// Structural nonzeros of one exact transition matrix.
    pub fn transition_nnz(&self, domain: usize, gap: usize) -> usize {
        self.transition(domain, gap)
            .iter()
            .filter(|&&v| v != 0.0)
            .count()
    }

    /// Convex interpolation towards `other`: every domain/gap transition
    /// matrix becomes `(1 - alpha) * self + alpha * other`. Both models
    /// must share a shape (layers, experts, domains). The blend of two
    /// row-stochastic (indeed doubly stochastic) matrices is again doubly
    /// stochastic, so load balance survives interpolation — this is the
    /// primitive behind the smooth routing-drift presets in
    /// [`crate::drift`]. Any active-expert restriction is dropped (drift
    /// models serve fully-trained checkpoints).
    pub fn interpolate(&self, other: &RoutingModel, alpha: f64) -> RoutingModel {
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0,1]");
        assert_eq!(self.spec.n_layers, other.spec.n_layers, "layer mismatch");
        assert_eq!(self.spec.n_experts, other.spec.n_experts, "expert mismatch");
        assert_eq!(self.spec.n_domains, other.spec.n_domains, "domain mismatch");
        let transitions = self
            .transitions
            .iter()
            .zip(&other.transitions)
            .map(|(da, db)| {
                da.iter()
                    .zip(db)
                    .map(|(ga, gb)| {
                        ga.iter()
                            .zip(gb)
                            .map(|(&a, &b)| (1.0 - alpha) * a + alpha * b)
                            .collect()
                    })
                    .collect()
            })
            .collect();
        RoutingModel {
            spec: self.spec.clone(),
            transitions,
            active: None,
        }
    }

    /// Domain-mixture transition matrix for `gap`, weighted by `weights`
    /// (will be normalized; length must equal `n_domains`).
    pub fn mixture_transition(&self, weights: &[f64], gap: usize) -> Vec<f64> {
        assert_eq!(weights.len(), self.spec.n_domains);
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must not all be zero");
        let e = self.spec.n_experts;
        let mut out = vec![0.0f64; e * e];
        for (d, &w) in weights.iter().enumerate() {
            let t = &self.transitions[d][gap];
            let w = w / total;
            for (o, &v) in out.iter_mut().zip(t.iter()) {
                *o += w * v;
            }
        }
        out
    }

    /// Sample the layer-0 expert for a token of `domain`.
    fn sample_first<R: Rng>(&self, rng: &mut R) -> usize {
        let e = self.spec.n_experts;
        match &self.active {
            None => rng.gen_range(0..e),
            Some(mask) => {
                let actives: Vec<usize> = (0..e).filter(|&i| mask[i]).collect();
                actives[rng.gen_range(0..actives.len())]
            }
        }
    }

    /// Sample the next expert given the current one, restricted to the
    /// active set (if any) and excluding `exclude` (for top-2's second pick).
    fn sample_next<R: Rng>(
        &self,
        rng: &mut R,
        domain: usize,
        gap: usize,
        from: usize,
        exclude: Option<usize>,
    ) -> usize {
        let e = self.spec.n_experts;
        let row = &self.transitions[domain][gap][from * e..(from + 1) * e];
        let mut total = 0.0f64;
        for (i, &p) in row.iter().enumerate() {
            if Some(i) == exclude {
                continue;
            }
            if let Some(mask) = &self.active {
                if !mask[i] {
                    continue;
                }
            }
            total += p;
        }
        debug_assert!(total > 0.0, "renormalized row must have mass");
        let mut target = rng.gen::<f64>() * total;
        let mut fallback = from;
        for (i, &p) in row.iter().enumerate() {
            if Some(i) == exclude {
                continue;
            }
            if let Some(mask) = &self.active {
                if !mask[i] {
                    continue;
                }
            }
            fallback = i;
            if target < p {
                return i;
            }
            target -= p;
        }
        fallback // numerical edge: return the last admissible expert
    }

    /// Sample a full top-1 routing path (one expert per layer).
    pub fn sample_path<R: Rng>(&self, rng: &mut R, domain: usize) -> Vec<u16> {
        assert!(domain < self.spec.n_domains, "domain out of range");
        let mut path = Vec::with_capacity(self.spec.n_layers);
        let mut cur = self.sample_first(rng);
        path.push(cur as u16);
        for gap in 0..self.spec.n_layers.saturating_sub(1) {
            cur = self.sample_next(rng, domain, gap, cur, None);
            path.push(cur as u16);
        }
        path
    }

    /// Sample a top-k route: `route[layer]` holds `k` distinct experts, the
    /// first being the primary (the one whose output dominates and whose
    /// chain continues the Markov walk).
    pub fn sample_route<R: Rng>(&self, rng: &mut R, domain: usize, k: usize) -> Vec<Vec<u16>> {
        assert!(k >= 1 && k <= self.spec.n_experts);
        let primary = self.sample_path(rng, domain);
        primary
            .iter()
            .enumerate()
            .map(|(layer, &p)| {
                let mut experts = vec![p];
                if k == 2 && self.spec.n_experts > 1 {
                    let gap = layer.saturating_sub(1);
                    let from = if layer == 0 {
                        p as usize
                    } else {
                        primary[layer - 1] as usize
                    };
                    let second = if layer == 0 {
                        // No previous layer: second expert uniform among others.
                        let mut s = rng.gen_range(0..self.spec.n_experts - 1);
                        if s >= p as usize {
                            s += 1;
                        }
                        s
                    } else {
                        self.sample_next(rng, domain, gap, from, Some(p as usize))
                    };
                    experts.push(second as u16);
                }
                experts
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(e: usize, l: usize, kappa: f64) -> RoutingModel {
        AffinityModelSpec::new(l, e).with_affinity(kappa).build()
    }

    #[test]
    fn transitions_are_row_stochastic() {
        let m = model(16, 6, 0.9);
        for d in 0..m.n_domains() {
            for gap in 0..5 {
                let t = m.transition(d, gap);
                for row in 0..16 {
                    let s: f64 = t[row * 16..(row + 1) * 16].iter().sum();
                    assert!((s - 1.0).abs() < 1e-9, "row {row} sums to {s}");
                }
            }
        }
    }

    #[test]
    fn transitions_are_doubly_stochastic() {
        // Column sums are 1 too (permutation mixtures), which is what keeps
        // the marginal load balanced at every layer.
        let m = model(8, 4, 0.7);
        let t = m.transition(0, 0);
        for col in 0..8 {
            let s: f64 = (0..8).map(|row| t[row * 8 + col]).sum();
            assert!((s - 1.0).abs() < 1e-9, "col {col} sums to {s}");
        }
    }

    #[test]
    fn zero_affinity_is_uniform() {
        let m = model(8, 3, 0.0);
        let t = m.transition(0, 0);
        for &p in t {
            assert!((p - 0.125).abs() < 1e-12);
        }
    }

    #[test]
    fn high_affinity_concentrates_rows() {
        let m = model(32, 3, 0.95);
        let t = m.transition(0, 0);
        // Each row mixes n_permutations core + n_permutations domain
        // successors, so the top 6 columns must hold ~95% of the mass —
        // the "only a few columns are red" structure of Fig. 2.
        for row in 0..32 {
            let mut probs: Vec<f64> = t[row * 32..(row + 1) * 32].to_vec();
            probs.sort_by(|a, b| b.partial_cmp(a).unwrap());
            let top6: f64 = probs[..6].iter().sum();
            assert!(top6 > 0.9, "row {row} top6 mass {top6}");
        }
    }

    #[test]
    fn sparse_transition_matches_dense() {
        let m = model(16, 4, 0.9);
        let (row_ptr, cols, vals) = m.transition_sparse(1, 2);
        let flat = m.transition(1, 2);
        assert_eq!(row_ptr.len(), 17);
        assert_eq!(cols.len(), m.transition_nnz(1, 2));
        for i in 0..16 {
            let mut rebuilt = [0.0f64; 16];
            for idx in row_ptr[i]..row_ptr[i + 1] {
                rebuilt[cols[idx]] = vals[idx];
            }
            assert_eq!(&rebuilt[..], &flat[i * 16..(i + 1) * 16]);
        }
    }

    #[test]
    fn pure_affinity_routing_is_natively_sparse() {
        // κ = 1: no uniform leak, each row holds at most the core +
        // domain permutation successors.
        let m = AffinityModelSpec::new(3, 64).with_affinity(1.0).build();
        let (row_ptr, cols, _) = m.transition_sparse(0, 0);
        assert!(cols.len() <= 64 * 4, "nnz {} not sparse", cols.len());
        for i in 0..64 {
            let nnz = row_ptr[i + 1] - row_ptr[i];
            assert!((1..=4).contains(&nnz), "row {i} has {nnz} cells");
        }
        // With leak, every cell is alive.
        let leaky = AffinityModelSpec::new(3, 64).with_affinity(0.9).build();
        assert_eq!(leaky.transition_nnz(0, 0), 64 * 64);
    }

    #[test]
    fn paths_have_one_expert_per_layer() {
        let m = model(8, 12, 0.8);
        let mut rng = StdRng::seed_from_u64(1);
        let p = m.sample_path(&mut rng, 0);
        assert_eq!(p.len(), 12);
        assert!(p.iter().all(|&e| (e as usize) < 8));
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let m = model(8, 12, 0.8);
        let p1 = m.sample_path(&mut StdRng::seed_from_u64(9), 1);
        let p2 = m.sample_path(&mut StdRng::seed_from_u64(9), 1);
        assert_eq!(p1, p2);
    }

    #[test]
    fn marginal_stays_balanced() {
        // With doubly stochastic transitions and a uniform start, every
        // layer's expert distribution is near-uniform over many samples.
        let m = model(8, 6, 0.9);
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = vec![vec![0usize; 8]; 6];
        let n = 8000;
        for _ in 0..n {
            let d = rng.gen_range(0..m.n_domains());
            for (layer, &e) in m.sample_path(&mut rng, d).iter().enumerate() {
                counts[layer][e as usize] += 1;
            }
        }
        for (layer, layer_counts) in counts.iter().enumerate() {
            for &c in layer_counts {
                let share = c as f64 / n as f64;
                assert!((share - 0.125).abs() < 0.04, "layer {layer} share {share}");
            }
        }
    }

    #[test]
    fn empirical_transitions_match_exact() {
        let m = model(4, 2, 0.8);
        let mut rng = StdRng::seed_from_u64(11);
        let n = 60_000;
        let mut joint = [0usize; 16];
        let mut first = [0usize; 4];
        for _ in 0..n {
            let p = m.sample_path(&mut rng, 0);
            joint[p[0] as usize * 4 + p[1] as usize] += 1;
            first[p[0] as usize] += 1;
        }
        let t = m.transition(0, 0);
        for i in 0..4 {
            for j in 0..4 {
                let emp = joint[i * 4 + j] as f64 / first[i] as f64;
                assert!(
                    (emp - t[i * 4 + j]).abs() < 0.02,
                    "P({j}|{i}) empirical {emp} vs exact {}",
                    t[i * 4 + j]
                );
            }
        }
    }

    #[test]
    fn top2_routes_have_distinct_experts() {
        let m = model(8, 6, 0.8);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let route = m.sample_route(&mut rng, 0, 2);
            for layer in route {
                assert_eq!(layer.len(), 2);
                assert_ne!(layer[0], layer[1]);
            }
        }
    }

    #[test]
    fn active_restriction_confines_routing() {
        let mut m = model(8, 6, 0.8);
        m.set_active_experts(Some(vec![1, 4]));
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let p = m.sample_path(&mut rng, 0);
            assert!(p.iter().all(|&e| e == 1 || e == 4));
        }
        m.set_active_experts(None);
        let p = m.sample_path(&mut rng, 0);
        assert_eq!(p.len(), 6);
    }

    #[test]
    fn domains_share_core_structure() {
        // With domain_share=1.0 all domains have identical transitions.
        let m = AffinityModelSpec::new(4, 8).with_domains(3, 1.0).build();
        let t0 = m.transition(0, 0).to_vec();
        for d in 1..3 {
            assert_eq!(m.transition(d, 0), &t0[..]);
        }
        // With domain_share=0.0 they differ.
        let m2 = AffinityModelSpec::new(4, 8).with_domains(3, 0.0).build();
        assert_ne!(m2.transition(0, 0), m2.transition(1, 0));
    }

    #[test]
    fn mixture_transition_interpolates() {
        let m = model(4, 3, 0.6);
        let pure = m.mixture_transition(&[1.0, 0.0, 0.0, 0.0], 0);
        assert_eq!(&pure[..], m.transition(0, 0));
        let blend = m.mixture_transition(&[1.0, 1.0, 1.0, 1.0], 0);
        let s: f64 = blend[..4].iter().sum();
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn interpolation_endpoints_and_stochasticity() {
        let a = model(8, 4, 0.9);
        let b = AffinityModelSpec::new(4, 8)
            .with_affinity(0.9)
            .with_seed(0xd1f7)
            .build();
        let at0 = a.interpolate(&b, 0.0);
        let at1 = a.interpolate(&b, 1.0);
        assert_eq!(at0.transition(0, 0), a.transition(0, 0));
        assert_eq!(at1.transition(0, 0), b.transition(0, 0));
        let mid = a.interpolate(&b, 0.5);
        for gap in 0..3 {
            let t = mid.transition(0, gap);
            for row in 0..8 {
                let s: f64 = t[row * 8..(row + 1) * 8].iter().sum();
                assert!((s - 1.0).abs() < 1e-9, "row {row} sums to {s}");
            }
            // Doubly stochastic too: columns also sum to 1.
            for col in 0..8 {
                let s: f64 = (0..8).map(|r| t[r * 8 + col]).sum();
                assert!((s - 1.0).abs() < 1e-9, "col {col} sums to {s}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "alpha must be in [0,1]")]
    fn interpolation_rejects_bad_alpha() {
        let a = model(8, 4, 0.9);
        let _ = a.interpolate(&a, 1.5);
    }

    #[test]
    fn single_layer_model_has_no_transitions() {
        let m = model(8, 1, 0.5);
        let mut rng = StdRng::seed_from_u64(2);
        let p = m.sample_path(&mut rng, 0);
        assert_eq!(p.len(), 1);
    }
}
