//! Minimal dense linear algebra: just enough real math for expert FFNs.
//!
//! The engine runs *genuine* matrix products on token activations (at the
//! reduced `sim_dim`), parallelized with rayon as the hpc-parallel guides
//! prescribe, while FLOP/byte *accounting* uses the true model dimensions
//! from [`crate::config::ModelConfig`].

use rand::distributions::{Distribution, Uniform};
use rand::Rng;
use rayon::prelude::*;

/// A row-major `rows x cols` matrix of `f32`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// A zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a flat row-major buffer.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length mismatch");
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix { rows, cols, data }
    }

    /// Xavier-uniform random init, deterministic under the supplied RNG.
    pub fn random<R: Rng>(rows: usize, cols: usize, rng: &mut R) -> Self {
        let bound = (6.0 / (rows + cols) as f32).sqrt();
        let dist = Uniform::new_inclusive(-bound, bound);
        let data = (0..rows * cols).map(|_| dist.sample(rng)).collect();
        Matrix::from_vec(rows, cols, data)
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// One row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The flat row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Matrix product `self * other`, rows parallelized with rayon.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = vec![0.0f32; self.rows * other.cols];
        out.par_chunks_mut(other.cols)
            .enumerate()
            .for_each(|(i, out_row)| {
                let a_row = self.row(i);
                // k-outer loop keeps the inner loop contiguous over `other`'s
                // rows: sequential access on both sides, auto-vectorizable.
                for (k, &a) in a_row.iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    let b_row = other.row(k);
                    for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                        *o += a * b;
                    }
                }
            });
        Matrix::from_vec(self.rows, other.cols, out)
    }

    /// Apply GELU (tanh approximation) element-wise, in place.
    pub fn gelu_inplace(&mut self) {
        const SQRT_2_OVER_PI: f32 = 0.797_884_6;
        self.data.par_iter_mut().for_each(|x| {
            let v = *x;
            *x = 0.5 * v * (1.0 + (SQRT_2_OVER_PI * (v + 0.044_715 * v * v * v)).tanh());
        });
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        // Sequential, index-ordered accumulation (detlint D004): the shim
        // `par_iter` is ordered today, but a real rayon would make
        // `par_iter().sum()` accumulate in nondeterministic order.
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }
}

/// Row-wise softmax of a slice, returned as a fresh `Vec`.
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.iter().map(|&l| (l - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matmul_identity() {
        let mut eye = Matrix::zeros(3, 3);
        for i in 0..3 {
            eye.set(i, i, 1.0);
        }
        let m = Matrix::from_vec(3, 3, (0..9).map(|i| i as f32).collect());
        assert_eq!(m.matmul(&eye), m);
        assert_eq!(eye.matmul(&m), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn matmul_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn gelu_fixed_points() {
        let mut m = Matrix::from_vec(1, 3, vec![0.0, 10.0, -10.0]);
        m.gelu_inplace();
        assert_eq!(m.get(0, 0), 0.0);
        assert!((m.get(0, 1) - 10.0).abs() < 1e-3); // gelu(x) -> x for large x
        assert!(m.get(0, 2).abs() < 1e-3); // gelu(x) -> 0 for very negative x
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let a = Matrix::random(4, 4, &mut StdRng::seed_from_u64(7));
        let b = Matrix::random(4, 4, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
        let c = Matrix::random(4, 4, &mut StdRng::seed_from_u64(8));
        assert_ne!(a, c);
    }

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = softmax(&[1.0, 2.0, 3.0]);
        let b = softmax(&[101.0, 102.0, 103.0]);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn norm_of_unit_row() {
        let m = Matrix::from_vec(1, 4, vec![0.5, 0.5, 0.5, 0.5]);
        assert!((m.norm() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn parallel_matmul_matches_serial_reference() {
        let mut rng = StdRng::seed_from_u64(42);
        let a = Matrix::random(17, 13, &mut rng);
        let b = Matrix::random(13, 11, &mut rng);
        let c = a.matmul(&b);
        // Naive reference.
        for i in 0..17 {
            for j in 0..11 {
                let mut acc = 0.0f32;
                for k in 0..13 {
                    acc += a.get(i, k) * b.get(k, j);
                }
                assert!((c.get(i, j) - acc).abs() < 1e-4);
            }
        }
    }
}
