//! Property-based tests for the model substrate.

use exflow_model::routing::AffinityModelSpec;
use exflow_model::tensor::{softmax, Matrix};
use exflow_model::training::TrainingSimulator;
use exflow_model::{CorpusSpec, TokenBatch};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn transitions_always_row_stochastic(
        e in 2usize..32,
        l in 2usize..8,
        kappa in 0.0f64..1.0,
        seed in 0u64..1000,
    ) {
        let m = AffinityModelSpec::new(l, e)
            .with_affinity(kappa)
            .with_seed(seed)
            .build();
        for d in 0..m.n_domains() {
            for gap in 0..l - 1 {
                let t = m.transition(d, gap);
                for row in 0..e {
                    let s: f64 = t[row * e..(row + 1) * e].iter().sum();
                    prop_assert!((s - 1.0).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn transitions_always_doubly_stochastic(
        e in 2usize..24,
        kappa in 0.0f64..1.0,
        seed in 0u64..1000,
    ) {
        let m = AffinityModelSpec::new(3, e)
            .with_affinity(kappa)
            .with_seed(seed)
            .build();
        let t = m.transition(0, 0);
        for col in 0..e {
            let s: f64 = (0..e).map(|r| t[r * e + col]).sum();
            prop_assert!((s - 1.0).abs() < 1e-9, "col {} sum {}", col, s);
        }
    }

    #[test]
    fn paths_stay_in_range(
        e in 1usize..16,
        l in 1usize..10,
        seed in 0u64..100,
    ) {
        let m = AffinityModelSpec::new(l, e).build();
        let mut rng = StdRng::seed_from_u64(seed);
        let p = m.sample_path(&mut rng, seed as usize % m.n_domains());
        prop_assert_eq!(p.len(), l);
        prop_assert!(p.iter().all(|&x| (x as usize) < e));
    }

    #[test]
    fn batch_sharding_conserves_tokens(
        n in 1usize..200,
        shards in 1usize..8,
    ) {
        let m = AffinityModelSpec::new(4, 8).build();
        let b = TokenBatch::sample(&m, &CorpusSpec::pile_proxy(4), n, 1, 0);
        let parts = b.shard(shards);
        prop_assert_eq!(parts.iter().map(|p| p.len()).sum::<usize>(), n);
        let max = parts.iter().map(|p| p.len()).max().unwrap();
        let min = parts.iter().map(|p| p.len()).min().unwrap();
        prop_assert!(max - min <= 1, "round-robin must balance within 1");
    }

    #[test]
    fn training_active_count_monotone_and_bounded(
        e in 1usize..64,
        it_a in 0u64..3000,
        it_b in 0u64..3000,
    ) {
        let sim = TrainingSimulator::new(AffinityModelSpec::new(4, e));
        let (lo, hi) = if it_a <= it_b { (it_a, it_b) } else { (it_b, it_a) };
        let ca = sim.active_count_at(lo);
        let cb = sim.active_count_at(hi);
        prop_assert!(ca <= cb);
        prop_assert!((1..=e).contains(&ca));
        prop_assert!((1..=e).contains(&cb));
    }

    #[test]
    fn training_kappa_monotone(it_a in 0u64..20_000, it_b in 0u64..20_000) {
        let sim = TrainingSimulator::new(AffinityModelSpec::new(4, 8));
        let (lo, hi) = if it_a <= it_b { (it_a, it_b) } else { (it_b, it_a) };
        prop_assert!(sim.kappa_at(lo) <= sim.kappa_at(hi) + 1e-12);
    }

    #[test]
    fn softmax_is_a_distribution(logits in proptest::collection::vec(-20.0f32..20.0, 1..32)) {
        let p = softmax(&logits);
        let sum: f32 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn matmul_distributes_over_addition(seed in 0u64..50) {
        // (A + B) * C == A*C + B*C within fp tolerance.
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::random(6, 5, &mut rng);
        let b = Matrix::random(6, 5, &mut rng);
        let c = Matrix::random(5, 4, &mut rng);
        let mut ab = Matrix::zeros(6, 5);
        for r in 0..6 {
            for k in 0..5 {
                ab.set(r, k, a.get(r, k) + b.get(r, k));
            }
        }
        let lhs = ab.matmul(&c);
        let ac = a.matmul(&c);
        let bc = b.matmul(&c);
        for r in 0..6 {
            for k in 0..4 {
                prop_assert!((lhs.get(r, k) - (ac.get(r, k) + bc.get(r, k))).abs() < 1e-4);
            }
        }
    }
}
