//! Fig. 10 — end-to-end inference throughput of the seven Table II model
//! variants across expert-parallel sizes, for the three systems
//! (DeepSpeed, ExFlow without affinity, full ExFlow). Normalized to the
//! DeepSpeed baseline per configuration, as the paper plots.

use exflow_core::ParallelismMode;
use exflow_model::presets::{moe_gpt_m, moe_gpt_m_32e_32l, moe_gpt_m_32e_40l, moe_gpt_xl_16e};
use exflow_model::ModelConfig;

use crate::experiments::common::{engine_for, run_offline, with_layers};
use crate::fmt::{render_table, speedup};
use crate::Scale;

/// One (model, GPU count) group of normalized throughputs.
#[derive(Debug, Clone)]
pub struct Row {
    /// Model name.
    pub model: String,
    /// Expert-parallel GPU count.
    pub gpus: usize,
    /// DeepSpeed throughput, normalized to itself (= 1.0).
    pub deepspeed: f64,
    /// ExFlow without affinity, relative.
    pub exflow_no_affinity: f64,
    /// Full ExFlow, relative.
    pub exflow_affinity: f64,
}

fn scenarios(scale: Scale) -> Vec<(ModelConfig, Vec<usize>)> {
    let l = |m: ModelConfig, full: usize| with_layers(m, scale.pick(6, full));
    match scale {
        Scale::Quick => vec![
            (l(moe_gpt_m(8), 24), vec![4, 8]),
            (l(moe_gpt_m(16), 24), vec![8]),
        ],
        Scale::Full => vec![
            (l(moe_gpt_m(8), 24), vec![4, 8]),
            (l(moe_gpt_m(16), 24), vec![4, 8, 16]),
            (l(moe_gpt_m(32), 24), vec![8, 16, 32]),
            (l(moe_gpt_m(64), 24), vec![8, 16, 32, 64]),
            (l(moe_gpt_m_32e_32l(), 32), vec![8, 16, 32]),
            (l(moe_gpt_m_32e_40l(), 40), vec![8, 16, 32]),
            (l(moe_gpt_xl_16e(), 24), vec![4, 8, 16]),
        ],
    }
}

/// Regenerate the throughput sweep.
pub fn run(scale: Scale) -> Vec<Row> {
    let mut rows = Vec::new();
    for (model, gpu_counts) in scenarios(scale) {
        for gpus in gpu_counts {
            let engine = engine_for(model.clone(), gpus, scale);
            let ds = run_offline(&engine, ParallelismMode::Vanilla).throughput();
            let cc = run_offline(&engine, ParallelismMode::ContextCoherent).throughput();
            let aff = run_offline(&engine, ParallelismMode::ContextCoherentAffinity).throughput();
            rows.push(Row {
                model: model.name.clone(),
                gpus,
                deepspeed: 1.0,
                exflow_no_affinity: cc / ds,
                exflow_affinity: aff / ds,
            });
        }
    }
    rows
}

/// Print the series.
pub fn print(scale: Scale) {
    println!("Fig 10: end-to-end inference throughput (DeepSpeed = 1.0)\n");
    let rows: Vec<Vec<String>> = run(scale)
        .iter()
        .map(|r| {
            vec![
                r.model.clone(),
                r.gpus.to_string(),
                speedup(r.deepspeed),
                speedup(r.exflow_no_affinity),
                speedup(r.exflow_affinity),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["model", "gpus", "deepspeed", "exflow-no-aff", "exflow-aff"],
            &rows
        )
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exflow_beats_deepspeed_everywhere() {
        for r in run(Scale::Quick) {
            assert!(
                r.exflow_affinity > 1.0,
                "{} on {} GPUs: full ExFlow at {}",
                r.model,
                r.gpus,
                r.exflow_affinity
            );
        }
    }

    #[test]
    fn affinity_adds_on_top_of_context_coherence() {
        for r in run(Scale::Quick) {
            assert!(
                r.exflow_affinity >= r.exflow_no_affinity - 0.02,
                "{} on {} GPUs: affinity {} below no-affinity {}",
                r.model,
                r.gpus,
                r.exflow_affinity,
                r.exflow_no_affinity
            );
        }
    }

    #[test]
    fn multi_node_gains_exceed_intra_node_gains() {
        // Paper: gains are small on 1 node (NVLink Alltoall is cheap) and
        // large once inter-node links dominate.
        let rows = run(Scale::Quick);
        let single = rows.iter().find(|r| r.gpus == 4).unwrap();
        let multi = rows.iter().find(|r| r.gpus == 8).unwrap();
        assert!(
            multi.exflow_affinity > single.exflow_affinity,
            "multi-node {} should gain more than single-node {}",
            multi.exflow_affinity,
            single.exflow_affinity
        );
    }
}
