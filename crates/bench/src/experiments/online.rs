//! `table_online` — the online serving mode under routing drift: static
//! incumbent placement vs from-scratch oracle re-solves vs byte-budgeted
//! incremental re-placement, on the drift presets of
//! `exflow_model::drift`.
//!
//! This artifact goes beyond the paper (whose placements are computed
//! once, offline) and quantifies the claim that makes ExFlow the natural
//! candidate for online adaptation: because placements need no
//! retraining, re-optimizing them against a streaming affinity estimate
//! recovers most of a full re-solve's cross-traffic reduction while
//! migrating a bounded number of expert weights.

use crate::fmt::{pct, render_table};
use crate::summary::{online_table, OnlineBenchRow};
use crate::Scale;

/// Regenerate the table rows (delegates to the `bench_summary` sweep so
/// the printed numbers are exactly the gated ones).
pub fn run(scale: Scale) -> Vec<OnlineBenchRow> {
    online_table(scale, 4, 20_240_522).expect("online sweep invariance must hold")
}

/// Print the table.
pub fn print(scale: Scale) {
    println!("table_online: re-placement policies under routing drift");
    println!("(cross = realized cross-GPU layer transitions, lower is better;");
    println!(" recovery = share of the oracle's reduction the budgeted policy keeps)\n");
    let rows = run(scale);
    let headers = vec![
        "scenario",
        "windows",
        "static",
        "oracle",
        "budgeted",
        "recovery",
        "migrated",
        "budget/replan",
    ];
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scenario.clone(),
                r.windows.to_string(),
                r.static_cross.to_string(),
                r.oracle_cross.to_string(),
                r.budgeted_cross.to_string(),
                pct(r.recovery()),
                format!("{} MiB", r.migrated_bytes >> 20),
                format!("{} MiB", r.budget_bytes >> 20),
            ]
        })
        .collect();
    println!("{}", render_table(&headers, &body));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgeted_policy_recovers_most_of_the_oracle_reduction() {
        let rows = run(Scale::Quick);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(
                r.static_cross > r.oracle_cross && r.static_cross > r.budgeted_cross,
                "{}: drift must penalize the static incumbent",
                r.scenario
            );
            assert!(r.recovery() >= 0.8, "{}: {:.3}", r.scenario, r.recovery());
            assert!(r.migrated_bytes <= r.budget_bytes * r.replans as u64);
        }
    }
}
