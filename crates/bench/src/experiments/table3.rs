//! Table III — consistency of expert affinity on out-of-distribution
//! corpora: profile the placement on the Pile proxy, serve C4/Dolma/Yelp
//! proxies, and compare the locality achieved against a placement profiled
//! on the serving corpus itself (row-normalized, 1.0 = perfect transfer).

use exflow_core::{InferenceEngine, ParallelismMode};
use exflow_model::presets::moe_gpt_m;
use exflow_model::CorpusSpec;
use exflow_topology::ClusterSpec;

use crate::experiments::common::{run_offline, with_layers};
use crate::fmt::{f3, render_table};
use crate::Scale;

/// One serving-corpus column of Table III.
#[derive(Debug, Clone)]
pub struct Column {
    /// Corpus name.
    pub corpus: String,
    /// Intra-GPU locality with the Pile-profiled placement, normalized by
    /// the self-profiled locality.
    pub intra_gpu: f64,
    /// Intra-node locality, equally normalized.
    pub intra_node: f64,
}

fn engine_with_corpus(corpus: CorpusSpec, scale: Scale) -> InferenceEngine {
    let model = with_layers(moe_gpt_m(32), scale.pick(6, 12));
    InferenceEngine::builder(model, ClusterSpec::new(2, 4).unwrap())
        .requests_per_gpu(scale.pick(4, 8))
        .prompt_len(8)
        .n_iterations(scale.pick(2, 6))
        .profile_tokens(scale.pick(1500, 4000))
        .placement_restarts(scale.pick(0, 1))
        .seed(20_240_402)
        .corpus(corpus)
        .build()
}

/// Regenerate Table III on a GPT-350M MoE-32 proxy over 2 nodes x 4 GPUs.
pub fn run(scale: Scale) -> Vec<Column> {
    let n_domains = 4;
    let pile_engine = engine_with_corpus(CorpusSpec::pile_proxy(n_domains), scale);
    let pile_placement = pile_engine
        .placement_for(ParallelismMode::ContextCoherentAffinity)
        .clone();

    CorpusSpec::table3(n_domains)
        .into_iter()
        .map(|corpus| {
            let name = corpus.name.clone();
            // Engine serving this corpus, but *placed* from the Pile.
            let engine = engine_with_corpus(corpus, scale);
            let transferred = engine
                .run_with_placement(ParallelismMode::ContextCoherentAffinity, &pile_placement);
            // Reference: the corpus profiled on itself.
            let self_profiled = run_offline(&engine, ParallelismMode::ContextCoherentAffinity);
            Column {
                corpus: name,
                intra_gpu: transferred.dispatch.gpu_local_fraction()
                    / self_profiled.dispatch.gpu_local_fraction(),
                intra_node: transferred.dispatch.node_local_fraction()
                    / self_profiled.dispatch.node_local_fraction(),
            }
        })
        .collect()
}

/// Print the table.
pub fn print(scale: Scale) {
    println!("Table III: affinity transfer to out-of-distribution corpora");
    println!("(locality with Pile-profiled placement / self-profiled, 1.0 = perfect)\n");
    let cols = run(scale);
    let headers: Vec<&str> = std::iter::once("metric")
        .chain(cols.iter().map(|c| c.corpus.as_str()))
        .collect();
    let rows = vec![
        std::iter::once("Intra-GPU".to_string())
            .chain(cols.iter().map(|c| f3(c.intra_gpu)))
            .collect(),
        std::iter::once("Intra-Node".to_string())
            .chain(cols.iter().map(|c| f3(c.intra_node)))
            .collect(),
    ];
    println!("{}", render_table(&headers, &rows));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affinity_transfers_across_corpora() {
        let cols = run(Scale::Quick);
        assert_eq!(cols.len(), 4);
        // Pile itself is the identity comparison.
        assert!((cols[0].intra_gpu - 1.0).abs() < 1e-9);
        // OOD corpora retain nearly all the locality (paper: 0.989–1.005).
        for c in &cols[1..] {
            assert!(
                c.intra_gpu > 0.9,
                "{}: intra-GPU transfer {} too low",
                c.corpus,
                c.intra_gpu
            );
            assert!(
                c.intra_node > 0.9,
                "{}: intra-node transfer {} too low",
                c.corpus,
                c.intra_node
            );
        }
    }
}
