//! Fig. 9 — share of step time per operator (gating, Alltoall, attention,
//! expert FFN) in vanilla expert parallelism as node count grows: the
//! motivation chart showing inference becoming Alltoall-bound.

use exflow_core::ParallelismMode;
use exflow_model::presets::moe_gpt_m;

use crate::experiments::common::{engine_for, run_offline, with_layers};
use crate::fmt::{pct, render_table};
use crate::Scale;

/// One node-count breakdown.
#[derive(Debug, Clone)]
pub struct Row {
    /// Number of 4-GPU nodes.
    pub nodes: usize,
    /// Share of gating time.
    pub gating: f64,
    /// Share of Alltoall time (the paper's annotation).
    pub alltoall: f64,
    /// Share of attention time.
    pub attention: f64,
    /// Share of expert FFN time.
    pub expert_ffn: f64,
}

/// Regenerate the sweep (vanilla mode, MoE-32).
pub fn run(scale: Scale) -> Vec<Row> {
    let node_counts: Vec<usize> = scale.pick(vec![1, 2], vec![1, 2, 4, 8]);
    let model = with_layers(moe_gpt_m(32), scale.pick(6, 24));
    node_counts
        .into_iter()
        .map(|nodes| {
            let engine = engine_for(model.clone(), nodes * 4, scale);
            let report = run_offline(&engine, ParallelismMode::Vanilla);
            let b = report.breakdown;
            let total = b.gating + b.alltoall + b.attention + b.expert_ffn;
            Row {
                nodes,
                gating: b.gating / total,
                alltoall: b.alltoall / total,
                attention: b.attention / total,
                expert_ffn: b.expert_ffn / total,
            }
        })
        .collect()
}

/// Print the series.
pub fn print(scale: Scale) {
    println!("Fig 9: operator share of step time (vanilla expert parallelism, MoE-32)\n");
    let rows: Vec<Vec<String>> = run(scale)
        .iter()
        .map(|r| {
            vec![
                r.nodes.to_string(),
                pct(r.gating),
                pct(r.alltoall),
                pct(r.attention),
                pct(r.expert_ffn),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["nodes", "gating", "alltoall", "attention", "expert-ffn"],
            &rows
        )
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_to_one() {
        for r in run(Scale::Quick) {
            let s = r.gating + r.alltoall + r.attention + r.expert_ffn;
            assert!(
                (s - 1.0).abs() < 1e-9,
                "{} nodes: shares sum {}",
                r.nodes,
                s
            );
        }
    }

    #[test]
    fn alltoall_share_grows_with_nodes() {
        // Paper: 15% at 1 node surging to 63% at 2 nodes, 76% at 8.
        let rows = run(Scale::Quick);
        assert!(rows.len() >= 2);
        assert!(
            rows[1].alltoall > rows[0].alltoall,
            "alltoall share should grow: {} -> {}",
            rows[0].alltoall,
            rows[1].alltoall
        );
    }

    #[test]
    fn single_node_is_compute_dominated() {
        let rows = run(Scale::Quick);
        assert!(
            rows[0].alltoall < 0.5,
            "1 node: alltoall share {} should not dominate",
            rows[0].alltoall
        );
    }

    #[test]
    fn gating_is_negligible() {
        for r in run(Scale::Quick) {
            assert!(r.gating < 0.05);
        }
    }
}
