//! Fig. 2 — heatmaps of inter-layer expert routing preference on the
//! 12-layer, 32-expert profiling model, plus the appendix Figs. 14–16
//! (affinity from a layer to *all* later layers).

use exflow_affinity::{metrics, AffinityMatrix, RoutingTrace};
use exflow_model::presets::heatmap_model;
use exflow_model::routing::AffinityModelSpec;
use exflow_model::{CorpusSpec, TokenBatch};

use crate::Scale;

/// One heatmap: the conditional matrix plus summary stats.
#[derive(Debug, Clone)]
pub struct Heatmap {
    /// Earlier layer.
    pub from_layer: usize,
    /// Later layer.
    pub to_layer: usize,
    /// The estimated conditional matrix.
    pub matrix: AffinityMatrix,
    /// Mean top-1 conditional mass (row "redness").
    pub top1_mass: f64,
    /// Normalized affinity score at k=3.
    pub score: f64,
}

fn profile_trace(scale: Scale) -> RoutingTrace {
    let model = heatmap_model();
    let spec = AffinityModelSpec::new(model.n_layers, model.n_experts);
    let routing = spec.build();
    let batch = TokenBatch::sample(
        &routing,
        &CorpusSpec::pile_proxy(spec.n_domains),
        scale.pick(3000, 20_000),
        1,
        31,
    );
    RoutingTrace::from_batch(&batch, model.n_experts)
}

/// The four consecutive-layer pairs Fig. 2 shows (paper labels layers
/// 1-based: "layer 0 and 1", ..., "layer 11 and 12").
pub fn run(scale: Scale) -> Vec<Heatmap> {
    let trace = profile_trace(scale);
    [(0usize, 1usize), (3, 4), (7, 8), (10, 11)]
        .into_iter()
        .map(|(a, b)| {
            let matrix = AffinityMatrix::from_trace(&trace, a, b);
            Heatmap {
                from_layer: a,
                to_layer: b,
                top1_mass: metrics::mean_top1_mass(&matrix),
                score: metrics::affinity_score(&matrix, 3),
                matrix,
            }
        })
        .collect()
}

/// Appendix Figs. 14–16: affinity from layers {0,3,7,10} to all later
/// layers, summarized by top-1 mass per gap.
pub fn run_gaps(scale: Scale) -> Vec<(usize, Vec<(usize, f64)>)> {
    let trace = profile_trace(scale);
    [0usize, 3, 7, 10]
        .into_iter()
        .map(|from| {
            let series = (from + 1..trace.n_layers())
                .map(|to| {
                    let m = AffinityMatrix::from_trace(&trace, from, to);
                    (to, metrics::mean_top1_mass(&m))
                })
                .collect();
            (from, series)
        })
        .collect()
}

/// Print the heatmaps (ASCII) and their summary stats.
pub fn print(scale: Scale) {
    println!("Fig 2: inter-layer expert affinity heatmaps (32 experts, 12 layers)");
    println!("shade scale: ' ' < '.' < ':' < '+' < '#' < '@' (vs uniform)\n");
    for h in run(scale) {
        println!(
            "Layer {} -> Layer {}   mean top-1 mass {:.3}, affinity score {:.3}",
            h.from_layer, h.to_layer, h.top1_mass, h.score
        );
        println!("{}", h.matrix.ascii_heatmap());
    }
}

/// Print the appendix gap study.
pub fn print_gaps(scale: Scale) {
    println!("Figs 14-16: affinity from layer j to all later layers (mean top-1 mass)\n");
    for (from, series) in run_gaps(scale) {
        print!("layer {from:2} ->");
        for (to, mass) in series {
            print!("  L{to}:{mass:.2}");
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_show_sparse_affinity() {
        // "For each row, we can observe only a few columns are red."
        for h in run(Scale::Quick) {
            assert!(
                h.top1_mass > 3.0 / 32.0,
                "layer {}->{} top-1 mass {} is no better than uniform",
                h.from_layer,
                h.to_layer,
                h.top1_mass
            );
            assert!(h.score > 0.3, "affinity score {} too weak", h.score);
        }
    }

    #[test]
    fn four_pairs_match_figure() {
        let maps = run(Scale::Quick);
        let pairs: Vec<(usize, usize)> = maps.iter().map(|h| (h.from_layer, h.to_layer)).collect();
        assert_eq!(pairs, vec![(0, 1), (3, 4), (7, 8), (10, 11)]);
    }

    #[test]
    fn affinity_decays_with_gap() {
        // Consecutive layers are the most predictive; far layers decay
        // toward uniform (what the appendix heatmaps show).
        for (_, series) in run_gaps(Scale::Quick) {
            if series.len() >= 3 {
                let first = series.first().unwrap().1;
                let last = series.last().unwrap().1;
                assert!(
                    first > last,
                    "gap-1 mass {first} should exceed max-gap mass {last}"
                );
            }
        }
    }
}
