//! Table I — comparison of MoE optimization methods: topology awareness,
//! extra memory, forward communication volume (top-1 and top-2 gating),
//! inference applicability.
//!
//! The volume columns are the paper's closed forms evaluated with routing
//! fractions *measured* from engine runs: `p` from the round-robin
//! placement, `p*` from the affinity placement, and `p_topo` modeled as the
//! paper describes (topology-aware gating keeps a tuned fraction of tokens
//! local during training; we evaluate its formula at the same measured `p`
//! discounted by the locality FasterMoE reports, ~30%).

use exflow_core::commvolume::{System, VolumeParams};
use exflow_core::ParallelismMode;
use exflow_model::presets::moe_gpt_m;

use crate::experiments::common::{engine_for, run_offline, with_layers};
use crate::fmt::{f3, render_table};
use crate::Scale;

/// One Table I row.
#[derive(Debug, Clone)]
pub struct Row {
    /// System name.
    pub system: System,
    /// Routing fraction the system achieves (`p`, `p_topo`, or `p*`).
    pub routing_fraction: f64,
    /// Forward volume (token-units) under top-1 gating.
    pub volume_top1: f64,
    /// Forward volume under top-2 gating.
    pub volume_top2: f64,
}

/// Measured inputs plus the evaluated rows.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// Scenario dimensions.
    pub params: VolumeParams,
    /// Measured cross-GPU fraction with affinity-free placement.
    pub p: f64,
    /// Measured cross-GPU fraction with affinity placement.
    pub p_star: f64,
    /// The four rows.
    pub rows: Vec<Row>,
}

/// Regenerate Table I. The measurement scenario is MoE-GPT-M/16e on 8 GPUs
/// (2 nodes), the configuration where the paper reports its headline 2.2x.
pub fn run(scale: Scale) -> Table1 {
    // Table I's ExFlow advantage amortizes the AllGather term over the
    // layer count, so the measurement keeps the model's true 24 layers at
    // both scales (Quick trims the workload, not the model).
    let model = with_layers(moe_gpt_m(16), 24);
    let gpus = 8;
    let engine = engine_for(model.clone(), gpus, scale);

    let cc = run_offline(&engine, ParallelismMode::ContextCoherent);
    let aff = run_offline(&engine, ParallelismMode::ContextCoherentAffinity);
    let p = 1.0 - cc.dispatch.gpu_local_fraction();
    let p_star = 1.0 - aff.dispatch.gpu_local_fraction();
    // FasterMoE/TA-MoE report keeping roughly a third of the dispatch
    // local on their training clusters; the fraction is not transferable
    // to inference (Table I's point) but its magnitude is modeled here.
    let p_topo = p * 0.7;

    let params = VolumeParams {
        g: gpus,
        n: engine.config().requests_per_gpu,
        l: model.n_layers,
    };
    let rows = System::ALL
        .iter()
        .map(|&system| {
            let frac = match system {
                System::FasterMoe | System::TaMoe => p_topo,
                System::DeepspeedMoe => p,
                System::ExFlow => p_star,
            };
            Row {
                system,
                routing_fraction: frac,
                volume_top1: system.volume(params, frac, 1),
                volume_top2: system.volume(params, frac, 2),
            }
        })
        .collect();

    Table1 {
        params,
        p,
        p_star,
        rows,
    }
}

/// Print the table in the paper's layout.
pub fn print(scale: Scale) {
    let t = run(scale);
    println!(
        "Table I: forward communication volume (token-units), G={} N={} L={}",
        t.params.g, t.params.n, t.params.l
    );
    println!("measured p = {:.3}, p* = {:.3}\n", t.p, t.p_star);
    let rows: Vec<Vec<String>> = t
        .rows
        .iter()
        .map(|r| {
            vec![
                r.system.label().to_string(),
                if matches!(r.system, System::FasterMoe | System::TaMoe) {
                    "yes".into()
                } else {
                    "no".into()
                },
                if r.system.extra_memory() { "yes" } else { "no" }.into(),
                f3(r.routing_fraction),
                format!("{:.0}", r.volume_top1),
                format!("{:.0}", r.volume_top2),
                if r.system.applicable_in_inference() {
                    "yes"
                } else {
                    "no"
                }
                .into(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "system",
                "topo-aware",
                "extra-mem",
                "routing-frac",
                "comm@top1",
                "comm@top2",
                "inference-ok",
            ],
            &rows
        )
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exflow_achieves_smallest_volume() {
        let t = run(Scale::Quick);
        let by_system = |s: System| t.rows.iter().find(|r| r.system == s).unwrap().volume_top1;
        assert!(by_system(System::ExFlow) < by_system(System::DeepspeedMoe));
        assert!(by_system(System::ExFlow) < by_system(System::FasterMoe));
    }

    #[test]
    fn affinity_reduces_routing_fraction() {
        let t = run(Scale::Quick);
        assert!(
            t.p_star < t.p,
            "affinity p* {} should be below p {}",
            t.p_star,
            t.p
        );
        assert!(t.p > 0.0 && t.p <= 1.0);
    }

    #[test]
    fn top2_volumes_exceed_top1() {
        let t = run(Scale::Quick);
        for r in &t.rows {
            assert!(r.volume_top2 > r.volume_top1);
        }
    }
}
