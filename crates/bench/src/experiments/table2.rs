//! Table II — the model zoo used across the evaluation.

use exflow_model::presets::table2;
use exflow_model::ModelConfig;

use crate::fmt::render_table;
use crate::Scale;

/// The seven Table II configurations.
pub fn run(_scale: Scale) -> Vec<ModelConfig> {
    table2()
}

/// Print the model list with derived parameter counts.
pub fn print(scale: Scale) {
    println!("Table II: GPT MoE model zoo\n");
    let rows: Vec<Vec<String>> = run(scale)
        .iter()
        .map(|m| {
            vec![
                m.name.clone(),
                format!("{}M", m.base_params / 1_000_000),
                m.n_experts.to_string(),
                m.n_layers.to_string(),
                m.d_model.to_string(),
                format!("{:.1}B", m.total_params() as f64 / 1e9),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "model",
                "base",
                "experts",
                "layers",
                "d_model",
                "total-params"
            ],
            &rows
        )
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_rows() {
        let models = run(Scale::Quick);
        assert_eq!(models.len(), 7);
        // 350M base appears for the four expert-count variants.
        assert_eq!(
            models
                .iter()
                .filter(|m| m.base_params == 350_000_000)
                .count(),
            4
        );
        // Expert counts cover 8..64.
        let experts: Vec<usize> = models.iter().map(|m| m.n_experts).collect();
        for e in [8, 16, 32, 64] {
            assert!(experts.contains(&e));
        }
    }
}
