//! Fig. 8 — fraction of tokens whose next expert lives on their current
//! *node*, as the node count grows (MoE-64, 4 GPUs per node). The staged
//! placement prioritizes exactly this metric in stage 1.

use exflow_core::ParallelismMode;
use exflow_model::presets::moe_gpt_m;

use crate::experiments::common::{engine_for, run_offline, with_layers};
use crate::fmt::{pct, render_table};
use crate::Scale;

/// One node-count point.
#[derive(Debug, Clone)]
pub struct Row {
    /// Number of 4-GPU nodes.
    pub nodes: usize,
    /// Tokens staying node-local under the DeepSpeed placement.
    pub deepspeed_local: f64,
    /// Tokens staying node-local under the staged affinity placement.
    pub affinity_local: f64,
    /// Relative reduction in inter-node token traffic.
    pub internode_reduction: f64,
}

/// Regenerate the node sweep.
pub fn run(scale: Scale) -> Vec<Row> {
    let node_counts: Vec<usize> = scale.pick(vec![1, 2], vec![1, 2, 4, 8, 16]);
    let model = with_layers(moe_gpt_m(64), scale.pick(6, 24));
    node_counts
        .into_iter()
        .map(|nodes| {
            let gpus = nodes * 4;
            let engine = engine_for(model.clone(), gpus, scale);
            let base = run_offline(&engine, ParallelismMode::ContextCoherent);
            let aff = run_offline(&engine, ParallelismMode::ContextCoherentAffinity);
            let base_cross = 1.0 - base.dispatch.node_local_fraction();
            let aff_cross = 1.0 - aff.dispatch.node_local_fraction();
            Row {
                nodes,
                deepspeed_local: base.dispatch.node_local_fraction(),
                affinity_local: aff.dispatch.node_local_fraction(),
                internode_reduction: if base_cross == 0.0 {
                    0.0
                } else {
                    1.0 - aff_cross / base_cross
                },
            }
        })
        .collect()
}

/// Print the series.
pub fn print(scale: Scale) {
    println!("Fig 8: tokens staying on the same node (MoE-64, 4 GPUs/node)\n");
    let rows: Vec<Vec<String>> = run(scale)
        .iter()
        .map(|r| {
            vec![
                r.nodes.to_string(),
                pct(r.deepspeed_local),
                pct(r.affinity_local),
                pct(r.internode_reduction),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "nodes",
                "deepspeed-node-local",
                "affinity-node-local",
                "inter-node-reduction"
            ],
            &rows
        )
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_node_is_fully_node_local() {
        let rows = run(Scale::Quick);
        assert_eq!(rows[0].nodes, 1);
        assert!((rows[0].deepspeed_local - 1.0).abs() < 1e-9);
        assert!((rows[0].affinity_local - 1.0).abs() < 1e-9);
    }

    #[test]
    fn staged_affinity_keeps_tokens_on_node() {
        // Paper: "tokens are on average 2x more likely to stay within the
        // same node". Require a clear improvement on multi-node runs.
        for r in run(Scale::Quick).iter().skip(1) {
            assert!(
                r.affinity_local > r.deepspeed_local * 1.3,
                "{} nodes: affinity {} vs deepspeed {}",
                r.nodes,
                r.affinity_local,
                r.deepspeed_local
            );
            assert!(r.internode_reduction > 0.1);
        }
    }
}
