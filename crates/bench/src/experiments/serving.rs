//! `table_serving` — the request-level serving front-end: p50/p95/p99
//! request latency, goodput, and re-placement activity for the static
//! incumbent vs budgeted-online vs replication-aware placements, under
//! three arrival processes (Poisson, diurnal, flash-crowd).
//!
//! This is the tail-latency counterpart of `table_online`: the offline
//! tables show how much *step time* affinity placement saves; this table
//! shows what that buys (or costs, once migration stalls are priced in)
//! at the *request* level, where queueing near saturation amplifies
//! per-step differences into p99 gaps. The budgeted-online policy spends
//! the full migration-byte budget on owner moves; the replication-aware
//! policy gets half the migration bytes plus a per-GPU replica-memory
//! budget, and its joint solve decides whether replica fan-out (which
//! costs `n_units - 1` payloads per replica) ever beats direct moves on
//! these slow inter-node links.

use crate::fmt::{render_table, speedup};
use crate::summary::{serving_table, ServingBenchRow};
use crate::Scale;

/// Regenerate the table rows (delegates to the `bench_summary` sweep so
/// the printed numbers are exactly the gated ones).
pub fn run(scale: Scale) -> Vec<ServingBenchRow> {
    serving_table(scale, 4, 20_240_522).expect("serving sweep invariance must hold")
}

/// Virtual seconds rendered as microseconds.
fn us(v: f64) -> String {
    format!("{:.1}", v * 1e6)
}

/// Requests per virtual second, rendered compactly.
fn rps(v: f64) -> String {
    format!("{v:.0}")
}

/// Print the table.
pub fn print(scale: Scale) {
    println!("table_serving: request-level tail latency under non-stationary arrivals");
    println!("(latencies in virtual microseconds; goodput in completed requests per");
    println!(" virtual second; `x static` = static p99 over this policy's p99, > 1.00");
    println!(" exactly when adaptive re-placement protects the tail; online spends the");
    println!(" full migration-byte budget, repl gets half the bytes plus replica memory)\n");
    let rows = run(scale);
    let headers = vec![
        "arrival", "policy", "p50 us", "p95 us", "p99 us", "x static", "goodput", "replans",
    ];
    let mut body: Vec<Vec<String>> = Vec::new();
    for r in &rows {
        let policies = [
            (
                "static",
                r.static_p50,
                r.static_p95,
                r.static_p99,
                r.static_goodput,
                0,
            ),
            (
                "online",
                r.online_p50,
                r.online_p95,
                r.online_p99,
                r.online_goodput,
                r.online_replans,
            ),
            (
                "repl",
                r.repl_p50,
                r.repl_p95,
                r.repl_p99,
                r.repl_goodput,
                r.online_replans,
            ),
        ];
        for (name, p50, p95, p99, goodput, replans) in policies {
            body.push(vec![
                r.arrival.clone(),
                name.to_string(),
                us(p50),
                us(p95),
                us(p99),
                speedup(r.p99_speedup(p99)),
                rps(goodput),
                replans.to_string(),
            ]);
        }
    }
    println!("{}", render_table(&headers, &body));
    if let Some(r) = rows.first() {
        println!(
            "\n({} requests per cell, {} decode steps each, batch cap {}, {} serving windows)",
            r.requests, r.decode_steps, r.max_batch, r.windows
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serving_table_has_nine_policy_rows() {
        let rows = run(Scale::Quick);
        assert_eq!(rows.len(), 3, "one row per arrival process");
        for r in &rows {
            for p99 in [r.static_p99, r.online_p99, r.repl_p99] {
                assert!(r.p99_speedup(p99) > 0.0, "{}: degenerate p99", r.arrival);
            }
            assert!(
                r.p99_speedup(r.online_p99) >= 1.0,
                "{}: online must protect the tail",
                r.arrival
            );
        }
    }
}
