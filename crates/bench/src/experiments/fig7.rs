//! Fig. 7 — fraction of tokens whose next expert lives on their current
//! GPU, as the expert-parallel group grows (MoE-64). Bars: DeepSpeed
//! placement vs. affinity placement; line: reduction in cross-GPU traffic.

use exflow_core::ParallelismMode;
use exflow_model::presets::moe_gpt_m;

use crate::experiments::common::{engine_for, run_offline, with_layers};
use crate::fmt::{pct, render_table};
use crate::sweep::par_map;
use crate::Scale;

/// One GPU-count point.
#[derive(Debug, Clone)]
pub struct Row {
    /// Expert-parallel GPU count.
    pub gpus: usize,
    /// Tokens staying GPU-local under the DeepSpeed placement.
    pub deepspeed_local: f64,
    /// Tokens staying GPU-local under the affinity placement.
    pub affinity_local: f64,
    /// Relative reduction in cross-GPU token traffic.
    pub comm_reduction: f64,
}

/// Regenerate the sweep over expert-parallel sizes. GPU-count points are
/// independent fixed-seed runs, so they fan across the installed sweep
/// pool (`repro --jobs N`); output order and values are N-invariant.
pub fn run(scale: Scale) -> Vec<Row> {
    let gpu_counts: Vec<usize> = scale.pick(vec![1, 4, 8], vec![1, 4, 8, 16, 32, 64]);
    let model = with_layers(moe_gpt_m(64), scale.pick(6, 24));
    par_map(gpu_counts, |gpus| {
        let engine = engine_for(model.clone(), gpus, scale);
        let base = run_offline(&engine, ParallelismMode::ContextCoherent);
        let aff = run_offline(&engine, ParallelismMode::ContextCoherentAffinity);
        let base_cross = 1.0 - base.dispatch.gpu_local_fraction();
        let aff_cross = 1.0 - aff.dispatch.gpu_local_fraction();
        Row {
            gpus,
            deepspeed_local: base.dispatch.gpu_local_fraction(),
            affinity_local: aff.dispatch.gpu_local_fraction(),
            comm_reduction: if base_cross == 0.0 {
                0.0
            } else {
                1.0 - aff_cross / base_cross
            },
        }
    })
}

/// Print the series.
pub fn print(scale: Scale) {
    println!("Fig 7: tokens staying on the same GPU (MoE-64)\n");
    let rows: Vec<Vec<String>> = run(scale)
        .iter()
        .map(|r| {
            vec![
                r.gpus.to_string(),
                pct(r.deepspeed_local),
                pct(r.affinity_local),
                pct(r.comm_reduction),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "gpus",
                "deepspeed-local",
                "affinity-local",
                "xGPU-comm-reduction"
            ],
            &rows
        )
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affinity_always_at_least_matches_deepspeed() {
        for r in run(Scale::Quick) {
            assert!(
                r.affinity_local >= r.deepspeed_local - 1e-9,
                "{} GPUs: affinity {} below deepspeed {}",
                r.gpus,
                r.affinity_local,
                r.deepspeed_local
            );
        }
    }

    #[test]
    fn single_gpu_keeps_everything_local() {
        let rows = run(Scale::Quick);
        assert_eq!(rows[0].gpus, 1);
        assert!((rows[0].deepspeed_local - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deepspeed_locality_tracks_inverse_gpu_count() {
        // Affinity-free locality is ~1/G (uniform routing).
        for r in run(Scale::Quick).iter().skip(1) {
            let expected = 1.0 / r.gpus as f64;
            assert!(
                (r.deepspeed_local - expected).abs() < 0.1,
                "{} GPUs: locality {} far from uniform {}",
                r.gpus,
                r.deepspeed_local,
                expected
            );
        }
    }

    #[test]
    fn affinity_reduces_cross_gpu_traffic_multi_gpu() {
        for r in run(Scale::Quick).iter().skip(1) {
            assert!(
                r.comm_reduction > 0.1,
                "{} GPUs: reduction {} too small",
                r.gpus,
                r.comm_reduction
            );
        }
    }
}
