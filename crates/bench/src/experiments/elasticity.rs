//! `table_elasticity` — fault tolerance at the request level: the same
//! Poisson arrival sample served through a mid-run GPU loss (and a
//! loss-and-rejoin cycle) by two fleets that differ only in replication.
//!
//! The unreplicated fleet must emergency-restore the dead GPU's experts
//! over inter-node links (priced, contending with serving steps); the
//! fully replicated fleet fails over to live copies for free. The table
//! reports what that buys where it matters: disrupted requests, degraded
//! steps, emergency bytes shipped, and how long the latency tail takes
//! to return to its pre-fault p99 (`recovery`, `-` when the tail never
//! recovers within the run).

use crate::fmt::render_table;
use crate::summary::{elasticity_table, ElasticityRow};
use crate::Scale;

/// Regenerate the table rows (delegates to the `bench_summary` sweep so
/// the printed numbers are exactly the gated ones).
pub fn run(scale: Scale) -> Vec<ElasticityRow> {
    elasticity_table(scale, 4, 20_240_522).expect("elasticity sweep invariance must hold")
}

/// Virtual seconds rendered as microseconds.
fn us(v: f64) -> String {
    format!("{:.1}", v * 1e6)
}

/// A recovery time (`-1` = the tail never recovered) rendered as
/// microseconds or `-`.
fn recovery(v: f64) -> String {
    if v < 0.0 {
        "-".to_string()
    } else {
        us(v)
    }
}

/// Print the table.
pub fn print(scale: Scale) {
    println!("table_elasticity: GPU loss and recovery under continuous serving");
    println!("(latencies and recovery in virtual microseconds; `no-repl` restores the");
    println!(" dead GPU's experts over the wire, `repl` holds a live copy of every");
    println!(" expert and fails over for free; recovery = time until the rolling p99");
    println!(" over the last 32 completions returns to the pre-fault p99, `-` = never)\n");
    let rows = run(scale);
    let headers = vec![
        "fault",
        "fleet",
        "p99 us",
        "disrupted",
        "degraded",
        "emerg MB",
        "recovery us",
    ];
    let mut body: Vec<Vec<String>> = Vec::new();
    for r in &rows {
        let fleets = [
            (
                "no-repl",
                r.plain_p99,
                r.plain_disrupted,
                r.plain_steps_degraded,
                r.plain_emergency_bytes,
                r.plain_recovery,
            ),
            (
                "repl",
                r.repl_p99,
                r.repl_disrupted,
                r.repl_steps_degraded,
                r.repl_emergency_bytes,
                r.repl_recovery,
            ),
        ];
        for (fleet, p99, disrupted, degraded, bytes, rec) in fleets {
            body.push(vec![
                r.fault.clone(),
                fleet.to_string(),
                us(p99),
                disrupted.to_string(),
                degraded.to_string(),
                format!("{:.2}", bytes as f64 / 1e6),
                recovery(rec),
            ]);
        }
    }
    println!("{}", render_table(&headers, &body));
    if let Some(r) = rows.first() {
        println!(
            "\n({} requests per cell; the fault lands at t = {} virtual us)",
            r.requests,
            us(r.fault_time)
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elasticity_table_contrasts_the_two_fleets() {
        let rows = run(Scale::Quick);
        assert_eq!(rows.len(), 2, "one row per fault schedule");
        for r in &rows {
            assert!(
                r.replication_recovers_faster(),
                "{}: bar regressed",
                r.fault
            );
            assert!(
                r.repl_emergency_bytes < r.plain_emergency_bytes,
                "{}: failover saved no wire traffic",
                r.fault
            );
        }
        // The loss-only cell's failover is completely free; the rejoin
        // cell still ships weights back to the returning GPU.
        assert_eq!(
            rows[0].repl_emergency_bytes, 0,
            "loss-only failover not free"
        );
    }
}
