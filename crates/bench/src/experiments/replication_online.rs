//! `table_replication_online` — the replication-aware online mode: static
//! incumbent vs owner-moves-only re-placement vs the joint replica +
//! owner-move policy, at equal migration bytes, on the drift presets of
//! `exflow_model::drift` (plus one `large_zoo()` sparse instance).
//!
//! This quantifies the trade-off the paper's Table I frames offline —
//! ExFlow's zero-replica placement vs replication's extra memory — in the
//! online setting: when migration traffic is scarce, how much locality
//! does a bounded per-GPU replica memory budget buy on top of the same
//! migration bytes?

use crate::fmt::{pct, render_table};
use crate::summary::{replication_online_table, ReplicationOnlineRow};
use crate::Scale;

/// Regenerate the table rows (delegates to the `bench_summary` sweep so
/// the printed numbers are exactly the gated ones).
pub fn run(scale: Scale) -> Vec<ReplicationOnlineRow> {
    replication_online_table(scale, 20_240_522).expect("replication sweep invariance must hold")
}

/// Print the table.
pub fn print(scale: Scale) {
    println!("table_replication_online: joint replica + owner-move re-placement under drift");
    println!("(cross = realized cross-GPU layer transitions, lower is better; recovery =");
    println!(" share of the static incumbent's cross traffic a policy eliminated; owner");
    println!(" and joint spend identical migration bytes — joint also holds <= `slots`");
    println!(" replica payloads per GPU)\n");
    let rows = run(scale);
    let headers = vec![
        "scenario",
        "windows",
        "static",
        "owner",
        "joint",
        "owner rec",
        "joint rec",
        "slots",
        "extra",
        "replicas +/-",
    ];
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scenario.clone(),
                r.windows.to_string(),
                r.static_cross.to_string(),
                r.owner_cross.to_string(),
                r.joint_cross.to_string(),
                pct(r.owner_recovery()),
                pct(r.joint_recovery()),
                r.replica_slots.to_string(),
                r.extra_copies.to_string(),
                format!("+{}/-{}", r.replicas_added, r.replicas_dropped),
            ]
        })
        .collect();
    println!("{}", render_table(&headers, &body));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn joint_policy_dominates_owner_moves_at_equal_bytes() {
        let rows = run(Scale::Quick);
        assert_eq!(rows.len(), 4);
        assert!(
            rows.iter().any(|r| r.joint_cross < r.owner_cross),
            "the replica memory budget must buy locality somewhere"
        );
        for r in &rows {
            assert!(
                r.joint_cross <= r.owner_cross,
                "{}: joint must never lose at equal migration bytes",
                r.scenario
            );
            assert!(r.extra_copies <= r.replica_slots, "{}", r.scenario);
        }
    }
}
