//! Fig. 12 — scaled expert affinity across training: solve the placement
//! objective on checkpoints simulated at increasing training iterations
//! and plot the achievable locality, normalized per model (the paper's
//! "scaled expert affinity").

use exflow_affinity::{AffinityMatrix, RoutingTrace};
use exflow_model::routing::AffinityModelSpec;
use exflow_model::{CorpusSpec, TokenBatch, TrainingSimulator};
use exflow_placement::{solve, Objective, SolverKind};

use crate::fmt::{f3, render_table};
use crate::Scale;

/// One (expert count, iteration) point.
#[derive(Debug, Clone)]
pub struct Row {
    /// Experts per layer.
    pub n_experts: usize,
    /// Training iteration of the simulated checkpoint.
    pub iteration: u64,
    /// Locality achievable by the solved placement (raw).
    pub affinity: f64,
    /// Affinity scaled to the per-model series maximum.
    pub scaled: f64,
}

/// Raw affinity of the checkpoint at `iteration`.
fn measure(sim: &TrainingSimulator, iteration: u64, n_units: usize, tokens: usize) -> f64 {
    let model = sim.model_at(iteration);
    let corpus = CorpusSpec::pile_proxy(model.n_domains());
    let batch = TokenBatch::sample(&model, &corpus, tokens, 1, 1000 + iteration);
    let trace = RoutingTrace::from_batch(&batch, model.n_experts());
    let objective = Objective::from_affinities(&AffinityMatrix::consecutive(&trace));
    let placement = solve(&objective, n_units, SolverKind::Greedy, iteration);
    objective.local_fraction(&placement)
}

/// Regenerate one phase of the figure. `early` = iterations 0–2000
/// (Fig. 12a); otherwise 2000–18000 (Fig. 12b).
pub fn run(scale: Scale, early: bool) -> Vec<Row> {
    let expert_counts: Vec<usize> = scale.pick(vec![8, 32], vec![8, 16, 32, 64]);
    let iters: Vec<u64> = if early {
        scale.pick(
            vec![0, 400, 800, 1200, 2000],
            vec![0, 200, 400, 600, 800, 1000, 2000],
        )
    } else {
        scale.pick(
            vec![2000, 8000, 18_000],
            vec![
                2000, 4000, 6000, 8000, 10_000, 12_000, 14_000, 16_000, 18_000,
            ],
        )
    };
    let tokens = scale.pick(1200, 4000);
    let mut rows = Vec::new();
    for e in expert_counts {
        let sim = TrainingSimulator::new(AffinityModelSpec::new(8, e));
        let n_units = (e / 2).clamp(2, 4);
        let raw: Vec<f64> = iters
            .iter()
            .map(|&it| measure(&sim, it, n_units, tokens))
            .collect();
        let max = raw.iter().copied().fold(f64::MIN, f64::max);
        for (&it, &affinity) in iters.iter().zip(raw.iter()) {
            rows.push(Row {
                n_experts: e,
                iteration: it,
                affinity,
                scaled: affinity / max,
            });
        }
    }
    rows
}

/// Print both phases.
pub fn print(scale: Scale) {
    for (early, title) in [
        (true, "Fig 12a (iterations 0-2000)"),
        (false, "Fig 12b (2000-18000)"),
    ] {
        println!("{title}: scaled expert affinity during training\n");
        let rows: Vec<Vec<String>> = run(scale, early)
            .iter()
            .map(|r| {
                vec![
                    r.n_experts.to_string(),
                    r.iteration.to_string(),
                    f3(r.affinity),
                    f3(r.scaled),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(&["experts", "iteration", "affinity", "scaled"], &rows)
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn late_training_affinity_increases() {
        // Fig 12b: "as the training proceeds, expert affinity steadily
        // increases."
        for e in [8usize, 32] {
            let rows: Vec<Row> = run(Scale::Quick, false)
                .into_iter()
                .filter(|r| r.n_experts == e)
                .collect();
            let first = rows.first().unwrap().affinity;
            let last = rows.last().unwrap().affinity;
            assert!(
                last > first,
                "{e} experts: affinity fell from {first} to {last}"
            );
        }
    }

    #[test]
    fn early_training_shows_initial_high_affinity() {
        // Fig 12a: iteration-0 checkpoints route through few experts, so
        // measured affinity starts high before the rebalancing dip.
        for e in [8usize, 32] {
            let rows: Vec<Row> = run(Scale::Quick, true)
                .into_iter()
                .filter(|r| r.n_experts == e)
                .collect();
            let start = rows.first().unwrap().affinity;
            let mid = rows[rows.len() / 2].affinity;
            assert!(
                start > mid,
                "{e} experts: iteration-0 affinity {start} should exceed mid-training {mid}"
            );
        }
    }

    #[test]
    fn scaled_values_peak_at_one() {
        for early in [true, false] {
            let rows = run(Scale::Quick, early);
            for e in [8usize, 32] {
                let max = rows
                    .iter()
                    .filter(|r| r.n_experts == e)
                    .map(|r| r.scaled)
                    .fold(f64::MIN, f64::max);
                assert!((max - 1.0).abs() < 1e-9);
            }
        }
    }
}
