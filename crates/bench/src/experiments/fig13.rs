//! Fig. 13 — how many profiled tokens are needed to capture expert
//! affinity: placements are solved from truncated profiling traces and the
//! resulting Alltoall speedup (vs. the affinity-free placement) is
//! measured end to end.

use exflow_affinity::AffinityMatrix;
use exflow_core::{InferenceEngine, ParallelismMode};
use exflow_model::presets::moe_gpt_m;
use exflow_placement::staged::solve_staged;
use exflow_placement::Objective;

use crate::experiments::common::{run_offline, with_layers};
use crate::fmt::{render_table, speedup};
use crate::Scale;

/// One (expert count, sample size) point.
#[derive(Debug, Clone)]
pub struct Row {
    /// Experts per layer.
    pub n_experts: usize,
    /// Profiling tokens used to solve the placement.
    pub tokens: usize,
    /// Alltoall time speedup relative to the affinity-free placement.
    pub alltoall_speedup: f64,
}

/// Regenerate the sampling sweep on 8 GPUs (2 nodes).
pub fn run(scale: Scale) -> Vec<Row> {
    let expert_counts: Vec<usize> = scale.pick(vec![8, 32], vec![8, 16, 32, 64]);
    let sizes: Vec<usize> = scale.pick(vec![50, 500, 1500], vec![50, 1000, 2000, 3000, 4000, 5000]);
    let mut rows = Vec::new();
    for e in expert_counts {
        let model = with_layers(moe_gpt_m(e), scale.pick(6, 24));
        // Build with the largest profile so the trace can be truncated.
        let engine = InferenceEngine::builder(model, super::common::cluster_for(8))
            .requests_per_gpu(scale.pick(4, 8))
            .prompt_len(8)
            .n_iterations(2)
            .profile_tokens(*sizes.last().unwrap())
            .placement_restarts(0)
            .seed(20_240_403)
            .build();
        let baseline = run_offline(&engine, ParallelismMode::ContextCoherent);
        let base_a2a = baseline.breakdown.alltoall;

        for &n in &sizes {
            let trace = engine.profile_trace().truncated(n);
            let objective = Objective::from_affinities(&AffinityMatrix::consecutive(&trace));
            let staged = solve_staged(
                &objective,
                &engine.config().cluster,
                0,
                engine.config().seed,
            );
            let report = engine
                .run_with_placement(ParallelismMode::ContextCoherentAffinity, &staged.gpu_level);
            rows.push(Row {
                n_experts: e,
                tokens: n,
                alltoall_speedup: base_a2a / report.breakdown.alltoall,
            });
        }
    }
    rows
}

/// Print the series.
pub fn print(scale: Scale) {
    println!("Fig 13: Alltoall speedup vs profiling-token budget (8 GPUs)\n");
    let rows: Vec<Vec<String>> = run(scale)
        .iter()
        .map(|r| {
            vec![
                r.n_experts.to_string(),
                r.tokens.to_string(),
                speedup(r.alltoall_speedup),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["experts", "profile-tokens", "alltoall-speedup"], &rows)
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_tokens_never_hurt_much() {
        // The speedup curve saturates: the largest sample is at least about
        // as good as the smallest. The tolerance is relative because the
        // smallest Quick-scale profile (50 tokens) is noise-dominated and
        // can get lucky.
        let rows = run(Scale::Quick);
        for e in [8usize, 32] {
            let series: Vec<&Row> = rows.iter().filter(|r| r.n_experts == e).collect();
            let first = series.first().unwrap().alltoall_speedup;
            let last = series.last().unwrap().alltoall_speedup;
            assert!(
                last >= 0.85 * first,
                "{e} experts: speedup degraded from {first} to {last}"
            );
        }
    }

    #[test]
    fn saturated_speedup_is_real() {
        let rows = run(Scale::Quick);
        for e in [8usize, 32] {
            let best = rows
                .iter()
                .filter(|r| r.n_experts == e)
                .map(|r| r.alltoall_speedup)
                .fold(f64::MIN, f64::max);
            assert!(
                best > 1.05,
                "{e} experts: best alltoall speedup {best} is negligible"
            );
        }
    }
}
