//! One module per paper artifact. Each exposes typed rows plus a
//! `print(scale)` entry the `repro` binary calls.

pub mod ablations;
pub mod common;
pub mod elasticity;
pub mod events;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig2;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod online;
pub mod partial_replication;
pub mod replan_latency;
pub mod replication_online;
pub mod serving;
pub mod table1;
pub mod table2;
pub mod table3;
