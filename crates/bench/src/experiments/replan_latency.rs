//! `table_replan_latency` — what incremental objective maintenance and
//! the persistent swap-gain cache buy per re-plan at scale.
//!
//! Every drift window is re-planned twice from the same incumbent: once
//! against a cold [`Objective`](exflow_placement::Objective) rebuilt from
//! the full streaming snapshot with a fresh candidate scan, and once
//! against the delta-maintained live objective with the
//! [`SwapGainCache`](exflow_placement::SwapGainCache). The two paths must
//! land on bit-identical placements and cross masses — the cache is a
//! pure memoisation, never an approximation — so the only thing the
//! table contrasts is *cost*: candidate gains actually recomputed
//! (`evaluated`), gains served from cache (`reused`), and the wall time
//! of each path.

use crate::fmt::render_table;
use crate::summary::{replan_latency_table, ReplanLatencyRow};
use crate::Scale;

/// Regenerate the table rows (delegates to the `bench_summary` sweep so
/// the printed numbers are exactly the gated ones).
pub fn run(scale: Scale) -> Vec<ReplanLatencyRow> {
    replan_latency_table(scale, 20_240_522).expect("re-plan latency sweep invariance must hold")
}

/// Print the table.
pub fn print(scale: Scale) {
    println!("table_replan_latency: rebuild vs incremental re-plan cost at scale");
    println!("(both paths take the same budgeted moves from the same incumbent and");
    println!(" must produce bit-identical placements; `evaluated` = candidate gains");
    println!(" recomputed, `reused` = gains served from the swap-gain cache, so the");
    println!(" reduction column is an exact operation-count contrast, not a timing)\n");
    let rows = run(scale);
    let headers = vec![
        "preset",
        "windows",
        "replans",
        "considered",
        "eval rebuild",
        "eval incr",
        "reused",
        "reduction",
        "rebuild ms",
        "incr ms",
    ];
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.preset.clone(),
                r.windows.to_string(),
                r.replans.to_string(),
                r.considered.to_string(),
                r.evaluated_rebuild.to_string(),
                r.evaluated_incremental.to_string(),
                r.reused.to_string(),
                format!("{:.2}x", r.scan_reduction()),
                format!("{:.1}", r.wall_ms_rebuild),
                format!("{:.1}", r.wall_ms_incremental),
            ]
        })
        .collect();
    println!("{}", render_table(&headers, &body));
    if let Some(r) = rows.first() {
        println!(
            "\n(cross masses bit-identical on every row; {} budgeted moves per re-plan)",
            r.max_moves
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The sweep itself (bit-equality, counter identities, the 5x bar at
    // E = 512) is exercised by `summary::tests`; re-running it here
    // would double the most expensive cell of the suite, so this module
    // only checks the presentation-layer arithmetic.
    #[test]
    fn scan_reduction_is_the_exact_counter_ratio() {
        let row = ReplanLatencyRow {
            preset: "MoE-GPT-XXL/512e-24L-top1".into(),
            n_experts: 512,
            k: 1,
            layers: 2,
            windows: 4,
            replans: 3,
            max_moves: 40,
            considered: 8_000_000,
            evaluated_rebuild: 8_000_000,
            evaluated_incremental: 1_000_000,
            reused: 7_000_000,
            wall_ms_rebuild: 900.0,
            wall_ms_incremental: 120.0,
            cross_mass_rebuild: 0.625,
            cross_mass_incremental: 0.625,
        };
        assert_eq!(row.scan_reduction(), 8.0);
        let starved = ReplanLatencyRow {
            evaluated_incremental: 0,
            ..row
        };
        assert_eq!(starved.scan_reduction(), 0.0);
    }
}
