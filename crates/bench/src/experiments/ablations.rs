//! Ablations beyond the paper's figures, covering the design choices
//! DESIGN.md calls out: solver quality, staged-vs-flat placement, and how
//! the end-to-end gain degrades as the model's intrinsic affinity weakens.

use exflow_affinity::{AffinityMatrix, RoutingTrace};
use exflow_core::{InferenceEngine, ParallelismMode};
use exflow_model::presets::moe_gpt_m;
use exflow_model::routing::AffinityModelSpec;
use exflow_model::{CorpusSpec, TokenBatch};
use exflow_placement::annealing::AnnealParams;
use exflow_placement::staged::solve_staged;
use exflow_placement::{solve, Objective, SolverKind};
use exflow_topology::ClusterSpec;

use crate::experiments::common::{cluster_for, run_offline, with_layers};
use crate::fmt::{f3, render_table, speedup};
use crate::sweep::par_map;
use crate::Scale;

/// Solver-quality ablation: cross-mass achieved by each solver on the same
/// profiled instance (lower is better).
#[derive(Debug, Clone)]
pub struct SolverRow {
    /// Solver name.
    pub solver: String,
    /// Expected cross-unit transitions per token.
    pub cross_mass: f64,
}

fn profiled_objective(e: usize, l: usize, tokens: usize, seed: u64) -> Objective {
    let spec = AffinityModelSpec::new(l, e).with_seed(seed);
    let routing = spec.build();
    let batch = TokenBatch::sample(
        &routing,
        &CorpusSpec::pile_proxy(spec.n_domains),
        tokens,
        1,
        seed,
    );
    let trace = RoutingTrace::from_batch(&batch, e);
    Objective::from_affinities(&AffinityMatrix::consecutive(&trace))
}

/// Compare every solver on one instance (MoE-16, 8 layers, 4 GPUs).
/// Solvers fan across the installed sweep pool.
pub fn run_solvers(scale: Scale) -> Vec<SolverRow> {
    let objective = profiled_objective(16, scale.pick(6, 12), scale.pick(2000, 6000), 5);
    let kinds: Vec<(&str, SolverKind)> = vec![
        ("round-robin", SolverKind::RoundRobin),
        ("greedy-chain", SolverKind::Greedy),
        ("local-search", SolverKind::LocalSearch { restarts: 2 }),
        ("annealing", SolverKind::Annealing(AnnealParams::default())),
        ("portfolio", SolverKind::portfolio(100)),
    ];
    par_map(kinds, |(name, kind)| SolverRow {
        solver: name.to_string(),
        cross_mass: objective.cross_mass(&solve(&objective, 4, kind, 99)),
    })
}

/// Staged-vs-flat ablation: inter-node crossing mass of the staged
/// two-level solve versus a flat GPU-level solve that ignores the node
/// hierarchy.
#[derive(Debug, Clone)]
pub struct StagedRow {
    /// Strategy name.
    pub strategy: String,
    /// Expected fraction of transitions crossing nodes.
    pub internode_cross: f64,
    /// Expected fraction of transitions crossing GPUs.
    pub gpu_cross: f64,
}

/// Compare staged vs. flat placement on 2 nodes x 4 GPUs (MoE-32).
pub fn run_staged_vs_flat(scale: Scale) -> Vec<StagedRow> {
    let objective = profiled_objective(32, scale.pick(6, 12), scale.pick(2000, 6000), 6);
    let cluster = ClusterSpec::new(2, 4).unwrap();
    let gpn = cluster.gpus_per_node();

    let measure = |placement: &exflow_placement::Placement| -> (f64, f64) {
        // Expected crossing fractions from the objective's matrices.
        let e = objective.n_experts();
        let gaps = objective.n_gaps();
        let mut node_cross = 0.0;
        let mut gpu_cross = 0.0;
        for gap in 0..gaps {
            for i in 0..e {
                let ug = placement.unit_of(gap, i);
                for p in 0..e {
                    let vg = placement.unit_of(gap + 1, p);
                    let prob = objective.row_weight(gap, i) * objective.gap_prob(gap, i, p);
                    if ug != vg {
                        gpu_cross += prob;
                    }
                    if ug / gpn != vg / gpn {
                        node_cross += prob;
                    }
                }
            }
        }
        (node_cross / gaps as f64, gpu_cross / gaps as f64)
    };

    let staged = solve_staged(&objective, &cluster, scale.pick(0, 2), 3);
    let flat = solve(
        &objective,
        cluster.world_size(),
        SolverKind::LocalSearch {
            restarts: scale.pick(0, 2),
        },
        3,
    );
    let rr = exflow_placement::Placement::round_robin(
        objective.n_layers(),
        objective.n_experts(),
        cluster.world_size(),
    );

    [
        ("round-robin", &rr),
        ("flat", &flat),
        ("staged", &staged.gpu_level),
    ]
    .into_iter()
    .map(|(name, p)| {
        let (internode_cross, gpu_cross) = measure(p);
        StagedRow {
            strategy: name.to_string(),
            internode_cross,
            gpu_cross,
        }
    })
    .collect()
}

/// Affinity-strength sweep: end-to-end ExFlow speedup versus the model's
/// intrinsic affinity concentration κ (extension beyond the paper).
#[derive(Debug, Clone)]
pub struct AffinitySweepRow {
    /// Routing concentration κ.
    pub kappa: f64,
    /// Full-ExFlow throughput relative to DeepSpeed.
    pub speedup: f64,
}

/// Sweep κ on MoE-16 / 8 GPUs. Grid points are independent fixed-seed
/// engine runs, fanned across the installed sweep pool.
pub fn run_affinity_sweep(scale: Scale) -> Vec<AffinitySweepRow> {
    let kappas: Vec<f64> = scale.pick(vec![0.0, 0.5, 0.9], vec![0.0, 0.25, 0.5, 0.75, 0.9]);
    par_map(kappas, |kappa| {
        let model = with_layers(moe_gpt_m(16), scale.pick(6, 24));
        let spec = AffinityModelSpec::new(model.n_layers, model.n_experts).with_affinity(kappa);
        let engine = InferenceEngine::builder(model, cluster_for(8))
            .routing_spec(spec)
            .requests_per_gpu(scale.pick(4, 8))
            .prompt_len(8)
            .n_iterations(2)
            .profile_tokens(scale.pick(1500, 4000))
            .placement_restarts(0)
            .seed(20_240_404)
            .build();
        let ds = run_offline(&engine, ParallelismMode::Vanilla).throughput();
        let aff = run_offline(&engine, ParallelismMode::ContextCoherentAffinity).throughput();
        AffinitySweepRow {
            kappa,
            speedup: aff / ds,
        }
    })
}

/// Replication-baseline ablation (the paper's §VI comparison against
/// Lina-style expert popularity): locality as a function of the replica
/// memory budget, versus ExFlow's zero-replica placement.
#[derive(Debug, Clone)]
pub struct ReplicationRow {
    /// Strategy label.
    pub strategy: String,
    /// Extra expert copies stored per GPU (memory cost).
    pub extra_copies: usize,
    /// Fraction of layer transitions served locally.
    pub local_fraction: f64,
}

/// Sweep replication budgets on MoE-16 / 4 GPUs and compare with ExFlow.
pub fn run_replication(scale: Scale) -> Vec<ReplicationRow> {
    use exflow_affinity::RoutingTrace as Trace;
    use exflow_model::{CorpusSpec, TokenBatch};
    use exflow_placement::objective::measure_trace_locality;
    use exflow_placement::replication::ReplicationPlan;

    let e = 16;
    let l = scale.pick(6, 12);
    let spec = AffinityModelSpec::new(l, e);
    let routing = spec.build();
    let corpus = CorpusSpec::pile_proxy(spec.n_domains);
    let profile = Trace::from_batch(
        &TokenBatch::sample(&routing, &corpus, scale.pick(2000, 6000), 1, 41),
        e,
    );
    let eval = Trace::from_batch(
        &TokenBatch::sample(&routing, &corpus, scale.pick(2000, 6000), 1, 42),
        e,
    );
    let objective = Objective::from_affinities(&AffinityMatrix::consecutive(&profile));
    let base = exflow_placement::Placement::round_robin(l, e, 4);

    let mut rows = Vec::new();
    for budget in [0usize, 2, 4, 8] {
        let plan = ReplicationPlan::most_popular(&objective, base.clone(), budget);
        rows.push(ReplicationRow {
            strategy: format!("replicate-top{budget}"),
            extra_copies: plan.extra_copies_per_gpu(),
            local_fraction: plan.trace_local_fraction(&eval),
        });
    }
    let exflow = solve(
        &objective,
        4,
        SolverKind::LocalSearch {
            restarts: scale.pick(0, 2),
        },
        7,
    );
    rows.push(ReplicationRow {
        strategy: "exflow-placement".into(),
        extra_copies: 0,
        local_fraction: measure_trace_locality(&eval, &exflow).fraction(),
    });
    rows
}

/// Top-1 vs top-2 gating: measured cross-GPU Alltoall traffic per mode
/// (Table I's two volume columns, measured instead of analytic).
#[derive(Debug, Clone)]
pub struct GatingRow {
    /// Gating kind label.
    pub gate: String,
    /// Execution mode label.
    pub mode: String,
    /// Cross-GPU Alltoall bytes for the run.
    pub cross_gpu_bytes: u64,
    /// Throughput relative to the same gate's DeepSpeed baseline.
    pub relative_throughput: f64,
}

/// Measure top-1 vs top-2 on MoE-8 / 8 GPUs (one sweep task per gate).
pub fn run_gating(scale: Scale) -> Vec<GatingRow> {
    use exflow_model::GateKind;
    let per_gate = par_map(vec![GateKind::Top1, GateKind::Top2], |gate| {
        let mut rows = Vec::new();
        // Top-2 context coherence needs depth to amortize its AllGather and
        // secondary-return costs, so this sweep keeps at least 12 layers.
        let model = with_layers(moe_gpt_m(16), scale.pick(12, 24)).with_gate(gate);
        let engine = InferenceEngine::builder(model, cluster_for(8))
            .requests_per_gpu(scale.pick(16, 48))
            .prompt_len(8)
            .n_iterations(scale.pick(2, 4))
            .profile_tokens(scale.pick(1500, 3000))
            .placement_restarts(0)
            .seed(20_240_405)
            .build();
        let baseline = run_offline(&engine, ParallelismMode::Vanilla);
        for mode in ParallelismMode::ALL {
            let r = run_offline(&engine, mode);
            rows.push(GatingRow {
                gate: format!("top-{}", gate.k()),
                mode: mode.label().to_string(),
                cross_gpu_bytes: r.alltoall_bytes.cross_gpu(),
                relative_throughput: r.throughput() / baseline.throughput(),
            });
        }
        rows
    });
    per_gate.into_iter().flatten().collect()
}

/// Print all ablations.
pub fn print(scale: Scale) {
    println!("Ablation A: placement solver quality (lower cross-mass is better)\n");
    let rows: Vec<Vec<String>> = run_solvers(scale)
        .iter()
        .map(|r| vec![r.solver.clone(), f3(r.cross_mass)])
        .collect();
    println!("{}", render_table(&["solver", "cross-mass"], &rows));

    println!("Ablation B: staged vs flat placement (2 nodes x 4 GPUs)\n");
    let rows: Vec<Vec<String>> = run_staged_vs_flat(scale)
        .iter()
        .map(|r| vec![r.strategy.clone(), f3(r.internode_cross), f3(r.gpu_cross)])
        .collect();
    println!(
        "{}",
        render_table(&["strategy", "inter-node-cross", "gpu-cross"], &rows)
    );

    println!("Ablation C: end-to-end speedup vs affinity strength kappa\n");
    let rows: Vec<Vec<String>> = run_affinity_sweep(scale)
        .iter()
        .map(|r| vec![f3(r.kappa), speedup(r.speedup)])
        .collect();
    println!("{}", render_table(&["kappa", "exflow-speedup"], &rows));

    println!("Ablation D: replication (Lina-style) vs ExFlow placement\n");
    let rows: Vec<Vec<String>> = run_replication(scale)
        .iter()
        .map(|r| {
            vec![
                r.strategy.clone(),
                r.extra_copies.to_string(),
                f3(r.local_fraction),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["strategy", "extra-copies/GPU", "local-fraction"], &rows)
    );

    println!("Ablation E: top-1 vs top-2 gating traffic and throughput\n");
    let rows: Vec<Vec<String>> = run_gating(scale)
        .iter()
        .map(|r| {
            vec![
                r.gate.clone(),
                r.mode.clone(),
                format!("{}K", r.cross_gpu_bytes / 1024),
                speedup(r.relative_throughput),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["gate", "mode", "xGPU-bytes", "rel-throughput"], &rows)
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimizing_solvers_beat_round_robin() {
        let rows = run_solvers(Scale::Quick);
        let rr = rows.iter().find(|r| r.solver == "round-robin").unwrap();
        for r in rows.iter().filter(|r| r.solver != "round-robin") {
            assert!(
                r.cross_mass < rr.cross_mass,
                "{} ({}) not better than round-robin ({})",
                r.solver,
                r.cross_mass,
                rr.cross_mass
            );
        }
    }

    #[test]
    fn staged_minimizes_internode_crossing() {
        let rows = run_staged_vs_flat(Scale::Quick);
        let get = |name: &str| rows.iter().find(|r| r.strategy == name).unwrap();
        let staged = get("staged");
        let rr = get("round-robin");
        assert!(
            staged.internode_cross < rr.internode_cross,
            "staged {} vs rr {}",
            staged.internode_cross,
            rr.internode_cross
        );
        // Staged's whole point: at least as good inter-node as flat.
        let flat = get("flat");
        assert!(staged.internode_cross <= flat.internode_cross + 0.02);
    }

    #[test]
    fn exflow_needs_no_replicas_to_beat_small_budgets() {
        let rows = run_replication(Scale::Quick);
        let exflow = rows
            .iter()
            .find(|r| r.strategy == "exflow-placement")
            .unwrap();
        let rep0 = rows
            .iter()
            .find(|r| r.strategy == "replicate-top0")
            .unwrap();
        assert_eq!(exflow.extra_copies, 0);
        assert!(exflow.local_fraction > rep0.local_fraction);
        // Locality is monotone in the replica budget.
        let budgets: Vec<&ReplicationRow> = rows
            .iter()
            .filter(|r| r.strategy.starts_with("replicate"))
            .collect();
        for pair in budgets.windows(2) {
            assert!(pair[1].local_fraction + 1e-9 >= pair[0].local_fraction);
        }
    }

    #[test]
    fn top2_roughly_doubles_traffic_without_doubling_exflow() {
        let rows = run_gating(Scale::Quick);
        let get = |gate: &str, mode: &str| {
            rows.iter()
                .find(|r| r.gate == gate && r.mode == mode)
                .unwrap()
        };
        let v1 = get("top-1", "Deepspeed (vanilla)").cross_gpu_bytes as f64;
        let v2 = get("top-2", "Deepspeed (vanilla)").cross_gpu_bytes as f64;
        assert!(v2 > 1.8 * v1, "vanilla top-2 {v2} vs top-1 {v1}");
        // Affinity placement must recover the coherence overhead that plain
        // context-coherence pays under top-2 (at Quick depth the absolute
        // speedup over vanilla is ~1.0 and depends on the profiling stream,
        // so assert the ordering rather than a knife-edge threshold) ...
        let ex2 = get("top-2", "ExFlow w. affinity");
        let coh2 = get("top-2", "ExFlow w/o affinity");
        assert!(
            ex2.relative_throughput > coh2.relative_throughput,
            "affinity {} should beat plain coherence {}",
            ex2.relative_throughput,
            coh2.relative_throughput
        );
        // ... and still cut cross-GPU traffic well below vanilla even though
        // top-2 doubles the dispatched tokens.
        assert!(
            (ex2.cross_gpu_bytes as f64) < 0.8 * v2,
            "affinity bytes {} vs vanilla top-2 {v2}",
            ex2.cross_gpu_bytes
        );
    }

    #[test]
    fn speedup_grows_with_affinity_strength() {
        let rows = run_affinity_sweep(Scale::Quick);
        let first = rows.first().unwrap();
        let last = rows.last().unwrap();
        assert!(
            last.speedup > first.speedup,
            "kappa {} speedup {} should exceed kappa {} speedup {}",
            last.kappa,
            last.speedup,
            first.kappa,
            first.speedup
        );
    }
}
