//! `table_partial_replication` — what replicating onto a *chosen subset*
//! of GPUs buys over the all-GPUs fan-out at equal memory.
//!
//! Each cell replays a drifting trace through the budgeted replicated
//! solver twice from the same incumbent at every re-plan: once under the
//! one-replica-per-node subset policy and once under the full fan-out.
//! Partial replication's candidate set strictly contains full's, so the
//! summed solver cross mass can never be worse — the table shows by how
//! much it is *better*, alongside the fan-out bytes each policy paid.
//! The trailing engine columns run the top-2 context-coherent serving
//! loop with replica-aware meeting-point dispatch and record whether the
//! gate arity actually exercised replicas (the regression this artifact
//! guards against is top-2 models silently falling back to owner-only
//! dispatch).

use crate::fmt::render_table;
use crate::summary::{partial_replication_table, PartialReplicationRow};
use crate::Scale;

/// Regenerate the table rows (delegates to the `bench_summary` sweep so
/// the printed numbers are exactly the gated ones).
pub fn run(scale: Scale) -> Vec<PartialReplicationRow> {
    partial_replication_table(scale, 20_240_522)
        .expect("partial-replication sweep invariance must hold")
}

/// Print the table.
pub fn print(scale: Scale) {
    println!("table_partial_replication: subset vs full replica fan-out at equal memory");
    println!("(both policies race from the same incumbent at the same slot and byte");
    println!(" budgets; `partial`/`full cross` sum the solver objective over every");
    println!(" re-plan, `cc repl` counts replicas the top-2 CC serving engine placed");
    println!(" under replica-aware meeting-point dispatch)\n");
    let rows = run(scale);
    let headers = vec![
        "scenario",
        "k",
        "windows",
        "replans",
        "repl added",
        "partial cross",
        "full cross",
        "partial MiB",
        "full MiB",
        "copies p/f",
        "cc repl",
        "cc local",
    ];
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scenario.clone(),
                r.k.to_string(),
                r.windows.to_string(),
                r.partial_replans.to_string(),
                r.replicas_added.to_string(),
                format!("{:.4}", r.partial_cross_mass),
                format!("{:.4}", r.full_cross_mass),
                format!("{:.1}", r.partial_migrated_bytes as f64 / (1 << 20) as f64),
                format!("{:.1}", r.full_migrated_bytes as f64 / (1 << 20) as f64),
                format!("{}/{}", r.partial_extra_copies, r.full_extra_copies),
                r.cc_replicas_added.to_string(),
                format!("{:.3}", r.cc_local_fraction),
            ]
        })
        .collect();
    println!("{}", render_table(&headers, &body));
    let losses = rows.iter().filter(|r| !r.partial_never_loses()).count();
    println!(
        "\n({} of {} rows where the subset policy loses to the full fan-out; \
         the perf-gate requires 0)",
        losses,
        rows.len()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    // The sweep itself (backend/thread invariance, the never-loses and
    // top-2-uses-replicas bars) is exercised by `summary::tests`;
    // re-running it here would double the most expensive cells of the
    // suite, so this module only checks the presentation-layer predicate.
    #[test]
    fn never_loses_predicate_is_a_plain_comparison() {
        let row = PartialReplicationRow {
            scenario: "partial-repl/16e-top2".into(),
            n_experts: 16,
            k: 2,
            layers: 4,
            units: 4,
            windows: 6,
            replica_slots: 4,
            budget_bytes: 12 << 20,
            partial_replans: 2,
            replicas_added: 3,
            partial_migrated_bytes: 5 << 20,
            full_migrated_bytes: 7 << 20,
            partial_extra_copies: 2,
            full_extra_copies: 3,
            partial_cross_mass: 0.25,
            full_cross_mass: 0.25,
            realized_cross: 100,
            cc_replicas_added: 1,
            cc_local_fraction: 0.9,
        };
        assert!(row.partial_never_loses(), "ties must count as not losing");
        let losing = PartialReplicationRow {
            partial_cross_mass: 0.26,
            ..row
        };
        assert!(!losing.partial_never_loses());
    }
}
