//! Fig. 6 — collective-communication overhead of context-coherent expert
//! parallelism versus the baseline, across model variants and
//! expert-parallel sizes. Bars: baseline Alltoall, context-coherent
//! Alltoall, context-coherent AllGather (all scaled to the baseline).

use exflow_core::ParallelismMode;
use exflow_model::presets::{moe_gpt_m, moe_gpt_m_32e_32l, moe_gpt_m_32e_40l};
use exflow_model::ModelConfig;

use crate::experiments::common::{engine_for, run_offline, with_layers};
use crate::fmt::{f3, render_table};
use crate::Scale;

/// One (model, GPU count) bar group.
#[derive(Debug, Clone)]
pub struct Row {
    /// Model name.
    pub model: String,
    /// Expert-parallel GPU count.
    pub gpus: usize,
    /// Baseline (vanilla) Alltoall time, scaled to itself (= 1.0).
    pub baseline_alltoall: f64,
    /// Context-coherent Alltoall time relative to the baseline.
    pub cc_alltoall: f64,
    /// Context-coherent AllGather time relative to the baseline Alltoall.
    pub cc_allgather: f64,
}

fn scenario_models(scale: Scale) -> Vec<(ModelConfig, Vec<usize>)> {
    let l = |m: ModelConfig, full_layers: usize| -> ModelConfig {
        with_layers(m, scale.pick(6, full_layers))
    };
    match scale {
        Scale::Quick => vec![
            (l(moe_gpt_m(8), 24), vec![8]),
            (l(moe_gpt_m(16), 24), vec![8, 16]),
        ],
        Scale::Full => vec![
            (l(moe_gpt_m(8), 24), vec![8]),
            (l(moe_gpt_m(16), 24), vec![8, 16]),
            (l(moe_gpt_m(32), 24), vec![16, 32]),
            (l(moe_gpt_m(64), 24), vec![32, 64]),
            (l(moe_gpt_m_32e_32l(), 32), vec![16, 32]),
            (l(moe_gpt_m_32e_40l(), 40), vec![16, 32]),
        ],
    }
}

/// Regenerate the figure's series.
pub fn run(scale: Scale) -> Vec<Row> {
    let mut rows = Vec::new();
    for (model, gpu_counts) in scenario_models(scale) {
        for gpus in gpu_counts {
            let engine = engine_for(model.clone(), gpus, scale);
            let vanilla = run_offline(&engine, ParallelismMode::Vanilla);
            let cc = run_offline(&engine, ParallelismMode::ContextCoherent);
            let base = vanilla.breakdown.alltoall;
            rows.push(Row {
                model: model.name.clone(),
                gpus,
                baseline_alltoall: 1.0,
                cc_alltoall: cc.breakdown.alltoall / base,
                cc_allgather: cc.breakdown.allgather / base,
            });
        }
    }
    rows
}

/// Print the series.
pub fn print(scale: Scale) {
    println!("Fig 6: scaled communication latency (baseline Alltoall = 1.0)\n");
    let rows: Vec<Vec<String>> = run(scale)
        .iter()
        .map(|r| {
            vec![
                r.model.clone(),
                r.gpus.to_string(),
                f3(r.baseline_alltoall),
                f3(r.cc_alltoall),
                f3(r.cc_allgather),
                f3(r.cc_alltoall + r.cc_allgather),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "model",
                "gpus",
                "baseline-a2a",
                "cc-a2a",
                "cc-allgather",
                "cc-total"
            ],
            &rows
        )
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_coherence_halves_alltoall() {
        // The paper reports >50% Alltoall reduction; we require at least
        // a meaningful cut on every scenario.
        for r in run(Scale::Quick) {
            assert!(
                r.cc_alltoall < 0.7,
                "{} on {} GPUs: cc alltoall {} not reduced enough",
                r.model,
                r.gpus,
                r.cc_alltoall
            );
        }
    }

    #[test]
    fn total_cc_communication_still_wins() {
        for r in run(Scale::Quick) {
            assert!(
                r.cc_alltoall + r.cc_allgather < 1.0,
                "{} on {} GPUs: cc total {} exceeds baseline",
                r.model,
                r.gpus,
                r.cc_alltoall + r.cc_allgather
            );
        }
    }
}
