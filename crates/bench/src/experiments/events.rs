//! `render-events` — the JSONL event stream of a faulted serving run:
//! one `exflow-events/v1` line per serving window, followed by the
//! fixed-width rendering of the same stream.
//!
//! This is the observability artifact of the fault-tolerance layer: a
//! loss-and-rejoin cycle lands mid-run, so the stream shows queue
//! buildup, the emergency re-placement's migration bytes, and the fleet
//! transitions (`-g` / `+g`) inline. Every emitted line is round-tripped
//! through [`WindowEvent::from_json`] before printing, so the artifact
//! doubles as an end-to-end check that the schema parses its own output
//! bit for bit.

use exflow_core::{
    events_from_report, render_events, to_jsonl, BatchPolicy, InferenceEngine, OnlineConfig,
    ParallelismMode, Scenario, ServingConfig, WindowEvent, EVENT_SCHEMA,
};
use exflow_model::presets::moe_gpt_m;
use exflow_model::{ArrivalProcess, DriftSchedule, FaultSchedule};
use exflow_placement::Parallelism;
use exflow_topology::ClusterSpec;

use crate::Scale;

const MODE: ParallelismMode = ParallelismMode::ContextCoherentAffinity;
const MAX_BATCH: usize = 16;
const DECODE_STEPS: usize = 4;
const WINDOWS: usize = 8;
/// World size of the engine below (`ClusterSpec::new(2, 2)`).
const WORLD: usize = 4;

/// Run one faulted serving scenario and return its window events.
pub fn run(scale: Scale) -> Vec<WindowEvent> {
    let n_requests = scale.pick(96, 256);
    let mut model = moe_gpt_m(8);
    model.n_layers = 4;
    let online = OnlineConfig {
        replan_every: 2,
        drift_threshold: 0.08,
        migration_budget_bytes: u64::MAX,
        decay: 0.3,
        ..OnlineConfig::default()
    };
    let eng = InferenceEngine::builder(model, ClusterSpec::new(2, 2).unwrap())
        .requests_per_gpu(MAX_BATCH / 4)
        .prompt_len(4)
        .profile_tokens(400)
        .parallelism(Parallelism::new(1))
        .online(online)
        .seed(20_240_522)
        .build();
    let drift = DriftSchedule::piecewise(&eng.config().routing_spec, 2, WINDOWS);
    let step = eng.probe_step_time(MODE, MAX_BATCH);
    let rate = 0.9 * MAX_BATCH as f64 / (DECODE_STEPS as f64 * step);
    let horizon = n_requests as f64 / rate;
    let cfg = ServingConfig {
        arrival: ArrivalProcess::poisson(rate),
        n_requests,
        decode_steps: DECODE_STEPS,
        batch: BatchPolicy::SizeOrWait {
            max_size: MAX_BATCH,
            max_wait: 2.0 * step,
        },
        window_duration: horizon / WINDOWS as f64,
    };
    let faults = FaultSchedule::loss_and_rejoin(WORLD, 1, 0.3 * horizon, 0.65 * horizon);
    let report = eng
        .run_scenario(
            &Scenario::offline(MODE)
                .with_drift(drift)
                .with_serving(cfg)
                .with_faults(faults),
        )
        .expect_serving();
    events_from_report(&report)
}

/// Print the JSONL stream (round-tripping every line first) and its
/// rendered table.
pub fn print(scale: Scale) {
    println!("render-events: {EVENT_SCHEMA} stream of a faulted serving run");
    println!("(loss at 30% of the horizon, rejoin at 65%; one JSONL line per window,");
    println!(" each parsed back and bit-compared before printing)\n");
    let events = run(scale);
    let jsonl = to_jsonl(&events);
    for (i, line) in jsonl.lines().enumerate() {
        let back = WindowEvent::from_json(line)
            .unwrap_or_else(|e| panic!("window {i}: emitted line does not parse: {e}"));
        assert_eq!(back, events[i], "window {i}: round-trip changed the event");
    }
    print!("{jsonl}");
    println!("\n{}", render_events(&events));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faulted_stream_round_trips_and_marks_the_fleet_transitions() {
        let events = run(Scale::Quick);
        assert!(events.len() >= WINDOWS, "windows missing from the stream");
        let downs: Vec<usize> = events.iter().flat_map(|e| e.gpus_down.clone()).collect();
        let ups: Vec<usize> = events.iter().flat_map(|e| e.gpus_up.clone()).collect();
        assert_eq!(downs, vec![1], "the loss must be marked exactly once");
        assert_eq!(ups, vec![1], "the rejoin must be marked exactly once");
        assert!(
            events.iter().any(|e| e.replans > 0),
            "drift re-plans must appear in the stream"
        );
        for ev in &events {
            let line = ev.to_json();
            assert_eq!(&WindowEvent::from_json(&line).unwrap(), ev);
        }
    }
}
