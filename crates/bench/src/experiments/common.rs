//! Shared workload construction for the experiment modules.

use exflow_core::{InferenceEngine, InferenceReport, ParallelismMode, Scenario};
use exflow_model::ModelConfig;
use exflow_topology::ClusterSpec;

use crate::Scale;

/// Run the bare offline benchmark in `mode` through the [`Scenario`]
/// front door — the one-liner every figure/table experiment uses.
pub fn run_offline(engine: &InferenceEngine, mode: ParallelismMode) -> InferenceReport {
    engine
        .run_scenario(&Scenario::offline(mode))
        .expect_offline()
}

/// The cluster shape the paper evaluates on: 4 GPUs per node, so `gpus`
/// GPUs means `gpus / 4` nodes (or a partial single node below 4).
pub fn cluster_for(gpus: usize) -> ClusterSpec {
    if gpus < 4 {
        ClusterSpec::single_node(gpus).expect("gpus >= 1")
    } else {
        assert!(
            gpus.is_multiple_of(4),
            "multi-node shapes must fill 4-GPU nodes"
        );
        ClusterSpec::wilkes3(gpus / 4).expect("nodes >= 1")
    }
}

/// Build an engine for `model` on `gpus` GPUs with scale-appropriate
/// workload sizes.
pub fn engine_for(model: ModelConfig, gpus: usize, scale: Scale) -> InferenceEngine {
    // Requests per GPU stay moderately large so the dispatch Alltoall is
    // bandwidth- rather than straggler-dominated, matching the paper's
    // batched serving scenario.
    InferenceEngine::builder(model, cluster_for(gpus))
        .requests_per_gpu(scale.pick(16, 48))
        .prompt_len(scale.pick(8, 32))
        .n_iterations(scale.pick(2, 6))
        .profile_tokens(scale.pick(1200, 3000))
        .placement_restarts(scale.pick(0, 1))
        .seed(20_240_401)
        .build()
}

/// A reduced-layer copy of a model config (keeps Quick runs fast while
/// preserving the expert count that drives the experiments).
pub fn with_layers(mut model: ModelConfig, n_layers: usize) -> ModelConfig {
    model.n_layers = n_layers;
    model
}

#[cfg(test)]
mod tests {
    use super::*;
    use exflow_model::presets::moe_gpt_m;

    #[test]
    fn cluster_shapes_follow_wilkes3() {
        assert_eq!(cluster_for(2).n_nodes(), 1);
        assert_eq!(cluster_for(4).n_nodes(), 1);
        assert_eq!(cluster_for(16).n_nodes(), 4);
        assert_eq!(cluster_for(16).gpus_per_node(), 4);
    }

    #[test]
    #[should_panic(expected = "4-GPU nodes")]
    fn partial_nodes_rejected() {
        let _ = cluster_for(6);
    }

    #[test]
    fn engine_builds_for_quick_scale() {
        let engine = engine_for(with_layers(moe_gpt_m(8), 4), 4, Scale::Quick);
        assert_eq!(engine.config().cluster.world_size(), 4);
        assert_eq!(engine.config().model.n_layers, 4);
    }
}
