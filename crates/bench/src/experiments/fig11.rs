//! Fig. 11 — per-expert share of routed tokens at the last MoE layer over
//! the first 2000 training iterations: training starts collapsed onto a
//! few experts and rebalances under the GShard loss.

use exflow_model::routing::AffinityModelSpec;
use exflow_model::TrainingSimulator;

use crate::fmt::{pct, render_table};
use crate::Scale;

/// One (expert count, iteration) sample.
#[derive(Debug, Clone)]
pub struct Row {
    /// Experts per layer.
    pub n_experts: usize,
    /// Training iteration.
    pub iteration: u64,
    /// Largest single expert's token share.
    pub max_share: f64,
    /// Number of experts receiving any tokens.
    pub active_experts: usize,
}

/// Regenerate the early-training sweep for the 8/16/32/64-expert models.
pub fn run(scale: Scale) -> Vec<Row> {
    let expert_counts: Vec<usize> = scale.pick(vec![8, 32], vec![8, 16, 32, 64]);
    let iters: Vec<u64> = scale.pick(
        vec![0, 250, 500, 1000, 2000],
        vec![0, 100, 200, 300, 400, 500, 750, 1000, 1500, 2000],
    );
    let mut rows = Vec::new();
    for e in expert_counts {
        let sim = TrainingSimulator::new(AffinityModelSpec::new(12, e));
        for &it in &iters {
            let shares = sim.expert_share_at(it);
            rows.push(Row {
                n_experts: e,
                iteration: it,
                max_share: shares.iter().copied().fold(0.0f64, f64::max),
                active_experts: shares.iter().filter(|&&s| s > 0.0).count(),
            });
        }
    }
    rows
}

/// Print the series.
pub fn print(scale: Scale) {
    println!("Fig 11: expert token share at the last MoE layer during early training\n");
    let rows: Vec<Vec<String>> = run(scale)
        .iter()
        .map(|r| {
            vec![
                r.n_experts.to_string(),
                r.iteration.to_string(),
                pct(r.max_share),
                r.active_experts.to_string(),
                pct(1.0 / r.n_experts as f64),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "experts",
                "iteration",
                "max-share",
                "active",
                "balanced-share"
            ],
            &rows
        )
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_starts_collapsed_and_rebalances() {
        let rows = run(Scale::Quick);
        for e in [8usize, 32] {
            let series: Vec<&Row> = rows.iter().filter(|r| r.n_experts == e).collect();
            let first = series.first().unwrap();
            let last = series.last().unwrap();
            // Iteration 0: dominated by few experts.
            assert!(
                first.max_share > 2.0 / e as f64,
                "{e} experts: initial share {} not skewed",
                first.max_share
            );
            // Iteration 2000: balanced.
            assert!(
                (last.max_share - 1.0 / e as f64).abs() < 1e-9,
                "{e} experts: final share {} not balanced",
                last.max_share
            );
            assert_eq!(last.active_experts, e);
        }
    }

    #[test]
    fn active_count_is_monotone_in_iteration() {
        let rows = run(Scale::Quick);
        for e in [8usize, 32] {
            let series: Vec<&Row> = rows.iter().filter(|r| r.n_experts == e).collect();
            for pair in series.windows(2) {
                assert!(pair[1].active_experts >= pair[0].active_experts);
            }
        }
    }
}
