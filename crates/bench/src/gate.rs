//! The CI perf-gate: compare a fresh `BENCH_*.json` against the committed
//! baseline.
//!
//! Objectives (`cross_mass`, `nnz`) are deterministic facts — they are
//! printed with shortest round-trip formatting, so *string* inequality in
//! the JSON is *bit* inequality of the value, and any mismatch is a hard
//! failure (the baseline must be regenerated deliberately, never drift
//! silently). Wall-clock numbers are machine-dependent measurements:
//! regressions beyond [`WALL_REGRESSION_WARN`] only produce warnings for
//! the job summary, because CI runners are noisy.
//!
//! The parser is deliberately minimal: it reads exactly the line-oriented
//! JSON this workspace emits (`BenchSummary::to_json`), not arbitrary
//! JSON — the workspace builds offline and carries no serde.

/// Fractional wall-clock regression beyond which a warning is emitted
/// (fresh > 1.25x baseline).
pub const WALL_REGRESSION_WARN: f64 = 1.25;

/// Wall measurements shorter than this (milliseconds) are never compared:
/// at micro scale the noise floor dwarfs any real regression.
pub const WALL_FLOOR_MS: f64 = 5.0;

/// The sparse backend must beat dense by at least this factor on the
/// `E = 512`, top-1 cell (the acceptance bar of the sparse backend).
pub const MIN_SPARSE_SPEEDUP_512: f64 = 2.0;

/// Budgeted incremental re-placement must recover at least this fraction
/// of the oracle re-solve's cross-traffic reduction on every
/// `table_online` scenario (the acceptance bar of the online subsystem).
pub const MIN_ONLINE_RECOVERY: f64 = 0.8;

/// Incremental objective maintenance plus the swap-gain cache must cut
/// per-re-plan candidate-gain recomputation by at least this factor over
/// a cold rebuild on every `E = 512` `table_replan_latency` cell (the
/// acceptance bar of the incremental re-plan engine). Like the sparse
/// bar, this is an operation-count — not wall-clock — contrast, so it
/// holds on 1-core runners too.
pub const MIN_REPLAN_SCAN_REDUCTION_512: f64 = 5.0;

/// Every array section of the current (`v8`) schema, oldest first, with
/// the schema version that introduced it. A baseline at version `v`
/// lacks exactly the sections introduced after `v` — the gate skips
/// bit-comparing those and *names* them in the skew note, so a reader
/// can see precisely which row families ride ungated until the baseline
/// is regenerated.
const SECTION_INTRODUCED: &[(&str, u32)] = &[
    ("rows", 1),
    ("sparse_rows", 2),
    ("online_rows", 3),
    ("replication_online_rows", 4),
    ("serving_rows", 5),
    ("elasticity_rows", 6),
    ("replan_latency_rows", 7),
    ("partial_replication_rows", 8),
];

/// Outcome of a baseline comparison.
#[derive(Debug, Clone, Default)]
pub struct GateReport {
    /// Hard failures: objective drift, schema/coverage mismatches, a
    /// sparse backend slower than its acceptance bar.
    pub drifts: Vec<String>,
    /// Soft findings: wall-clock regressions beyond the noise allowance.
    pub warnings: Vec<String>,
    /// Informational notes: accepted schema-version skew between the
    /// baseline and fresh documents. Distinct from the metric warnings —
    /// skew is *expected* right after a schema bump (the older baseline
    /// simply lacks the newer sections, so they are not gated) and clears
    /// once the committed baseline is regenerated, whereas a wall-time
    /// warning means a measured value actually moved.
    pub notes: Vec<String>,
}

impl GateReport {
    /// Whether the gate passes (warnings and notes allowed, drifts not).
    pub fn ok(&self) -> bool {
        self.drifts.is_empty()
    }

    /// Render as markdown for the CI job summary. The two soft classes
    /// are labeled separately so a reader can tell schema-version skew
    /// (fix: regenerate the baseline) from wall-time drift (fix: check
    /// the runner or the code) at a glance.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        if self.ok() {
            out.push_str("### perf-gate: PASS\n\n");
        } else {
            out.push_str("### perf-gate: FAIL (objective drift)\n\n");
            for d in &self.drifts {
                out.push_str(&format!("- :x: {d}\n"));
            }
        }
        if !self.notes.is_empty() {
            out.push_str("#### Schema-version skew (informational)\n\n");
            for n in &self.notes {
                out.push_str(&format!("- :information_source: {n}\n"));
            }
            out.push('\n');
        }
        if self.warnings.is_empty() {
            out.push_str("No wall-time regressions beyond the noise allowance.\n");
        } else {
            out.push_str("#### Wall-time regressions (warning only)\n\n");
            for w in &self.warnings {
                out.push_str(&format!("- :warning: {w}\n"));
            }
        }
        out
    }
}

/// Extract the value of `"key": <value>` from one JSON object line
/// (string values lose their quotes).
fn field(obj: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": ");
    let start = obj.find(&pat)? + pat.len();
    let rest = &obj[start..];
    let end = rest
        .char_indices()
        .find(|&(i, c)| {
            if rest[..i].matches('"').count() % 2 == 1 {
                false // inside a string value
            } else {
                c == ',' || c == '}'
            }
        })
        .map(|(i, _)| i)
        .unwrap_or(rest.len());
    Some(rest[..end].trim().trim_matches('"').to_string())
}

/// The object lines of one `"key": [ ... ]` array section.
fn rows_section<'a>(json: &'a str, key: &str) -> Vec<&'a str> {
    let pat = format!("\"{key}\": [");
    let Some(start) = json.find(&pat) else {
        return Vec::new();
    };
    json[start + pat.len()..]
        .lines()
        .map(str::trim)
        .take_while(|l| !l.starts_with(']'))
        .filter(|l| l.starts_with('{'))
        .collect()
}

fn parse_ms(value: Option<String>) -> Option<f64> {
    value.and_then(|v| v.parse().ok())
}

fn warn_wall(warnings: &mut Vec<String>, what: &str, base: Option<f64>, fresh: Option<f64>) {
    if let (Some(base), Some(fresh)) = (base, fresh) {
        if base >= WALL_FLOOR_MS && fresh > WALL_REGRESSION_WARN * base {
            warnings.push(format!(
                "{what}: wall {fresh:.1} ms vs baseline {base:.1} ms ({:.0}% regression)",
                (fresh / base - 1.0) * 100.0
            ));
        }
    }
}

/// Compare a fresh summary JSON against the committed baseline JSON.
/// The fresh document must be `exflow-bench-summary/v8`; the baseline may
/// be v8 or the older v3 through v7 (whose sections are compared as far
/// as they go — a v3 baseline simply has no `replication_online_rows`,
/// `serving_rows`, `elasticity_rows`, `replan_latency_rows`, or
/// `partial_replication_rows` to gate against, and so on up the
/// versions; the skew is surfaced as an informational note that *names*
/// the absent row families).
pub fn compare(baseline: &str, fresh: &str) -> GateReport {
    let mut report = GateReport::default();

    let get_schema = |json: &str| {
        json.lines()
            .find(|l| l.trim_start().starts_with("\"schema\""))
            .and_then(|l| field(l, "schema"))
    };
    if get_schema(fresh).as_deref() != Some("exflow-bench-summary/v8") {
        report.drifts.push(
            "schema mismatch: the fresh document must be exflow-bench-summary/v8".to_string(),
        );
        return report;
    }
    let baseline_schema = get_schema(baseline);
    let baseline_version = match baseline_schema.as_deref() {
        Some("exflow-bench-summary/v3") => 3u32,
        Some("exflow-bench-summary/v4") => 4,
        Some("exflow-bench-summary/v5") => 5,
        Some("exflow-bench-summary/v6") => 6,
        Some("exflow-bench-summary/v7") => 7,
        Some("exflow-bench-summary/v8") => 8,
        _ => {
            report.drifts.push(
                "schema mismatch: the baseline must be exflow-bench-summary/v3 through /v8 \
                 (regenerate the committed baseline with bench_summary)"
                    .to_string(),
            );
            return report;
        }
    };
    if baseline_version < 8 {
        let absent: Vec<&str> = SECTION_INTRODUCED
            .iter()
            .filter(|&&(_, since)| since > baseline_version)
            .map(|&(name, _)| name)
            .collect();
        report.notes.push(format!(
            "baseline is {}: fresh sections {} are present in the fresh run but not gated \
             until the committed baseline is regenerated",
            baseline_schema.as_deref().unwrap_or_default(),
            absent.join(", ")
        ));
    }

    // Table rows: keyed by (model, solver); cross_mass is bit-compared.
    let key_of = |line: &str| {
        (
            field(line, "model").unwrap_or_default(),
            field(line, "solver").unwrap_or_default(),
        )
    };
    let base_rows = rows_section(baseline, "rows");
    let fresh_rows = rows_section(fresh, "rows");
    for b in &base_rows {
        let key = key_of(b);
        match fresh_rows.iter().find(|f| key_of(f) == key) {
            None => report
                .drifts
                .push(format!("row {}/{} missing from fresh run", key.0, key.1)),
            Some(f) => {
                let (bc, fc) = (field(b, "cross_mass"), field(f, "cross_mass"));
                if bc != fc {
                    report.drifts.push(format!(
                        "objective drift on {}/{}: baseline {} vs fresh {}",
                        key.0,
                        key.1,
                        bc.unwrap_or_default(),
                        fc.unwrap_or_default()
                    ));
                }
                warn_wall(
                    &mut report.warnings,
                    &format!("{}/{}", key.0, key.1),
                    parse_ms(field(b, "wall_ms")),
                    parse_ms(field(f, "wall_ms")),
                );
            }
        }
    }
    for f in &fresh_rows {
        let key = key_of(f);
        if !base_rows.iter().any(|b| key_of(b) == key) {
            report.drifts.push(format!(
                "row {}/{} not in baseline (regenerate the committed JSON)",
                key.0, key.1
            ));
        }
    }

    // Sparse rows: keyed by preset; cross_mass and nnz are bit-compared.
    let base_sparse = rows_section(baseline, "sparse_rows");
    let fresh_sparse = rows_section(fresh, "sparse_rows");
    for b in &base_sparse {
        let preset = field(b, "preset").unwrap_or_default();
        match fresh_sparse
            .iter()
            .find(|f| field(f, "preset").as_deref() == Some(preset.as_str()))
        {
            None => report
                .drifts
                .push(format!("sparse row {preset} missing from fresh run")),
            Some(f) => {
                for fact in ["cross_mass", "nnz"] {
                    let (bv, fv) = (field(b, fact), field(f, fact));
                    if bv != fv {
                        report.drifts.push(format!(
                            "{fact} drift on {preset}: baseline {} vs fresh {}",
                            bv.unwrap_or_default(),
                            fv.unwrap_or_default()
                        ));
                    }
                }
                warn_wall(
                    &mut report.warnings,
                    &format!("{preset} (dense)"),
                    parse_ms(field(b, "wall_ms_dense")),
                    parse_ms(field(f, "wall_ms_dense")),
                );
                warn_wall(
                    &mut report.warnings,
                    &format!("{preset} (sparse)"),
                    parse_ms(field(b, "wall_ms_sparse")),
                    parse_ms(field(f, "wall_ms_sparse")),
                );
            }
        }
    }
    for f in &fresh_sparse {
        let preset = field(f, "preset").unwrap_or_default();
        if !base_sparse
            .iter()
            .any(|b| field(b, "preset").as_deref() == Some(preset.as_str()))
        {
            report
                .drifts
                .push(format!("sparse row {preset} not in baseline"));
        }
    }

    // Acceptance bar: the sparse backend must hold its >= 2x win on the
    // E=512 top-1 cell of the *fresh* run. This is algorithmic (not
    // thread-parallel) speedup, so it holds on 1-core runners too.
    for f in &fresh_sparse {
        let preset = field(f, "preset").unwrap_or_default();
        if field(f, "experts").as_deref() == Some("512") && field(f, "k").as_deref() == Some("1") {
            let speedup: f64 = field(f, "speedup")
                .and_then(|v| v.parse().ok())
                .unwrap_or(0.0);
            if speedup < MIN_SPARSE_SPEEDUP_512 {
                report.drifts.push(format!(
                    "sparse backend speedup on {preset} is {speedup:.2}x, below the \
                     {MIN_SPARSE_SPEEDUP_512:.1}x acceptance bar"
                ));
            }
        }
    }

    // Online rows: keyed by scenario; cross counts, migrated bytes, and
    // the final cross mass are bit-compared. A v2 baseline has no online
    // section, so coverage checks only apply when the baseline has one.
    let base_online = rows_section(baseline, "online_rows");
    let fresh_online = rows_section(fresh, "online_rows");
    if baseline.contains("\"online_rows\": [") {
        let scenario_of = |line: &str| field(line, "scenario").unwrap_or_default();
        for b in &base_online {
            let scenario = scenario_of(b);
            match fresh_online.iter().find(|f| scenario_of(f) == scenario) {
                None => report
                    .drifts
                    .push(format!("online row {scenario} missing from fresh run")),
                Some(f) => {
                    for fact in [
                        "static_cross",
                        "oracle_cross",
                        "budgeted_cross",
                        "migrated_bytes",
                        "cross_mass",
                    ] {
                        let (bv, fv) = (field(b, fact), field(f, fact));
                        if bv != fv {
                            report.drifts.push(format!(
                                "{fact} drift on {scenario}: baseline {} vs fresh {}",
                                bv.unwrap_or_default(),
                                fv.unwrap_or_default()
                            ));
                        }
                    }
                }
            }
        }
        for f in &fresh_online {
            let scenario = scenario_of(f);
            if !base_online.iter().any(|b| scenario_of(b) == scenario) {
                report
                    .drifts
                    .push(format!("online row {scenario} not in baseline"));
            }
        }
    }

    // Acceptance bars of the online subsystem, checked on the fresh run
    // regardless of baseline version: budgeted incremental re-placement
    // must recover >= 80% of the oracle's cross-traffic reduction, and
    // must never migrate more than its byte budget per re-plan.
    for f in &fresh_online {
        let scenario = field(f, "scenario").unwrap_or_default();
        let num = |key: &str| field(f, key).and_then(|v| v.parse::<f64>().ok());
        // Recompute recovery from the exact integer cross counts rather
        // than trusting the 4-decimal-rounded `recovery` field (0.79997
        // would serialize as "0.8000" and sneak past the bar).
        if let (Some(stat), Some(oracle), Some(budgeted)) = (
            num("static_cross"),
            num("oracle_cross"),
            num("budgeted_cross"),
        ) {
            let recovery = if stat <= oracle {
                1.0
            } else {
                (stat - budgeted) / (stat - oracle)
            };
            if recovery < MIN_ONLINE_RECOVERY {
                report.drifts.push(format!(
                    "online recovery on {scenario} is {recovery:.4}, below the \
                     {MIN_ONLINE_RECOVERY:.1} acceptance bar"
                ));
            }
        }
        if let (Some(migrated), Some(budget), Some(replans)) =
            (num("migrated_bytes"), num("budget_bytes"), num("replans"))
        {
            if migrated > budget * replans {
                report.drifts.push(format!(
                    "online migration on {scenario} moved {migrated} bytes across \
                     {replans} re-plans, over the {budget}-byte per-re-plan budget"
                ));
            }
        }
    }

    // Replication-online rows: keyed by scenario; cross counts, replica
    // churn, migrated bytes, and the final cross mass are bit-compared. A
    // v3 baseline has no such section, so coverage checks only apply when
    // the baseline has one.
    let base_rep = rows_section(baseline, "replication_online_rows");
    let fresh_rep = rows_section(fresh, "replication_online_rows");
    if baseline.contains("\"replication_online_rows\": [") {
        let scenario_of = |line: &str| field(line, "scenario").unwrap_or_default();
        for b in &base_rep {
            let scenario = scenario_of(b);
            match fresh_rep.iter().find(|f| scenario_of(f) == scenario) {
                None => report
                    .drifts
                    .push(format!("replication row {scenario} missing from fresh run")),
                Some(f) => {
                    for fact in [
                        "static_cross",
                        "owner_cross",
                        "joint_cross",
                        "owner_migrated_bytes",
                        "joint_migrated_bytes",
                        "replicas_added",
                        "replicas_dropped",
                        "extra_copies",
                        "cross_mass",
                    ] {
                        let (bv, fv) = (field(b, fact), field(f, fact));
                        if bv != fv {
                            report.drifts.push(format!(
                                "{fact} drift on {scenario}: baseline {} vs fresh {}",
                                bv.unwrap_or_default(),
                                fv.unwrap_or_default()
                            ));
                        }
                    }
                }
            }
        }
        for f in &fresh_rep {
            let scenario = scenario_of(f);
            if !base_rep.iter().any(|b| scenario_of(b) == scenario) {
                report
                    .drifts
                    .push(format!("replication row {scenario} not in baseline"));
            }
        }
    }

    // Acceptance bars of the replication-aware online subsystem, checked
    // on the fresh run regardless of baseline version: the joint policy
    // must respect both budget axes on every scenario (replica memory in
    // slots, migration bytes per re-plan), never lose to owner-moves-only
    // in realized cross traffic, and strictly beat it on at least one
    // scenario — that is the memory-for-migration-bytes trade-off the
    // subsystem exists to buy.
    let mut joint_dominates_somewhere = fresh_rep.is_empty();
    for f in &fresh_rep {
        let scenario = field(f, "scenario").unwrap_or_default();
        let num = |key: &str| field(f, key).and_then(|v| v.parse::<f64>().ok());
        if let (Some(extra), Some(slots)) = (num("extra_copies"), num("replica_slots")) {
            if extra > slots {
                report.drifts.push(format!(
                    "replication memory on {scenario}: {extra} extra copies over the \
                     {slots}-slot per-GPU budget"
                ));
            }
        }
        for policy in ["owner", "joint"] {
            if let (Some(migrated), Some(budget), Some(replans)) = (
                num(&format!("{policy}_migrated_bytes")),
                num("budget_bytes"),
                num(&format!("{policy}_replans")),
            ) {
                if migrated > budget * replans {
                    report.drifts.push(format!(
                        "replication migration ({policy}) on {scenario} moved {migrated} bytes \
                         across {replans} re-plans, over the {budget}-byte per-re-plan budget"
                    ));
                }
            }
        }
        if let (Some(owner), Some(joint)) = (num("owner_cross"), num("joint_cross")) {
            if joint > owner {
                report.drifts.push(format!(
                    "replication on {scenario}: joint policy crossed {joint} vs owner-moves-only \
                     {owner} at equal migration bytes"
                ));
            }
            if joint < owner {
                joint_dominates_somewhere = true;
            }
        }
    }
    if !joint_dominates_somewhere {
        report.drifts.push(
            "replication: the joint policy beats owner-moves-only on no scenario \
             (the replica memory budget bought nothing)"
                .to_string(),
        );
    }

    // Serving rows: keyed by arrival process; every latency percentile,
    // goodput, offered load, re-plan count, and migrated-byte figure is a
    // deterministic virtual-time fact, so all of them are bit-compared. A
    // v3/v4 baseline has no serving section, so coverage checks only
    // apply when the baseline has one.
    let base_serving = rows_section(baseline, "serving_rows");
    let fresh_serving = rows_section(fresh, "serving_rows");
    if baseline.contains("\"serving_rows\": [") {
        let arrival_of = |line: &str| field(line, "arrival").unwrap_or_default();
        for b in &base_serving {
            let arrival = arrival_of(b);
            match fresh_serving.iter().find(|f| arrival_of(f) == arrival) {
                None => report
                    .drifts
                    .push(format!("serving row {arrival} missing from fresh run")),
                Some(f) => {
                    for fact in [
                        "offered_load",
                        "static_p50",
                        "static_p95",
                        "static_p99",
                        "static_goodput",
                        "online_p50",
                        "online_p95",
                        "online_p99",
                        "online_goodput",
                        "online_replans",
                        "online_migrated_bytes",
                        "repl_p50",
                        "repl_p95",
                        "repl_p99",
                        "repl_goodput",
                        "repl_replicas_added",
                    ] {
                        let (bv, fv) = (field(b, fact), field(f, fact));
                        if bv != fv {
                            report.drifts.push(format!(
                                "{fact} drift on serving/{arrival}: baseline {} vs fresh {}",
                                bv.unwrap_or_default(),
                                fv.unwrap_or_default()
                            ));
                        }
                    }
                }
            }
        }
        for f in &fresh_serving {
            let arrival = arrival_of(f);
            if !base_serving.iter().any(|b| arrival_of(b) == arrival) {
                report
                    .drifts
                    .push(format!("serving row {arrival} not in baseline"));
            }
        }
    }

    // Acceptance bars of the serving front-end, checked on the fresh run
    // regardless of baseline version: under every arrival process the
    // adaptive policies — which pay for their re-placements with real
    // migration stalls in serving time — must never worsen the p99
    // latency tail over the static incumbent, and no policy may report
    // more goodput than the load it was offered.
    for f in &fresh_serving {
        let arrival = field(f, "arrival").unwrap_or_default();
        let num = |key: &str| field(f, key).and_then(|v| v.parse::<f64>().ok());
        if let Some(static_p99) = num("static_p99") {
            for policy in ["online", "repl"] {
                if let Some(p99) = num(&format!("{policy}_p99")) {
                    if p99 > static_p99 {
                        report.drifts.push(format!(
                            "serving tail on {arrival}: {policy} p99 {p99} worse than the \
                             static incumbent's {static_p99} at equal budget"
                        ));
                    }
                }
            }
        }
        if let Some(offered) = num("offered_load") {
            for policy in ["static", "online", "repl"] {
                if let Some(goodput) = num(&format!("{policy}_goodput")) {
                    if goodput > offered {
                        report.drifts.push(format!(
                            "serving goodput on {arrival}: {policy} reports {goodput} over \
                             the offered load {offered}"
                        ));
                    }
                }
            }
        }
    }

    // Elasticity rows: keyed by fault schedule; disruption counts,
    // emergency bytes, latency tails, and recovery times are all
    // deterministic virtual-time facts, so all of them are bit-compared.
    // A v3/v4/v5 baseline has no elasticity section, so coverage checks
    // only apply when the baseline has one.
    let base_elastic = rows_section(baseline, "elasticity_rows");
    let fresh_elastic = rows_section(fresh, "elasticity_rows");
    if baseline.contains("\"elasticity_rows\": [") {
        let fault_of = |line: &str| field(line, "fault").unwrap_or_default();
        for b in &base_elastic {
            let fault = fault_of(b);
            match fresh_elastic.iter().find(|f| fault_of(f) == fault) {
                None => report
                    .drifts
                    .push(format!("elasticity row {fault} missing from fresh run")),
                Some(f) => {
                    for fact in [
                        "fault_time",
                        "plain_p99",
                        "plain_disrupted",
                        "plain_steps_degraded",
                        "plain_emergency_bytes",
                        "plain_recovery",
                        "repl_p99",
                        "repl_disrupted",
                        "repl_steps_degraded",
                        "repl_emergency_bytes",
                        "repl_recovery",
                    ] {
                        let (bv, fv) = (field(b, fact), field(f, fact));
                        if bv != fv {
                            report.drifts.push(format!(
                                "{fact} drift on elasticity/{fault}: baseline {} vs fresh {}",
                                bv.unwrap_or_default(),
                                fv.unwrap_or_default()
                            ));
                        }
                    }
                    // `repl_extra_copies` joined the elasticity row at
                    // v8; older baselines simply lack the field.
                    if baseline_version >= 8 {
                        let (bv, fv) =
                            (field(b, "repl_extra_copies"), field(f, "repl_extra_copies"));
                        if bv != fv {
                            report.drifts.push(format!(
                                "repl_extra_copies drift on elasticity/{fault}: baseline {} vs \
                                 fresh {}",
                                bv.unwrap_or_default(),
                                fv.unwrap_or_default()
                            ));
                        }
                    }
                }
            }
        }
        for f in &fresh_elastic {
            let fault = fault_of(f);
            if !base_elastic.iter().any(|b| fault_of(b) == fault) {
                report
                    .drifts
                    .push(format!("elasticity row {fault} not in baseline"));
            }
        }
    }

    // Acceptance bars of the fault-tolerance layer, checked on the fresh
    // run regardless of baseline version: under every fault schedule the
    // replicated fleet must recover its latency tail (recovery >= 0)
    // strictly faster than the unreplicated fleet (which may never
    // recover at all, encoded as -1), and replica failover must save
    // emergency wire traffic over restoring from a checkpoint shard.
    for f in &fresh_elastic {
        let fault = field(f, "fault").unwrap_or_default();
        let num = |key: &str| field(f, key).and_then(|v| v.parse::<f64>().ok());
        if let (Some(plain_rec), Some(repl_rec)) = (num("plain_recovery"), num("repl_recovery")) {
            let faster = repl_rec >= 0.0 && (plain_rec < 0.0 || repl_rec < plain_rec);
            if !faster {
                report.drifts.push(format!(
                    "elasticity on {fault}: replicated fleet recovery {repl_rec} vs \
                     unreplicated {plain_rec} — replication must buy strictly faster recovery"
                ));
            }
        }
        if let (Some(plain_bytes), Some(repl_bytes)) =
            (num("plain_emergency_bytes"), num("repl_emergency_bytes"))
        {
            if repl_bytes >= plain_bytes {
                report.drifts.push(format!(
                    "elasticity on {fault}: replication shipped {repl_bytes} emergency bytes vs \
                     {plain_bytes} without — failover must save wire traffic"
                ));
            }
        }
    }

    // Replan-latency rows: keyed by preset; the solver-cost counters and
    // both final cross masses are deterministic operation counts /
    // objectives, so all of them are bit-compared. A v3..v6 baseline has
    // no such section, so coverage checks only apply when the baseline
    // has one.
    let base_replan = rows_section(baseline, "replan_latency_rows");
    let fresh_replan = rows_section(fresh, "replan_latency_rows");
    if baseline.contains("\"replan_latency_rows\": [") {
        let preset_of = |line: &str| field(line, "preset").unwrap_or_default();
        for b in &base_replan {
            let preset = preset_of(b);
            match fresh_replan.iter().find(|f| preset_of(f) == preset) {
                None => report.drifts.push(format!(
                    "replan-latency row {preset} missing from fresh run"
                )),
                Some(f) => {
                    for fact in [
                        "replans",
                        "considered",
                        "evaluated_rebuild",
                        "evaluated_incremental",
                        "reused",
                        "cross_mass_rebuild",
                        "cross_mass_incremental",
                    ] {
                        let (bv, fv) = (field(b, fact), field(f, fact));
                        if bv != fv {
                            report.drifts.push(format!(
                                "{fact} drift on replan-latency/{preset}: baseline {} vs fresh {}",
                                bv.unwrap_or_default(),
                                fv.unwrap_or_default()
                            ));
                        }
                    }
                    warn_wall(
                        &mut report.warnings,
                        &format!("{preset} (re-plan, rebuild)"),
                        parse_ms(field(b, "wall_ms_rebuild")),
                        parse_ms(field(f, "wall_ms_rebuild")),
                    );
                    warn_wall(
                        &mut report.warnings,
                        &format!("{preset} (re-plan, incremental)"),
                        parse_ms(field(b, "wall_ms_incremental")),
                        parse_ms(field(f, "wall_ms_incremental")),
                    );
                }
            }
        }
        for f in &fresh_replan {
            let preset = preset_of(f);
            if !base_replan.iter().any(|b| preset_of(b) == preset) {
                report
                    .drifts
                    .push(format!("replan-latency row {preset} not in baseline"));
            }
        }
    }

    // Acceptance bars of the incremental re-plan engine, checked on the
    // fresh run regardless of baseline version: the delta-maintained
    // objective must land bit-identical to the cold rebuild (string
    // equality of the shortest-round-trip cross masses *is* bit
    // equality), and at E = 512 the swap-gain cache must cut
    // candidate-gain recomputation at least
    // [`MIN_REPLAN_SCAN_REDUCTION_512`]x. The reduction is recomputed
    // from the exact integer counters rather than trusting the
    // 3-decimal-rounded `scan_reduction` field.
    for f in &fresh_replan {
        let preset = field(f, "preset").unwrap_or_default();
        let (cm_rebuild, cm_incremental) = (
            field(f, "cross_mass_rebuild"),
            field(f, "cross_mass_incremental"),
        );
        if cm_rebuild != cm_incremental {
            report.drifts.push(format!(
                "replan-latency on {preset}: incremental cross mass {} diverged from the \
                 rebuild's {} — incremental maintenance must be bit-identical",
                cm_incremental.unwrap_or_default(),
                cm_rebuild.unwrap_or_default()
            ));
        }
        let num = |key: &str| field(f, key).and_then(|v| v.parse::<f64>().ok());
        if field(f, "experts").as_deref() == Some("512") {
            if let (Some(rebuild), Some(incremental)) =
                (num("evaluated_rebuild"), num("evaluated_incremental"))
            {
                let reduction = if incremental > 0.0 {
                    rebuild / incremental
                } else {
                    0.0
                };
                if reduction < MIN_REPLAN_SCAN_REDUCTION_512 {
                    report.drifts.push(format!(
                        "replan-latency scan reduction on {preset} is {reduction:.2}x, below \
                         the {MIN_REPLAN_SCAN_REDUCTION_512:.1}x acceptance bar"
                    ));
                }
            }
        }
    }

    // Partial-replication rows: keyed by scenario; every field is a
    // deterministic objective, byte count, or copy count (there are no
    // wall-clock columns), so all of them are bit-compared. A v3..v7
    // baseline has no such section, so coverage checks only apply when
    // the baseline has one.
    let base_partial = rows_section(baseline, "partial_replication_rows");
    let fresh_partial = rows_section(fresh, "partial_replication_rows");
    if baseline.contains("\"partial_replication_rows\": [") {
        let scenario_of = |line: &str| field(line, "scenario").unwrap_or_default();
        for b in &base_partial {
            let scenario = scenario_of(b);
            match fresh_partial.iter().find(|f| scenario_of(f) == scenario) {
                None => report.drifts.push(format!(
                    "partial-replication row {scenario} missing from fresh run"
                )),
                Some(f) => {
                    for fact in [
                        "partial_replans",
                        "replicas_added",
                        "partial_migrated_bytes",
                        "full_migrated_bytes",
                        "partial_extra_copies",
                        "full_extra_copies",
                        "partial_cross_mass",
                        "full_cross_mass",
                        "realized_cross",
                        "cc_replicas_added",
                        "cc_local_fraction",
                    ] {
                        let (bv, fv) = (field(b, fact), field(f, fact));
                        if bv != fv {
                            report.drifts.push(format!(
                                "{fact} drift on partial-replication/{scenario}: baseline {} vs \
                                 fresh {}",
                                bv.unwrap_or_default(),
                                fv.unwrap_or_default()
                            ));
                        }
                    }
                }
            }
        }
        for f in &fresh_partial {
            let scenario = scenario_of(f);
            if !base_partial.iter().any(|b| scenario_of(b) == scenario) {
                report.drifts.push(format!(
                    "partial-replication row {scenario} not in baseline"
                ));
            }
        }
    }

    // Acceptance bars of partial replication, checked on the fresh run
    // regardless of baseline version: on every cell the subset policy —
    // which races the full fan-out from the same incumbent at the same
    // memory and migration budgets — must never lose to full replication
    // in solver cross mass, both policies must respect the per-GPU slot
    // and per-re-plan byte budgets, and at least one top-2 CC engine row
    // must actually place replicas (the regression the sweep exists to
    // catch is top-2 models silently falling back to owner-only serving).
    let mut top2_uses_replicas = fresh_partial.is_empty();
    for f in &fresh_partial {
        let scenario = field(f, "scenario").unwrap_or_default();
        let num = |key: &str| field(f, key).and_then(|v| v.parse::<f64>().ok());
        if let (Some(partial), Some(full)) = (num("partial_cross_mass"), num("full_cross_mass")) {
            if partial > full {
                report.drifts.push(format!(
                    "partial replication on {scenario}: subset policy crossed {partial} vs full \
                     fan-out's {full} at equal memory"
                ));
            }
        }
        if let Some(slots) = num("replica_slots") {
            for policy in ["partial", "full"] {
                if let Some(extra) = num(&format!("{policy}_extra_copies")) {
                    if extra > slots {
                        report.drifts.push(format!(
                            "partial replication on {scenario}: {policy} policy holds {extra} \
                             extra copies over the {slots}-slot per-GPU budget"
                        ));
                    }
                }
            }
        }
        if let (Some(migrated), Some(budget), Some(replans)) = (
            num("partial_migrated_bytes"),
            num("budget_bytes"),
            num("partial_replans"),
        ) {
            if migrated > budget * replans {
                report.drifts.push(format!(
                    "partial replication on {scenario} moved {migrated} bytes across {replans} \
                     re-plans, over the {budget}-byte per-re-plan budget"
                ));
            }
        }
        if field(f, "k").as_deref() == Some("2")
            && num("cc_replicas_added").is_some_and(|n| n > 0.0)
        {
            top2_uses_replicas = true;
        }
    }
    if !top2_uses_replicas {
        report.drifts.push(
            "partial replication: no top-2 CC row placed a replica \
             (top-2 dispatch fell back to owner-only serving)"
                .to_string(),
        );
    }

    // Whole-sweep walls.
    let top_field = |json: &str, key: &str| {
        json.lines()
            .find(|l| l.trim_start().starts_with(&format!("\"{key}\"")))
            .and_then(|l| field(l, key))
            .and_then(|v| v.parse::<f64>().ok())
    };
    warn_wall(
        &mut report.warnings,
        "whole sweep (jobs=1)",
        top_field(baseline, "wall_ms_jobs1"),
        top_field(fresh, "wall_ms_jobs1"),
    );
    warn_wall(
        &mut report.warnings,
        "whole sweep (jobs=N)",
        top_field(baseline, "wall_ms_jobsN"),
        top_field(fresh, "wall_ms_jobsN"),
    );

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::{
        BenchRow, BenchSummary, ElasticityRow, OnlineBenchRow, PartialReplicationRow,
        ReplanLatencyRow, ReplicationOnlineRow, ServingBenchRow, SparseBenchRow,
    };

    fn summary(cross: f64, wall: f64, sparse_wall_dense: f64) -> BenchSummary {
        BenchSummary {
            seed: 1,
            scale: "quick".into(),
            jobs: 4,
            wall_ms_jobs1: wall,
            wall_ms_jobs_n: wall / 2.0,
            rows: vec![BenchRow {
                model: "MoE-GPT-M/8e-24L".into(),
                solver: "greedy".into(),
                wall_ms: wall / 10.0,
                cross_mass: cross,
            }],
            sparse_rows: vec![SparseBenchRow {
                preset: "MoE-GPT-XXL/512e-24L-top1".into(),
                n_experts: 512,
                k: 1,
                layers: 2,
                nnz: 3000,
                density: 0.011,
                wall_ms_dense: sparse_wall_dense,
                wall_ms_sparse: 10.0,
                cross_mass: cross / 2.0,
            }],
            online_rows: vec![OnlineBenchRow {
                scenario: "piecewise-2phase".into(),
                n_experts: 16,
                layers: 5,
                windows: 6,
                replan_every: 1,
                budget_bytes: 1 << 28,
                migrated_bytes: 3 << 27,
                replans: 3,
                static_cross: 5000,
                oracle_cross: 3000,
                budgeted_cross: 3200,
                cross_mass: cross / 3.0,
            }],
            replication_online_rows: vec![ReplicationOnlineRow {
                scenario: "piecewise-2phase/E16".into(),
                n_experts: 16,
                layers: 5,
                units: 4,
                windows: 10,
                replan_every: 1,
                budget_bytes: 1 << 26,
                replica_slots: 8,
                owner_migrated_bytes: 3 << 25,
                joint_migrated_bytes: 1 << 26,
                owner_replans: 2,
                joint_replans: 2,
                replicas_added: 5,
                replicas_dropped: 1,
                extra_copies: 4,
                static_cross: 5000,
                owner_cross: 3600,
                joint_cross: 3100,
                cross_mass: cross / 4.0,
            }],
            serving_rows: vec![ServingBenchRow {
                arrival: "poisson".into(),
                requests: 48,
                decode_steps: 2,
                windows: 6,
                max_batch: 8,
                offered_load: 0.125,
                static_p50: 20.0,
                static_p95: 44.0,
                static_p99: 52.0,
                static_goodput: 0.115,
                online_p50: 18.0,
                online_p95: 34.0,
                online_p99: 40.0,
                online_goodput: 0.12,
                online_replans: 2,
                online_migrated_bytes: 9 << 20,
                repl_p50: 17.5,
                repl_p95: 33.0,
                repl_p99: 39.0,
                repl_goodput: 0.121,
                repl_replicas_added: 3,
            }],
            elasticity_rows: vec![ElasticityRow {
                fault: "gpu-loss".into(),
                requests: 500,
                fault_time: 12.5,
                plain_p99: 60.0,
                plain_disrupted: 9,
                plain_steps_degraded: 40,
                plain_emergency_bytes: 7 << 20,
                plain_recovery: 8.25,
                repl_p99: 48.0,
                repl_disrupted: 9,
                repl_steps_degraded: 12,
                repl_emergency_bytes: 0,
                repl_recovery: 1.5,
                repl_extra_copies: 6,
            }],
            replan_latency_rows: vec![ReplanLatencyRow {
                preset: "MoE-GPT-XXL/512e-24L-top1".into(),
                n_experts: 512,
                k: 1,
                layers: 2,
                windows: 4,
                replans: 3,
                max_moves: 40,
                considered: 8_000_000,
                evaluated_rebuild: 8_000_000,
                evaluated_incremental: 1_000_000,
                reused: 7_000_000,
                wall_ms_rebuild: 900.0,
                wall_ms_incremental: 120.0,
                cross_mass_rebuild: cross / 5.0,
                cross_mass_incremental: cross / 5.0,
            }],
            partial_replication_rows: vec![PartialReplicationRow {
                scenario: "partial-repl/256e-top2".into(),
                n_experts: 256,
                k: 2,
                layers: 2,
                units: 8,
                windows: 3,
                replica_slots: 4,
                budget_bytes: 12 << 20,
                partial_replans: 2,
                replicas_added: 5,
                partial_migrated_bytes: 6 << 20,
                full_migrated_bytes: 9 << 20,
                partial_extra_copies: 3,
                full_extra_copies: 4,
                partial_cross_mass: cross / 6.0,
                full_cross_mass: cross / 5.0,
                realized_cross: 1234,
                cc_replicas_added: 2,
                cc_local_fraction: 0.875,
            }],
        }
    }

    #[test]
    fn identical_documents_pass() {
        let json = summary(0.25, 100.0, 100.0).to_json();
        let report = compare(&json, &json);
        assert!(report.ok(), "{:?}", report.drifts);
        assert!(report.warnings.is_empty(), "{:?}", report.warnings);
        assert!(report.to_markdown().contains("PASS"));
    }

    #[test]
    fn objective_drift_fails() {
        let base = summary(0.25, 100.0, 100.0).to_json();
        let fresh = summary(0.25000000001, 100.0, 100.0).to_json();
        let report = compare(&base, &fresh);
        assert!(!report.ok());
        assert!(report.drifts[0].contains("objective drift"));
        assert!(report.to_markdown().contains("FAIL"));
    }

    #[test]
    fn one_ulp_of_drift_is_detected() {
        let x = 0.1f64;
        let bumped = f64::from_bits(x.to_bits() + 1);
        let base = summary(x, 100.0, 100.0).to_json();
        let fresh = summary(bumped, 100.0, 100.0).to_json();
        assert!(!compare(&base, &fresh).ok(), "1-ulp drift must fail");
    }

    #[test]
    fn wall_regression_only_warns() {
        let base = summary(0.25, 100.0, 100.0).to_json();
        let fresh = summary(0.25, 200.0, 100.0).to_json();
        let report = compare(&base, &fresh);
        assert!(report.ok());
        assert!(
            report.warnings.iter().any(|w| w.contains("whole sweep")),
            "{:?}",
            report.warnings
        );
    }

    #[test]
    fn wall_improvements_are_silent() {
        let base = summary(0.25, 100.0, 100.0).to_json();
        let fresh = summary(0.25, 50.0, 100.0).to_json();
        let report = compare(&base, &fresh);
        assert!(report.ok() && report.warnings.is_empty());
    }

    #[test]
    fn nnz_drift_fails() {
        let base = summary(0.25, 100.0, 100.0);
        let mut fresh = base.clone();
        fresh.sparse_rows[0].nnz += 1;
        let report = compare(&base.to_json(), &fresh.to_json());
        assert!(!report.ok());
        assert!(report.drifts[0].contains("nnz drift"));
    }

    #[test]
    fn slow_sparse_backend_fails_the_bar() {
        let base = summary(0.25, 100.0, 100.0).to_json();
        // Dense wall 15 ms vs sparse 10 ms: only 1.5x on the 512 cell.
        let fresh = summary(0.25, 100.0, 15.0).to_json();
        let report = compare(&base, &fresh);
        assert!(!report.ok());
        assert!(
            report.drifts.iter().any(|d| d.contains("acceptance bar")),
            "{:?}",
            report.drifts
        );
    }

    #[test]
    fn missing_and_extra_rows_fail() {
        let base = summary(0.25, 100.0, 100.0);
        let mut fresh = base.clone();
        fresh.rows[0].solver = "renamed".into();
        let report = compare(&base.to_json(), &fresh.to_json());
        assert!(!report.ok());
        assert!(report.drifts.iter().any(|d| d.contains("missing")));
        assert!(report.drifts.iter().any(|d| d.contains("not in baseline")));
    }

    #[test]
    fn v1_baseline_is_rejected() {
        let fresh = summary(0.25, 100.0, 100.0).to_json();
        let old = fresh.replace("exflow-bench-summary/v8", "exflow-bench-summary/v1");
        let report = compare(&old, &fresh);
        assert!(!report.ok());
        assert!(report.drifts[0].contains("schema"));
    }

    /// Drop the last array section of a document (the emitter always
    /// closes it with `  ]\n}`) and relabel the schema.
    fn strip_last_section(json: &str, key: &str, from: &str, to: &str) -> String {
        let start = json.find(&format!(",\n  \"{key}\": [")).unwrap();
        let end = json.rfind("  ]\n}").unwrap();
        let mut out = String::new();
        out.push_str(&json[..start]);
        out.push('\n');
        out.push_str(&json[end + 4..]);
        out.replace(from, to)
    }

    /// Strip a v8 document down to the v7 schema (drop the
    /// partial_replication_rows section and relabel).
    fn as_v7(json: &str) -> String {
        strip_last_section(
            json,
            "partial_replication_rows",
            "exflow-bench-summary/v8",
            "exflow-bench-summary/v7",
        )
    }

    /// Strip a v8 document down to the v6 schema (drop the
    /// partial_replication_rows and replan_latency_rows sections and
    /// relabel).
    fn as_v6(json: &str) -> String {
        strip_last_section(
            &as_v7(json),
            "replan_latency_rows",
            "exflow-bench-summary/v7",
            "exflow-bench-summary/v6",
        )
    }

    /// Strip a v8 document down to the v5 schema (additionally drop the
    /// elasticity_rows section and relabel).
    fn as_v5(json: &str) -> String {
        strip_last_section(
            &as_v6(json),
            "elasticity_rows",
            "exflow-bench-summary/v6",
            "exflow-bench-summary/v5",
        )
    }

    /// Strip a v8 document down to the v4 schema (additionally drop the
    /// serving_rows section and relabel).
    fn as_v4(json: &str) -> String {
        strip_last_section(
            &as_v5(json),
            "serving_rows",
            "exflow-bench-summary/v5",
            "exflow-bench-summary/v4",
        )
    }

    /// Strip a v8 document down to the v3 schema (keep only the rows,
    /// sparse_rows, and online_rows sections and relabel).
    fn as_v3(json: &str) -> String {
        strip_last_section(
            &as_v4(json),
            "replication_online_rows",
            "exflow-bench-summary/v4",
            "exflow-bench-summary/v3",
        )
    }

    #[test]
    fn v3_baseline_is_still_accepted() {
        let fresh = summary(0.25, 100.0, 100.0).to_json();
        let old = as_v3(&fresh);
        assert!(old.contains("exflow-bench-summary/v3"));
        assert!(!old.contains("replication_online_rows"));
        assert!(!old.contains("serving_rows"));
        let report = compare(&old, &fresh);
        assert!(report.ok(), "{:?}", report.drifts);
        // But objective drift in the shared sections still fails.
        let drifted = summary(0.26, 100.0, 100.0).to_json();
        assert!(!compare(&old, &drifted).ok());
    }

    #[test]
    fn v4_baseline_is_still_accepted_and_noted_as_skew() {
        let fresh = summary(0.25, 100.0, 100.0).to_json();
        let old = as_v4(&fresh);
        assert!(old.contains("exflow-bench-summary/v4"));
        assert!(old.contains("replication_online_rows"));
        assert!(!old.contains("serving_rows"));
        let report = compare(&old, &fresh);
        assert!(report.ok(), "{:?}", report.drifts);
        // The skew is surfaced as an informational note, labeled apart
        // from wall-time warnings in the markdown.
        assert_eq!(report.notes.len(), 1, "{:?}", report.notes);
        assert!(report.notes[0].contains("exflow-bench-summary/v4"));
        let md = report.to_markdown();
        assert!(md.contains("Schema-version skew"));
        assert!(!md.contains("Wall-time regressions"));
    }

    #[test]
    fn matching_schemas_produce_no_skew_note() {
        let json = summary(0.25, 100.0, 100.0).to_json();
        let report = compare(&json, &json);
        assert!(report.notes.is_empty(), "{:?}", report.notes);
        assert!(!report.to_markdown().contains("Schema-version skew"));
    }

    #[test]
    fn wall_warnings_are_labeled_apart_from_skew_notes() {
        let base = summary(0.25, 100.0, 100.0).to_json();
        let fresh = summary(0.25, 200.0, 100.0).to_json();
        let md = compare(&base, &fresh).to_markdown();
        assert!(md.contains("Wall-time regressions"));
        assert!(!md.contains("Schema-version skew"));
    }

    #[test]
    fn v5_baseline_is_still_accepted_and_noted_as_skew() {
        let fresh = summary(0.25, 100.0, 100.0).to_json();
        let old = as_v5(&fresh);
        assert!(old.contains("exflow-bench-summary/v5"));
        assert!(old.contains("serving_rows"));
        assert!(!old.contains("elasticity_rows"));
        let report = compare(&old, &fresh);
        assert!(report.ok(), "{:?}", report.drifts);
        assert_eq!(report.notes.len(), 1, "{:?}", report.notes);
        assert!(report.notes[0].contains("exflow-bench-summary/v5"));
    }

    #[test]
    fn v5_fresh_document_is_rejected() {
        let base = summary(0.25, 100.0, 100.0).to_json();
        let fresh = as_v5(&base);
        let report = compare(&base, &fresh);
        assert!(!report.ok());
        assert!(report.drifts[0].contains("must be exflow-bench-summary/v8"));
    }

    #[test]
    fn replication_cross_drift_fails() {
        let base = summary(0.25, 100.0, 100.0);
        let mut fresh = base.clone();
        fresh.replication_online_rows[0].joint_cross -= 1;
        let report = compare(&base.to_json(), &fresh.to_json());
        assert!(!report.ok());
        assert!(
            report
                .drifts
                .iter()
                .any(|d| d.contains("joint_cross drift")),
            "{:?}",
            report.drifts
        );
    }

    #[test]
    fn replication_memory_violation_fails() {
        let base = summary(0.25, 100.0, 100.0);
        let mut fresh = base.clone();
        fresh.replication_online_rows[0].extra_copies =
            fresh.replication_online_rows[0].replica_slots + 1;
        let report = compare(&base.to_json(), &fresh.to_json());
        assert!(
            report
                .drifts
                .iter()
                .any(|d| d.contains("slot per-GPU budget") || d.contains("-slot per-GPU budget")),
            "{:?}",
            report.drifts
        );
    }

    #[test]
    fn replication_migration_violation_fails() {
        let base = summary(0.25, 100.0, 100.0);
        let mut fresh = base.clone();
        fresh.replication_online_rows[0].joint_migrated_bytes = fresh.replication_online_rows[0]
            .budget_bytes
            * fresh.replication_online_rows[0].joint_replans as u64
            + 1;
        let report = compare(&base.to_json(), &fresh.to_json());
        assert!(
            report
                .drifts
                .iter()
                .any(|d| d.contains("replication migration (joint)")),
            "{:?}",
            report.drifts
        );
    }

    #[test]
    fn joint_policy_losing_to_owner_moves_fails() {
        let base = summary(0.25, 100.0, 100.0);
        let mut fresh = base.clone();
        fresh.replication_online_rows[0].joint_cross =
            fresh.replication_online_rows[0].owner_cross + 100;
        let report = compare(&base.to_json(), &fresh.to_json());
        assert!(
            report
                .drifts
                .iter()
                .any(|d| d.contains("at equal migration bytes")),
            "{:?}",
            report.drifts
        );
    }

    #[test]
    fn joint_policy_tying_everywhere_fails_the_domination_bar() {
        let base = summary(0.25, 100.0, 100.0);
        let mut fresh = base.clone();
        fresh.replication_online_rows[0].joint_cross = fresh.replication_online_rows[0].owner_cross;
        let report = compare(&base.to_json(), &fresh.to_json());
        assert!(
            report
                .drifts
                .iter()
                .any(|d| d.contains("the replica memory budget bought nothing")),
            "{:?}",
            report.drifts
        );
    }

    #[test]
    fn serving_latency_drift_fails() {
        let base = summary(0.25, 100.0, 100.0);
        let mut fresh = base.clone();
        fresh.serving_rows[0].online_p99 += 1e-9;
        let report = compare(&base.to_json(), &fresh.to_json());
        assert!(!report.ok());
        assert!(
            report
                .drifts
                .iter()
                .any(|d| d.contains("online_p99 drift on serving/poisson")),
            "{:?}",
            report.drifts
        );
    }

    #[test]
    fn serving_tail_regression_fails_the_bar() {
        let base = summary(0.25, 100.0, 100.0);
        let mut fresh = base.clone();
        // Online p99 worse than static: the whole point of paying
        // migration stalls is lost, and the gate must say so even though
        // the baseline (bit-compare) would also catch the change.
        fresh.serving_rows[0].online_p99 = fresh.serving_rows[0].static_p99 + 1.0;
        let report = compare(&base.to_json(), &fresh.to_json());
        assert!(
            report
                .drifts
                .iter()
                .any(|d| d.contains("serving tail on poisson")),
            "{:?}",
            report.drifts
        );
        // The bar also binds against a v4 baseline, where no bit-compare
        // covers the serving section at all.
        let report = compare(&as_v4(&base.to_json()), &fresh.to_json());
        assert!(
            report
                .drifts
                .iter()
                .any(|d| d.contains("serving tail on poisson")),
            "{:?}",
            report.drifts
        );
    }

    #[test]
    fn serving_goodput_over_offered_load_fails() {
        let base = summary(0.25, 100.0, 100.0);
        let mut fresh = base.clone();
        fresh.serving_rows[0].repl_goodput = fresh.serving_rows[0].offered_load * 2.0;
        let report = compare(&base.to_json(), &fresh.to_json());
        assert!(
            report
                .drifts
                .iter()
                .any(|d| d.contains("serving goodput on poisson")),
            "{:?}",
            report.drifts
        );
    }

    #[test]
    fn serving_missing_arrival_fails() {
        let base = summary(0.25, 100.0, 100.0);
        let mut fresh = base.clone();
        fresh.serving_rows[0].arrival = "renamed".into();
        let report = compare(&base.to_json(), &fresh.to_json());
        assert!(!report.ok());
        assert!(report.drifts.iter().any(|d| d.contains("serving row")));
        assert!(report.drifts.iter().any(|d| d.contains("not in baseline")));
    }

    #[test]
    fn elasticity_recovery_drift_fails() {
        let base = summary(0.25, 100.0, 100.0);
        let mut fresh = base.clone();
        fresh.elasticity_rows[0].repl_recovery += 1e-9;
        let report = compare(&base.to_json(), &fresh.to_json());
        assert!(!report.ok());
        assert!(
            report
                .drifts
                .iter()
                .any(|d| d.contains("repl_recovery drift on elasticity/gpu-loss")),
            "{:?}",
            report.drifts
        );
    }

    #[test]
    fn slow_replicated_recovery_fails_the_bar() {
        let base = summary(0.25, 100.0, 100.0);
        for repl_recovery in [-1.0, 9.0] {
            // Never recovering, or recovering slower than the
            // unreplicated fleet's 8.25, both fail.
            let mut fresh = base.clone();
            fresh.elasticity_rows[0].repl_recovery = repl_recovery;
            let report = compare(&base.to_json(), &fresh.to_json());
            assert!(
                report
                    .drifts
                    .iter()
                    .any(|d| d.contains("strictly faster recovery")),
                "repl_recovery {repl_recovery}: {:?}",
                report.drifts
            );
            // The bar also binds against a v5 baseline, where no
            // bit-compare covers the elasticity section at all.
            let report = compare(&as_v5(&base.to_json()), &fresh.to_json());
            assert!(
                report
                    .drifts
                    .iter()
                    .any(|d| d.contains("strictly faster recovery")),
                "repl_recovery {repl_recovery} (v5 baseline): {:?}",
                report.drifts
            );
        }
    }

    #[test]
    fn failover_saving_no_wire_traffic_fails_the_bar() {
        let base = summary(0.25, 100.0, 100.0);
        let mut fresh = base.clone();
        fresh.elasticity_rows[0].repl_emergency_bytes =
            fresh.elasticity_rows[0].plain_emergency_bytes;
        let report = compare(&base.to_json(), &fresh.to_json());
        assert!(
            report
                .drifts
                .iter()
                .any(|d| d.contains("failover must save wire traffic")),
            "{:?}",
            report.drifts
        );
    }

    #[test]
    fn elasticity_missing_fault_fails() {
        let base = summary(0.25, 100.0, 100.0);
        let mut fresh = base.clone();
        fresh.elasticity_rows[0].fault = "renamed".into();
        let report = compare(&base.to_json(), &fresh.to_json());
        assert!(!report.ok());
        assert!(report.drifts.iter().any(|d| d.contains("elasticity row")));
        assert!(report.drifts.iter().any(|d| d.contains("not in baseline")));
    }

    #[test]
    fn v6_baseline_is_accepted_and_note_names_the_replan_section() {
        let fresh = summary(0.25, 100.0, 100.0).to_json();
        let old = as_v6(&fresh);
        assert!(old.contains("exflow-bench-summary/v6"));
        assert!(old.contains("elasticity_rows"));
        assert!(!old.contains("replan_latency_rows"));
        let report = compare(&old, &fresh);
        assert!(report.ok(), "{:?}", report.drifts);
        assert_eq!(report.notes.len(), 1, "{:?}", report.notes);
        assert!(report.notes[0].contains("exflow-bench-summary/v6"));
        assert!(report.notes[0].contains("replan_latency_rows"));
        // Only the one section rides ungated at v6.
        assert!(!report.notes[0].contains("elasticity_rows"));
    }

    #[test]
    fn skew_note_enumerates_every_absent_section() {
        let fresh = summary(0.25, 100.0, 100.0).to_json();
        let report = compare(&as_v4(&fresh), &fresh);
        assert!(report.ok(), "{:?}", report.drifts);
        assert_eq!(report.notes.len(), 1, "{:?}", report.notes);
        for section in [
            "serving_rows",
            "elasticity_rows",
            "replan_latency_rows",
            "partial_replication_rows",
        ] {
            assert!(
                report.notes[0].contains(section),
                "note must name {section}: {:?}",
                report.notes
            );
        }
        assert!(!report.notes[0].contains("replication_online_rows"));
    }

    #[test]
    fn v7_baseline_is_accepted_and_note_names_the_partial_section() {
        let fresh = summary(0.25, 100.0, 100.0).to_json();
        let old = as_v7(&fresh);
        assert!(old.contains("exflow-bench-summary/v7"));
        assert!(old.contains("replan_latency_rows"));
        assert!(!old.contains("partial_replication_rows"));
        let report = compare(&old, &fresh);
        assert!(report.ok(), "{:?}", report.drifts);
        assert_eq!(report.notes.len(), 1, "{:?}", report.notes);
        assert!(report.notes[0].contains("exflow-bench-summary/v7"));
        assert!(report.notes[0].contains("partial_replication_rows"));
        // Only the one section rides ungated at v7.
        assert!(!report.notes[0].contains("replan_latency_rows"));
    }

    #[test]
    fn partial_cross_drift_fails() {
        let base = summary(0.25, 100.0, 100.0);
        let mut fresh = base.clone();
        fresh.partial_replication_rows[0].partial_cross_mass += 1e-12;
        let report = compare(&base.to_json(), &fresh.to_json());
        assert!(!report.ok());
        assert!(
            report
                .drifts
                .iter()
                .any(|d| d.contains("partial_cross_mass drift on partial-replication")),
            "{:?}",
            report.drifts
        );
    }

    #[test]
    fn partial_losing_to_full_fails_the_bar() {
        let base = summary(0.25, 100.0, 100.0);
        let mut fresh = base.clone();
        fresh.partial_replication_rows[0].partial_cross_mass =
            fresh.partial_replication_rows[0].full_cross_mass + 0.1;
        let report = compare(&base.to_json(), &fresh.to_json());
        assert!(
            report.drifts.iter().any(|d| d.contains("at equal memory")),
            "{:?}",
            report.drifts
        );
        // The bar also binds against a v7 baseline, where no bit-compare
        // covers the partial-replication section at all.
        let report = compare(&as_v7(&base.to_json()), &fresh.to_json());
        assert!(
            report.drifts.iter().any(|d| d.contains("at equal memory")),
            "{:?}",
            report.drifts
        );
    }

    #[test]
    fn top2_falling_back_to_owner_only_fails_the_bar() {
        let base = summary(0.25, 100.0, 100.0);
        let mut fresh = base.clone();
        fresh.partial_replication_rows[0].cc_replicas_added = 0;
        let report = compare(&base.to_json(), &fresh.to_json());
        assert!(
            report
                .drifts
                .iter()
                .any(|d| d.contains("fell back to owner-only serving")),
            "{:?}",
            report.drifts
        );
    }

    #[test]
    fn partial_memory_violation_fails() {
        let base = summary(0.25, 100.0, 100.0);
        let mut fresh = base.clone();
        fresh.partial_replication_rows[0].partial_extra_copies =
            fresh.partial_replication_rows[0].replica_slots + 1;
        let report = compare(&base.to_json(), &fresh.to_json());
        assert!(
            report
                .drifts
                .iter()
                .any(|d| d.contains("partial policy holds")),
            "{:?}",
            report.drifts
        );
    }

    #[test]
    fn partial_migration_violation_fails() {
        let base = summary(0.25, 100.0, 100.0);
        let mut fresh = base.clone();
        fresh.partial_replication_rows[0].partial_migrated_bytes =
            fresh.partial_replication_rows[0].budget_bytes
                * fresh.partial_replication_rows[0].partial_replans as u64
                + 1;
        let report = compare(&base.to_json(), &fresh.to_json());
        assert!(
            report
                .drifts
                .iter()
                .any(|d| d.contains("per-re-plan budget") && d.contains("partial replication")),
            "{:?}",
            report.drifts
        );
    }

    #[test]
    fn repl_extra_copies_drift_fails_only_against_a_v8_baseline() {
        let base = summary(0.25, 100.0, 100.0);
        let mut fresh = base.clone();
        fresh.elasticity_rows[0].repl_extra_copies += 1;
        let report = compare(&base.to_json(), &fresh.to_json());
        assert!(
            report
                .drifts
                .iter()
                .any(|d| d.contains("repl_extra_copies drift")),
            "{:?}",
            report.drifts
        );
        // A v7 baseline has elasticity rows but not the field: the drift
        // must not misfire as "" vs value.
        let report = compare(&as_v7(&base.to_json()), &fresh.to_json());
        assert!(
            !report
                .drifts
                .iter()
                .any(|d| d.contains("repl_extra_copies")),
            "{:?}",
            report.drifts
        );
    }

    #[test]
    fn replan_counter_drift_fails() {
        let base = summary(0.25, 100.0, 100.0);
        let mut fresh = base.clone();
        fresh.replan_latency_rows[0].evaluated_incremental += 1;
        let report = compare(&base.to_json(), &fresh.to_json());
        assert!(!report.ok());
        assert!(
            report
                .drifts
                .iter()
                .any(|d| d.contains("evaluated_incremental drift on replan-latency")),
            "{:?}",
            report.drifts
        );
    }

    #[test]
    fn incremental_cross_mass_divergence_fails_the_bar() {
        let base = summary(0.25, 100.0, 100.0);
        let mut fresh = base.clone();
        fresh.replan_latency_rows[0].cross_mass_incremental += 1e-12;
        let report = compare(&base.to_json(), &fresh.to_json());
        assert!(
            report
                .drifts
                .iter()
                .any(|d| d.contains("diverged from the rebuild")),
            "{:?}",
            report.drifts
        );
        // The bit-equality bar also binds against a v6 baseline, where
        // no bit-compare covers the replan-latency section at all.
        let report = compare(&as_v6(&base.to_json()), &fresh.to_json());
        assert!(
            report
                .drifts
                .iter()
                .any(|d| d.contains("diverged from the rebuild")),
            "{:?}",
            report.drifts
        );
    }

    #[test]
    fn low_replan_scan_reduction_fails_the_bar() {
        let base = summary(0.25, 100.0, 100.0);
        let mut fresh = base.clone();
        // 8M rebuild vs 4M incremental: only a 2x cut on the 512 cell.
        fresh.replan_latency_rows[0].evaluated_incremental = 4_000_000;
        fresh.replan_latency_rows[0].reused = 4_000_000;
        let report = compare(&base.to_json(), &fresh.to_json());
        assert!(
            report.drifts.iter().any(|d| d.contains("below the")),
            "{:?}",
            report.drifts
        );
        // The bar also binds against a v6 baseline.
        let report = compare(&as_v6(&base.to_json()), &fresh.to_json());
        assert!(
            report.drifts.iter().any(|d| d.contains("below the")),
            "{:?}",
            report.drifts
        );
    }

    #[test]
    fn replan_missing_preset_fails() {
        let base = summary(0.25, 100.0, 100.0);
        let mut fresh = base.clone();
        fresh.replan_latency_rows[0].preset = "renamed".into();
        let report = compare(&base.to_json(), &fresh.to_json());
        assert!(!report.ok());
        assert!(
            report
                .drifts
                .iter()
                .any(|d| d.contains("replan-latency row") && d.contains("missing")),
            "{:?}",
            report.drifts
        );
        assert!(report.drifts.iter().any(|d| d.contains("not in baseline")));
    }

    #[test]
    fn online_cross_drift_fails() {
        let base = summary(0.25, 100.0, 100.0);
        let mut fresh = base.clone();
        fresh.online_rows[0].budgeted_cross += 1;
        let report = compare(&base.to_json(), &fresh.to_json());
        assert!(!report.ok());
        assert!(
            report
                .drifts
                .iter()
                .any(|d| d.contains("budgeted_cross drift")),
            "{:?}",
            report.drifts
        );
    }

    #[test]
    fn online_missing_scenario_fails() {
        let base = summary(0.25, 100.0, 100.0);
        let mut fresh = base.clone();
        fresh.online_rows[0].scenario = "renamed".into();
        let report = compare(&base.to_json(), &fresh.to_json());
        assert!(!report.ok());
        assert!(report.drifts.iter().any(|d| d.contains("missing")));
        assert!(report.drifts.iter().any(|d| d.contains("not in baseline")));
    }

    #[test]
    fn low_online_recovery_fails_the_bar() {
        let base = summary(0.25, 100.0, 100.0);
        let mut fresh = base.clone();
        // static 5000, oracle 3000: budgeted 4000 recovers only 50%.
        fresh.online_rows[0].budgeted_cross = 4000;
        let report = compare(&base.to_json(), &fresh.to_json());
        assert!(
            report.drifts.iter().any(|d| d.contains("acceptance bar")),
            "{:?}",
            report.drifts
        );
    }

    #[test]
    fn online_budget_violation_fails() {
        let base = summary(0.25, 100.0, 100.0);
        let mut fresh = base.clone();
        fresh.online_rows[0].migrated_bytes =
            fresh.online_rows[0].budget_bytes * fresh.online_rows[0].replans as u64 + 1;
        let report = compare(&base.to_json(), &fresh.to_json());
        assert!(
            report
                .drifts
                .iter()
                .any(|d| d.contains("per-re-plan budget")),
            "{:?}",
            report.drifts
        );
    }
}
