//! Deterministic fan-out of experiment sweep points across a work-stealing
//! pool.
//!
//! Every experiment grid in this crate (GPU counts, κ values, model ×
//! solver products, ...) is embarrassingly parallel: each point is a pure
//! function of its parameters and a fixed seed. [`SweepPool::install`]
//! makes a `--jobs N` width ambient for the dynamic extent of a run (the
//! rayon shim keeps it in a thread-local, so concurrent runs with
//! different widths don't interfere), and [`par_map`] fans a grid across
//! that width, returning results in input order — so `repro --jobs 8` and
//! `repro --jobs 1` print byte-identical artifacts, faster.

use rayon::iter::{IntoParallelIterator, ParallelIterator};
use rayon::ThreadPool;

/// Upper bound on `--jobs`: wider than any realistic runner, low enough
/// to catch typos (`--jobs 1000000`) before they spawn a thread storm.
pub const MAX_JOBS: usize = 512;

/// A sweep-wide worker pool of a fixed, validated width.
#[derive(Debug, Clone)]
pub struct SweepPool {
    pool: ThreadPool,
}

impl SweepPool {
    /// A pool of `jobs` workers. Panics if `jobs` is 0 or above
    /// [`MAX_JOBS`]; CLI layers validate first and exit 2 instead.
    pub fn new(jobs: usize) -> Self {
        assert!(
            (1..=MAX_JOBS).contains(&jobs),
            "jobs must be in 1..={MAX_JOBS}, got {jobs}"
        );
        SweepPool {
            pool: ThreadPool::new(jobs).expect("width validated above"),
        }
    }

    /// This pool's width.
    pub fn jobs(&self) -> usize {
        self.pool.current_num_threads()
    }

    /// Run `op` with this pool's width installed: every [`par_map`] (and
    /// every parallel iterator) reached from `op` on this thread fans out
    /// across `jobs` workers.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        self.pool.install(op)
    }
}

/// Fan `items` across the installed pool (sequential when none is
/// installed). Results come back in input order, bit-identical to the
/// sequential run for pure `f` — thread count only changes wall time.
pub fn par_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    items.into_par_iter().map(f).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order_at_any_width() {
        let seq: Vec<usize> = (0..40).map(|i| i * i).collect();
        for jobs in [1, 2, 8] {
            let pool = SweepPool::new(jobs);
            let par = pool.install(|| par_map((0..40).collect(), |i: usize| i * i));
            assert_eq!(par, seq, "jobs {jobs}");
        }
    }

    #[test]
    fn par_map_without_pool_is_sequential_and_correct() {
        let out = par_map(vec![3usize, 1, 2], |x| x + 1);
        assert_eq!(out, vec![4, 2, 3]);
    }

    #[test]
    fn par_map_empty_grid() {
        let pool = SweepPool::new(4);
        let out: Vec<usize> = pool.install(|| par_map(Vec::<usize>::new(), |x| x));
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "jobs must be in")]
    fn zero_jobs_pool_rejected() {
        let _ = SweepPool::new(0);
    }

    #[test]
    #[should_panic(expected = "jobs must be in")]
    fn absurd_jobs_pool_rejected() {
        let _ = SweepPool::new(MAX_JOBS + 1);
    }
}
