//! Minimal plain-text table formatting for the `repro` binary.

/// Render rows of cells as an aligned table with a header rule.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width must match header");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:width$}", cell, width = widths[i]));
        }
        line.push('\n');
        line
    };
    out.push_str(&fmt_row(headers.to_vec(), &widths));
    let rule_len = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(rule_len));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.iter().map(|s| s.as_str()).collect(), &widths));
    }
    out
}

/// Format a float with 3 decimal places.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Format a float as a percentage with 1 decimal place.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Format a ratio as `N.NNx`.
pub fn speedup(v: f64) -> String {
    format!("{v:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = render_table(
            &["a", "long-header"],
            &[
                vec!["x".into(), "1".into()],
                vec!["yyyy".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines equal width for the rule row coverage.
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[0].contains("long-header"));
    }

    #[test]
    fn formatters() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(pct(0.1234), "12.3%");
        assert_eq!(speedup(2.2), "2.20x");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_rows_rejected() {
        let _ = render_table(&["a", "b"], &[vec!["x".into()]]);
    }
}
