//! Argument parsing and artifact dispatch for the `repro` binary, factored
//! out so the exit-code contract is unit-testable: usage errors (no targets,
//! unknown artifact) are detected *before* any experiment runs and exit with
//! status 2; failures while running exit with status 1.
//!
//! The dispatch table below is the single source of truth for artifact
//! names: `parse` validates against it and `runner` dispatches from it, so
//! the two cannot drift apart.

use crate::experiments::{
    ablations, elasticity, events, fig10, fig11, fig12, fig13, fig2, fig6, fig7, fig8, fig9,
    online, partial_replication, replan_latency, replication_online, serving, table1, table2,
    table3,
};
use crate::sweep::MAX_JOBS;
use crate::Scale;

/// A named artifact entry: `(name, runner)`.
pub type Artifact = (&'static str, fn(Scale));

/// Every artifact the `repro` binary can regenerate, with its runner.
pub const ARTIFACTS: &[Artifact] = &[
    ("table1", table1::print),
    ("table2", table2::print),
    ("table3", table3::print),
    ("fig2", fig2::print),
    ("fig6", fig6::print),
    ("fig7", fig7::print),
    ("fig8", fig8::print),
    ("fig9", fig9::print),
    ("fig10", fig10::print),
    ("fig11", fig11::print),
    ("fig12", fig12::print),
    ("fig13", fig13::print),
    ("fig14", fig2::print_gaps),
    ("ablations", ablations::print),
    ("table_online", online::print),
    ("table_replication_online", replication_online::print),
    ("table_serving", serving::print),
    ("table_elasticity", elasticity::print),
    ("table_replan_latency", replan_latency::print),
    ("table_partial_replication", partial_replication::print),
    ("render-events", events::print),
];

/// Accepted aliases: the paper's Figs. 15/16 are gap-sweep variants of the
/// same experiment as Fig. 14.
pub const ALIASES: &[Artifact] = &[("fig15", fig2::print_gaps), ("fig16", fig2::print_gaps)];

/// All artifact names (without aliases), for usage text.
pub fn artifact_names() -> Vec<&'static str> {
    ARTIFACTS.iter().map(|&(name, _)| name).collect()
}

/// Look up the runner for a validated artifact name or alias.
pub fn runner(name: &str) -> Option<fn(Scale)> {
    ARTIFACTS
        .iter()
        .chain(ALIASES)
        .find(|&&(n, _)| n == name)
        .map(|&(_, f)| f)
}

/// A parsed invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// Print usage and exit successfully (`-h`/`--help`).
    Help,
    /// Run the given artifacts at the given scale.
    Run {
        /// Sweep size for every experiment.
        scale: Scale,
        /// Worker threads for experiment sweeps (`--jobs N`, default 1).
        jobs: usize,
        /// Validated artifact names, in execution order.
        targets: Vec<String>,
    },
}

/// A usage error; the process should print usage and exit with status 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UsageError {
    /// No artifact names were given.
    NoTargets,
    /// An argument named no known artifact or flag.
    UnknownArtifact(String),
    /// `--jobs` got a missing, non-numeric, zero, or absurd value.
    InvalidJobs(String),
}

impl std::fmt::Display for UsageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UsageError::NoTargets => write!(f, "no artifacts requested"),
            UsageError::UnknownArtifact(name) => write!(f, "unknown artifact: {name}"),
            UsageError::InvalidJobs(value) => {
                write!(f, "invalid --jobs value: {value} (expected 1..={MAX_JOBS})")
            }
        }
    }
}

fn is_artifact(name: &str) -> bool {
    runner(name).is_some()
}

/// Validate a `--jobs` value: an integer in `1..=MAX_JOBS`. `0` (which
/// real tools treat as "auto") is rejected here on purpose — this
/// workspace keeps widths explicit so runs are reproducible by
/// construction — as are absurd widths that would spawn a thread storm.
pub fn parse_jobs(value: &str) -> Result<usize, UsageError> {
    match value.parse::<usize>() {
        Ok(n) if (1..=MAX_JOBS).contains(&n) => Ok(n),
        _ => Err(UsageError::InvalidJobs(value.to_string())),
    }
}

/// Parse CLI arguments (without the program name). Unknown artifacts and
/// bad `--jobs` values are rejected here, up front, so a typo cannot burn
/// minutes of sweep time before failing.
pub fn parse<I, S>(args: I) -> Result<Command, UsageError>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let mut scale = Scale::Full;
    let mut jobs = 1usize;
    let mut targets: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_ref() {
            "--quick" => scale = Scale::Quick,
            "--full" => scale = Scale::Full,
            "-h" | "--help" => return Ok(Command::Help),
            "--jobs" => {
                let value = it
                    .next()
                    .ok_or_else(|| UsageError::InvalidJobs("<missing>".to_string()))?;
                jobs = parse_jobs(value.as_ref())?;
            }
            other if other.starts_with("--jobs=") => {
                jobs = parse_jobs(&other["--jobs=".len()..])?;
            }
            "all" => targets.extend(ARTIFACTS.iter().map(|&(name, _)| name.to_string())),
            other if is_artifact(other) => targets.push(other.to_string()),
            other => return Err(UsageError::UnknownArtifact(other.to_string())),
        }
    }
    if targets.is_empty() {
        return Err(UsageError::NoTargets);
    }
    Ok(Command::Run {
        scale,
        jobs,
        targets,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_targets_and_scale() {
        let cmd = parse(["--quick", "table2", "fig6"]).unwrap();
        assert_eq!(
            cmd,
            Command::Run {
                scale: Scale::Quick,
                jobs: 1,
                targets: vec!["table2".to_string(), "fig6".to_string()],
            }
        );
    }

    #[test]
    fn defaults_to_full_scale_and_one_job() {
        match parse(["table1"]).unwrap() {
            Command::Run { scale, jobs, .. } => {
                assert_eq!(scale, Scale::Full);
                assert_eq!(jobs, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_jobs_in_both_spellings() {
        for args in [
            vec!["--jobs", "4", "table1"],
            vec!["--jobs=4", "table1"],
            vec!["table1", "--jobs", "4"],
        ] {
            match parse(args.clone()).unwrap() {
                Command::Run { jobs, .. } => assert_eq!(jobs, 4, "{args:?}"),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn invalid_jobs_values_are_usage_errors() {
        // Zero, absurd, non-numeric, negative, and missing values all
        // fail parse (the binary exits 2), never reaching any sweep.
        for bad in ["0", "100000", "four", "-2", "4.5", ""] {
            assert_eq!(
                parse(["--jobs", bad, "table1"]),
                Err(UsageError::InvalidJobs(bad.to_string())),
                "--jobs {bad} should be rejected"
            );
        }
        assert_eq!(
            parse(["table1", "--jobs"]),
            Err(UsageError::InvalidJobs("<missing>".to_string()))
        );
        assert_eq!(
            parse(["--jobs=0", "table1"]),
            Err(UsageError::InvalidJobs("0".to_string()))
        );
        // The boundary itself is accepted.
        assert!(parse_jobs(&crate::sweep::MAX_JOBS.to_string()).is_ok());
        assert!(parse_jobs(&(crate::sweep::MAX_JOBS + 1).to_string()).is_err());
    }

    #[test]
    fn all_expands_to_every_artifact() {
        match parse(["all"]).unwrap() {
            Command::Run { targets, .. } => assert_eq!(targets.len(), ARTIFACTS.len()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_artifact_is_a_usage_error() {
        assert_eq!(
            parse(["fig99"]),
            Err(UsageError::UnknownArtifact("fig99".to_string()))
        );
        // Even when mixed with valid targets or flags.
        assert_eq!(
            parse(["--quick", "table1", "tabel2"]),
            Err(UsageError::UnknownArtifact("tabel2".to_string()))
        );
    }

    #[test]
    fn no_targets_is_a_usage_error() {
        assert_eq!(parse::<_, &str>([]), Err(UsageError::NoTargets));
        assert_eq!(parse(["--quick"]), Err(UsageError::NoTargets));
    }

    #[test]
    fn help_wins_regardless_of_other_args() {
        assert_eq!(parse(["table1", "--help"]), Ok(Command::Help));
    }

    #[test]
    fn aliases_are_accepted() {
        assert!(parse(["fig15", "fig16"]).is_ok());
    }

    #[test]
    fn every_parseable_artifact_has_a_runner() {
        // The dispatch table is shared, so anything parse accepts must
        // resolve to a runner — including every alias.
        for &(name, _) in ARTIFACTS.iter().chain(ALIASES) {
            assert!(parse([name]).is_ok(), "{name} should parse");
            assert!(runner(name).is_some(), "{name} should dispatch");
        }
    }
}
