//! Machine-readable solver benchmark: the `BENCH_*.json` emitter that
//! drives the repo's performance trajectory.
//!
//! Two sweeps feed the summary:
//!
//! * **Table II sweep** — the model zoo × the solver portfolio on
//!   fixed-seed profiled instances, recording wall milliseconds and the
//!   achieved objective (cross mass) per `SolverKind`. The whole sweep
//!   runs twice — once at `--jobs 1` and once at the requested width —
//!   and the emitter *verifies* that every objective is bit-identical
//!   across the two runs before reporting the parallel speedup.
//! * **`table_sparse` sweep** — the large-expert zoo (`E = 256/512`,
//!   top-1 and top-2) solved once per objective backend (dense `E x E`
//!   vs CSR), verifying the two produce identical placements and
//!   bit-identical cross mass, and recording nnz/density plus the
//!   dense-vs-sparse wall time per cell.
//! * **`table_online` sweep** — the non-stationary drift presets served
//!   under three re-placement policies (static incumbent, oracle
//!   re-solve, byte-budgeted incremental), recording realized cross-unit
//!   transition counts, migrated bytes, and the recovery fraction —
//!   verified bit-identical across thread counts and gap backends.
//! * **`table_replication_online` sweep** — the same drift presets (at
//!   `E = 16` and one `E = 256` sparse instance) under static /
//!   owner-moves-only / joint replication-aware re-placement: at equal
//!   migration bytes, the joint policy may additionally spend a per-GPU
//!   replica memory budget, and the sweep records cross counts, replica
//!   churn, and budget compliance — verified invariant across gap
//!   backends.
//!
//! * **`table_serving` sweep** — the request-level serving front-end:
//!   Poisson / diurnal / flash-crowd arrival processes served under
//!   static, budgeted-online, and replication-aware placements, recording
//!   p50/p95/p99 request latency, goodput, re-plan counts, and migrated
//!   bytes per cell — verified bit-identical across thread counts and
//!   gap backends.
//!
//! * **`table_elasticity` sweep** — the fault-tolerance front-end: the
//!   same Poisson arrival sample served through a mid-run GPU loss (and
//!   a loss-and-rejoin cycle) by an unreplicated fleet and a fully
//!   replicated one, recording disrupted requests, degraded steps,
//!   emergency migration bytes, and tail-recovery time per cell —
//!   verified bit-identical across thread counts and gap backends, with
//!   the replicated fleet required to recover strictly faster.
//!
//! * **`table_partial_replication` sweep** — partial vs full replica
//!   fan-out at `E ∈ {16, 256} × top-1/top-2`: every re-plan solves the
//!   same incumbent under the one-replica-per-node subset policy and the
//!   Lina-style everywhere policy at *equal* migration and per-GPU
//!   memory budgets, verifying bit-identical solves across gap backends
//!   and that the partial solve never scores worse; each row also runs
//!   the context-coherent engine under the subset policy at 1/2/8 solver
//!   threads (and dense/CSR backends), recording the replica adds and
//!   dispatch locality the meeting-point rule realizes — top-2 rows must
//!   actually buy replicas, not fall back to owner moves.
//!
//! * **`table_replan_latency` sweep** — re-plan latency at `E = 256/512`:
//!   the same drifting instance re-planned window by window along two
//!   lockstep paths — a cold rebuild (`Objective::from_snapshot` plus an
//!   uncached budgeted solve) and incremental maintenance
//!   (`Objective::apply_snapshot_delta` plus a [`SwapGainCache`]-backed
//!   solve) — verified to pick bit-identical placements at bit-identical
//!   objectives, while recording how many swap-candidate gain
//!   evaluations each path paid and the wall time of each.
//!
//! Quality numbers in `BENCH_*.json` are deterministic facts (the CI
//! perf-gate compares them bit for bit against the committed baseline);
//! timing numbers are machine-dependent measurements. The schema
//! (`exflow-bench-summary/v8`) keeps them apart.

use std::time::Instant;

use exflow_affinity::{RoutingTrace, SparseAffinity, StreamingAffinity};
use exflow_core::{
    BatchPolicy, InferenceEngine, OnlineConfig, ParallelismMode, ReplicaPlacement, Scenario,
    ServingConfig, ServingReport,
};
use exflow_model::presets::{large_zoo, moe_gpt_m, table2};
use exflow_model::routing::AffinityModelSpec;
use exflow_model::ArrivalProcess;
use exflow_model::{
    CorpusSpec, DriftSchedule, FaultKind, FaultSchedule, GateKind, ModelConfig, TokenBatch,
};
use exflow_placement::annealing::AnnealParams;
use exflow_placement::greedy::solve_greedy;
use exflow_placement::local_search::{improve, solve_local_search_with};
use exflow_placement::objective::measure_trace_locality;
use exflow_placement::online::{
    solve_budgeted, solve_budgeted_replicated, solve_budgeted_toward, MigrationPlan,
};
use exflow_placement::{
    replicated_cross_mass, solve_budgeted_metered, solve_with, split_seed, GapBackend, Objective,
    Parallelism, Placement, ReplicaPolicy, ReplicationBudget, ReplicationPlan, SolverKind,
    SwapGainCache,
};
use exflow_topology::{ClusterSpec, CostModel, LinkCost};

use crate::sweep::{par_map, SweepPool};
use crate::Scale;

/// GPUs each Table II instance is solved for (divides every Table II
/// expert count).
const N_UNITS: usize = 4;

/// GPUs each `table_sparse` instance is solved for (divides 256 and 512).
const N_UNITS_LARGE: usize = 8;

/// Experts per layer of every `table_online` scenario.
const ONLINE_EXPERTS: usize = 16;

/// GPUs each `table_online` scenario is placed across.
const ONLINE_UNITS: usize = 4;

/// Windows between re-plans in the `table_online` scenarios.
const ONLINE_REPLAN_EVERY: usize = 1;

/// Expert moves one `table_online` re-plan may migrate (the byte budget
/// is this many expert weight payloads). An oracle re-solve after a full
/// structure flip relocates most of the `E x L` expert slots; this budget
/// is well under half of that.
const ONLINE_BUDGET_MOVES: u64 = 40;

/// Local-search restarts of the oracle re-solve.
const ONLINE_ORACLE_RESTARTS: usize = 2;

/// Decay of the streaming estimator in the online scenarios.
const ONLINE_DECAY: f64 = 0.5;

/// Expert moves one `table_replication_online` re-plan may migrate (joint
/// and owner-moves-only policies get exactly this many payloads of
/// migration traffic, so the comparison is at equal bytes). Deliberately
/// tighter than `ONLINE_BUDGET_MOVES`: the joint mode's edge is what it
/// buys when migration traffic is scarce.
const REPLICATION_BUDGET_MOVES: u64 = 16;

/// Extra replica payloads each GPU may hold in the joint policy (the
/// `replica_memory_bytes` axis of the joint budget, in expert payloads).
const REPLICATION_SLOTS: u64 = 8;

/// Experts per layer of every `table_serving` scenario (small enough
/// that each decode step's engine pass stays cheap: the sweep runs
/// hundreds of them).
const SERVING_EXPERTS: usize = 16;

/// Batch-size cap of the serving scenarios (also the occupancy the
/// arrival rates are calibrated against).
const SERVING_MAX_BATCH: usize = 32;

/// FFN inner dimension of the serving model's experts. Much narrower
/// than the GPT convention (`4 * d_model`): serving cells live in the
/// paper's communication-bounded regime (Fig. 9d), where dispatch
/// Alltoalls — the thing placement quality controls — are a large
/// share of step time, and expert payloads (hence migration stalls)
/// are small.
const SERVING_D_FF: usize = 128;

/// Decode steps (generated tokens) per request.
const SERVING_DECODE_STEPS: usize = 4;

/// Serving windows the virtual horizon divides into (drift checks fire
/// at window boundaries).
const SERVING_WINDOWS: usize = 6;

/// Offered load as a fraction of full-batch service capacity, measured
/// against the *profiled* placement on *profiled* traffic. Live drifted
/// traffic serves slower than that calibration, so the static incumbent
/// runs saturated and its queue backs up into the latency tail, while a
/// re-placed server recovers enough service rate to stay stable.
const SERVING_UTILIZATION: f64 = 0.96;

/// Inter-node line rate of the serving cells' cluster, bytes/s. A
/// quarter of the wilkes3 preset's 50 GB/s: the serving story plays out
/// in the paper's communication-bounded regime (Fig. 9d), where the
/// dispatch locality a placement buys — or loses, as traffic drifts —
/// moves the effective service rate, and queueing near saturation
/// amplifies that into the latency tail.
const SERVING_INTER_NODE_BW: f64 = 12.5e9;

/// Expert moves one serving re-plan may migrate, in expert payloads.
/// Migration stalls the server, so the budget trades re-placement
/// quality against tail-latency spikes; the serving model's narrow
/// experts ([`SERVING_D_FF`]) keep one full-budget stall small.
const SERVING_BUDGET_MOVES: u64 = 16;

/// Extra replica payloads per GPU in the replication-aware serving
/// policy.
const SERVING_REPLICA_SLOTS: u64 = 4;

/// Drift threshold of the serving re-placement policies.
const SERVING_DRIFT_THRESHOLD: f64 = 0.08;

/// Streaming-estimator decay of the serving scenarios.
const SERVING_DECAY: f64 = 0.3;

/// Offered load of the `table_elasticity` cells as a fraction of
/// full-*fleet* capacity. Deliberately below [`SERVING_UTILIZATION`]:
/// after one of the four GPUs dies the surviving fleet runs at 4/3 of
/// this figure, which must stay under saturation or the latency tail
/// never returns to its pre-fault level and "recovery time" stops
/// existing for either fleet.
const ELASTICITY_UTILIZATION: f64 = 0.6;

/// Requests per `table_elasticity` cell — enough completions on both
/// sides of the fault for the pre-fault p99 and the rolling recovery
/// window (`exflow_core::RECOVERY_WINDOW`) to be meaningful.
const ELASTICITY_REQUESTS: (usize, usize) = (500, 800);

/// When the GPU loss strikes, as a fraction of the arrival horizon.
const ELASTICITY_FAULT_AT: f64 = 0.4;

/// When the lost GPU rejoins (in the loss+rejoin scenario), as a
/// fraction of the arrival horizon.
const ELASTICITY_REJOIN_AT: f64 = 0.6;

/// Expert moves one `table_partial_replication` re-plan may migrate —
/// identical for the partial and everywhere policies, so the race is at
/// equal traffic.
const PARTIAL_BUDGET_MOVES: u64 = 12;

/// Extra replica payloads each GPU may hold in every
/// `table_partial_replication` cell — identical for both policies, so the
/// race is at equal memory. Partial fan-out ships fewer copies per
/// replicated expert, which is exactly the edge the sweep measures.
const PARTIAL_REPLICA_SLOTS: u64 = 4;

/// Expert moves one `table_replan_latency` re-plan may relocate. Each
/// accepted move costs the budgeted descent one full candidate rescan,
/// so this also sets how many rescans the rebuild path pays per re-plan
/// — the cost the incremental path's cache collapses to `O(dirty)`.
const REPLAN_LATENCY_MOVES: u64 = 40;

/// Tokens per `table_replan_latency` window (quick scale). Deliberately
/// lean: the sweep studies solver latency on *sparse* instances, where a
/// swap's dirty set (the swapped experts plus their structural
/// neighbors) is a small fraction of the `E(E-1)` candidate space — the
/// regime the cache's `O(dirty)` rescan contract targets.
const REPLAN_LATENCY_TOKENS: (usize, usize) = (800, 2400);

/// Layers of every `table_replan_latency` instance. Two layers (one gap)
/// keep the `E = 512` cells affordable while still exercising both the
/// successor (CSR-row) and predecessor (CSC-column) invalidation paths.
const REPLAN_LATENCY_LAYERS: usize = 2;

/// One (model, solver) measurement.
#[derive(Debug, Clone)]
pub struct BenchRow {
    /// Table II model name.
    pub model: String,
    /// Stable solver label (`SolverKind::label`).
    pub solver: String,
    /// Wall time of the solve, in milliseconds (measured in the
    /// uncontended `--jobs 1` pass).
    pub wall_ms: f64,
    /// Achieved objective: expected cross-unit transition mass (lower is
    /// better; bit-identical across thread counts).
    pub cross_mass: f64,
}

/// One `table_sparse` cell: a large-expert instance solved on both
/// objective backends.
#[derive(Debug, Clone)]
pub struct SparseBenchRow {
    /// Large-zoo preset name.
    pub preset: String,
    /// Experts per layer.
    pub n_experts: usize,
    /// Gating fan-out the instance was sampled with.
    pub k: usize,
    /// Layers of the profiled instance (scaled down from the preset).
    pub layers: usize,
    /// Structural nonzeros across the instance's gap matrices
    /// (backend-independent, deterministic).
    pub nnz: usize,
    /// `nnz` over the dense cell count.
    pub density: f64,
    /// Wall milliseconds of the local-search workload on the dense
    /// backend.
    pub wall_ms_dense: f64,
    /// Wall milliseconds of the same workload on the CSR backend.
    pub wall_ms_sparse: f64,
    /// Final cross mass (bit-identical across backends — verified).
    pub cross_mass: f64,
}

impl SparseBenchRow {
    /// Dense wall over sparse wall: the sparse backend's algorithmic
    /// speedup on this cell.
    pub fn speedup(&self) -> f64 {
        if self.wall_ms_sparse <= 0.0 {
            return 0.0;
        }
        self.wall_ms_dense / self.wall_ms_sparse
    }
}

/// One `table_online` cell: a drift scenario served under the three
/// re-placement policies. Cross counts are realized cross-unit layer
/// transitions summed over every serving window — integers, so any drift
/// across thread counts or backends is unambiguous.
#[derive(Debug, Clone)]
pub struct OnlineBenchRow {
    /// Drift preset name (`piecewise-2phase`, `smooth`, ...).
    pub scenario: String,
    /// Experts per layer.
    pub n_experts: usize,
    /// MoE layers.
    pub layers: usize,
    /// Serving windows.
    pub windows: usize,
    /// Windows between re-plans.
    pub replan_every: usize,
    /// Byte budget of one budgeted re-plan.
    pub budget_bytes: u64,
    /// Bytes the budgeted policy actually migrated, whole run.
    pub migrated_bytes: u64,
    /// Budgeted re-plans that moved at least one expert.
    pub replans: usize,
    /// Cross-unit transitions under the never-re-placed incumbent.
    pub static_cross: u64,
    /// Cross-unit transitions under from-scratch oracle re-solves.
    pub oracle_cross: u64,
    /// Cross-unit transitions under budgeted incremental re-placement.
    pub budgeted_cross: u64,
    /// Final cross mass of the budgeted placement on the live estimate
    /// (bit-identical across backends — verified).
    pub cross_mass: f64,
}

impl OnlineBenchRow {
    /// Fraction of the oracle's cross-traffic reduction the budgeted
    /// policy recovers: `(static - budgeted) / (static - oracle)`. 1.0
    /// when the scenario gives the oracle nothing to improve.
    pub fn recovery(&self) -> f64 {
        if self.static_cross <= self.oracle_cross {
            return 1.0;
        }
        (self.static_cross as f64 - self.budgeted_cross as f64)
            / (self.static_cross as f64 - self.oracle_cross as f64)
    }
}

/// One `table_replication_online` cell: a drift scenario served under
/// three re-placement policies — static incumbent, owner-moves-only
/// (migration budget spent exclusively on relocations), and the joint
/// replica + owner-move policy (same migration budget, plus a per-GPU
/// replica memory budget). Cross counts are realized cross-unit layer
/// transitions on the window traces — the joint policy's counts honor
/// replica availability (`ReplicationPlan::trace_locality`).
#[derive(Debug, Clone)]
pub struct ReplicationOnlineRow {
    /// Scenario label: drift preset plus the instance size
    /// (`piecewise-2phase/E16`, ...).
    pub scenario: String,
    /// Experts per layer.
    pub n_experts: usize,
    /// MoE layers.
    pub layers: usize,
    /// GPUs the instance is placed across.
    pub units: usize,
    /// Serving windows.
    pub windows: usize,
    /// Windows between re-plans.
    pub replan_every: usize,
    /// Migration byte budget of one re-plan (identical for both adaptive
    /// policies).
    pub budget_bytes: u64,
    /// Per-GPU replica memory budget of the joint policy, in expert
    /// payloads.
    pub replica_slots: u64,
    /// Bytes the owner-moves-only policy migrated, whole run.
    pub owner_migrated_bytes: u64,
    /// Bytes the joint policy migrated (owner moves + replica fan-out).
    pub joint_migrated_bytes: u64,
    /// Owner-policy re-plans that moved at least one expert.
    pub owner_replans: usize,
    /// Joint-policy re-plans that changed anything.
    pub joint_replans: usize,
    /// Replica copies the joint policy created, whole run.
    pub replicas_added: u64,
    /// Replica copies the joint policy retired, whole run.
    pub replicas_dropped: u64,
    /// Worst-case extra replica copies any GPU holds at the end of the
    /// joint run (must stay within `replica_slots`).
    pub extra_copies: u64,
    /// Cross-unit transitions under the never-re-placed incumbent.
    pub static_cross: u64,
    /// Cross-unit transitions under owner-moves-only re-placement.
    pub owner_cross: u64,
    /// Cross-unit transitions under the joint policy.
    pub joint_cross: u64,
    /// Final replication-aware cross mass of the joint plan on the live
    /// estimate (bit-identical across backends — verified).
    pub cross_mass: f64,
}

impl ReplicationOnlineRow {
    /// Fraction of the static incumbent's cross traffic a policy
    /// eliminated: `(static - cross) / static` (0 when the static run had
    /// none).
    fn locality_recovery(&self, cross: u64) -> f64 {
        if self.static_cross == 0 {
            return 0.0;
        }
        (self.static_cross as f64 - cross as f64) / self.static_cross as f64
    }

    /// Locality recovery of the owner-moves-only policy.
    pub fn owner_recovery(&self) -> f64 {
        self.locality_recovery(self.owner_cross)
    }

    /// Locality recovery of the joint policy.
    pub fn joint_recovery(&self) -> f64 {
        self.locality_recovery(self.joint_cross)
    }
}

/// One `table_serving` cell: one arrival process (Poisson / diurnal /
/// flash-crowd) served end-to-end through the request-level front-end
/// (`InferenceEngine::run_serving`) under three placement policies —
/// static incumbent, budgeted-online re-placement, and replication-aware
/// re-placement. Latencies, goodput, and offered load are virtual-time
/// facts (bit-identical across thread counts and gap backends — verified
/// in-sweep); all three policies see the *same* arrival sample and
/// routing draws, so the tails differ only through placement quality and
/// migration stalls.
#[derive(Debug, Clone)]
pub struct ServingBenchRow {
    /// Arrival-process label (`poisson`, `diurnal`, `flash-crowd`).
    pub arrival: String,
    /// Requests served per cell.
    pub requests: usize,
    /// Decode steps (generated tokens) per request.
    pub decode_steps: usize,
    /// Serving windows of the drift schedule.
    pub windows: usize,
    /// Batch-size cap of the continuous-batching policy.
    pub max_batch: usize,
    /// Requests per unit virtual time the arrival process offered.
    pub offered_load: f64,
    /// p50 request latency under the static incumbent.
    pub static_p50: f64,
    /// p95 request latency under the static incumbent.
    pub static_p95: f64,
    /// p99 request latency under the static incumbent.
    pub static_p99: f64,
    /// Completed requests per unit virtual time, static incumbent.
    pub static_goodput: f64,
    /// p50 request latency under budgeted-online re-placement.
    pub online_p50: f64,
    /// p95 request latency under budgeted-online re-placement.
    pub online_p95: f64,
    /// p99 request latency under budgeted-online re-placement.
    pub online_p99: f64,
    /// Completed requests per unit virtual time, budgeted-online.
    pub online_goodput: f64,
    /// Re-plans the budgeted-online policy executed.
    pub online_replans: u64,
    /// Bytes the budgeted-online policy migrated, whole run.
    pub online_migrated_bytes: u64,
    /// p50 request latency under replication-aware re-placement.
    pub repl_p50: f64,
    /// p95 request latency under replication-aware re-placement.
    pub repl_p95: f64,
    /// p99 request latency under replication-aware re-placement.
    pub repl_p99: f64,
    /// Completed requests per unit virtual time, replication-aware.
    pub repl_goodput: f64,
    /// Replica copies the replication-aware policy created, whole run.
    pub repl_replicas_added: u64,
}

impl ServingBenchRow {
    /// Static p99 over a policy's p99: > 1 exactly when the adaptive
    /// policy improves the latency tail over never re-placing.
    pub fn p99_speedup(&self, p99: f64) -> f64 {
        if p99 <= 0.0 {
            return 0.0;
        }
        self.static_p99 / p99
    }
}

/// One `table_elasticity` cell: the same arrival sample served through
/// the same mid-run GPU fault by two fleets — one with no replicas
/// (every expert lost with its GPU must be emergency-restored over the
/// wire) and one fully replicated (failover is a free ownership flip).
/// All figures are deterministic virtual-time facts, bit-identical
/// across thread counts and gap backends (verified in-sweep). Recovery
/// times are `-1` when the fleet's rolling tail never returned to its
/// pre-fault p99 within the run.
#[derive(Debug, Clone)]
pub struct ElasticityRow {
    /// Fault-schedule label (`gpu-loss`, `gpu-loss+rejoin`).
    pub fault: String,
    /// Requests served per cell.
    pub requests: usize,
    /// Virtual time of the GPU loss.
    pub fault_time: f64,
    /// p99 request latency of the no-replica fleet, whole run.
    pub plain_p99: f64,
    /// In-flight requests the loss re-queued, no-replica fleet.
    pub plain_disrupted: u64,
    /// Decode steps served under emergency-migration contention,
    /// no-replica fleet.
    pub plain_steps_degraded: u64,
    /// Bytes the emergency re-placements copied, no-replica fleet.
    pub plain_emergency_bytes: u64,
    /// Virtual time from the loss until the rolling p99 recovered, or
    /// `-1` if it never did.
    pub plain_recovery: f64,
    /// p99 request latency of the fully replicated fleet, whole run.
    pub repl_p99: f64,
    /// In-flight requests the loss re-queued, replicated fleet.
    pub repl_disrupted: u64,
    /// Decode steps served under emergency-migration contention,
    /// replicated fleet.
    pub repl_steps_degraded: u64,
    /// Bytes the emergency re-placements copied, replicated fleet
    /// (zero: every lost expert has a live replica).
    pub repl_emergency_bytes: u64,
    /// Virtual time from the loss until the rolling p99 recovered, or
    /// `-1` if it never did.
    pub repl_recovery: f64,
    /// Worst-case extra replica copies any GPU holds in the replicated
    /// fleet's starting plan — counted from the materialized subsets
    /// (`ReplicationPlan::extra_copies_per_gpu`), not a world-size
    /// fan-out assumption.
    pub repl_extra_copies: u64,
}

impl ElasticityRow {
    /// Whether the replicated fleet recovered strictly faster than the
    /// no-replica fleet (the acceptance bar): it must recover at all,
    /// and beat a no-replica fleet that either recovered later or never
    /// did.
    pub fn replication_recovers_faster(&self) -> bool {
        self.repl_recovery >= 0.0
            && (self.plain_recovery < 0.0 || self.repl_recovery < self.plain_recovery)
    }
}

/// One `table_partial_replication` cell: a drifting instance re-planned
/// window by window under the partial (one-replica-per-node) and full
/// (everywhere) fan-out policies at equal migration-byte and per-GPU
/// memory budgets, always from the same shared incumbent — so the
/// per-cell cross-mass comparison is exact, not a trajectory artifact.
/// The `cc_*` figures come from a context-coherent engine run under the
/// subset policy (the meeting-point dispatch rule), verified bit-identical
/// at 1/2/8 solver threads and across gap backends.
#[derive(Debug, Clone)]
pub struct PartialReplicationRow {
    /// Cell label (`E16/top1`, `E256/top2`, ...).
    pub scenario: String,
    /// Experts per layer.
    pub n_experts: usize,
    /// Gating fan-out the window traces are sampled with.
    pub k: usize,
    /// MoE layers of the placement instance.
    pub layers: usize,
    /// GPUs the instance is placed across.
    pub units: usize,
    /// Serving windows.
    pub windows: usize,
    /// Extra replica payloads each GPU may hold (both policies).
    pub replica_slots: u64,
    /// Migration byte budget of one re-plan (both policies).
    pub budget_bytes: u64,
    /// Re-plans where the partial policy changed the plan.
    pub partial_replans: usize,
    /// Replica copies the partial policy created, summed over re-plans
    /// (each ships only to its chosen subset).
    pub replicas_added: u64,
    /// Bytes the partial-policy re-plans actually migrated.
    pub partial_migrated_bytes: u64,
    /// Bytes the everywhere-policy solves would have migrated from the
    /// same incumbents.
    pub full_migrated_bytes: u64,
    /// Final worst-case extra copies per GPU under the partial policy.
    pub partial_extra_copies: u64,
    /// Worst-case extra copies per GPU of the last everywhere solve.
    pub full_extra_copies: u64,
    /// Replicated cross mass of the partial solves, summed over re-plans
    /// (bit-identical across gap backends — verified).
    pub partial_cross_mass: f64,
    /// Replicated cross mass of the everywhere solves from the same
    /// incumbents, summed over re-plans.
    pub full_cross_mass: f64,
    /// Realized cross-unit transitions of the partial trajectory on the
    /// window traces (set-semantics replica locality).
    pub realized_cross: u64,
    /// Replica copies the context-coherent engine run created under the
    /// one-per-node policy (top-2 rows must not fall back to zero).
    pub cc_replicas_added: u64,
    /// GPU-local dispatch fraction of that engine run.
    pub cc_local_fraction: f64,
}

impl PartialReplicationRow {
    /// The equal-memory acceptance bar: the partial fan-out solve never
    /// scores worse than the everywhere solve from the same incumbent
    /// (structural — the partial candidate set is a superset).
    pub fn partial_never_loses(&self) -> bool {
        self.partial_cross_mass <= self.full_cross_mass
    }
}

/// One `table_replan_latency` cell: a large-expert drift scenario
/// re-planned window by window along two lockstep paths — a cold rebuild
/// (fresh `Objective::from_snapshot` plus an uncached budgeted solve) and
/// incremental maintenance (`Objective::apply_snapshot_delta` plus a
/// persistent `SwapGainCache`). Both paths are verified in-sweep to hold
/// bit-identical objectives, pick identical placements, consider the
/// same number of swap candidates, and land on bit-identical cross mass;
/// the counters record how many candidate gains each path actually
/// recomputed (the re-plan latency the cache buys back).
#[derive(Debug, Clone)]
pub struct ReplanLatencyRow {
    /// Large-zoo preset name.
    pub preset: String,
    /// Experts per layer.
    pub n_experts: usize,
    /// Gating fan-out the instance was sampled with.
    pub k: usize,
    /// Layers of the drifting instance.
    pub layers: usize,
    /// Serving windows (window 0 profiles; every later window re-plans).
    pub windows: usize,
    /// Re-plans that actually moved at least one expert.
    pub replans: usize,
    /// Expert-move budget of each re-plan.
    pub max_moves: u64,
    /// Swap candidates the scan loops looked at, summed over every
    /// re-plan — identical on both paths (verified; the meter charges
    /// hits and misses alike).
    pub considered: u64,
    /// Candidate gains the rebuild path recomputed (uncached: equals
    /// `considered`).
    pub evaluated_rebuild: u64,
    /// Candidate gains the incremental path recomputed.
    pub evaluated_incremental: u64,
    /// Candidate gains the incremental path answered from the cache.
    pub reused: u64,
    /// Wall milliseconds of the rebuild path (objective rebuild + solve),
    /// summed over every re-plan.
    pub wall_ms_rebuild: f64,
    /// Wall milliseconds of the incremental path (delta apply + cached
    /// solve), summed over every re-plan.
    pub wall_ms_incremental: f64,
    /// Final cross mass of the rebuild path's placement on its objective
    /// (bit-identical to the incremental path's — verified).
    pub cross_mass_rebuild: f64,
    /// Final cross mass of the incremental path's placement on its
    /// delta-maintained objective.
    pub cross_mass_incremental: f64,
}

impl ReplanLatencyRow {
    /// Gain evaluations the rebuild path paid per evaluation the
    /// incremental path paid — the candidate-scan reduction the
    /// acceptance bar gates at `E = 512`.
    pub fn scan_reduction(&self) -> f64 {
        if self.evaluated_incremental == 0 {
            return 0.0;
        }
        self.evaluated_rebuild as f64 / self.evaluated_incremental as f64
    }
}

/// The full benchmark result.
#[derive(Debug, Clone)]
pub struct BenchSummary {
    /// Master seed driving every instance and solver.
    pub seed: u64,
    /// Sweep scale label (`quick` / `full`).
    pub scale: String,
    /// Parallel width of the timed parallel pass.
    pub jobs: usize,
    /// Wall time of the whole Table II sweep at `--jobs 1`, in
    /// milliseconds.
    pub wall_ms_jobs1: f64,
    /// Wall time of the whole Table II sweep at `--jobs N`, in
    /// milliseconds.
    pub wall_ms_jobs_n: f64,
    /// Per-point measurements, in (model-major, solver-minor) grid order.
    pub rows: Vec<BenchRow>,
    /// The `table_sparse` cells, in `large_zoo()` order.
    pub sparse_rows: Vec<SparseBenchRow>,
    /// The `table_online` cells, in `DriftSchedule::presets` order.
    pub online_rows: Vec<OnlineBenchRow>,
    /// The `table_replication_online` cells: the 3 drift presets at
    /// `E = 16`, then one `large_zoo()` sparse instance.
    pub replication_online_rows: Vec<ReplicationOnlineRow>,
    /// The `table_serving` cells, one per arrival process.
    pub serving_rows: Vec<ServingBenchRow>,
    /// The `table_elasticity` cells, one per fault schedule.
    pub elasticity_rows: Vec<ElasticityRow>,
    /// The `table_replan_latency` cells, in `large_zoo()` order.
    pub replan_latency_rows: Vec<ReplanLatencyRow>,
    /// The `table_partial_replication` cells, in
    /// `E ∈ {16, 256} × top-1/top-2` grid order.
    pub partial_replication_rows: Vec<PartialReplicationRow>,
}

impl BenchSummary {
    /// Parallel speedup of the Table II sweep (jobs=1 wall over jobs=N
    /// wall).
    pub fn speedup(&self) -> f64 {
        if self.wall_ms_jobs_n <= 0.0 {
            return 0.0;
        }
        self.wall_ms_jobs1 / self.wall_ms_jobs_n
    }

    /// Serialize as the `exflow-bench-summary/v8` schema (see README).
    /// Hand-rolled: the workspace builds offline, so no serde. Objectives
    /// and serving latencies are printed with Rust's shortest round-trip
    /// float formatting, so string equality in the JSON is bit equality
    /// of the f64 — what the CI perf-gate compares.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(8192);
        out.push_str("{\n");
        out.push_str("  \"schema\": \"exflow-bench-summary/v8\",\n");
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"scale\": \"{}\",\n", self.scale));
        out.push_str(&format!("  \"jobs\": {},\n", self.jobs));
        out.push_str(&format!(
            "  \"wall_ms_jobs1\": {:.3},\n",
            self.wall_ms_jobs1
        ));
        out.push_str(&format!(
            "  \"wall_ms_jobsN\": {:.3},\n",
            self.wall_ms_jobs_n
        ));
        out.push_str(&format!("  \"speedup\": {:.3},\n", self.speedup()));
        out.push_str("  \"objectives_bit_identical_across_jobs\": true,\n");
        out.push_str("  \"rows\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"model\": \"{}\", \"solver\": \"{}\", \"wall_ms\": {:.3}, \"cross_mass\": {}}}{}\n",
                row.model,
                row.solver,
                row.wall_ms,
                row.cross_mass,
                if i + 1 == self.rows.len() { "" } else { "," }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"sparse_rows\": [\n");
        for (i, row) in self.sparse_rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"preset\": \"{}\", \"experts\": {}, \"k\": {}, \"layers\": {}, \"nnz\": {}, \"density\": {:.6}, \"wall_ms_dense\": {:.3}, \"wall_ms_sparse\": {:.3}, \"speedup\": {:.3}, \"cross_mass\": {}}}{}\n",
                row.preset,
                row.n_experts,
                row.k,
                row.layers,
                row.nnz,
                row.density,
                row.wall_ms_dense,
                row.wall_ms_sparse,
                row.speedup(),
                row.cross_mass,
                if i + 1 == self.sparse_rows.len() { "" } else { "," }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"online_rows\": [\n");
        for (i, row) in self.online_rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"scenario\": \"{}\", \"experts\": {}, \"layers\": {}, \"windows\": {}, \"replan_every\": {}, \"budget_bytes\": {}, \"migrated_bytes\": {}, \"replans\": {}, \"static_cross\": {}, \"oracle_cross\": {}, \"budgeted_cross\": {}, \"recovery\": {:.4}, \"cross_mass\": {}}}{}\n",
                row.scenario,
                row.n_experts,
                row.layers,
                row.windows,
                row.replan_every,
                row.budget_bytes,
                row.migrated_bytes,
                row.replans,
                row.static_cross,
                row.oracle_cross,
                row.budgeted_cross,
                row.recovery(),
                row.cross_mass,
                if i + 1 == self.online_rows.len() { "" } else { "," }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"replication_online_rows\": [\n");
        for (i, row) in self.replication_online_rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"scenario\": \"{}\", \"experts\": {}, \"layers\": {}, \"units\": {}, \"windows\": {}, \"replan_every\": {}, \"budget_bytes\": {}, \"replica_slots\": {}, \"owner_migrated_bytes\": {}, \"joint_migrated_bytes\": {}, \"owner_replans\": {}, \"joint_replans\": {}, \"replicas_added\": {}, \"replicas_dropped\": {}, \"extra_copies\": {}, \"static_cross\": {}, \"owner_cross\": {}, \"joint_cross\": {}, \"owner_recovery\": {:.4}, \"joint_recovery\": {:.4}, \"cross_mass\": {}}}{}\n",
                row.scenario,
                row.n_experts,
                row.layers,
                row.units,
                row.windows,
                row.replan_every,
                row.budget_bytes,
                row.replica_slots,
                row.owner_migrated_bytes,
                row.joint_migrated_bytes,
                row.owner_replans,
                row.joint_replans,
                row.replicas_added,
                row.replicas_dropped,
                row.extra_copies,
                row.static_cross,
                row.owner_cross,
                row.joint_cross,
                row.owner_recovery(),
                row.joint_recovery(),
                row.cross_mass,
                if i + 1 == self.replication_online_rows.len() {
                    ""
                } else {
                    ","
                }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"serving_rows\": [\n");
        for (i, row) in self.serving_rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"arrival\": \"{}\", \"requests\": {}, \"decode_steps\": {}, \"windows\": {}, \"max_batch\": {}, \"offered_load\": {}, \"static_p50\": {}, \"static_p95\": {}, \"static_p99\": {}, \"static_goodput\": {}, \"online_p50\": {}, \"online_p95\": {}, \"online_p99\": {}, \"online_goodput\": {}, \"online_replans\": {}, \"online_migrated_bytes\": {}, \"repl_p50\": {}, \"repl_p95\": {}, \"repl_p99\": {}, \"repl_goodput\": {}, \"repl_replicas_added\": {}}}{}\n",
                row.arrival,
                row.requests,
                row.decode_steps,
                row.windows,
                row.max_batch,
                row.offered_load,
                row.static_p50,
                row.static_p95,
                row.static_p99,
                row.static_goodput,
                row.online_p50,
                row.online_p95,
                row.online_p99,
                row.online_goodput,
                row.online_replans,
                row.online_migrated_bytes,
                row.repl_p50,
                row.repl_p95,
                row.repl_p99,
                row.repl_goodput,
                row.repl_replicas_added,
                if i + 1 == self.serving_rows.len() { "" } else { "," }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"elasticity_rows\": [\n");
        for (i, row) in self.elasticity_rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"fault\": \"{}\", \"requests\": {}, \"fault_time\": {}, \"plain_p99\": {}, \"plain_disrupted\": {}, \"plain_steps_degraded\": {}, \"plain_emergency_bytes\": {}, \"plain_recovery\": {}, \"repl_p99\": {}, \"repl_disrupted\": {}, \"repl_steps_degraded\": {}, \"repl_emergency_bytes\": {}, \"repl_recovery\": {}, \"repl_extra_copies\": {}}}{}\n",
                row.fault,
                row.requests,
                row.fault_time,
                row.plain_p99,
                row.plain_disrupted,
                row.plain_steps_degraded,
                row.plain_emergency_bytes,
                row.plain_recovery,
                row.repl_p99,
                row.repl_disrupted,
                row.repl_steps_degraded,
                row.repl_emergency_bytes,
                row.repl_recovery,
                row.repl_extra_copies,
                if i + 1 == self.elasticity_rows.len() { "" } else { "," }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"replan_latency_rows\": [\n");
        for (i, row) in self.replan_latency_rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"preset\": \"{}\", \"experts\": {}, \"k\": {}, \"layers\": {}, \"windows\": {}, \"replans\": {}, \"max_moves\": {}, \"considered\": {}, \"evaluated_rebuild\": {}, \"evaluated_incremental\": {}, \"reused\": {}, \"scan_reduction\": {:.3}, \"wall_ms_rebuild\": {:.3}, \"wall_ms_incremental\": {:.3}, \"cross_mass_rebuild\": {}, \"cross_mass_incremental\": {}}}{}\n",
                row.preset,
                row.n_experts,
                row.k,
                row.layers,
                row.windows,
                row.replans,
                row.max_moves,
                row.considered,
                row.evaluated_rebuild,
                row.evaluated_incremental,
                row.reused,
                row.scan_reduction(),
                row.wall_ms_rebuild,
                row.wall_ms_incremental,
                row.cross_mass_rebuild,
                row.cross_mass_incremental,
                if i + 1 == self.replan_latency_rows.len() {
                    ""
                } else {
                    ","
                }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"partial_replication_rows\": [\n");
        for (i, row) in self.partial_replication_rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"scenario\": \"{}\", \"experts\": {}, \"k\": {}, \"layers\": {}, \"units\": {}, \"windows\": {}, \"replica_slots\": {}, \"budget_bytes\": {}, \"partial_replans\": {}, \"replicas_added\": {}, \"partial_migrated_bytes\": {}, \"full_migrated_bytes\": {}, \"partial_extra_copies\": {}, \"full_extra_copies\": {}, \"partial_cross_mass\": {}, \"full_cross_mass\": {}, \"realized_cross\": {}, \"cc_replicas_added\": {}, \"cc_local_fraction\": {:.6}}}{}\n",
                row.scenario,
                row.n_experts,
                row.k,
                row.layers,
                row.units,
                row.windows,
                row.replica_slots,
                row.budget_bytes,
                row.partial_replans,
                row.replicas_added,
                row.partial_migrated_bytes,
                row.full_migrated_bytes,
                row.partial_extra_copies,
                row.full_extra_copies,
                row.partial_cross_mass,
                row.full_cross_mass,
                row.realized_cross,
                row.cc_replicas_added,
                row.cc_local_fraction,
                if i + 1 == self.partial_replication_rows.len() {
                    ""
                } else {
                    ","
                }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// The solver roster the Table II benchmark times, sized by scale.
pub fn roster(scale: Scale) -> Vec<SolverKind> {
    vec![
        SolverKind::RoundRobin,
        SolverKind::Greedy,
        SolverKind::LocalSearch {
            restarts: scale.pick(2, 4),
        },
        SolverKind::Annealing(AnnealParams::default().with_starts(scale.pick(1, 2))),
        SolverKind::portfolio(scale.pick(50, 200)),
    ]
}

/// Build the fixed-seed profiled instance for one Table II model. The
/// instance keeps the model's layer count (scaled down proportionally so
/// the sweep stays time-boxed), so the 24L/32L/40L variants of the zoo
/// stay distinct instances. Placement only sees routing structure — model
/// width never enters the objective — so models that share an
/// (experts, layers) shape (M/16e vs XL/16e) are distinguished by a
/// model-specific seed stream instead.
fn instance(n_experts: usize, n_layers: usize, scale: Scale, seed: u64) -> Objective {
    let layers = (n_layers / scale.pick(6, 3)).max(2);
    let spec = AffinityModelSpec::new(layers, n_experts).with_seed(seed);
    let routing = spec.build();
    let batch = TokenBatch::sample(
        &routing,
        &CorpusSpec::pile_proxy(spec.n_domains),
        scale.pick(1500, 6000),
        1,
        seed,
    );
    let trace = RoutingTrace::from_batch(&batch, n_experts);
    Objective::from_sparse_affinities(&SparseAffinity::consecutive(&trace))
}

/// One full sweep over models × solvers at the installed pool width.
/// Each grid point is timed individually; `(rows, total_wall_ms)`.
fn sweep_once(
    instances: &[(String, Objective)],
    kinds: &[SolverKind],
    seed: u64,
) -> (Vec<BenchRow>, f64) {
    let grid: Vec<(usize, usize)> = (0..instances.len())
        .flat_map(|m| (0..kinds.len()).map(move |s| (m, s)))
        .collect();
    let t0 = Instant::now();
    let rows = par_map(grid, |(m, s)| {
        let (name, objective) = &instances[m];
        let kind = &kinds[s];
        let t = Instant::now();
        // Grid points are the parallel grain; each solve runs
        // sequentially inside so `--jobs` is the only width that matters.
        let placement = solve_with(objective, N_UNITS, kind, seed, Parallelism::single());
        let wall_ms = t.elapsed().as_secs_f64() * 1e3;
        BenchRow {
            model: name.clone(),
            solver: kind.label(),
            wall_ms,
            cross_mass: objective.cross_mass(&placement),
        }
    });
    (rows, t0.elapsed().as_secs_f64() * 1e3)
}

/// Measure one `table_sparse` cell: profile a large-expert instance,
/// build the objective once per backend from the same CSR estimates, run
/// the same bounded local-search workload on each, verify the results are
/// identical, and report the two wall times.
fn sparse_cell(cfg: &ModelConfig, scale: Scale, seed: u64) -> Result<SparseBenchRow, String> {
    let e = cfg.n_experts;
    let k = cfg.gate.k();
    let layers = scale.pick(2, 3);
    let tokens = scale.pick(3000, 10_000);
    let spec = AffinityModelSpec::new(layers, e).with_seed(seed);
    let routing = spec.build();
    let batch = TokenBatch::sample(
        &routing,
        &CorpusSpec::pile_proxy(spec.n_domains),
        tokens,
        k,
        seed,
    );
    let trace = RoutingTrace::from_batch(&batch, e);
    let estimates = SparseAffinity::consecutive(&trace);

    let run = |backend: GapBackend| {
        let objective = Objective::from_sparse_affinities_with(&estimates, backend);
        let mut placement = Placement::round_robin(layers, e, N_UNITS_LARGE);
        let t = Instant::now();
        // A bounded first-improvement polish: every step is swap_delta +
        // cross_mass work, i.e. exactly the O(E^2)-vs-O(nnz) contrast the
        // backends differ in. Pass count is fixed, so both backends do
        // the same moves.
        let cost = improve(&objective, &mut placement, scale.pick(1, 2));
        let wall_ms = t.elapsed().as_secs_f64() * 1e3;
        (objective, placement, cost, wall_ms)
    };
    let (obj_dense, place_dense, cost_dense, wall_dense) = run(GapBackend::Dense);
    let (obj_sparse, place_sparse, cost_sparse, wall_sparse) = run(GapBackend::Sparse);

    if place_dense != place_sparse || cost_dense.to_bits() != cost_sparse.to_bits() {
        return Err(format!(
            "backend divergence on {}: dense {} vs sparse {}",
            cfg.name, cost_dense, cost_sparse
        ));
    }
    debug_assert_eq!(obj_dense.nnz(), obj_sparse.nnz());

    Ok(SparseBenchRow {
        preset: cfg.name.clone(),
        n_experts: e,
        k,
        layers,
        nnz: obj_sparse.nnz(),
        density: obj_sparse.density(),
        wall_ms_dense: wall_dense,
        wall_ms_sparse: wall_sparse,
        cross_mass: cost_sparse,
    })
}

/// The `table_sparse` sweep over the large-expert zoo. Cells run
/// sequentially — they are timed, and contention would corrupt the
/// dense-vs-sparse comparison. Errors if any cell's backends diverge.
pub fn sparse_table(scale: Scale, seed: u64) -> Result<Vec<SparseBenchRow>, String> {
    large_zoo()
        .iter()
        .map(|cfg| {
            let stream = seed ^ ((cfg.n_experts as u64) << 20) ^ cfg.gate.k() as u64;
            sparse_cell(cfg, scale, stream)
        })
        .collect()
}

/// Sample one serving window's routing trace from a drift schedule.
fn online_window_trace(
    drift: &DriftSchedule,
    window: usize,
    tokens: usize,
    seed: u64,
) -> RoutingTrace {
    let model = drift.model_at(window);
    let batch = TokenBatch::sample(
        model,
        &CorpusSpec::pile_proxy(model.n_domains()),
        tokens,
        1,
        split_seed(seed, window as u64),
    );
    RoutingTrace::from_batch(&batch, model.n_experts())
}

/// Serve one drift scenario under the three policies. Every solve is
/// verified invariant: the oracle re-solve across thread counts
/// (1 vs `jobs`), the budgeted re-solve and the final cross mass across
/// gap backends. Cross counts are measured on the realized window traces.
fn online_scenario(
    drift: &DriftSchedule,
    layers: usize,
    window_tokens: usize,
    jobs: usize,
    seed: u64,
) -> Result<OnlineBenchRow, String> {
    let e = ONLINE_EXPERTS;
    let bytes_per_expert = moe_gpt_m(e).expert_params() * 2;
    let budget_bytes = ONLINE_BUDGET_MOVES * bytes_per_expert;
    let windows = drift.n_windows();

    // Profile window 0's routing and solve the shared initial placement —
    // exactly what all three policies start from.
    let mut streaming = StreamingAffinity::new(layers, e, ONLINE_DECAY);
    streaming.observe(&online_window_trace(drift, 0, window_tokens, seed ^ 0x0ff1));
    let initial = solve_local_search_with(
        &Objective::from_snapshot(&streaming.snapshot()),
        ONLINE_UNITS,
        ONLINE_ORACLE_RESTARTS,
        seed,
        Parallelism::single(),
    );
    let static_placement = initial.clone();
    let mut oracle_placement = initial.clone();
    let mut budgeted_placement = initial;

    let (mut static_cross, mut oracle_cross, mut budgeted_cross) = (0u64, 0u64, 0u64);
    let mut migrated_bytes = 0u64;
    let mut replans = 0usize;

    for window in 0..windows {
        let trace = online_window_trace(drift, window, window_tokens, seed);
        for (placement, acc) in [
            (&static_placement, &mut static_cross),
            (&oracle_placement, &mut oracle_cross),
            (&budgeted_placement, &mut budgeted_cross),
        ] {
            let loc = measure_trace_locality(&trace, placement);
            *acc += loc.transitions - loc.local;
        }
        streaming.observe(&trace);

        if (window + 1).is_multiple_of(ONLINE_REPLAN_EVERY) && window + 1 < windows {
            let snapshot = streaming.snapshot();
            // Oracle: from-scratch re-solve on the live estimate,
            // thread-count invariance verified.
            let live = Objective::from_snapshot(&snapshot);
            let sequential = solve_local_search_with(
                &live,
                ONLINE_UNITS,
                ONLINE_ORACLE_RESTARTS,
                split_seed(seed, 0x0c0de ^ window as u64),
                Parallelism::single(),
            );
            let parallel = solve_local_search_with(
                &live,
                ONLINE_UNITS,
                ONLINE_ORACLE_RESTARTS,
                split_seed(seed, 0x0c0de ^ window as u64),
                Parallelism::new(jobs),
            );
            if sequential != parallel {
                return Err(format!(
                    "{}: oracle re-solve diverged across thread counts at window {window}",
                    drift.name()
                ));
            }
            oracle_placement = sequential;

            // Budgeted incremental: walk toward the same oracle-quality
            // solution under the byte budget (the budget caps migration
            // traffic, not solver compute). Gap-backend invariance is
            // verified on the walk.
            let max_moves = budget_bytes / bytes_per_expert;
            let dense = solve_budgeted_toward(
                &Objective::from_snapshot_with(&snapshot, GapBackend::Dense),
                &budgeted_placement,
                &oracle_placement,
                max_moves,
            );
            let sparse = solve_budgeted_toward(
                &Objective::from_snapshot_with(&snapshot, GapBackend::Sparse),
                &budgeted_placement,
                &oracle_placement,
                max_moves,
            );
            if dense != sparse {
                return Err(format!(
                    "{}: budgeted re-solve diverged across gap backends at window {window}",
                    drift.name()
                ));
            }
            let plan = MigrationPlan::between(&budgeted_placement, &dense, bytes_per_expert);
            if plan.total_bytes() > budget_bytes {
                return Err(format!(
                    "{}: re-plan at window {window} migrated {} bytes over the {} budget",
                    drift.name(),
                    plan.total_bytes(),
                    budget_bytes
                ));
            }
            if !plan.is_empty() {
                migrated_bytes += plan.total_bytes();
                replans += 1;
            }
            budgeted_placement = dense;
        }
    }

    // The reported objective: the budgeted placement scored on the final
    // live estimate, bit-compared across backends.
    let snapshot = streaming.snapshot();
    let cm_dense =
        Objective::from_snapshot_with(&snapshot, GapBackend::Dense).cross_mass(&budgeted_placement);
    let cm_sparse = Objective::from_snapshot_with(&snapshot, GapBackend::Sparse)
        .cross_mass(&budgeted_placement);
    if cm_dense.to_bits() != cm_sparse.to_bits() {
        return Err(format!(
            "{}: final cross mass diverged across gap backends: dense {cm_dense} vs sparse {cm_sparse}",
            drift.name()
        ));
    }

    Ok(OnlineBenchRow {
        scenario: drift.name().to_string(),
        n_experts: e,
        layers,
        windows,
        replan_every: ONLINE_REPLAN_EVERY,
        budget_bytes,
        migrated_bytes,
        replans,
        static_cross,
        oracle_cross,
        budgeted_cross,
        cross_mass: cm_dense,
    })
}

/// The `table_online` sweep over the drift presets: static incumbent vs
/// oracle re-solve vs byte-budgeted incremental re-placement. Errors
/// (instead of panicking) if any invariance check fails.
pub fn online_table(scale: Scale, jobs: usize, seed: u64) -> Result<Vec<OnlineBenchRow>, String> {
    let layers = scale.pick(5, 7);
    let windows = scale.pick(12, 16);
    let window_tokens = scale.pick(1500, 4000);
    let spec = AffinityModelSpec::new(layers, ONLINE_EXPERTS).with_seed(seed ^ 0x07_11_13);
    DriftSchedule::presets(&spec, windows)
        .iter()
        .enumerate()
        .map(|(i, drift)| {
            online_scenario(
                drift,
                layers,
                window_tokens,
                jobs,
                split_seed(seed, 0xd1f7 ^ i as u64),
            )
        })
        .collect()
}

/// Serve one drift scenario under static / owner-moves-only / joint
/// replication-aware re-placement. Both adaptive policies get the same
/// per-re-plan migration byte budget; the joint policy additionally gets
/// `replica_slots` expert payloads of per-GPU replica memory. Every joint
/// re-solve and the final cross mass are verified invariant across gap
/// backends, and both policies are verified budget-compliant. Cross
/// counts are measured on the realized window traces.
// One scenario axis per knob the bench sweeps; a config struct would
// obscure which cells vary which knob.
#[allow(clippy::too_many_arguments)]
fn replication_scenario(
    drift: &DriftSchedule,
    e: usize,
    units: usize,
    layers: usize,
    replan_every: usize,
    window_tokens: usize,
    seed: u64,
) -> Result<ReplicationOnlineRow, String> {
    let bytes_per_expert = moe_gpt_m(e).expert_params() * 2;
    let budget_bytes = REPLICATION_BUDGET_MOVES * bytes_per_expert;
    let joint_budget = ReplicationBudget {
        replica_memory_bytes: REPLICATION_SLOTS * bytes_per_expert,
        migration_budget_bytes: budget_bytes,
    };
    let windows = drift.n_windows();
    let scenario = format!("{}/E{e}", drift.name());

    // Profile window 0 and solve the shared initial placement (greedy +
    // bounded polish: deterministic and cheap enough for E = 256).
    let mut streaming = StreamingAffinity::new(layers, e, ONLINE_DECAY);
    streaming.observe(&online_window_trace(drift, 0, window_tokens, seed ^ 0x0ff1));
    let initial = {
        let objective = Objective::from_snapshot(&streaming.snapshot());
        let mut p = solve_greedy(&objective, units);
        improve(&objective, &mut p, 10);
        p
    };
    let static_placement = initial.clone();
    let mut owner_placement = initial.clone();
    let mut joint_plan = ReplicationPlan::bare(initial);

    let (mut static_cross, mut owner_cross, mut joint_cross) = (0u64, 0u64, 0u64);
    let (mut owner_migrated, mut joint_migrated) = (0u64, 0u64);
    let (mut owner_replans, mut joint_replans) = (0usize, 0usize);
    let (mut replicas_added, mut replicas_dropped) = (0u64, 0u64);

    for window in 0..windows {
        let trace = online_window_trace(drift, window, window_tokens, seed);
        for (placement, acc) in [
            (&static_placement, &mut static_cross),
            (&owner_placement, &mut owner_cross),
        ] {
            let loc = measure_trace_locality(&trace, placement);
            *acc += loc.transitions - loc.local;
        }
        let loc = joint_plan.trace_locality(&trace);
        joint_cross += loc.transitions - loc.local;
        streaming.observe(&trace);

        if (window + 1).is_multiple_of(replan_every) && window + 1 < windows {
            let snapshot = streaming.snapshot();
            let dense = Objective::from_snapshot_with(&snapshot, GapBackend::Dense);
            let sparse = Objective::from_snapshot_with(&snapshot, GapBackend::Sparse);

            // Owner-moves-only: the whole migration budget buys
            // relocations.
            let owner_next = solve_budgeted(&dense, &owner_placement, REPLICATION_BUDGET_MOVES);
            if owner_next != solve_budgeted(&sparse, &owner_placement, REPLICATION_BUDGET_MOVES) {
                return Err(format!(
                    "{scenario}: owner re-solve diverged across gap backends at window {window}"
                ));
            }
            let plan = MigrationPlan::between(&owner_placement, &owner_next, bytes_per_expert);
            if plan.total_bytes() > budget_bytes {
                return Err(format!(
                    "{scenario}: owner re-plan at window {window} migrated {} bytes over the {budget_bytes} budget",
                    plan.total_bytes()
                ));
            }
            if !plan.is_empty() {
                owner_migrated += plan.total_bytes();
                owner_replans += 1;
            }
            owner_placement = owner_next;

            // Joint: replica adds/drops race owner moves under the same
            // migration budget plus the replica memory budget.
            let joint_next = solve_budgeted_replicated(
                &dense,
                &joint_plan,
                bytes_per_expert,
                &joint_budget,
                &ReplicaPolicy::Everywhere,
            );
            if joint_next
                != solve_budgeted_replicated(
                    &sparse,
                    &joint_plan,
                    bytes_per_expert,
                    &joint_budget,
                    &ReplicaPolicy::Everywhere,
                )
            {
                return Err(format!(
                    "{scenario}: joint re-solve diverged across gap backends at window {window}"
                ));
            }
            let plan =
                MigrationPlan::between_replicated(&joint_plan, &joint_next, bytes_per_expert);
            if plan.total_bytes() > budget_bytes {
                return Err(format!(
                    "{scenario}: joint re-plan at window {window} migrated {} bytes over the {budget_bytes} budget",
                    plan.total_bytes()
                ));
            }
            if joint_next.extra_copies_per_gpu() as u64 > REPLICATION_SLOTS {
                return Err(format!(
                    "{scenario}: joint re-plan at window {window} holds {} extra copies over the {REPLICATION_SLOTS}-slot memory budget",
                    joint_next.extra_copies_per_gpu()
                ));
            }
            if !plan.is_empty() {
                joint_migrated += plan.total_bytes();
                joint_replans += 1;
                replicas_added += plan.n_replica_adds() as u64;
                replicas_dropped += plan.n_replica_drops() as u64;
            }
            joint_plan = joint_next;
        }
    }

    // The reported objective: the joint plan scored on the final live
    // estimate, bit-compared across backends.
    let snapshot = streaming.snapshot();
    let cm_dense = replicated_cross_mass(
        &Objective::from_snapshot_with(&snapshot, GapBackend::Dense),
        &joint_plan,
    );
    let cm_sparse = replicated_cross_mass(
        &Objective::from_snapshot_with(&snapshot, GapBackend::Sparse),
        &joint_plan,
    );
    if cm_dense.to_bits() != cm_sparse.to_bits() {
        return Err(format!(
            "{scenario}: final replicated cross mass diverged across gap backends: dense {cm_dense} vs sparse {cm_sparse}"
        ));
    }

    Ok(ReplicationOnlineRow {
        scenario,
        n_experts: e,
        layers,
        units,
        windows,
        replan_every,
        budget_bytes,
        replica_slots: REPLICATION_SLOTS,
        owner_migrated_bytes: owner_migrated,
        joint_migrated_bytes: joint_migrated,
        owner_replans,
        joint_replans,
        replicas_added,
        replicas_dropped,
        extra_copies: joint_plan.extra_copies_per_gpu() as u64,
        static_cross,
        owner_cross,
        joint_cross,
        cross_mass: cm_dense,
    })
}

/// The `table_replication_online` sweep: the 3 drift presets at `E = 16`,
/// then one `large_zoo()` sparse instance (`E = 256`, top-1) where the
/// CSR objective backend carries the re-solves. Errors (instead of
/// panicking) if any invariance or budget check fails.
pub fn replication_online_table(
    scale: Scale,
    seed: u64,
) -> Result<Vec<ReplicationOnlineRow>, String> {
    let layers = scale.pick(5, 7);
    let windows = scale.pick(10, 14);
    let window_tokens = scale.pick(1500, 4000);
    let spec = AffinityModelSpec::new(layers, ONLINE_EXPERTS).with_seed(seed ^ 0x05_17_19);
    let mut rows: Vec<ReplicationOnlineRow> = DriftSchedule::presets(&spec, windows)
        .iter()
        .enumerate()
        .map(|(i, drift)| {
            replication_scenario(
                drift,
                ONLINE_EXPERTS,
                ONLINE_UNITS,
                layers,
                ONLINE_REPLAN_EVERY,
                window_tokens,
                split_seed(seed, 0x5e71 ^ i as u64),
            )
        })
        .collect::<Result<_, _>>()?;

    // One large sparse instance: E = 256 top-1 from the large zoo, few
    // windows (each re-solve walks a 256-expert swap neighborhood).
    let large = &large_zoo()[0];
    let large_layers = 2;
    let large_windows = scale.pick(4, 6);
    let large_spec =
        AffinityModelSpec::new(large_layers, large.n_experts).with_seed(seed ^ 0x23_29_31);
    let large_drift = DriftSchedule::piecewise(&large_spec, 2, large_windows);
    rows.push(replication_scenario(
        &large_drift,
        large.n_experts,
        N_UNITS_LARGE,
        large_layers,
        1,
        scale.pick(2000, 6000),
        split_seed(seed, 0x5e71 ^ 0xbeef),
    )?);
    Ok(rows)
}

/// Build one serving engine. All policies share the model, cluster, and
/// master seed, so the profiled incumbent placement — and, downstream,
/// the arrival sample and per-request routing draws of `run_serving` —
/// are identical across policies; only the re-placement behavior differs.
fn serving_engine(
    layers: usize,
    online: OnlineConfig,
    threads: usize,
    backend: GapBackend,
    seed: u64,
) -> InferenceEngine {
    let mut model = moe_gpt_m(SERVING_EXPERTS);
    model.n_layers = layers;
    model.d_ff = SERVING_D_FF;
    let cost = CostModel::new(
        LinkCost::from_latency_bandwidth(0.3e-6, 1.5e12),
        LinkCost::from_latency_bandwidth(1.0e-6, 300.0e9),
        LinkCost::from_latency_bandwidth(3.5e-6, SERVING_INTER_NODE_BW),
    )
    .with_alltoall_efficiency([1.0, 0.5, 0.16]);
    InferenceEngine::builder(model, ClusterSpec::new(2, 2).unwrap())
        .link_cost(cost)
        .requests_per_gpu(SERVING_MAX_BATCH / 4)
        .prompt_len(4)
        .profile_tokens(800)
        .parallelism(Parallelism::new(threads))
        .gap_backend(backend)
        .online(online)
        .seed(seed ^ 0x5e_4b_1e)
        .build()
}

/// The `table_serving` sweep: Poisson, diurnal, and flash-crowd arrival
/// processes served through the request-level front-end under static /
/// budgeted-online / replication-aware placements. The arrival rate is
/// calibrated against a probed step time
/// (`InferenceEngine::probe_step_time`) so the cell runs at
/// `SERVING_UTILIZATION` (96%) of full-batch capacity regardless of model
/// shape. Errors (instead of panicking) if the budgeted-online report is
/// not bit-identical at `jobs` solver threads or on the CSR gap backend,
/// or if any report fails its sanity bars.
pub fn serving_table(scale: Scale, jobs: usize, seed: u64) -> Result<Vec<ServingBenchRow>, String> {
    let layers = scale.pick(4, 5);
    let n_requests = scale.pick(1400, 1800);
    let mode = ParallelismMode::ContextCoherentAffinity;

    let bytes_per_expert = {
        let mut model = moe_gpt_m(SERVING_EXPERTS);
        model.n_layers = layers;
        model.d_ff = SERVING_D_FF;
        model.expert_params() * 2
    };
    let static_oc = OnlineConfig {
        drift_threshold: f64::INFINITY,
        decay: SERVING_DECAY,
        ..OnlineConfig::default()
    };
    let online_oc = OnlineConfig {
        replan_every: 2,
        drift_threshold: SERVING_DRIFT_THRESHOLD,
        migration_budget_bytes: SERVING_BUDGET_MOVES * bytes_per_expert,
        decay: SERVING_DECAY,
        ..OnlineConfig::default()
    };
    let repl_oc = OnlineConfig {
        migration_budget_bytes: SERVING_BUDGET_MOVES / 2 * bytes_per_expert,
        replica_memory_bytes: SERVING_REPLICA_SLOTS * bytes_per_expert,
        ..online_oc
    };

    let static_eng = serving_engine(layers, static_oc, 1, GapBackend::Dense, seed);
    let online_eng = serving_engine(layers, online_oc, 1, GapBackend::Dense, seed);
    let repl_eng = serving_engine(layers, repl_oc, 1, GapBackend::Dense, seed);
    // Invariance witnesses: the same budgeted-online policy at the
    // requested solver width and on the CSR objective backend.
    let wide_eng = serving_engine(layers, online_oc, jobs.max(2), GapBackend::Dense, seed);
    let sparse_eng = serving_engine(layers, online_oc, 1, GapBackend::Sparse, seed);

    let drift = DriftSchedule::piecewise(&static_eng.config().routing_spec, 2, SERVING_WINDOWS);

    // Calibrate absolute arrival rates against the probed full-batch step
    // time: `rate` fills SERVING_UTILIZATION of the cell's token-serving
    // capacity, and the horizon is how long that rate takes to deliver
    // every request.
    let step = static_eng.probe_step_time(mode, SERVING_MAX_BATCH);
    if step <= 0.0 {
        return Err(format!("probed step time {step} must be positive"));
    }
    let rate =
        SERVING_UTILIZATION * SERVING_MAX_BATCH as f64 / (SERVING_DECODE_STEPS as f64 * step);
    let horizon = n_requests as f64 / rate;
    // The flash crowd compresses the same mean load: a quiet base rate
    // with a 4x spike over 10% of the horizon.
    let arrivals = [
        ArrivalProcess::poisson(rate),
        ArrivalProcess::diurnal(rate, 0.5, horizon / 2.0),
        ArrivalProcess::flash_crowd(rate / 1.3, 4.0, 0.7 * horizon, 0.1 * horizon),
    ];

    let mut rows = Vec::with_capacity(arrivals.len());
    for arrival in arrivals {
        let cfg = ServingConfig {
            arrival,
            n_requests,
            decode_steps: SERVING_DECODE_STEPS,
            batch: BatchPolicy::SizeOrWait {
                max_size: SERVING_MAX_BATCH,
                max_wait: 2.0 * step,
            },
            window_duration: horizon / SERVING_WINDOWS as f64,
        };
        let name = cfg.arrival.name().to_string();
        let scenario = Scenario::offline(mode)
            .with_drift(drift.clone())
            .with_serving(cfg.clone());
        let stat: ServingReport = static_eng.run_scenario(&scenario).expect_serving();
        let online = online_eng.run_scenario(&scenario).expect_serving();
        let repl = repl_eng.run_scenario(&scenario).expect_serving();

        let wide = wide_eng.run_scenario(&scenario).expect_serving();
        if wide != online {
            return Err(format!(
                "{name}: serving report diverged across solver widths (1 vs {})",
                jobs.max(2)
            ));
        }
        let sparse = sparse_eng.run_scenario(&scenario).expect_serving();
        if sparse != online {
            return Err(format!(
                "{name}: serving report diverged across gap backends"
            ));
        }

        for (policy, r) in [
            ("static", &stat),
            ("online", &online),
            ("replicated", &repl),
        ] {
            if r.n_requests() != n_requests {
                return Err(format!(
                    "{name}/{policy}: served {} of {n_requests} requests",
                    r.n_requests()
                ));
            }
            if r.goodput() > r.offered_load {
                return Err(format!(
                    "{name}/{policy}: goodput {} exceeds offered load {}",
                    r.goodput(),
                    r.offered_load
                ));
            }
            if r.offered_load.to_bits() != stat.offered_load.to_bits() {
                return Err(format!(
                    "{name}/{policy}: policies saw different arrival samples"
                ));
            }
        }
        if online.migrations.replans == 0 {
            return Err(format!(
                "{name}: piecewise drift fired no budgeted-online re-plans"
            ));
        }

        rows.push(ServingBenchRow {
            arrival: name,
            requests: n_requests,
            decode_steps: SERVING_DECODE_STEPS,
            windows: SERVING_WINDOWS,
            max_batch: SERVING_MAX_BATCH,
            offered_load: stat.offered_load,
            static_p50: stat.p50(),
            static_p95: stat.p95(),
            static_p99: stat.p99(),
            static_goodput: stat.goodput(),
            online_p50: online.p50(),
            online_p95: online.p95(),
            online_p99: online.p99(),
            online_goodput: online.goodput(),
            online_replans: online.migrations.replans,
            online_migrated_bytes: online.migrations.bytes.total(),
            repl_p50: repl.p50(),
            repl_p95: repl.p95(),
            repl_p99: repl.p99(),
            repl_goodput: repl.goodput(),
            repl_replicas_added: repl.migrations.replicas_added,
        });
    }
    Ok(rows)
}

/// The `table_elasticity` sweep: one Poisson arrival sample served
/// through a mid-run GPU loss (and, in the second cell, a later rejoin)
/// by two fleets that differ only in replication — none (lost experts
/// must be emergency-restored over the wire) vs full (failover is a
/// free ownership flip). The arrival rate is calibrated so the
/// *surviving* fleet stays below saturation (`ELASTICITY_UTILIZATION`),
/// which is what makes "time until the rolling p99 returns to its
/// pre-fault level" well-defined. Errors (instead of panicking) if the
/// faulted run is not bit-identical at `jobs` solver threads and at 8,
/// or on the CSR gap backend, or if the replicated fleet fails its
/// acceptance bars (free failover, strictly faster recovery).
pub fn elasticity_table(
    scale: Scale,
    jobs: usize,
    seed: u64,
) -> Result<Vec<ElasticityRow>, String> {
    let layers = scale.pick(4, 5);
    let n_requests = scale.pick(ELASTICITY_REQUESTS.0, ELASTICITY_REQUESTS.1);
    let mode = ParallelismMode::ContextCoherentAffinity;
    // A static (never drift-replanning) policy on both fleets: the only
    // re-placements in these cells are the emergency ones the fault
    // layer itself triggers, so the recovery clock measures elasticity,
    // not drift adaptation.
    let oc = OnlineConfig {
        drift_threshold: f64::INFINITY,
        decay: SERVING_DECAY,
        ..OnlineConfig::default()
    };

    let eng = serving_engine(layers, oc, 1, GapBackend::Dense, seed);
    let world = eng.config().cluster.world_size();
    let step = eng.probe_step_time(mode, SERVING_MAX_BATCH);
    if step <= 0.0 {
        return Err(format!("probed step time {step} must be positive"));
    }
    let rate =
        ELASTICITY_UTILIZATION * SERVING_MAX_BATCH as f64 / (SERVING_DECODE_STEPS as f64 * step);
    let horizon = n_requests as f64 / rate;
    let cfg = ServingConfig {
        arrival: ArrivalProcess::poisson(rate),
        n_requests,
        decode_steps: SERVING_DECODE_STEPS,
        batch: BatchPolicy::SizeOrWait {
            max_size: SERVING_MAX_BATCH,
            max_wait: 2.0 * step,
        },
        window_duration: horizon / SERVING_WINDOWS as f64,
    };
    // The replicated fleet starts from the same profiled placement with
    // every expert replicated everywhere, so any lost expert has a live
    // copy. `everywhere` materializes the actual non-owner subsets, so
    // the memory figure below counts real copies, not a world-size
    // fan-out assumption.
    let full_replication = ReplicationPlan::everywhere(
        eng.placement_for(mode).clone(),
        vec![(0..SERVING_EXPERTS).collect(); layers],
    );

    let faults = [
        FaultSchedule::gpu_loss(world, 1, ELASTICITY_FAULT_AT * horizon),
        FaultSchedule::loss_and_rejoin(
            world,
            1,
            ELASTICITY_FAULT_AT * horizon,
            ELASTICITY_REJOIN_AT * horizon,
        ),
    ];

    let mut rows = Vec::with_capacity(faults.len());
    for fault in faults {
        let name = fault.name().to_string();
        let plain_scenario = Scenario::offline(mode)
            .with_serving(cfg.clone())
            .with_faults(fault.clone());
        let repl_scenario = plain_scenario
            .clone()
            .with_replication(full_replication.clone());
        let plain = eng.run_scenario(&plain_scenario).expect_serving();
        let repl = eng.run_scenario(&repl_scenario).expect_serving();

        // Bit-identity of the faulted run across solver widths and the
        // CSR objective backend, on the fleet that actually exercises
        // emergency re-placement.
        for threads in [jobs.max(2), 8] {
            let wide = serving_engine(layers, oc, threads, GapBackend::Dense, seed)
                .run_scenario(&plain_scenario)
                .expect_serving();
            if wide != plain {
                return Err(format!(
                    "{name}: faulted serving report diverged across solver widths (1 vs {threads})"
                ));
            }
        }
        let sparse = serving_engine(layers, oc, 1, GapBackend::Sparse, seed)
            .run_scenario(&plain_scenario)
            .expect_serving();
        if sparse != plain {
            return Err(format!(
                "{name}: faulted serving report diverged across gap backends"
            ));
        }

        for (fleet, r) in [("no-replicas", &plain), ("replicated", &repl)] {
            if r.n_requests() != n_requests {
                return Err(format!(
                    "{name}/{fleet}: served {} of {n_requests} requests",
                    r.n_requests()
                ));
            }
            if r.disruption.requests_disrupted == 0 {
                return Err(format!(
                    "{name}/{fleet}: the loss disrupted nothing — the fault landed too late"
                ));
            }
        }
        // The loss evacuation is free under full replication; a rejoin
        // re-home still ships weights back to the returning GPU on both
        // fleets, so only the loss-only cell pins zero emergency bytes.
        let has_rejoin = fault.events().iter().any(|ev| ev.kind == FaultKind::Up);
        if !has_rejoin && repl.disruption.emergency_bytes != 0 {
            return Err(format!(
                "{name}: full replication still copied {} emergency bytes",
                repl.disruption.emergency_bytes
            ));
        }
        if repl.disruption.emergency_bytes >= plain.disruption.emergency_bytes {
            return Err(format!(
                "{name}: replication shipped {} emergency bytes vs {} without — failover \
                 must save wire traffic",
                repl.disruption.emergency_bytes, plain.disruption.emergency_bytes
            ));
        }

        let recovery = |r: &ServingReport| r.recovery_time().unwrap_or(-1.0);
        let row = ElasticityRow {
            fault: name.clone(),
            requests: n_requests,
            fault_time: fault.first_down_time().unwrap_or(0.0),
            plain_p99: plain.p99(),
            plain_disrupted: plain.disruption.requests_disrupted,
            plain_steps_degraded: plain.disruption.steps_degraded,
            plain_emergency_bytes: plain.disruption.emergency_bytes,
            plain_recovery: recovery(&plain),
            repl_p99: repl.p99(),
            repl_disrupted: repl.disruption.requests_disrupted,
            repl_steps_degraded: repl.disruption.steps_degraded,
            repl_emergency_bytes: repl.disruption.emergency_bytes,
            repl_recovery: recovery(&repl),
            repl_extra_copies: full_replication.extra_copies_per_gpu() as u64,
        };
        if !row.replication_recovers_faster() {
            return Err(format!(
                "{name}: replicated fleet recovered in {} vs no-replicas {} — replication must \
                 buy strictly faster recovery",
                row.repl_recovery, row.plain_recovery
            ));
        }
        rows.push(row);
    }
    Ok(rows)
}

/// Measure one `table_replan_latency` cell: drift one large-expert
/// instance through a window stream and re-plan after every window along
/// two lockstep paths sharing one incumbent —
///
/// * **rebuild**: `Objective::from_snapshot` on the live estimate (paid
///   every re-plan), then an uncached `solve_budgeted_metered`, which
///   recomputes every considered candidate's gain;
/// * **incremental**: `Objective::apply_snapshot_delta` with the
///   window's `SnapshotDelta`, then the same solver backed by a
///   persistent [`SwapGainCache`].
///
/// Every re-plan verifies the two objectives are equal, both paths pick
/// the same placement, consider the same number of candidates, and — at
/// the end — score bit-identical cross mass. Any divergence is an `Err`:
/// it would mean incremental maintenance broke the determinism contract
/// and the JSON must not be published.
fn replan_latency_cell(
    cfg: &ModelConfig,
    scale: Scale,
    seed: u64,
) -> Result<ReplanLatencyRow, String> {
    let e = cfg.n_experts;
    let k = cfg.gate.k();
    let layers = REPLAN_LATENCY_LAYERS;
    let windows = scale.pick(3, 5);
    let window_tokens = scale.pick(REPLAN_LATENCY_TOKENS.0, REPLAN_LATENCY_TOKENS.1);
    let spec = AffinityModelSpec::new(layers, e).with_seed(seed);
    let drift = DriftSchedule::piecewise(&spec, 2, windows);

    // Window 0 profiles the instance; both paths start from the same
    // snapshot-built objective and the same greedy-plus-polish incumbent.
    let mut streaming = StreamingAffinity::new(layers, e, ONLINE_DECAY);
    streaming.observe(&online_window_trace(
        &drift,
        0,
        window_tokens,
        seed ^ 0x0ff1,
    ));
    let mut live = Objective::from_snapshot(&streaming.snapshot());
    let mut cache = SwapGainCache::for_objective(&live);
    let mut placement = {
        let mut p = solve_greedy(&live, N_UNITS_LARGE);
        improve(&live, &mut p, 10);
        p
    };

    let mut replans = 0usize;
    let (mut considered, mut evaluated_rebuild) = (0u64, 0u64);
    let (mut evaluated_incremental, mut reused) = (0u64, 0u64);
    let (mut wall_rebuild, mut wall_incremental) = (0.0f64, 0.0f64);

    for window in 1..windows {
        let trace = online_window_trace(&drift, window, window_tokens, seed);
        let delta = streaming.observe_delta(&trace);

        // Rebuild path: pay the full objective reconstruction, then the
        // uncached solve.
        let t = Instant::now();
        let rebuilt = Objective::from_snapshot(&streaming.snapshot());
        let (next_rebuild, cost_rebuild) =
            solve_budgeted_metered(&rebuilt, &placement, REPLAN_LATENCY_MOVES, u64::MAX, None);
        wall_rebuild += t.elapsed().as_secs_f64() * 1e3;

        // Incremental path: splice the window delta into the persistent
        // objective, then the cache-backed solve.
        let t = Instant::now();
        live.apply_snapshot_delta(&delta);
        let (next_incremental, cost_incremental) = solve_budgeted_metered(
            &live,
            &placement,
            REPLAN_LATENCY_MOVES,
            u64::MAX,
            Some(&mut cache),
        );
        wall_incremental += t.elapsed().as_secs_f64() * 1e3;

        if live != rebuilt {
            return Err(format!(
                "{}: delta-maintained objective diverged from the rebuild at window {window}",
                cfg.name
            ));
        }
        if next_incremental != next_rebuild {
            return Err(format!(
                "{}: cached incremental re-plan diverged from the rebuild at window {window}",
                cfg.name
            ));
        }
        if cost_rebuild.considered != cost_incremental.considered {
            return Err(format!(
                "{}: scan budget charged {} candidates uncached vs {} cached at window {window}",
                cfg.name, cost_rebuild.considered, cost_incremental.considered
            ));
        }
        considered += cost_rebuild.considered;
        evaluated_rebuild += cost_rebuild.evaluated;
        evaluated_incremental += cost_incremental.evaluated;
        reused += cost_incremental.reused;
        if next_rebuild != placement {
            replans += 1;
        }
        placement = next_rebuild;
    }

    let cm_rebuild = Objective::from_snapshot(&streaming.snapshot()).cross_mass(&placement);
    let cm_incremental = live.cross_mass(&placement);
    if cm_rebuild.to_bits() != cm_incremental.to_bits() {
        return Err(format!(
            "{}: final cross mass diverged: rebuild {cm_rebuild} vs incremental {cm_incremental}",
            cfg.name
        ));
    }

    Ok(ReplanLatencyRow {
        preset: cfg.name.clone(),
        n_experts: e,
        k,
        layers,
        windows,
        replans,
        max_moves: REPLAN_LATENCY_MOVES,
        considered,
        evaluated_rebuild,
        evaluated_incremental,
        reused,
        wall_ms_rebuild: wall_rebuild,
        wall_ms_incremental: wall_incremental,
        cross_mass_rebuild: cm_rebuild,
        cross_mass_incremental: cm_incremental,
    })
}

/// The `table_replan_latency` sweep over the large-expert zoo
/// (`E = 256/512`, top-1 and top-2). Cells run sequentially — both paths
/// are timed, and contention would corrupt the rebuild-vs-incremental
/// comparison. Errors if any cell's paths diverge.
pub fn replan_latency_table(scale: Scale, seed: u64) -> Result<Vec<ReplanLatencyRow>, String> {
    large_zoo()
        .iter()
        .map(|cfg| {
            let stream = seed ^ ((cfg.n_experts as u64) << 20) ^ cfg.gate.k() as u64 ^ 0x9e37;
            replan_latency_cell(cfg, scale, stream)
        })
        .collect()
}

/// Sample one window trace with an explicit gating fan-out `k` (the
/// top-2 cells route every token through two experts per layer).
fn partial_window_trace(
    drift: &DriftSchedule,
    window: usize,
    tokens: usize,
    k: usize,
    seed: u64,
) -> RoutingTrace {
    let model = drift.model_at(window);
    let batch = TokenBatch::sample(
        model,
        &CorpusSpec::pile_proxy(model.n_domains()),
        tokens,
        k,
        split_seed(seed, window as u64),
    );
    RoutingTrace::from_batch(&batch, model.n_experts())
}

/// Measure one `table_partial_replication` cell. Every re-plan races the
/// one-per-node and everywhere fan-out policies from the *same* shared
/// incumbent at equal budgets; the partial winner becomes the next
/// incumbent. The engine leg runs the context-coherent online loop under
/// the subset policy and verifies bit-identity at 1/2/8 solver threads
/// and across gap backends.
fn partial_replication_cell(
    e: usize,
    gate: GateKind,
    scale: Scale,
    seed: u64,
) -> Result<PartialReplicationRow, String> {
    let k = gate.k();
    let scenario = format!("E{e}/top{k}");
    let (units, cluster, layers, windows, window_tokens) = if e <= 16 {
        (
            ONLINE_UNITS,
            ClusterSpec::new(2, 2).unwrap(),
            scale.pick(4, 5),
            scale.pick(6, 10),
            scale.pick(1500, 4000),
        )
    } else {
        (
            N_UNITS_LARGE,
            ClusterSpec::new(2, 4).unwrap(),
            2,
            scale.pick(3, 5),
            scale.pick(2000, 6000),
        )
    };
    let bytes_per_expert = moe_gpt_m(e).expert_params() * 2;
    let budget_bytes = PARTIAL_BUDGET_MOVES * bytes_per_expert;
    let budget = ReplicationBudget {
        replica_memory_bytes: PARTIAL_REPLICA_SLOTS * bytes_per_expert,
        migration_budget_bytes: budget_bytes,
    };
    let partial_policy = ReplicaPolicy::OnePerNode(cluster);

    let spec = AffinityModelSpec::new(layers, e).with_seed(seed ^ 0x9a_7d_11);
    let drift = DriftSchedule::piecewise(&spec, 2, windows);

    let mut streaming = StreamingAffinity::new(layers, e, ONLINE_DECAY);
    streaming.observe(&partial_window_trace(
        &drift,
        0,
        window_tokens,
        k,
        seed ^ 0x0ff1,
    ));
    let initial = {
        let objective = Objective::from_snapshot(&streaming.snapshot());
        let mut p = solve_greedy(&objective, units);
        improve(&objective, &mut p, 10);
        p
    };
    let mut incumbent = ReplicationPlan::bare(initial);

    let mut realized_cross = 0u64;
    let (mut partial_cm, mut full_cm) = (0.0f64, 0.0f64);
    let (mut partial_migrated, mut full_migrated) = (0u64, 0u64);
    let mut partial_replans = 0usize;
    let mut replicas_added = 0u64;
    let mut full_extra_copies = 0u64;

    for window in 0..windows {
        let trace = partial_window_trace(&drift, window, window_tokens, k, seed);
        let loc = incumbent.trace_locality(&trace);
        realized_cross += loc.transitions - loc.local;
        streaming.observe(&trace);

        if window + 1 < windows {
            let snapshot = streaming.snapshot();
            let dense = Objective::from_snapshot_with(&snapshot, GapBackend::Dense);
            let sparse = Objective::from_snapshot_with(&snapshot, GapBackend::Sparse);

            let solve_both = |policy: &ReplicaPolicy| -> Result<(ReplicationPlan, f64), String> {
                let next = solve_budgeted_replicated(
                    &dense,
                    &incumbent,
                    bytes_per_expert,
                    &budget,
                    policy,
                );
                if next
                    != solve_budgeted_replicated(
                        &sparse,
                        &incumbent,
                        bytes_per_expert,
                        &budget,
                        policy,
                    )
                {
                    return Err(format!(
                        "{scenario}: {policy:?} solve diverged across gap backends at window {window}"
                    ));
                }
                let cm = replicated_cross_mass(&dense, &next);
                if cm.to_bits() != replicated_cross_mass(&sparse, &next).to_bits() {
                    return Err(format!(
                        "{scenario}: replicated cross mass diverged across gap backends at window {window}"
                    ));
                }
                Ok((next, cm))
            };

            let (partial_next, cm_p) = solve_both(&partial_policy)?;
            let (full_next, cm_f) = solve_both(&ReplicaPolicy::Everywhere)?;
            if cm_p > cm_f {
                return Err(format!(
                    "{scenario}: partial fan-out lost to full at equal memory at window \
                     {window} ({cm_p} vs {cm_f})"
                ));
            }
            partial_cm += cm_p;
            full_cm += cm_f;

            for (next, migrated, extra_cap) in [
                (&partial_next, &mut partial_migrated, PARTIAL_REPLICA_SLOTS),
                (&full_next, &mut full_migrated, PARTIAL_REPLICA_SLOTS),
            ] {
                let diff = MigrationPlan::between_replicated(&incumbent, next, bytes_per_expert);
                if diff.total_bytes() > budget_bytes {
                    return Err(format!(
                        "{scenario}: re-plan at window {window} migrated {} bytes over the \
                         {budget_bytes} budget",
                        diff.total_bytes()
                    ));
                }
                if next.extra_copies_per_gpu() as u64 > extra_cap {
                    return Err(format!(
                        "{scenario}: re-plan at window {window} holds {} extra copies over \
                         the {extra_cap}-slot memory budget",
                        next.extra_copies_per_gpu()
                    ));
                }
                *migrated += diff.total_bytes();
            }
            let diff =
                MigrationPlan::between_replicated(&incumbent, &partial_next, bytes_per_expert);
            if !diff.is_empty() {
                partial_replans += 1;
                replicas_added += diff.n_replica_adds() as u64;
            }
            full_extra_copies = full_next.extra_copies_per_gpu() as u64;
            incumbent = partial_next;
        }
    }

    // The engine leg: the context-coherent online loop dispatching with
    // the meeting-point rule under the one-per-node policy, verified
    // bit-identical at 1/2/8 solver threads and across gap backends.
    let cc_engine = |threads: usize, backend: GapBackend| {
        let mut model = moe_gpt_m(e).with_gate(gate);
        model.n_layers = if e <= 16 { 4 } else { 2 };
        model.d_ff = SERVING_D_FF;
        let engine_bpe = model.expert_params() * 2;
        InferenceEngine::builder(model, ClusterSpec::new(2, 2).unwrap())
            .requests_per_gpu(8)
            .n_iterations(2)
            .prompt_len(4)
            .profile_tokens(scale.pick(400, 800))
            .parallelism(Parallelism::new(threads))
            .gap_backend(backend)
            .online(OnlineConfig {
                replan_every: 1,
                drift_threshold: 0.08,
                migration_budget_bytes: PARTIAL_BUDGET_MOVES * engine_bpe,
                decay: 0.3,
                replica_memory_bytes: PARTIAL_REPLICA_SLOTS * engine_bpe,
                replica_policy: ReplicaPlacement::OnePerNode,
                ..OnlineConfig::default()
            })
            .seed(seed ^ 0x77_aa_01)
            .build()
    };
    let cc_windows = if e <= 16 { 4 } else { 3 };
    let cc_run = |threads: usize, backend: GapBackend| {
        let eng = cc_engine(threads, backend);
        let drift = DriftSchedule::piecewise(&eng.config().routing_spec, 2, cc_windows);
        eng.run_scenario(
            &Scenario::offline(ParallelismMode::ContextCoherentAffinity).with_drift(drift),
        )
        .expect_online()
    };
    let baseline = cc_run(1, GapBackend::Auto);
    for threads in [2usize, 8] {
        if cc_run(threads, GapBackend::Auto) != baseline {
            return Err(format!(
                "{scenario}: context-coherent run diverged across solver widths (1 vs {threads})"
            ));
        }
    }
    if cc_run(1, GapBackend::Dense) != cc_run(1, GapBackend::Sparse) {
        return Err(format!(
            "{scenario}: context-coherent run diverged across gap backends"
        ));
    }

    Ok(PartialReplicationRow {
        scenario,
        n_experts: e,
        k,
        layers,
        units,
        windows,
        replica_slots: PARTIAL_REPLICA_SLOTS,
        budget_bytes,
        partial_replans,
        replicas_added,
        partial_migrated_bytes: partial_migrated,
        full_migrated_bytes: full_migrated,
        partial_extra_copies: incumbent.extra_copies_per_gpu() as u64,
        full_extra_copies,
        partial_cross_mass: partial_cm,
        full_cross_mass: full_cm,
        realized_cross,
        cc_replicas_added: baseline.migrations.replicas_added,
        cc_local_fraction: baseline.dispatch().gpu_local_fraction(),
    })
}

/// The `table_partial_replication` sweep: `E ∈ {16, 256} × top-1/top-2`.
/// Errors (instead of panicking) if any cell fails its invariance or
/// budget checks, or if no context-coherent top-2 cell buys a replica —
/// the regression this sweep exists to catch is top-2 models silently
/// falling back to owner-moves-only re-planning.
pub fn partial_replication_table(
    scale: Scale,
    seed: u64,
) -> Result<Vec<PartialReplicationRow>, String> {
    let grid = [
        (16usize, GateKind::Top1),
        (16, GateKind::Top2),
        (256, GateKind::Top1),
        (256, GateKind::Top2),
    ];
    let rows: Vec<PartialReplicationRow> = grid
        .iter()
        .map(|&(e, gate)| {
            let stream = seed ^ ((e as u64) << 24) ^ gate.k() as u64;
            partial_replication_cell(e, gate, scale, split_seed(stream, 0x9a47))
        })
        .collect::<Result<_, _>>()?;
    if !rows.iter().any(|r| r.k == 2 && r.cc_replicas_added > 0) {
        return Err(
            "no context-coherent top-2 cell created a replica — top-2 dispatch fell back \
             to owner moves"
                .to_string(),
        );
    }
    Ok(rows)
}

/// Run the benchmark: the Table II sweep at `--jobs 1` and at `--jobs
/// N` (verified bit-identical in quality, timed in both), the
/// `table_sparse` dense-vs-sparse sweep (verified identical across
/// backends), and the `table_online` drift sweep (verified invariant
/// across thread counts and backends). Errors (instead of panicking) if
/// any verification fails — that would mean the determinism contract is
/// broken and the JSON must not be published.
pub fn run(scale: Scale, jobs: usize, seed: u64) -> Result<BenchSummary, String> {
    let kinds = roster(scale);
    let models = table2();
    let sequential = SweepPool::new(1);
    let parallel = SweepPool::new(jobs);
    // Instance construction (token sampling + trace estimation) is also
    // fanned at the requested width; it feeds both timed passes equally,
    // so it stays outside the timings.
    let instances: Vec<(String, Objective)> = parallel.install(|| {
        par_map(models, |m| {
            // Fold every identity-bearing field into the stream so no two
            // zoo rows ever measure the same instance.
            let stream = seed ^ (m.n_layers as u64) ^ ((m.d_model as u64) << 16) ^ m.base_params;
            let obj = instance(m.n_experts, m.n_layers, scale, stream);
            (m.name, obj)
        })
    });

    let (rows1, wall1) = sequential.install(|| sweep_once(&instances, &kinds, seed));
    let (rows_n, wall_n) = parallel.install(|| sweep_once(&instances, &kinds, seed));

    for (a, b) in rows1.iter().zip(rows_n.iter()) {
        if a.cross_mass.to_bits() != b.cross_mass.to_bits() {
            return Err(format!(
                "objective diverged across thread counts: {}/{} jobs=1 {} vs jobs={jobs} {}",
                a.model, a.solver, a.cross_mass, b.cross_mass
            ));
        }
    }

    let sparse_rows = sparse_table(scale, seed)?;
    let online_rows = online_table(scale, jobs, seed)?;
    let replication_online_rows = replication_online_table(scale, seed)?;
    let serving_rows = serving_table(scale, jobs, seed)?;
    let elasticity_rows = elasticity_table(scale, jobs, seed)?;
    let replan_latency_rows = replan_latency_table(scale, seed)?;
    let partial_replication_rows = partial_replication_table(scale, seed)?;

    Ok(BenchSummary {
        seed,
        scale: match scale {
            Scale::Quick => "quick".to_string(),
            Scale::Full => "full".to_string(),
        },
        jobs,
        wall_ms_jobs1: wall1,
        wall_ms_jobs_n: wall_n,
        rows: rows1,
        sparse_rows,
        online_rows,
        replication_online_rows,
        serving_rows,
        elasticity_rows,
        replan_latency_rows,
        partial_replication_rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_covers_the_full_grid_and_quality_is_sane() {
        let summary = run(Scale::Quick, 2, 7).expect("determinism must hold");
        let n_models = table2().len();
        let n_solvers = roster(Scale::Quick).len();
        assert_eq!(summary.rows.len(), n_models * n_solvers);
        // Within each model, every optimizing solver beats round-robin.
        for chunk in summary.rows.chunks(n_solvers) {
            let rr = chunk
                .iter()
                .find(|r| r.solver == "round-robin")
                .expect("round-robin is in the roster");
            for row in chunk.iter().filter(|r| r.solver != "round-robin") {
                assert!(
                    row.cross_mass <= rr.cross_mass + 1e-9,
                    "{}/{} ({}) worse than round-robin ({})",
                    row.model,
                    row.solver,
                    row.cross_mass,
                    rr.cross_mass
                );
            }
        }
        // The sparse table covers the whole large zoo, each instance
        // genuinely sparse at these token budgets.
        assert_eq!(summary.sparse_rows.len(), large_zoo().len());
        for row in &summary.sparse_rows {
            assert!(row.nnz > 0);
            assert!(
                row.density < exflow_placement::SPARSE_DENSITY_THRESHOLD,
                "{} density {} not sparse",
                row.preset,
                row.density
            );
            assert!(row.cross_mass.is_finite());
        }
    }

    #[test]
    fn online_table_recovers_oracle_reduction_within_budget() {
        let rows = online_table(Scale::Quick, 2, 7).expect("invariance must hold");
        assert_eq!(rows.len(), 3, "one row per drift preset");
        for row in &rows {
            assert!(row.replans > 0, "{}: no re-plans fired", row.scenario);
            assert!(
                row.migrated_bytes <= row.budget_bytes * row.replans as u64,
                "{}: migrated {} over {} re-plans of budget {}",
                row.scenario,
                row.migrated_bytes,
                row.replans,
                row.budget_bytes
            );
            // Drift must genuinely hurt the static incumbent, and both
            // adaptive policies must beat it.
            assert!(
                row.oracle_cross < row.static_cross,
                "{}: oracle {} vs static {}",
                row.scenario,
                row.oracle_cross,
                row.static_cross
            );
            assert!(row.budgeted_cross < row.static_cross);
            // The acceptance bar: budgeted incremental re-placement
            // recovers >= 80% of the oracle's cross-traffic reduction.
            assert!(
                row.recovery() >= 0.8,
                "{}: recovery {:.3} below the 0.8 bar",
                row.scenario,
                row.recovery()
            );
            assert!(row.cross_mass.is_finite());
        }
    }

    #[test]
    fn replication_online_table_joint_dominates_within_budgets() {
        let rows = replication_online_table(Scale::Quick, 7).expect("invariance must hold");
        assert_eq!(rows.len(), 4, "3 presets at E=16 plus one large instance");
        assert_eq!(rows[3].n_experts, large_zoo()[0].n_experts);
        let mut dominated = false;
        for row in &rows {
            assert!(
                row.joint_replans > 0,
                "{}: no joint re-plans fired",
                row.scenario
            );
            // Budget compliance on both axes, both policies.
            assert!(row.extra_copies <= row.replica_slots, "{}", row.scenario);
            assert!(
                row.owner_migrated_bytes <= row.budget_bytes * row.owner_replans as u64,
                "{}",
                row.scenario
            );
            assert!(
                row.joint_migrated_bytes <= row.budget_bytes * row.joint_replans as u64,
                "{}",
                row.scenario
            );
            // Both adaptive policies beat the static incumbent, and the
            // joint policy never loses to owner-moves-only.
            assert!(row.owner_cross < row.static_cross, "{}", row.scenario);
            assert!(row.joint_cross < row.static_cross, "{}", row.scenario);
            assert!(
                row.joint_cross <= row.owner_cross,
                "{}: joint {} worse than owner-only {}",
                row.scenario,
                row.joint_cross,
                row.owner_cross
            );
            if row.joint_cross < row.owner_cross {
                dominated = true;
            }
            assert!(row.cross_mass.is_finite());
        }
        assert!(
            dominated,
            "joint policy must strictly beat owner-moves-only somewhere"
        );
    }

    #[test]
    fn serving_table_online_policies_protect_the_tail() {
        let rows = serving_table(Scale::Quick, 2, 20_240_522).expect("invariance must hold");
        assert_eq!(rows.len(), 3, "one row per arrival process");
        for row in &rows {
            assert!(row.online_replans > 0, "{}: no re-plans", row.arrival);
            assert!(row.online_migrated_bytes > 0, "{}", row.arrival);
            for (p50, p95, p99) in [
                (row.static_p50, row.static_p95, row.static_p99),
                (row.online_p50, row.online_p95, row.online_p99),
                (row.repl_p50, row.repl_p95, row.repl_p99),
            ] {
                assert!(
                    p50 <= p95 && p95 <= p99 && p50 > 0.0,
                    "{}: non-monotone percentiles {p50}/{p95}/{p99}",
                    row.arrival
                );
            }
            // The acceptance bar the perf-gate enforces: at equal budget,
            // adaptive re-placement never worsens the latency tail over
            // the static incumbent — the migration stalls it pays are won
            // back by faster post-drift steps.
            assert!(
                row.online_p99 <= row.static_p99,
                "{}: online p99 {} worse than static {}",
                row.arrival,
                row.online_p99,
                row.static_p99
            );
            assert!(
                row.repl_p99 <= row.static_p99,
                "{}: replicated p99 {} worse than static {}",
                row.arrival,
                row.repl_p99,
                row.static_p99
            );
        }
    }

    #[test]
    fn replan_latency_table_incremental_path_is_exact_and_cheaper() {
        let rows = replan_latency_table(Scale::Quick, 7).expect("lockstep paths must agree");
        assert_eq!(rows.len(), large_zoo().len(), "one row per large preset");
        let mut saw_512 = false;
        for row in &rows {
            assert!(row.replans > 0, "{}: no re-plan moved anything", row.preset);
            // The rebuild path is uncached: it recomputes every
            // considered candidate. The incremental path's split always
            // partitions the same considered count.
            assert_eq!(row.evaluated_rebuild, row.considered, "{}", row.preset);
            assert_eq!(
                row.evaluated_incremental + row.reused,
                row.considered,
                "{}",
                row.preset
            );
            assert!(row.reused > 0, "{}: the cache answered nothing", row.preset);
            assert!(
                row.cross_mass_rebuild.to_bits() == row.cross_mass_incremental.to_bits(),
                "{}: paths diverged",
                row.preset
            );
            // The acceptance bar the perf-gate enforces: at E = 512 the
            // cache must cut candidate-gain recomputation at least 5x.
            if row.n_experts == 512 {
                saw_512 = true;
                assert!(
                    row.scan_reduction() >= 5.0,
                    "{}: scan reduction {:.2}x below the 5x bar",
                    row.preset,
                    row.scan_reduction()
                );
            }
        }
        assert!(saw_512, "the quick sweep must cover E = 512");
    }

    #[test]
    fn json_has_schema_and_balanced_braces() {
        let summary = BenchSummary {
            seed: 1,
            scale: "quick".to_string(),
            jobs: 4,
            wall_ms_jobs1: 100.0,
            wall_ms_jobs_n: 40.0,
            rows: vec![BenchRow {
                model: "MoE-GPT-M/8e-24L".to_string(),
                solver: "greedy".to_string(),
                wall_ms: 1.5,
                cross_mass: 0.25,
            }],
            sparse_rows: vec![SparseBenchRow {
                preset: "MoE-GPT-XXL/256e-24L-top1".to_string(),
                n_experts: 256,
                k: 1,
                layers: 2,
                nnz: 2600,
                density: 0.0397,
                wall_ms_dense: 80.0,
                wall_ms_sparse: 8.0,
                cross_mass: 0.75,
            }],
            online_rows: vec![OnlineBenchRow {
                scenario: "piecewise-2phase".to_string(),
                n_experts: 16,
                layers: 5,
                windows: 6,
                replan_every: 1,
                budget_bytes: 16 << 24,
                migrated_bytes: 10 << 24,
                replans: 3,
                static_cross: 5000,
                oracle_cross: 3000,
                budgeted_cross: 3400,
                cross_mass: 1.25,
            }],
            replication_online_rows: vec![ReplicationOnlineRow {
                scenario: "piecewise-2phase/E16".to_string(),
                n_experts: 16,
                layers: 5,
                windows: 10,
                units: 4,
                replan_every: 1,
                budget_bytes: 16 << 24,
                replica_slots: 8,
                owner_migrated_bytes: 9 << 24,
                joint_migrated_bytes: 8 << 24,
                owner_replans: 4,
                joint_replans: 4,
                replicas_added: 6,
                replicas_dropped: 2,
                extra_copies: 4,
                static_cross: 5000,
                owner_cross: 3600,
                joint_cross: 3100,
                cross_mass: 1.5,
            }],
            serving_rows: vec![ServingBenchRow {
                arrival: "flash-crowd".to_string(),
                requests: 48,
                decode_steps: 2,
                windows: 6,
                max_batch: 8,
                offered_load: 0.125,
                static_p50: 20.0,
                static_p95: 44.0,
                static_p99: 52.0,
                static_goodput: 0.115,
                online_p50: 18.0,
                online_p95: 34.0,
                online_p99: 40.0,
                online_goodput: 0.12,
                online_replans: 2,
                online_migrated_bytes: 9 << 20,
                repl_p50: 17.5,
                repl_p95: 33.0,
                repl_p99: 39.0,
                repl_goodput: 0.121,
                repl_replicas_added: 3,
            }],
            elasticity_rows: vec![ElasticityRow {
                fault: "gpu1-loss".to_string(),
                requests: 500,
                fault_time: 12.5,
                plain_p99: 60.0,
                plain_disrupted: 9,
                plain_steps_degraded: 40,
                plain_emergency_bytes: 7 << 20,
                plain_recovery: 8.25,
                repl_p99: 48.0,
                repl_disrupted: 9,
                repl_steps_degraded: 12,
                repl_emergency_bytes: 0,
                repl_recovery: 1.5,
                repl_extra_copies: 6,
            }],
            replan_latency_rows: vec![ReplanLatencyRow {
                preset: "MoE-GPT-XXL/512e-24L-top1".to_string(),
                n_experts: 512,
                k: 1,
                layers: 2,
                windows: 4,
                replans: 3,
                max_moves: 24,
                considered: 8_000_000,
                evaluated_rebuild: 8_000_000,
                evaluated_incremental: 1_000_000,
                reused: 7_000_000,
                wall_ms_rebuild: 900.0,
                wall_ms_incremental: 120.0,
                cross_mass_rebuild: 0.625,
                cross_mass_incremental: 0.625,
            }],
            partial_replication_rows: vec![PartialReplicationRow {
                scenario: "partial-repl/256e-top2".to_string(),
                n_experts: 256,
                k: 2,
                layers: 2,
                units: 8,
                windows: 3,
                replica_slots: 4,
                budget_bytes: 12 << 20,
                partial_replans: 2,
                replicas_added: 5,
                partial_migrated_bytes: 6 << 20,
                full_migrated_bytes: 9 << 20,
                partial_extra_copies: 3,
                full_extra_copies: 4,
                partial_cross_mass: 0.375,
                full_cross_mass: 0.5,
                realized_cross: 1234,
                cc_replicas_added: 2,
                cc_local_fraction: 0.875,
            }],
        };
        let json = summary.to_json();
        assert!(json.contains("\"schema\": \"exflow-bench-summary/v8\""));
        assert!(json.contains("\"speedup\": 2.500"));
        assert!(json.contains("\"speedup\": 10.000"));
        assert!(json.contains("\"cross_mass\": 0.25"));
        assert!(json.contains("\"recovery\": 0.8000"));
        assert!(json.contains("\"budgeted_cross\": 3400"));
        assert!(json.contains("\"joint_cross\": 3100"));
        // (5000 - 3600) / 5000 and (5000 - 3100) / 5000, 4 decimals.
        assert!(json.contains("\"owner_recovery\": 0.2800"));
        assert!(json.contains("\"joint_recovery\": 0.3800"));
        // Serving latencies print with shortest round-trip formatting.
        assert!(json.contains("\"arrival\": \"flash-crowd\""));
        assert!(json.contains("\"static_p99\": 52"));
        assert!(json.contains("\"online_goodput\": 0.12,"));
        assert!(json.contains("\"fault\": \"gpu1-loss\""));
        assert!(json.contains("\"repl_emergency_bytes\": 0"));
        assert!(json.contains("\"repl_recovery\": 1.5"));
        // 8M rebuild evals over 1M incremental, 3 decimals.
        assert!(json.contains("\"scan_reduction\": 8.000"));
        assert!(json.contains("\"evaluated_incremental\": 1000000"));
        assert!(json.contains("\"cross_mass_incremental\": 0.625"));
        assert!(json.contains("\"scenario\": \"partial-repl/256e-top2\""));
        assert!(json.contains("\"partial_cross_mass\": 0.375"));
        assert!(json.contains("\"cc_local_fraction\": 0.875000"));
        assert!(json.contains("\"repl_extra_copies\": 6"));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced JSON:\n{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn cross_mass_round_trips_through_json() {
        // Shortest round-trip formatting: parsing the printed value back
        // recovers the exact bits, which is what lets the perf-gate
        // compare objectives as strings.
        for &x in &[0.1f64, 1.0 / 3.0, 2.7755575615628914e-17, 5.0] {
            let printed = format!("{x}");
            let back: f64 = printed.parse().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{printed}");
        }
    }
}
