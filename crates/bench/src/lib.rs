//! # exflow-bench
//!
//! The reproduction harness for every table and figure in the evaluation
//! section of "Exploiting Inter-Layer Expert Affinity for Accelerating
//! Mixture-of-Experts Model Inference" (IPDPS 2024).
//!
//! * Each `experiments::*` module regenerates one paper artifact as typed
//!   rows (workload generation, parameter sweep, baselines, measurement).
//! * The `repro` binary prints the rows the paper reports
//!   (`cargo run --release -p exflow-bench --bin repro -- <artifact>`).
//! * The criterion benches (`cargo bench`) time the underlying code paths.
//!
//! Every experiment takes a [`Scale`]: `Quick` keeps CI and `cargo test`
//! fast on reduced sweeps, `Full` runs the paper-sized sweeps.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod experiments;
pub mod fmt;
pub mod gate;
pub mod summary;
pub mod sweep;

/// How big an experiment sweep to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced sweep for tests and smoke runs.
    Quick,
    /// Paper-sized sweep (use release builds).
    Full,
}

impl Scale {
    /// Pick `quick` or `full` depending on the scale.
    pub fn pick<T>(self, quick: T, full: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}
