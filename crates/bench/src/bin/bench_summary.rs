//! `bench_summary` — the fixed-seed solver micro-benchmark behind the
//! repo's `BENCH_*.json` perf trajectory, and the CI perf-gate.
//!
//! Sweeps the Table II model zoo × the solver roster (timing the whole
//! sweep at `--jobs 1` and at `--jobs N`, verified bit-identical across
//! widths), the `table_sparse` large-expert sweep (dense vs CSR objective
//! backend, verified identical across backends), the `table_online`
//! drift sweep (static vs oracle vs budgeted re-placement, verified
//! invariant across thread counts and backends), and the
//! `table_replication_online` sweep (static vs owner-moves-only vs the
//! joint replica + owner-move policy under the joint budget, verified
//! invariant across backends), and the `table_serving` request-level
//! sweep (static vs budgeted-online vs replication-aware placements under
//! Poisson/diurnal/flash-crowd arrivals, verified invariant across thread
//! counts and backends), and the `table_elasticity` fault sweep (an
//! unreplicated vs a fully replicated fleet through a mid-run GPU loss,
//! verified invariant across thread counts and backends), and the
//! `table_replan_latency` sweep (cold-rebuild vs delta-maintained
//! re-planning at `E = 256/512`, verified to land bit-identical
//! placements and cross masses), and the `table_partial_replication`
//! sweep (subset vs full replica fan-out from the same incumbent at
//! `E = 16/256` × top-1/top-2, verified invariant across backends and
//! thread counts), and writes the machine-readable summary
//! JSON (schema `exflow-bench-summary/v8`, documented in the README).
//!
//! ```text
//! cargo run --release -p exflow-bench --bin bench_summary -- \
//!     --quick --jobs 4 --out fresh.json --check BENCH_PR9.json
//! ```
//!
//! With `--check BASELINE`, the fresh summary is compared against the
//! committed baseline (v8, or an older v3–v7 whose sections are
//! compared as far as they go — the skew note names every fresh section
//! the old baseline cannot gate): any objective mismatch (`cross_mass`,
//! `nnz`, the online/replication cross counts, the serving latency
//! quantiles, the elasticity recovery facts, the re-plan cost counters),
//! a fresh serving row whose adaptive p99 is worse than the static
//! incumbent's, a fresh elasticity row whose replicated fleet does not
//! recover strictly faster, an incremental re-plan whose cross mass
//! diverges from the rebuild's, an `E = 512` cell below the 5x
//! scan-reduction bar, a partial-replication row where the subset policy
//! loses to the full fan-out at equal memory, or a sweep where no top-2
//! CC row placed a replica is a hard failure;
//! wall-time regressions beyond 25% are reported as warnings in the
//! markdown printed to stdout (CI appends it to the job summary).
//!
//! Exit codes: 0 on success, 1 if a verification/gate check fails or the
//! output cannot be written, 2 on usage errors (consistent with `repro`).

use exflow_bench::cli::parse_jobs;
use exflow_bench::Scale;
use exflow_bench::{gate, summary};

struct Args {
    scale: Scale,
    jobs: usize,
    seed: u64,
    out: Option<String>,
    check: Option<String>,
}

fn print_usage() {
    eprintln!(
        "usage: bench_summary [--quick|--full] [--jobs N] [--seed S] [--out PATH] [--check BASELINE]"
    );
}

fn parse_args() -> Result<Option<Args>, String> {
    let mut args = Args {
        scale: Scale::Quick,
        jobs: 4,
        seed: 20_240_522,
        out: None,
        check: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-h" | "--help" => return Ok(None),
            "--quick" => args.scale = Scale::Quick,
            "--full" => args.scale = Scale::Full,
            "--jobs" => {
                let value = it.next().ok_or("missing value for --jobs")?;
                args.jobs = parse_jobs(&value).map_err(|e| e.to_string())?;
            }
            "--seed" => {
                let value = it.next().ok_or("missing value for --seed")?;
                args.seed = value
                    .parse()
                    .map_err(|_| format!("invalid --seed value: {value}"))?;
            }
            "--out" => {
                args.out = Some(it.next().ok_or("missing value for --out")?);
            }
            "--check" => {
                args.check = Some(it.next().ok_or("missing value for --check")?);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(Some(args))
}

fn main() {
    let args = match parse_args() {
        Ok(Some(args)) => args,
        Ok(None) => {
            print_usage();
            return;
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            print_usage();
            std::process::exit(2);
        }
    };

    let summary = match summary::run(args.scale, args.jobs, args.seed) {
        Ok(s) => s,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(1);
        }
    };

    eprintln!(
        "sweep: {} rows, jobs=1 {:.0} ms, jobs={} {:.0} ms, speedup {:.2}x, objectives bit-identical",
        summary.rows.len(),
        summary.wall_ms_jobs1,
        summary.jobs,
        summary.wall_ms_jobs_n,
        summary.speedup()
    );
    for row in &summary.sparse_rows {
        eprintln!(
            "table_sparse: {} nnz {} (density {:.4}), dense {:.1} ms vs sparse {:.1} ms ({:.1}x)",
            row.preset,
            row.nnz,
            row.density,
            row.wall_ms_dense,
            row.wall_ms_sparse,
            row.speedup()
        );
    }
    for row in &summary.online_rows {
        eprintln!(
            "table_online: {} cross static {} / oracle {} / budgeted {} (recovery {:.1}%), migrated {} MiB over {} re-plans",
            row.scenario,
            row.static_cross,
            row.oracle_cross,
            row.budgeted_cross,
            row.recovery() * 100.0,
            row.migrated_bytes >> 20,
            row.replans
        );
    }

    for row in &summary.replication_online_rows {
        eprintln!(
            "table_replication_online: {} cross static {} / owner {} / joint {} (recovery {:.1}% vs {:.1}%), replicas +{}/-{}, {} extra copies",
            row.scenario,
            row.static_cross,
            row.owner_cross,
            row.joint_cross,
            row.owner_recovery() * 100.0,
            row.joint_recovery() * 100.0,
            row.replicas_added,
            row.replicas_dropped,
            row.extra_copies
        );
    }

    for row in &summary.serving_rows {
        eprintln!(
            "table_serving: {} p99 static {:.1} us / online {:.1} us ({:.2}x) / repl {:.1} us ({:.2}x), {} re-plans",
            row.arrival,
            row.static_p99 * 1e6,
            row.online_p99 * 1e6,
            row.p99_speedup(row.online_p99),
            row.repl_p99 * 1e6,
            row.p99_speedup(row.repl_p99),
            row.online_replans
        );
    }

    for row in &summary.elasticity_rows {
        let recovery = |r: f64| {
            if r < 0.0 {
                "never".to_string()
            } else {
                format!("{:.1} us", r * 1e6)
            }
        };
        eprintln!(
            "table_elasticity: {} recovery no-repl {} / repl {}, emergency bytes {} vs {}",
            row.fault,
            recovery(row.plain_recovery),
            recovery(row.repl_recovery),
            row.plain_emergency_bytes,
            row.repl_emergency_bytes
        );
    }

    for row in &summary.replan_latency_rows {
        eprintln!(
            "table_replan_latency: {} evaluated rebuild {} vs incremental {} ({:.2}x cut, {} reused), wall {:.1} ms vs {:.1} ms",
            row.preset,
            row.evaluated_rebuild,
            row.evaluated_incremental,
            row.scan_reduction(),
            row.reused,
            row.wall_ms_rebuild,
            row.wall_ms_incremental
        );
    }

    let json = summary.to_json();
    match &args.out {
        Some(path) => {
            if let Err(err) = std::fs::write(path, &json) {
                eprintln!("error: cannot write {path}: {err}");
                std::process::exit(1);
            }
            eprintln!("wrote {path}");
        }
        None => print!("{json}"),
    }

    if let Some(baseline_path) = &args.check {
        let baseline = match std::fs::read_to_string(baseline_path) {
            Ok(s) => s,
            Err(err) => {
                eprintln!("error: cannot read baseline {baseline_path}: {err}");
                std::process::exit(1);
            }
        };
        let report = gate::compare(&baseline, &json);
        // Markdown on stdout: CI pipes it into the job summary.
        print!("{}", report.to_markdown());
        if !report.ok() {
            eprintln!(
                "error: perf-gate failed against {baseline_path} ({} drift(s))",
                report.drifts.len()
            );
            std::process::exit(1);
        }
    }
}
