//! `repro` — regenerate every table and figure of the ExFlow paper.
//!
//! ```text
//! cargo run --release -p exflow-bench --bin repro -- all
//! cargo run --release -p exflow-bench --bin repro -- fig10
//! cargo run --release -p exflow-bench --bin repro -- --quick --jobs 8 table1 fig7
//! ```
//!
//! `--jobs N` fans experiment sweep points across N worker threads;
//! artifacts are byte-identical for every N (only wall time changes).
//!
//! Exit codes: 0 on success, 1 if any artifact fails to regenerate,
//! 2 on usage errors (no targets, unknown artifact name, bad `--jobs`).

use exflow_bench::cli::{self, Command};
use exflow_bench::sweep::SweepPool;

fn print_usage() {
    eprintln!("usage: repro [--quick|--full] [--jobs N] <artifact>... | all");
    eprintln!("artifacts: {}", cli::artifact_names().join(", "));
}

fn main() {
    let (scale, jobs, targets) = match cli::parse(std::env::args().skip(1)) {
        Ok(Command::Help) => {
            print_usage();
            return;
        }
        Ok(Command::Run {
            scale,
            jobs,
            targets,
        }) => (scale, jobs, targets),
        Err(err) => {
            eprintln!("error: {err}");
            print_usage();
            std::process::exit(2);
        }
    };
    let pool = SweepPool::new(jobs);
    let mut ok = true;
    for target in targets {
        println!("==============================================================");
        let run = cli::runner(&target).expect("parse validates against the dispatch table");
        // Catch panics so one failing artifact doesn't abort the rest and
        // the documented exit code (1, not the panic's 101) is honored.
        if std::panic::catch_unwind(|| pool.install(|| run(scale))).is_err() {
            eprintln!("error: artifact {target} failed to regenerate");
            ok = false;
        }
    }
    if !ok {
        std::process::exit(1);
    }
}
