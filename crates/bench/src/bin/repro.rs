//! `repro` — regenerate every table and figure of the ExFlow paper.
//!
//! ```text
//! cargo run --release -p exflow-bench --bin repro -- all
//! cargo run --release -p exflow-bench --bin repro -- fig10
//! cargo run --release -p exflow-bench --bin repro -- --quick table1 fig7
//! ```
//!
//! Exit codes: 0 on success, 1 if any artifact fails to regenerate,
//! 2 on usage errors (no targets, unknown artifact name).

use exflow_bench::cli::{self, Command};

fn print_usage() {
    eprintln!("usage: repro [--quick|--full] <artifact>... | all");
    eprintln!("artifacts: {}", cli::artifact_names().join(", "));
}

fn main() {
    let (scale, targets) = match cli::parse(std::env::args().skip(1)) {
        Ok(Command::Help) => {
            print_usage();
            return;
        }
        Ok(Command::Run { scale, targets }) => (scale, targets),
        Err(err) => {
            eprintln!("error: {err}");
            print_usage();
            std::process::exit(2);
        }
    };
    let mut ok = true;
    for target in targets {
        println!("==============================================================");
        let run = cli::runner(&target).expect("parse validates against the dispatch table");
        // Catch panics so one failing artifact doesn't abort the rest and
        // the documented exit code (1, not the panic's 101) is honored.
        if std::panic::catch_unwind(|| run(scale)).is_err() {
            eprintln!("error: artifact {target} failed to regenerate");
            ok = false;
        }
    }
    if !ok {
        std::process::exit(1);
    }
}
