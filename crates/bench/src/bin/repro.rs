//! `repro` — regenerate every table and figure of the ExFlow paper.
//!
//! ```text
//! cargo run --release -p exflow-bench --bin repro -- all
//! cargo run --release -p exflow-bench --bin repro -- fig10
//! cargo run --release -p exflow-bench --bin repro -- --quick table1 fig7
//! ```

use exflow_bench::experiments::*;
use exflow_bench::Scale;

const ARTIFACTS: &[&str] = &[
    "table1", "table2", "table3", "fig2", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
    "fig12", "fig13", "fig14", "ablations",
];

fn print_usage() {
    eprintln!("usage: repro [--quick] <artifact>... | all");
    eprintln!("artifacts: {}", ARTIFACTS.join(", "));
}

fn run_one(name: &str, scale: Scale) -> bool {
    println!("==============================================================");
    match name {
        "table1" => table1::print(scale),
        "table2" => table2::print(scale),
        "table3" => table3::print(scale),
        "fig2" => fig2::print(scale),
        "fig6" => fig6::print(scale),
        "fig7" => fig7::print(scale),
        "fig8" => fig8::print(scale),
        "fig9" => fig9::print(scale),
        "fig10" => fig10::print(scale),
        "fig11" => fig11::print(scale),
        "fig12" => fig12::print(scale),
        "fig13" => fig13::print(scale),
        "fig14" | "fig15" | "fig16" => fig2::print_gaps(scale),
        "ablations" => ablations::print(scale),
        other => {
            eprintln!("unknown artifact: {other}");
            return false;
        }
    }
    true
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Full;
    let mut targets: Vec<String> = Vec::new();
    for a in args {
        match a.as_str() {
            "--quick" => scale = Scale::Quick,
            "--full" => scale = Scale::Full,
            "-h" | "--help" => {
                print_usage();
                return;
            }
            "all" => targets.extend(ARTIFACTS.iter().map(|s| s.to_string())),
            other => targets.push(other.to_string()),
        }
    }
    if targets.is_empty() {
        print_usage();
        std::process::exit(2);
    }
    let mut ok = true;
    for t in targets {
        ok &= run_one(&t, scale);
    }
    if !ok {
        std::process::exit(1);
    }
}
