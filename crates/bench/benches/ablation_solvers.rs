//! Ablation bench: placement-solver quality/latency trade-off on one
//! profiled instance — times each solver individually.

use criterion::{criterion_group, criterion_main, Criterion};
use exflow_bench::experiments::ablations;
use exflow_bench::Scale;
use exflow_placement::annealing::AnnealParams;
use exflow_placement::{solve, solve_with, Parallelism, SolverKind};

fn bench(c: &mut Criterion) {
    // One shared instance, timed per solver.
    let rows = ablations::run_solvers(Scale::Quick);
    assert!(rows.len() == 5);

    let objective = {
        use exflow_affinity::{AffinityMatrix, RoutingTrace};
        use exflow_model::routing::AffinityModelSpec;
        use exflow_model::{CorpusSpec, TokenBatch};
        let spec = AffinityModelSpec::new(8, 16);
        let routing = spec.build();
        let batch = TokenBatch::sample(
            &routing,
            &CorpusSpec::pile_proxy(spec.n_domains),
            2000,
            1,
            5,
        );
        let trace = RoutingTrace::from_batch(&batch, 16);
        exflow_placement::Objective::from_affinities(&AffinityMatrix::consecutive(&trace))
    };

    let mut g = c.benchmark_group("solvers");
    g.sample_size(10);
    g.bench_function("greedy", |b| {
        b.iter(|| solve(&objective, 4, SolverKind::Greedy, 0))
    });
    g.bench_function("local_search", |b| {
        b.iter(|| solve(&objective, 4, SolverKind::LocalSearch { restarts: 1 }, 0))
    });
    g.bench_function("annealing", |b| {
        b.iter(|| {
            solve(
                &objective,
                4,
                SolverKind::Annealing(AnnealParams::default()),
                0,
            )
        })
    });
    // The portfolio at 1 and 4 worker threads: same placement (the
    // determinism contract), different wall time.
    g.bench_function("portfolio_seq", |b| {
        b.iter(|| solve(&objective, 4, SolverKind::portfolio(100), 0))
    });
    g.bench_function("portfolio_par4", |b| {
        let kind = SolverKind::portfolio(100);
        b.iter(|| solve_with(&objective, 4, &kind, 0, Parallelism::new(4)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
