//! Fig. 9 bench: time the operator-breakdown measurement.

use criterion::{criterion_group, criterion_main, Criterion};
use exflow_bench::experiments::fig9;
use exflow_bench::Scale;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9");
    g.sample_size(10);
    g.bench_function("operator_breakdown_sweep", |b| {
        b.iter(|| fig9::run(Scale::Quick))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
