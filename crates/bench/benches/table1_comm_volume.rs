//! Table I bench: time the communication-volume measurement pipeline
//! (engine runs that produce the measured `p` / `p*` fractions).

use criterion::{criterion_group, criterion_main, Criterion};
use exflow_bench::experiments::table1;
use exflow_bench::Scale;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    g.bench_function("measure_comm_volume", |b| {
        b.iter(|| {
            let t = table1::run(Scale::Quick);
            assert!(t.p_star < t.p);
            t
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
