//! Fig. 6 bench: time the collective-overhead comparison (vanilla vs
//! context-coherent engine runs over the simulated cluster).

use criterion::{criterion_group, criterion_main, Criterion};
use exflow_bench::experiments::fig6;
use exflow_bench::Scale;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6");
    g.sample_size(10);
    g.bench_function("collectives_overhead_sweep", |b| {
        b.iter(|| {
            let rows = fig6::run(Scale::Quick);
            assert!(rows.iter().all(|r| r.cc_alltoall < 1.0));
            rows
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
