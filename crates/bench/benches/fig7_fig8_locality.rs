//! Figs. 7/8 bench: time the GPU- and node-locality sweeps.

use criterion::{criterion_group, criterion_main, Criterion};
use exflow_bench::experiments::{fig7, fig8};
use exflow_bench::Scale;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("locality");
    g.sample_size(10);
    g.bench_function("fig7_gpu_locality", |b| b.iter(|| fig7::run(Scale::Quick)));
    g.bench_function("fig8_node_locality", |b| b.iter(|| fig8::run(Scale::Quick)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
