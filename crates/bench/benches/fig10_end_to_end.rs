//! Fig. 10 bench: end-to-end engine throughput per mode — the headline
//! comparison, timed as real work on the simulated cluster.

use criterion::{criterion_group, criterion_main, Criterion};
use exflow_bench::experiments::common::{engine_for, with_layers};
use exflow_bench::Scale;
use exflow_core::{ParallelismMode, Scenario};
use exflow_model::presets::moe_gpt_m;

fn bench(c: &mut Criterion) {
    let engine = engine_for(with_layers(moe_gpt_m(16), 8), 8, Scale::Quick);
    let mut g = c.benchmark_group("fig10");
    g.sample_size(10);
    for mode in ParallelismMode::ALL {
        let scenario = Scenario::offline(mode);
        g.bench_function(mode.label(), |b| b.iter(|| engine.run_scenario(&scenario)));
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
