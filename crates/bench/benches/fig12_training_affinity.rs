//! Fig. 12 bench: time the training-affinity measurement (checkpoint
//! simulation + trace + placement solve per iteration point).

use criterion::{criterion_group, criterion_main, Criterion};
use exflow_bench::experiments::fig12;
use exflow_bench::Scale;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12");
    g.sample_size(10);
    g.bench_function("training_affinity_early", |b| {
        b.iter(|| fig12::run(Scale::Quick, true))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
