//! Ablation bench: staged (node-then-GPU) vs flat placement solve, plus
//! the affinity-strength sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use exflow_bench::experiments::ablations;
use exflow_bench::Scale;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("staged");
    g.sample_size(10);
    g.bench_function("staged_vs_flat", |b| {
        b.iter(|| ablations::run_staged_vs_flat(Scale::Quick))
    });
    g.bench_function("affinity_sweep", |b| {
        b.iter(|| ablations::run_affinity_sweep(Scale::Quick))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
