//! Table III bench: time the out-of-distribution transfer measurement.

use criterion::{criterion_group, criterion_main, Criterion};
use exflow_bench::experiments::table3;
use exflow_bench::Scale;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3");
    g.sample_size(10);
    g.bench_function("ood_transfer", |b| b.iter(|| table3::run(Scale::Quick)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
