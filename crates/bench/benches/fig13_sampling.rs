//! Fig. 13 bench: time the sample-efficiency sweep (placement solves from
//! truncated traces plus engine validation runs).

use criterion::{criterion_group, criterion_main, Criterion};
use exflow_bench::experiments::fig13;
use exflow_bench::Scale;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig13");
    g.sample_size(10);
    g.bench_function("sampling_sweep", |b| b.iter(|| fig13::run(Scale::Quick)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
