//! Self-test over the fixture corpus: every `_fire` fixture fires exactly
//! on its `//~ D00X`-marked lines, every `_pass` fixture is clean, and the
//! suppression/baseline escape hatches behave.

use exflow_detlint::baseline::Baseline;
use exflow_detlint::rules::{scan_and_check, RuleId};
use std::path::PathBuf;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

fn read_fixture(name: &str) -> String {
    let path = fixture_dir().join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Parse the `//~ D00X` expectation markers: (1-based line, rule).
fn expectations(src: &str) -> Vec<(usize, RuleId)> {
    let mut out = Vec::new();
    for (i, line) in src.lines().enumerate() {
        if let Some(pos) = line.find("//~") {
            let code = line[pos + 3..].trim();
            let rule = RuleId::parse(code)
                .unwrap_or_else(|| panic!("bad expectation marker on line {}: {code}", i + 1));
            out.push((i + 1, rule));
        }
    }
    out
}

fn check_fire(name: &str) {
    let src = read_fixture(name);
    let expected = expectations(&src);
    assert!(!expected.is_empty(), "{name}: no //~ markers");
    let rel = format!("crates/detlint/fixtures/{name}");
    let report = scan_and_check(&rel, &src);
    let got: Vec<(usize, RuleId)> = report.findings.iter().map(|f| (f.line, f.rule)).collect();
    assert_eq!(
        got, expected,
        "{name}: findings differ from //~ markers\nfindings: {:#?}",
        report.findings
    );
}

fn check_pass(name: &str) {
    let src = read_fixture(name);
    let rel = format!("crates/detlint/fixtures/{name}");
    let report = scan_and_check(&rel, &src);
    assert!(
        report.findings.is_empty(),
        "{name}: expected clean, got {:#?}",
        report.findings
    );
}

#[test]
fn every_fire_fixture_fires_exactly_where_marked() {
    for rule in ["d001", "d002", "d003", "d004", "d005", "d006"] {
        check_fire(&format!("{rule}_fire.rs"));
    }
}

#[test]
fn every_pass_fixture_is_clean() {
    for rule in ["d001", "d002", "d003", "d004", "d005", "d006"] {
        check_pass(&format!("{rule}_pass.rs"));
    }
}

#[test]
fn pass_fixtures_record_their_suppressions() {
    let src = read_fixture("d001_pass.rs");
    let report = scan_and_check("crates/detlint/fixtures/d001_pass.rs", &src);
    assert_eq!(
        report.suppressed, 2,
        "both justified HashMap uses suppressed"
    );
}

#[test]
fn baseline_grandfathers_fire_fixture_findings() {
    let src = read_fixture("d001_fire.rs");
    let rel = "crates/detlint/fixtures/d001_fire.rs";
    let report = scan_and_check(rel, &src);
    assert!(!report.findings.is_empty());

    // Write every finding into a baseline, re-scan: all absorbed.
    let text = Baseline::render(&report.findings);
    let mut b = Baseline::parse(&text).unwrap();
    let again = scan_and_check(rel, &src);
    let n = again.findings.len();
    let (active, baselined) = b.partition(again.findings);
    assert!(
        active.is_empty(),
        "baseline must absorb everything: {active:#?}"
    );
    assert_eq!(baselined.len(), n);
    assert!(b.stale().is_empty());
}

#[test]
fn committed_baseline_is_empty() {
    // The satellite contract: the tree ships with every finding fixed or
    // inline-justified, so the committed baseline holds zero entries.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .unwrap()
        .to_path_buf();
    let text = std::fs::read_to_string(root.join("detlint.baseline")).unwrap();
    let b = Baseline::parse(&text).unwrap();
    assert!(b.is_empty(), "detlint.baseline must stay empty");
}

#[test]
fn whole_tree_scan_is_clean() {
    // The acceptance bar, as a test: walking the real tree with the
    // committed baseline yields zero active findings.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .unwrap()
        .to_path_buf();
    let files = exflow_detlint::walk::collect_default(&root).unwrap();
    let text = std::fs::read_to_string(root.join("detlint.baseline")).unwrap();
    let mut baseline = Baseline::parse(&text).unwrap();
    let outcome = exflow_detlint::run_scan(&root, &files, Some(&mut baseline)).unwrap();
    assert!(
        outcome.is_clean(),
        "tree has active findings:\n{}",
        outcome.render_text()
    );
}
