// D003 should-pass: every stream is seeded from the scenario seed.
pub fn stream(seed: u64, stream: u64) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    // SplitMix64-style per-stream derivation, as the solvers do.
    rand::rngs::StdRng::seed_from_u64(seed ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}
