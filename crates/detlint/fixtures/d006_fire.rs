// D006 should-fire: reason-less allows of workspace-policed lints.

#[allow(clippy::too_many_arguments)] //~ D006
pub fn wide(a: u8, b: u8, c: u8, d: u8, e: u8, f: u8, g: u8, h: u8) -> u8 {
    a + b + c + d + e + f + g + h
}

/// Doc comments do not count as reasons.
#[allow(missing_docs)] //~ D006
pub mod undocumented {}

#[allow( //~ D006
    clippy::needless_range_loop,
    clippy::redundant_closure_call
)]
pub fn multi_line_attr() {}
