// D001 should-pass: ordered collections, sorted collects, justified
// suppressions, and test-only / literal mentions.
use std::collections::BTreeMap;

pub fn cross_mass_by_gpu(pairs: &[(usize, f64)]) -> Vec<(usize, f64)> {
    let mut acc: BTreeMap<usize, f64> = BTreeMap::new();
    for &(gpu, mass) in pairs {
        *acc.entry(gpu).or_default() += mass;
    }
    acc.into_iter().collect()
}

// A lookup-only table that is never iterated is order-insensitive;
// suppressing with a reason is the sanctioned escape hatch.
pub fn lookup_table() -> std::collections::HashMap<u32, u32> // detlint: allow(D001) lookup-only; never iterated or drained
{
    std::collections::HashMap::new() // detlint: allow(D001) lookup-only; never iterated or drained
}

pub fn mentions_are_fine() -> &'static str {
    // HashMap in a comment never fires.
    "HashMap in a string literal never fires"
}

#[cfg(test)]
mod tests {
    #[test]
    fn uniqueness_checks_may_hash() {
        let s: std::collections::HashSet<u32> = [1, 2, 3].into_iter().collect();
        assert_eq!(s.len(), 3);
    }
}
