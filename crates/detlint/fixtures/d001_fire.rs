// D001 should-fire: unordered collections in a deterministic path.
use std::collections::HashMap; //~ D001
use std::collections::HashSet; //~ D001

pub fn cross_mass_by_gpu(pairs: &[(usize, f64)]) -> Vec<(usize, f64)> {
    let mut acc: HashMap<usize, f64> = HashMap::new(); //~ D001
    for &(gpu, mass) in pairs {
        *acc.entry(gpu).or_default() += mass;
    }
    // Iteration order is nondeterministic: float accumulation downstream
    // would differ run to run.
    acc.into_iter().collect()
}

pub fn seen(xs: &[u32]) -> usize {
    let s: HashSet<u32> = xs.iter().copied().collect(); //~ D001
    s.len()
}
