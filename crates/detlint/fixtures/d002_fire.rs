// D002 should-fire: wall-clock reads outside the timing crates.
use std::time::{Instant, SystemTime};

pub fn window_deadline() -> Instant {
    Instant::now() //~ D002
}

pub fn stamp() -> SystemTime {
    SystemTime::now() //~ D002
}
