// D004 should-fire: unordered parallel float reductions.
use rayon::prelude::*;

pub fn norm(xs: &[f32]) -> f32 {
    xs.par_iter().map(|x| x * x).sum::<f32>().sqrt() //~ D004
}

pub fn total(xs: &[f64]) -> f64 {
    xs.par_iter()
        .map(|x| x + 1.0)
        .sum::<f64>() //~ D004
}

pub fn folded(xs: Vec<f64>) -> f64 {
    xs.into_par_iter()
        .fold(0.0, |a, b| a + b) //~ D004
}
