// D003 should-fire: ambient RNG breaks seed-stream reproducibility.
pub fn jitter() -> f64 {
    let mut rng = rand::thread_rng(); //~ D003
    rng.gen_range(0.0..1.0)
}

pub fn fresh() -> rand::rngs::StdRng {
    rand::rngs::StdRng::from_entropy() //~ D003
}
