// D005 should-pass: every unsafe block explains itself.
pub fn read_first(xs: &[u64]) -> u64 {
    assert!(!xs.is_empty());
    // SAFETY: the assert above guarantees at least one element, so the
    // pointer read is within bounds.
    unsafe { *xs.as_ptr() }
}

pub fn documented_same_line(p: &u8) -> u8 {
    unsafe { *(p as *const u8) } // SAFETY: p is a valid reference, cast round-trips.
}

pub fn mentions_only() -> &'static str {
    // The word unsafe in a comment, or "unsafe" in a string, never fires.
    "unsafe"
}
