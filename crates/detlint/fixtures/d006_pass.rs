// D006 should-pass: every policed allow carries its justification.
#[allow(clippy::too_many_arguments)] // mirrors the solver entry point it batches
pub fn wide(a: u8, b: u8, c: u8, d: u8, e: u8, f: u8, g: u8, h: u8) -> u8 {
    a + b + c + d + e + f + g + h
}

// The legacy wrappers stay until the deprecation window closes.
#[allow(missing_docs)]
pub mod legacy {}

// Lints the workspace does not police need no reason.
#[allow(deprecated)]
pub fn calls_deprecated() {}
