// D002 should-pass: simulated results depend on the virtual clock only.
pub struct VirtualClock(f64);

impl VirtualClock {
    pub fn now(&self) -> f64 {
        // `now` on the virtual clock is fine; "Instant::now()" in a
        // string or comment is fine too.
        self.0
    }
}

pub const DOC: &str = "profiling uses Instant::now() but only in crates/bench";
