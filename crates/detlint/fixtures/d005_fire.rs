// D005 should-fire: unsafe without an explanatory SAFETY comment.
pub fn read_first(xs: &[u64]) -> u64 {
    unsafe { *xs.as_ptr() } //~ D005
}

// A comment that is not a SAFETY comment does not count.
pub unsafe fn undocumented(p: *const u8) -> u8 { //~ D005
    *p
}
