// D004 should-pass: index-ordered reduction (the rayon-shim idiom) and
// sequential folds.
use rayon::prelude::*;

pub fn norm(xs: &[f32]) -> f32 {
    // Parallel map into an index-ordered Vec, then a sequential fold:
    // the accumulation order is fixed whatever the thread width.
    let squares: Vec<f32> = xs.par_iter().map(|x| x * x).collect();
    squares.iter().sum::<f32>().sqrt()
}

pub fn max_finish(finish: Vec<f64>) -> f64 {
    finish.into_iter().fold(0.0f64, f64::max)
}
