//! The determinism & safety rules (D001–D006) and the engine that applies
//! them to a scanned file.
//!
//! Every rule is lexical and module-scoped: the engine sees the
//! [`ScannedFile`] channels plus two pieces of context — the file's path
//! relative to the workspace root (rules exempt e.g. `crates/bench`, the
//! one crate whose job is wall-clock timing) and whether a line sits
//! inside a `#[cfg(test)]` region (test-only assertions may use unordered
//! collections for membership checks without touching any shipped result).
//!
//! Findings can be silenced two ways, both auditable:
//!
//! * inline — `// detlint: allow(D001) <reason>` on the finding line, or
//!   on a comment-only line directly above it. A missing reason is itself
//!   a finding (D000), so suppressions cannot be silent.
//! * baseline — a committed `detlint.baseline` entry (see
//!   [`crate::baseline`]) for grandfathered findings.

use crate::lexer::{find_token, has_ident, ScanLine, ScannedFile};

/// Identifier of a detlint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// Malformed suppression comment (unknown rule id or missing reason).
    D000,
    /// Unordered `HashMap`/`HashSet` in a deterministic (non-test) path.
    D001,
    /// Wall-clock read outside the benchmarking crates.
    D002,
    /// Unseeded / ambient RNG.
    D003,
    /// Unordered parallel float reduction.
    D004,
    /// `unsafe` without an explanatory `// SAFETY:` comment.
    D005,
    /// `#[allow(...)]` of a workspace-policed lint without a reason.
    D006,
}

impl RuleId {
    /// Every real rule, in code order (D000 is engine-internal and not
    /// suppressible, so it is not listed).
    pub const ALL: [RuleId; 6] = [
        RuleId::D001,
        RuleId::D002,
        RuleId::D003,
        RuleId::D004,
        RuleId::D005,
        RuleId::D006,
    ];

    /// The rule code as written in suppressions and reports.
    pub fn code(self) -> &'static str {
        match self {
            RuleId::D000 => "D000",
            RuleId::D001 => "D001",
            RuleId::D002 => "D002",
            RuleId::D003 => "D003",
            RuleId::D004 => "D004",
            RuleId::D005 => "D005",
            RuleId::D006 => "D006",
        }
    }

    /// Parse a rule code (as written inside `allow(...)`).
    pub fn parse(s: &str) -> Option<RuleId> {
        match s.trim() {
            "D001" => Some(RuleId::D001),
            "D002" => Some(RuleId::D002),
            "D003" => Some(RuleId::D003),
            "D004" => Some(RuleId::D004),
            "D005" => Some(RuleId::D005),
            "D006" => Some(RuleId::D006),
            _ => None,
        }
    }

    /// One-line summary used by `--list-rules` and the markdown report.
    pub fn summary(self) -> &'static str {
        match self {
            RuleId::D000 => "malformed `// detlint: allow(...)` suppression",
            RuleId::D001 => {
                "no HashMap/HashSet in deterministic paths — iteration order is \
                 nondeterministic; use BTreeMap/BTreeSet or a sorted collect"
            }
            RuleId::D002 => {
                "no wall-clock reads (Instant::now / SystemTime::now) outside \
                 crates/bench and shims/criterion"
            }
            RuleId::D003 => "no unseeded/ambient RNG (thread_rng, from_entropy)",
            RuleId::D004 => {
                "no unordered parallel float reduction (par_iter + sum/fold/...); \
                 use the index-ordered idiom the rayon shim guarantees"
            }
            RuleId::D005 => "every `unsafe` carries an explanatory `// SAFETY:` comment",
            RuleId::D006 => {
                "no `#[allow(...)]` of workspace-policed lints (unsafe_code, \
                 missing_docs, clippy::*) without a reason comment"
            }
        }
    }
}

impl std::fmt::Display for RuleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.code())
    }
}

/// One finding: a rule violated at a specific line of a specific file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The violated rule.
    pub rule: RuleId,
    /// Path relative to the workspace root, forward slashes.
    pub path: String,
    /// 1-based source line.
    pub line: usize,
    /// Human-readable diagnosis.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

impl Finding {
    /// Stable identity used by the baseline: rule + path + trimmed line
    /// content, so a finding survives unrelated line-number drift but a
    /// changed line must be re-triaged.
    pub fn fingerprint(&self) -> u64 {
        fnv1a64(format!("{}|{}|{}", self.rule.code(), self.path, self.snippet.trim()).as_bytes())
    }
}

/// 64-bit FNV-1a — tiny, dependency-free, stable across runs/platforms.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Result of checking one file.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Findings that survived inline suppression (baseline matching
    /// happens later, in the driver).
    pub findings: Vec<Finding>,
    /// Count of findings silenced by a well-formed inline suppression.
    pub suppressed: usize,
}

/// Check one scanned file against every applicable rule.
pub fn check_file(rel_path: &str, sf: &ScannedFile) -> FileReport {
    let ctx = FileContext::build(rel_path, sf);
    let mut raw: Vec<Finding> = Vec::new();

    // D000 first: malformed suppressions are findings in their own right.
    raw.extend(ctx.malformed.iter().cloned());

    for (i, line) in sf.lines.iter().enumerate() {
        let in_test = ctx.in_test[i];
        check_d001(&ctx, line, i, in_test, &mut raw);
        check_d002(&ctx, line, i, &mut raw);
        check_d003(&ctx, line, i, &mut raw);
        check_d004(&ctx, sf, line, i, in_test, &mut raw);
        check_d005(&ctx, sf, line, i, &mut raw);
    }
    check_d006(&ctx, sf, &mut raw);

    // Apply inline suppressions.
    let mut report = FileReport::default();
    for f in raw {
        let idx = f.line - 1;
        let allowed =
            f.rule != RuleId::D000 && ctx.allows.get(idx).is_some_and(|set| set.contains(&f.rule));
        if allowed {
            report.suppressed += 1;
        } else {
            report.findings.push(f);
        }
    }
    report.findings.sort_by_key(|f| (f.line, f.rule));
    report
}

/// Per-file context shared by all rules.
struct FileContext {
    rel: String,
    /// Per line: inside a `#[cfg(test)]` region or under a `tests/` dir.
    in_test: Vec<bool>,
    /// Per line: rules inline-allowed on that line.
    allows: Vec<Vec<RuleId>>,
    /// D000 findings produced while parsing suppressions.
    malformed: Vec<Finding>,
}

impl FileContext {
    fn build(rel_path: &str, sf: &ScannedFile) -> FileContext {
        let rel = rel_path.replace('\\', "/");
        let is_test_path = rel.split('/').any(|c| c == "tests");
        let in_test = test_regions(sf, is_test_path);
        let (allows, malformed) = parse_suppressions(&rel, sf);
        FileContext {
            rel,
            in_test,
            allows,
            malformed,
        }
    }

    fn under(&self, prefix: &str) -> bool {
        self.rel.starts_with(prefix)
    }

    fn finding(&self, rule: RuleId, i: usize, line: &ScanLine, message: String) -> Finding {
        Finding {
            rule,
            path: self.rel.clone(),
            line: i + 1,
            message,
            snippet: line.raw.trim().to_string(),
        }
    }
}

/// Mark every line that lives inside a `#[cfg(test)]` item. Tracking is
/// brace-depth based over the code channel: after a `#[cfg(test)]`
/// attribute, the next `{` opens the test region and its matching `}`
/// closes it; a `;` before any `{` means the attribute decorated a
/// braceless item. Good enough for module-scoped hygiene — a false
/// negative here still fails dynamically in the determinism suites.
fn test_regions(sf: &ScannedFile, is_test_path: bool) -> Vec<bool> {
    let mut out = Vec::with_capacity(sf.lines.len());
    let mut depth: i64 = 0;
    let mut region_floor: Option<i64> = None;
    let mut pending_attr = false;
    for line in &sf.lines {
        let at_start = region_floor.is_some();
        if region_floor.is_none() && line.code.contains("cfg(test)") {
            pending_attr = true;
        }
        for c in line.code.chars() {
            match c {
                '{' => {
                    if pending_attr && region_floor.is_none() {
                        region_floor = Some(depth);
                        pending_attr = false;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if region_floor == Some(depth) {
                        region_floor = None;
                    }
                }
                ';' if pending_attr && region_floor.is_none() => pending_attr = false,
                _ => {}
            }
        }
        out.push(is_test_path || at_start || region_floor.is_some() || pending_attr);
    }
    out
}

/// Parse `// detlint: allow(D00x[, D00y]) <reason>` comments. A trailing
/// suppression applies to its own line; one on a comment-only line applies
/// to the next line. Unknown rule ids and empty reasons yield D000.
fn parse_suppressions(rel: &str, sf: &ScannedFile) -> (Vec<Vec<RuleId>>, Vec<Finding>) {
    let mut allows: Vec<Vec<RuleId>> = vec![Vec::new(); sf.lines.len()];
    let mut malformed = Vec::new();
    for (i, line) in sf.lines.iter().enumerate() {
        // Doc comments may *mention* the suppression syntax (this file
        // does); only plain comments can suppress.
        let c = line.comment.trim_start();
        if c.starts_with("///") || c.starts_with("//!") {
            continue;
        }
        let Some(pos) = line.comment.find("detlint:") else {
            continue;
        };
        let rest = line.comment[pos + "detlint:".len()..].trim_start();
        let mut bad = |msg: &str| {
            malformed.push(Finding {
                rule: RuleId::D000,
                path: rel.to_string(),
                line: i + 1,
                message: msg.to_string(),
                snippet: line.raw.trim().to_string(),
            });
        };
        let Some(args) = rest.strip_prefix("allow(") else {
            bad("suppression must be written `detlint: allow(D00x) <reason>`");
            continue;
        };
        let Some(close) = args.find(')') else {
            bad("unclosed `detlint: allow(` suppression");
            continue;
        };
        let mut rules = Vec::new();
        let mut ok = true;
        for part in args[..close].split(',') {
            match RuleId::parse(part) {
                Some(r) => rules.push(r),
                None => {
                    bad(&format!("unknown rule id `{}` in suppression", part.trim()));
                    ok = false;
                }
            }
        }
        if args[close + 1..].trim().is_empty() {
            bad("suppression needs a reason after the rule list");
            ok = false;
        }
        if !ok {
            continue;
        }
        // Attach: own line when it carries code, otherwise the next line.
        let target = if line.is_code_blank() { i + 1 } else { i };
        if let Some(slot) = allows.get_mut(target) {
            slot.extend(rules);
        }
    }
    (allows, malformed)
}

fn check_d001(ctx: &FileContext, line: &ScanLine, i: usize, in_test: bool, out: &mut Vec<Finding>) {
    if in_test {
        return;
    }
    for token in ["HashMap", "HashSet"] {
        if has_ident(&line.code, token) {
            out.push(ctx.finding(
                RuleId::D001,
                i,
                line,
                format!(
                    "`{token}` in a deterministic path: iteration/drain order varies \
                     run-to-run — use BTreeMap/BTreeSet or collect-and-sort"
                ),
            ));
            return; // one finding per line even if both tokens appear
        }
    }
}

fn check_d002(ctx: &FileContext, line: &ScanLine, i: usize, out: &mut Vec<Finding>) {
    if ctx.under("crates/bench/") || ctx.under("shims/criterion/") {
        return;
    }
    for token in ["Instant::now", "SystemTime::now"] {
        if find_token(&line.code, token).is_some() {
            out.push(ctx.finding(
                RuleId::D002,
                i,
                line,
                format!(
                    "wall-clock read `{token}` outside the timing crates: simulated \
                     results must depend only on the virtual clock"
                ),
            ));
            return;
        }
    }
}

fn check_d003(ctx: &FileContext, line: &ScanLine, i: usize, out: &mut Vec<Finding>) {
    for token in ["thread_rng", "from_entropy"] {
        if has_ident(&line.code, token) {
            out.push(ctx.finding(
                RuleId::D003,
                i,
                line,
                format!(
                    "ambient RNG `{token}`: every random stream must be seeded from \
                     the scenario seed (SplitMix64 seed streams)"
                ),
            ));
            return;
        }
    }
}

/// Reduction adaptors that make `par_iter` order-sensitive for floats.
const REDUCTIONS: [&str; 4] = [".sum", ".product", ".reduce", ".fold"];

fn check_d004(
    ctx: &FileContext,
    sf: &ScannedFile,
    line: &ScanLine,
    i: usize,
    in_test: bool,
    out: &mut Vec<Finding>,
) {
    if in_test || ctx.under("shims/rayon/") {
        return;
    }
    let reduction = REDUCTIONS.iter().find(|r| line.code.contains(*r));
    let Some(reduction) = reduction else {
        return;
    };
    // Walk back through the enclosing statement (bounded window): lines
    // above belong to the same statement until one ends in `;`, `{`, `}`.
    let mut window = String::new();
    let mut k = i;
    loop {
        window.insert_str(0, &sf.lines[k].code);
        window.insert(0, '\n');
        if k == 0 || i - k >= 8 {
            break;
        }
        let above = sf.lines[k - 1].code.trim_end();
        if above.ends_with(';') || above.ends_with('{') || above.ends_with('}') {
            break;
        }
        k -= 1;
    }
    if has_ident(&window, "par_iter") || has_ident(&window, "into_par_iter") {
        out.push(ctx.finding(
            RuleId::D004,
            i,
            line,
            format!(
                "parallel reduction `par_iter()…{reduction}`: float accumulation \
                 order is unordered — use the index-ordered reduction idiom \
                 (map_indexed / collect-then-fold)"
            ),
        ));
    }
}

fn check_d005(
    ctx: &FileContext,
    sf: &ScannedFile,
    line: &ScanLine,
    i: usize,
    out: &mut Vec<Finding>,
) {
    if !has_ident(&line.code, "unsafe") {
        return;
    }
    let documented = (i.saturating_sub(3)..=i).any(|k| sf.lines[k].comment.contains("SAFETY:"));
    if !documented {
        out.push(
            ctx.finding(
                RuleId::D005,
                i,
                line,
                "`unsafe` without an explanatory `// SAFETY:` comment on or directly \
             above the block"
                    .to_string(),
            ),
        );
    }
}

/// Lints whose `allow` needs a written justification: everything the
/// workspace polices in `[workspace.lints]` (`unsafe_code` is denied,
/// `missing_docs` warned, `clippy::all` warned and escalated to errors by
/// CI's `-D warnings`).
fn policed_lint(name: &str) -> bool {
    let n = name.trim();
    n == "unsafe_code" || n == "missing_docs" || n.starts_with("clippy::")
}

fn check_d006(ctx: &FileContext, sf: &ScannedFile, out: &mut Vec<Finding>) {
    let mut i = 0;
    while i < sf.lines.len() {
        let code = &sf.lines[i].code;
        let start = code.find("#[allow(").or_else(|| code.find("#![allow("));
        let Some(start) = start else {
            i += 1;
            continue;
        };
        // Join lines until the attribute's brackets balance.
        let mut inner = String::new();
        let mut depth = 0i32;
        let mut end_line = i;
        let mut seen_open = false;
        'join: for (k, l) in sf.lines.iter().enumerate().skip(i) {
            let text = if k == i {
                &l.code[start..]
            } else {
                &l.code[..]
            };
            for c in text.chars() {
                match c {
                    '[' => {
                        depth += 1;
                        seen_open = true;
                    }
                    ']' => {
                        depth -= 1;
                        if seen_open && depth == 0 {
                            end_line = k;
                            break 'join;
                        }
                        inner.push(c);
                    }
                    _ => {
                        if seen_open && depth > 0 {
                            inner.push(c);
                        }
                    }
                }
            }
            end_line = k;
        }
        // inner now holds `allow(lint, lint, ...)` — strip to the list.
        let list = inner
            .trim_start_matches('!')
            .trim_start()
            .strip_prefix("allow(")
            .and_then(|s| s.rfind(')').map(|p| &s[..p]))
            .unwrap_or("");
        let needs_reason = list.split(',').any(policed_lint);
        if needs_reason && !allow_has_reason(sf, i, end_line, &inner) {
            out.push(ctx.finding(
                RuleId::D006,
                i,
                &sf.lines[i],
                format!(
                    "`#[allow({})]` of a workspace-policed lint without a reason — \
                     add a trailing `// why` comment (or a plain comment line above)",
                    list.trim()
                ),
            ));
        }
        i = end_line + 1;
    }
}

/// An `allow` is justified by a trailing comment on any of its lines, a
/// plain comment line directly above, or an in-attribute
/// `reason = "..."` string. Doc comments (`///`, `//!`) and compiletest
/// expectation markers (`//~`, the fixture corpus convention) are not
/// reasons.
fn allow_has_reason(sf: &ScannedFile, first: usize, last: usize, inner: &str) -> bool {
    if inner.contains("reason") && inner.contains('=') {
        return true;
    }
    let is_reason = |c: &str| {
        let c = c.trim();
        !c.is_empty() && !c.starts_with("///") && !c.starts_with("//!") && !c.starts_with("//~")
    };
    for k in first..=last.min(sf.lines.len() - 1) {
        if is_reason(&sf.lines[k].comment) {
            return true;
        }
    }
    if first > 0 {
        let above = &sf.lines[first - 1];
        if above.is_code_blank() && is_reason(&above.comment) {
            return true;
        }
    }
    false
}

/// Convenience used by tests and the driver: scan + check in one call.
pub fn scan_and_check(rel_path: &str, source: &str) -> FileReport {
    check_file(rel_path, &crate::lexer::scan_source(source))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(report: &FileReport) -> Vec<RuleId> {
        report.findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn d001_fires_outside_tests_only() {
        let src = "use std::collections::HashMap;\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn f() { let s = std::collections::HashSet::new(); }\n\
                   }\n";
        let r = scan_and_check("crates/core/src/x.rs", src);
        assert_eq!(rules_of(&r), vec![RuleId::D001]);
        assert_eq!(r.findings[0].line, 1);
    }

    #[test]
    fn d001_skips_tests_directories() {
        let r = scan_and_check("tests/foo.rs", "use std::collections::HashMap;\n");
        assert!(r.findings.is_empty());
    }

    #[test]
    fn d002_exempts_bench_and_criterion() {
        let src = "let t = std::time::Instant::now();\n";
        assert_eq!(
            rules_of(&scan_and_check("crates/core/src/x.rs", src)),
            vec![RuleId::D002]
        );
        assert!(scan_and_check("crates/bench/src/x.rs", src)
            .findings
            .is_empty());
        assert!(scan_and_check("shims/criterion/src/lib.rs", src)
            .findings
            .is_empty());
    }

    #[test]
    fn d003_fires_everywhere_even_tests() {
        let r = scan_and_check("tests/x.rs", "let mut rng = rand::thread_rng();\n");
        assert_eq!(rules_of(&r), vec![RuleId::D003]);
    }

    #[test]
    fn d004_multiline_statement() {
        let src = "let s: f64 = xs\n    .par_iter()\n    .map(|x| x * x)\n    .sum::<f64>();\n";
        let r = scan_and_check("crates/core/src/x.rs", src);
        assert_eq!(rules_of(&r), vec![RuleId::D004]);
        assert_eq!(r.findings[0].line, 4);
    }

    #[test]
    fn d004_ignores_sequential_fold_and_rayon_shim() {
        let seq = "let s = xs.iter().fold(0.0, f64::max);\n";
        assert!(scan_and_check("crates/core/src/x.rs", seq)
            .findings
            .is_empty());
        let par = "let s: f64 = xs.par_iter().sum();\n";
        assert!(scan_and_check("shims/rayon/src/lib.rs", par)
            .findings
            .is_empty());
    }

    #[test]
    fn d005_requires_safety_comment() {
        let bare = "unsafe { ptr.read() };\n";
        assert_eq!(
            rules_of(&scan_and_check("crates/core/src/x.rs", bare)),
            vec![RuleId::D005]
        );
        let documented =
            "// SAFETY: ptr is valid for reads, checked above.\nunsafe { ptr.read() };\n";
        assert!(scan_and_check("crates/core/src/x.rs", documented)
            .findings
            .is_empty());
        // `unsafe_code` (the lint name) must not trip the `unsafe` token rule.
        assert!(
            scan_and_check("crates/core/src/x.rs", "#![forbid(unsafe_code)]\n")
                .findings
                .is_empty()
        );
    }

    #[test]
    fn d006_policed_allows_need_reasons() {
        let bare = "#[allow(clippy::too_many_arguments)]\nfn f() {}\n";
        assert_eq!(
            rules_of(&scan_and_check("crates/core/src/x.rs", bare)),
            vec![RuleId::D006]
        );
        let trailed =
            "#[allow(clippy::too_many_arguments)] // mirrors the solver call signature\nfn f() {}\n";
        assert!(scan_and_check("crates/core/src/x.rs", trailed)
            .findings
            .is_empty());
        let above = "// grouping these into a struct would obscure the hot path\n\
                     #[allow(clippy::too_many_arguments)]\nfn f() {}\n";
        assert!(scan_and_check("crates/core/src/x.rs", above)
            .findings
            .is_empty());
        // Doc comments are not reasons.
        let doc = "/// Does things.\n#[allow(missing_docs)]\nfn f() {}\n";
        assert_eq!(
            rules_of(&scan_and_check("crates/core/src/x.rs", doc)),
            vec![RuleId::D006]
        );
        // Non-policed lints need no reason.
        assert!(
            scan_and_check("crates/core/src/x.rs", "#[allow(deprecated)]\nfn f() {}\n")
                .findings
                .is_empty()
        );
    }

    #[test]
    fn suppression_on_own_line_and_line_above() {
        let same = "let m = HashMap::new(); // detlint: allow(D001) lookup-only table\n";
        let r = scan_and_check("crates/core/src/x.rs", same);
        assert!(r.findings.is_empty());
        assert_eq!(r.suppressed, 1);

        let above = "// detlint: allow(D001) lookup-only table, never iterated\n\
                     let m = HashMap::new();\n";
        let r = scan_and_check("crates/core/src/x.rs", above);
        assert!(r.findings.is_empty());
        assert_eq!(r.suppressed, 1);
    }

    #[test]
    fn suppression_must_name_the_right_rule() {
        let wrong = "let m = HashMap::new(); // detlint: allow(D002) not the right rule\n";
        let r = scan_and_check("crates/core/src/x.rs", wrong);
        assert_eq!(rules_of(&r), vec![RuleId::D001]);
    }

    #[test]
    fn reasonless_or_unknown_suppressions_are_d000() {
        let r = scan_and_check(
            "crates/core/src/x.rs",
            "let m = HashMap::new(); // detlint: allow(D001)\n",
        );
        assert!(rules_of(&r).contains(&RuleId::D000));
        let r = scan_and_check(
            "crates/core/src/x.rs",
            "let x = 1; // detlint: allow(D937) bogus rule\n",
        );
        assert_eq!(rules_of(&r), vec![RuleId::D000]);
    }

    #[test]
    fn strings_and_comments_never_false_positive() {
        let src = "/// HashMap is mentioned here.\n\
                   let s = \"Instant::now() thread_rng HashSet\";\n\
                   // unsafe without SAFETY, par_iter().sum::<f64>()\n";
        assert!(scan_and_check("crates/core/src/x.rs", src)
            .findings
            .is_empty());
    }

    #[test]
    fn fingerprint_stable_under_line_drift() {
        let a = scan_and_check("crates/core/src/x.rs", "let m = HashMap::new();\n");
        let b = scan_and_check("crates/core/src/x.rs", "\n\n\nlet m = HashMap::new();\n");
        assert_eq!(a.findings[0].fingerprint(), b.findings[0].fingerprint());
        assert_ne!(a.findings[0].line, b.findings[0].line);
    }
}
