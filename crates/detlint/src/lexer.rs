//! A small hand-rolled, line-aware Rust lexer.
//!
//! The rule engine never wants a full parse tree — it wants to know, for
//! every source line, *which characters are code and which are comment or
//! literal text*, so that `HashMap` inside a string or a doc comment never
//! fires a finding. This module splits a source file into per-line channels:
//!
//! * `code` — the line with comments removed and string/char literal
//!   *contents* blanked to spaces (delimiters are kept, so `reason = "..."`
//!   is still recognizable as tokens). Columns stay aligned with `raw`.
//! * `comment` — the comment text on the line (including the `//` / `/*`
//!   markers), used for `// SAFETY:` and `// detlint: allow(...)` scanning.
//!
//! Handled: line comments, nested block comments, string literals
//! (including multi-line), raw strings `r#"…"#` (any hash depth, plus `br`
//! byte-raw forms), byte strings, char literals vs lifetimes (`'a'` vs
//! `'a`), and raw identifiers (`r#type` is *not* a raw string). This is a
//! lexer, not a parser: macro-generated code is seen as written, which is
//! exactly the shift-left granularity the determinism rules need.

/// One scanned source line, split into channels.
#[derive(Debug, Clone)]
pub struct ScanLine {
    /// The original line, verbatim (no trailing newline).
    pub raw: String,
    /// Code channel: comments stripped, literal contents blanked. Columns
    /// align with `raw`.
    pub code: String,
    /// Comment channel: every comment fragment on the line, concatenated
    /// in order (markers kept, so doc comments are recognizable by their
    /// `///` / `//!` prefix).
    pub comment: String,
}

impl ScanLine {
    /// True when the line carries no code tokens at all (blank, or
    /// comment-only) — such lines attach their suppressions to the line
    /// below instead of themselves.
    pub fn is_code_blank(&self) -> bool {
        self.code.trim().is_empty()
    }
}

/// A whole file split into [`ScanLine`]s.
#[derive(Debug, Clone)]
pub struct ScannedFile {
    /// Lines in file order; index 0 is source line 1.
    pub lines: Vec<ScanLine>,
}

/// Lexer state that survives across line boundaries.
enum State {
    /// Plain code.
    Code,
    /// Inside a block comment, with the current nesting depth.
    Block(usize),
    /// Inside a normal (escaping) string literal.
    Str,
    /// Inside a raw string closed by `"` followed by this many `#`s.
    RawStr(usize),
}

/// Split `src` into per-line code/comment channels.
pub fn scan_source(src: &str) -> ScannedFile {
    let mut st = State::Code;
    let mut lines = Vec::new();
    for raw_line in src.lines() {
        let cs: Vec<char> = raw_line.chars().collect();
        let mut code = String::with_capacity(cs.len());
        let mut comment = String::new();
        let mut j = 0;
        while j < cs.len() {
            match st {
                State::Block(depth) => {
                    if cs[j] == '*' && cs.get(j + 1) == Some(&'/') {
                        comment.push_str("*/");
                        code.push_str("  ");
                        j += 2;
                        st = if depth == 1 {
                            State::Code
                        } else {
                            State::Block(depth - 1)
                        };
                    } else if cs[j] == '/' && cs.get(j + 1) == Some(&'*') {
                        comment.push_str("/*");
                        code.push_str("  ");
                        j += 2;
                        st = State::Block(depth + 1);
                    } else {
                        comment.push(cs[j]);
                        code.push(' ');
                        j += 1;
                    }
                }
                State::Str => {
                    if cs[j] == '\\' {
                        code.push_str("  ");
                        j += 2; // escaped char (may step past EOL; loop guard handles it)
                    } else if cs[j] == '"' {
                        code.push('"');
                        j += 1;
                        st = State::Code;
                    } else {
                        code.push(' ');
                        j += 1;
                    }
                }
                State::RawStr(hashes) => {
                    if cs[j] == '"' && closes_raw(&cs, j + 1, hashes) {
                        code.push('"');
                        for _ in 0..hashes {
                            code.push(' ');
                        }
                        j += 1 + hashes;
                        st = State::Code;
                    } else {
                        code.push(' ');
                        j += 1;
                    }
                }
                State::Code => {
                    let c = cs[j];
                    if c == '/' && cs.get(j + 1) == Some(&'/') {
                        // Line comment: the rest of the line is comment.
                        if !comment.is_empty() {
                            comment.push(' ');
                        }
                        comment.extend(&cs[j..]);
                        while j < cs.len() {
                            code.push(' ');
                            j += 1;
                        }
                    } else if c == '/' && cs.get(j + 1) == Some(&'*') {
                        if !comment.is_empty() {
                            comment.push(' ');
                        }
                        comment.push_str("/*");
                        code.push_str("  ");
                        j += 2;
                        st = State::Block(1);
                    } else if let Some(hashes) = raw_string_at(&cs, j) {
                        // r"…", r#"…"#, br"…", … — skip prefix + hashes,
                        // keep the opening quote in the code channel.
                        let prefix = if c == 'b' { 2 } else { 1 };
                        for _ in 0..(prefix + hashes) {
                            code.push(' ');
                        }
                        code.push('"');
                        j += prefix + hashes + 1;
                        st = State::RawStr(hashes);
                    } else if c == '"' {
                        code.push('"');
                        j += 1;
                        st = State::Str;
                    } else if c == '\'' {
                        j = lex_quote(&cs, j, &mut code);
                    } else {
                        code.push(c);
                        j += 1;
                    }
                }
            }
        }
        lines.push(ScanLine {
            raw: raw_line.to_string(),
            code,
            comment,
        });
    }
    ScannedFile { lines }
}

/// Does a raw string literal start at `cs[j]`? Returns the hash count.
/// Recognizes `r"`, `r#"`, `br"`, `br#"` (any depth); `r#ident` raw
/// identifiers do not match because no quote follows the hashes.
fn raw_string_at(cs: &[char], j: usize) -> Option<usize> {
    let mut k = j;
    if cs.get(k) == Some(&'b') {
        k += 1;
    }
    if cs.get(k) != Some(&'r') {
        return None;
    }
    // `r` must not be the tail of a longer identifier (`attr"` is illegal
    // Rust anyway, but stay conservative).
    if j > 0 && is_ident_char(cs[j - 1]) {
        return None;
    }
    k += 1;
    let mut hashes = 0;
    while cs.get(k) == Some(&'#') {
        hashes += 1;
        k += 1;
    }
    if cs.get(k) == Some(&'"') {
        Some(hashes)
    } else {
        None
    }
}

/// Does `"` at some position close a raw string expecting `hashes` hashes,
/// i.e. are the next `hashes` chars all `#`?
fn closes_raw(cs: &[char], from: usize, hashes: usize) -> bool {
    (0..hashes).all(|h| cs.get(from + h) == Some(&'#'))
}

/// Lex a `'` in code position: either a char literal (blank its contents)
/// or a lifetime (keep as code). Returns the next index to process.
fn lex_quote(cs: &[char], j: usize, code: &mut String) -> usize {
    // Escaped char literal: '\n', '\'', '\u{1F600}', …
    if cs.get(j + 1) == Some(&'\\') {
        let mut k = j + 2;
        if k < cs.len() {
            k += 1; // the escaped char itself (or u of \u{…})
        }
        while k < cs.len() && cs[k] != '\'' {
            k += 1;
        }
        let end = (k + 1).min(cs.len());
        code.push('\'');
        for _ in (j + 1)..end {
            code.push(' ');
        }
        return end;
    }
    // Plain char literal: 'x' (exactly one char then a closing quote).
    if cs.get(j + 2) == Some(&'\'') && cs.get(j + 1) != Some(&'\'') {
        code.push('\'');
        code.push(' ');
        code.push(' ');
        return j + 3;
    }
    // Lifetime (or stray quote): keep in the code channel.
    code.push('\'');
    j + 1
}

/// Is `c` an identifier character?
pub fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Does `code` contain `ident` as a whole identifier (not as a substring
/// of a longer identifier)?
pub fn has_ident(code: &str, ident: &str) -> bool {
    find_token(code, ident).is_some()
}

/// Find `token` in `code` with identifier boundaries on both sides.
/// `token` itself may contain `::` path separators (`Instant::now`).
pub fn find_token(code: &str, token: &str) -> Option<usize> {
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find(token) {
        let start = from + pos;
        let end = start + token.len();
        let ok_before = start == 0 || !is_ident_char(bytes[start - 1] as char);
        let ok_after = end >= bytes.len() || !is_ident_char(bytes[end] as char);
        if ok_before && ok_after {
            return Some(start);
        }
        from = start + 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan1(src: &str) -> ScanLine {
        scan_source(src).lines.into_iter().next().unwrap()
    }

    #[test]
    fn line_comment_is_stripped_from_code() {
        let l = scan1("let x = 1; // HashMap here");
        assert!(l.code.contains("let x = 1;"));
        assert!(!l.code.contains("HashMap"));
        assert!(l.comment.contains("HashMap"));
    }

    #[test]
    fn string_contents_are_blanked_but_quotes_kept() {
        let l = scan1(r#"let s = "HashMap::new()"; let y = 2;"#);
        assert!(!l.code.contains("HashMap"));
        assert!(l.code.contains('"'));
        assert!(l.code.contains("let y = 2;"));
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let l = scan1(r#"let s = "a\"HashMap\""; let t = Instant::now();"#);
        assert!(!l.code.contains("HashMap"));
        assert!(l.code.contains("Instant::now"));
    }

    #[test]
    fn raw_strings_any_hash_depth() {
        let l = scan1(r###"let s = r#"thread_rng()"#; let u = 3;"###);
        assert!(!l.code.contains("thread_rng"));
        assert!(l.code.contains("let u = 3;"));
    }

    #[test]
    fn raw_identifier_is_not_a_raw_string() {
        let l = scan1("let r#type = HashSet::new();");
        assert!(l.code.contains("HashSet"));
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let l = scan1("fn f<'a>(x: &'a str) { let c = 'H'; }");
        // The lifetime survives as code; the char literal contents do not.
        assert!(l.code.contains("'a"));
        assert!(!l.code.contains('H'));
    }

    #[test]
    fn nested_block_comments_span_lines() {
        let f = scan_source("a /* one /* two */ still */ b\nc /* open\nHashMap\n*/ d");
        assert!(f.lines[0].code.contains('a') && f.lines[0].code.contains('b'));
        assert!(!f.lines[0].code.contains("still"));
        assert!(f.lines[1].code.contains('c') && !f.lines[1].code.contains("open"));
        assert!(!f.lines[2].code.contains("HashMap"));
        assert!(f.lines[2].comment.contains("HashMap"));
        assert!(f.lines[3].code.contains('d'));
    }

    #[test]
    fn multiline_string_spans_lines() {
        let f = scan_source("let s = \"first\nSystemTime::now()\nlast\"; let z = 9;");
        assert!(!f.lines[1].code.contains("SystemTime"));
        assert!(f.lines[2].code.contains("let z = 9;"));
    }

    #[test]
    fn token_boundaries_respected() {
        assert!(has_ident("let m: HashMap<u32, u8>;", "HashMap"));
        assert!(!has_ident("let m: FxHashMap<u32, u8>;", "HashMap"));
        assert!(!has_ident("let hash_map_like = 1;", "HashMap"));
        assert!(find_token("t::Instant::now()", "Instant::now").is_some());
        assert!(find_token("MyInstant::now()", "Instant::now").is_none());
    }

    #[test]
    fn doc_comments_land_in_comment_channel_with_prefix() {
        let l = scan1("/// HashMap is fine to mention here");
        assert!(l.is_code_blank());
        assert!(l.comment.starts_with("///"));
    }
}
