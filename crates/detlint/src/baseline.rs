//! The committed baseline of grandfathered findings.
//!
//! Shift-left tools die when adoption requires fixing every historical
//! finding in one PR. The baseline file (`detlint.baseline` at the
//! workspace root) lists findings that predate the rule and are accepted
//! for now: a finding whose fingerprint appears in the baseline does not
//! fail the run, but it is still counted and reported, and an entry that
//! no longer matches anything is flagged as stale so the file can only
//! shrink. This repo ships with an **empty** baseline — every pre-existing
//! finding was either fixed or inline-suppressed with a reason — and the
//! file exists so the mechanism stays exercised and documented.
//!
//! Format, one entry per line (blank lines and `#` comments ignored):
//!
//! ```text
//! D001 1a2b3c4d5e6f7a8b crates/foo/src/bar.rs  optional note
//! ```
//!
//! The fingerprint is FNV-1a over `rule|path|trimmed-snippet`, so entries
//! survive unrelated line-number drift but a touched line must be
//! re-triaged.

use crate::rules::Finding;
use std::collections::BTreeMap;

/// One baseline entry as parsed from the file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Rule code (`D001`…).
    pub rule: String,
    /// Fingerprint, 16 lowercase hex digits.
    pub fingerprint: u64,
    /// Path the entry was recorded against (informational).
    pub path: String,
}

/// A parsed baseline: a multiset of fingerprints (the same snippet can
/// legitimately appear twice in one file).
#[derive(Debug, Default)]
pub struct Baseline {
    entries: Vec<BaselineEntry>,
    counts: BTreeMap<u64, usize>,
}

impl Baseline {
    /// Parse the baseline file format. Malformed lines are returned as
    /// errors with their 1-based line number.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut b = Baseline::default();
        for (i, line) in text.lines().enumerate() {
            let t = line.trim();
            if t.is_empty() || t.starts_with('#') {
                continue;
            }
            let mut parts = t.split_whitespace();
            let (Some(rule), Some(fp), Some(path)) = (parts.next(), parts.next(), parts.next())
            else {
                return Err(format!(
                    "baseline line {}: expected `<rule> <fingerprint> <path>`",
                    i + 1
                ));
            };
            let fingerprint = u64::from_str_radix(fp, 16)
                .map_err(|_| format!("baseline line {}: bad fingerprint `{fp}`", i + 1))?;
            *b.counts.entry(fingerprint).or_default() += 1;
            b.entries.push(BaselineEntry {
                rule: rule.to_string(),
                fingerprint,
                path: path.to_string(),
            });
        }
        Ok(b)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the baseline holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Split findings into (active, baselined). Each baseline entry
    /// absorbs at most one finding; leftovers are stale (see
    /// [`Baseline::stale`] after calling this).
    pub fn partition(&mut self, findings: Vec<Finding>) -> (Vec<Finding>, Vec<Finding>) {
        let mut active = Vec::new();
        let mut baselined = Vec::new();
        for f in findings {
            match self.counts.get_mut(&f.fingerprint()) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    baselined.push(f);
                }
                _ => active.push(f),
            }
        }
        (active, baselined)
    }

    /// Entries that absorbed nothing in the last [`Baseline::partition`]
    /// call — findings that were fixed without pruning the baseline.
    pub fn stale(&self) -> Vec<&BaselineEntry> {
        // Walk entries in file order, consuming the per-fingerprint
        // residual counts so duplicates report once per unmatched copy.
        let mut residual = self.counts.clone();
        let mut out = Vec::new();
        for e in self.entries.iter().rev() {
            if let Some(n) = residual.get_mut(&e.fingerprint) {
                if *n > 0 {
                    *n -= 1;
                    out.push(e);
                }
            }
        }
        out.reverse();
        out
    }

    /// Render findings as a fresh baseline file (used by
    /// `--write-baseline`). Deterministic: sorted by path, line, rule.
    pub fn render(findings: &[Finding]) -> String {
        let mut sorted: Vec<&Finding> = findings.iter().collect();
        sorted.sort_by_key(|f| (f.path.clone(), f.line, f.rule));
        let mut out = String::from(
            "# detlint baseline — grandfathered findings.\n\
             # One entry per line: <rule> <fingerprint> <path>  [note]\n\
             # Regenerate with: cargo run -p exflow-detlint -- --write-baseline\n",
        );
        for f in sorted {
            out.push_str(&format!(
                "{} {:016x} {}\n",
                f.rule.code(),
                f.fingerprint(),
                f.path
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::scan_and_check;

    fn finding() -> Finding {
        scan_and_check("crates/core/src/x.rs", "let m = HashMap::new();\n")
            .findings
            .remove(0)
    }

    #[test]
    fn roundtrip_absorbs_the_finding() {
        let f = finding();
        let text = Baseline::render(std::slice::from_ref(&f));
        let mut b = Baseline::parse(&text).unwrap();
        assert_eq!(b.len(), 1);
        let (active, baselined) = b.partition(vec![f]);
        assert!(active.is_empty());
        assert_eq!(baselined.len(), 1);
        assert!(b.stale().is_empty());
    }

    #[test]
    fn unmatched_entries_are_stale() {
        let f = finding();
        let text = Baseline::render(std::slice::from_ref(&f));
        let mut b = Baseline::parse(&text).unwrap();
        let (active, baselined) = b.partition(Vec::new());
        assert!(active.is_empty() && baselined.is_empty());
        assert_eq!(b.stale().len(), 1);
    }

    #[test]
    fn one_entry_absorbs_one_finding_only() {
        let f = finding();
        let text = Baseline::render(std::slice::from_ref(&f));
        let mut b = Baseline::parse(&text).unwrap();
        let (active, baselined) = b.partition(vec![f.clone(), f]);
        assert_eq!(active.len(), 1);
        assert_eq!(baselined.len(), 1);
    }

    #[test]
    fn comments_and_blanks_ignored_malformed_rejected() {
        let b = Baseline::parse("# comment\n\nD001 00000000000000ff crates/x.rs note\n").unwrap();
        assert_eq!(b.len(), 1);
        assert!(Baseline::parse("D001 nothex crates/x.rs\n").is_err());
        assert!(Baseline::parse("D001\n").is_err());
    }
}
