//! Deterministic workspace walker.
//!
//! `std::fs::read_dir` order is filesystem-dependent; the linter sorts
//! every directory listing so reports (and baseline files) come out in
//! the same order on every machine — the linter holds itself to the
//! determinism contract it enforces.

use std::path::{Path, PathBuf};

/// Directories scanned by default, relative to the workspace root.
pub const DEFAULT_SUBDIRS: [&str; 5] = ["crates", "src", "tests", "shims", "examples"];

/// Directory names never descended into.
const SKIP_DIRS: [&str; 2] = ["target", ".git"];

/// The fixture corpus: deliberately-violating snippets that must only be
/// scanned when named explicitly (the self-test does), never by the tree
/// walk.
const FIXTURES: &str = "crates/detlint/fixtures";

/// Collect every `.rs` file under `root`'s default subdirectories, sorted.
pub fn collect_default(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for sub in DEFAULT_SUBDIRS {
        let dir = root.join(sub);
        if dir.is_dir() {
            walk(root, &dir, &mut out)?;
        }
    }
    Ok(out)
}

/// Collect `.rs` files under an explicit file-or-directory path. Explicit
/// files are always scanned, even inside the fixture corpus.
pub fn collect_path(root: &Path, path: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    if path.is_dir() {
        walk(root, path, &mut out)?;
    } else {
        out.push(path.to_path_buf());
    }
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<Result<_, _>>()?;
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if SKIP_DIRS.contains(&name) || rel_str(root, &path) == FIXTURES {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// `path` relative to `root`, forward slashes — the form rules and the
/// baseline use.
pub fn rel_str(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repo_root() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .unwrap()
            .to_path_buf()
    }

    #[test]
    fn walk_skips_fixtures_and_is_sorted() {
        let root = repo_root();
        let files = collect_default(&root).unwrap();
        assert!(!files.is_empty());
        let rels: Vec<String> = files.iter().map(|p| rel_str(&root, p)).collect();
        assert!(rels.iter().all(|r| !r.starts_with(FIXTURES)));
        let mut sorted = rels.clone();
        sorted.sort();
        assert_eq!(
            rels.iter().filter(|r| r.starts_with("crates/")).count(),
            sorted.iter().filter(|r| r.starts_with("crates/")).count()
        );
        // Per-subdirectory listings are sorted.
        let crates_only: Vec<&String> = rels.iter().filter(|r| r.starts_with("crates/")).collect();
        let mut crates_sorted = crates_only.clone();
        crates_sorted.sort();
        assert_eq!(crates_only, crates_sorted);
    }

    #[test]
    fn explicit_fixture_paths_are_scanned() {
        let root = repo_root();
        let fixture = root.join("crates/detlint/fixtures/d001_fire.rs");
        let files = collect_path(&root, &fixture).unwrap();
        assert_eq!(files.len(), 1);
    }
}
