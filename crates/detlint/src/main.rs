//! CLI driver for `exflow-detlint`.
//!
//! ```text
//! cargo run -p exflow-detlint                  # lint the whole tree
//! cargo run -p exflow-detlint -- PATH...       # lint specific files/dirs
//! cargo run -p exflow-detlint -- --list-rules
//! cargo run -p exflow-detlint -- --markdown out.md
//! cargo run -p exflow-detlint -- --write-baseline
//! ```
//!
//! Exit codes: 0 clean, 1 active findings, 2 usage/IO error.

use exflow_detlint::baseline::Baseline;
use exflow_detlint::rules::RuleId;
use exflow_detlint::{run_scan, walk};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    no_baseline: bool,
    write_baseline: bool,
    markdown: Option<PathBuf>,
    list_rules: bool,
    paths: Vec<PathBuf>,
}

fn usage() -> &'static str {
    "usage: detlint [--root DIR] [--baseline FILE | --no-baseline] \
     [--write-baseline] [--markdown FILE] [--list-rules] [PATH...]"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        baseline: None,
        no_baseline: false,
        write_baseline: false,
        markdown: None,
        list_rules: false,
        paths: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let path_value = |it: &mut dyn Iterator<Item = String>| {
            it.next()
                .map(PathBuf::from)
                .ok_or(format!("{a} needs a value"))
        };
        match a.as_str() {
            "--root" => args.root = Some(path_value(&mut it)?),
            "--baseline" => args.baseline = Some(path_value(&mut it)?),
            "--no-baseline" => args.no_baseline = true,
            "--write-baseline" => args.write_baseline = true,
            "--markdown" => args.markdown = Some(path_value(&mut it)?),
            "--list-rules" => args.list_rules = true,
            "--help" | "-h" => return Err(usage().to_string()),
            _ if a.starts_with('-') => return Err(format!("unknown flag {a}\n{}", usage())),
            _ => args.paths.push(PathBuf::from(a)),
        }
    }
    Ok(args)
}

/// The workspace root: `--root`, or the nearest ancestor of the current
/// directory holding a `Cargo.lock`.
fn find_root(args: &Args) -> Result<PathBuf, String> {
    if let Some(r) = &args.root {
        return Ok(r.clone());
    }
    let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
    for dir in cwd.ancestors() {
        if dir.join("Cargo.lock").is_file() {
            return Ok(dir.to_path_buf());
        }
    }
    Err("no Cargo.lock above the current directory; pass --root".to_string())
}

fn main() -> ExitCode {
    match run() {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("detlint: error: {e}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    if args.list_rules {
        for r in RuleId::ALL {
            println!("{}  {}", r.code(), r.summary());
        }
        return Ok(true);
    }
    let root = find_root(&args)?;

    let mut files = Vec::new();
    if args.paths.is_empty() {
        files = walk::collect_default(&root).map_err(|e| e.to_string())?;
    } else {
        for p in &args.paths {
            let abs = if p.is_absolute() {
                p.clone()
            } else {
                root.join(p)
            };
            if !abs.exists() {
                return Err(format!("no such path: {}", p.display()));
            }
            files.extend(walk::collect_path(&root, &abs).map_err(|e| e.to_string())?);
        }
    }

    let baseline_path = args
        .baseline
        .clone()
        .unwrap_or_else(|| root.join("detlint.baseline"));
    let mut baseline = if args.no_baseline || !baseline_path.is_file() {
        None
    } else {
        let text = std::fs::read_to_string(&baseline_path).map_err(|e| e.to_string())?;
        Some(Baseline::parse(&text)?)
    };

    if args.write_baseline {
        // Scan without a baseline so every finding lands in the new file.
        let outcome = run_scan(&root, &files, None).map_err(|e| e.to_string())?;
        let text = Baseline::render(&outcome.active);
        std::fs::write(&baseline_path, text).map_err(|e| e.to_string())?;
        println!(
            "detlint: wrote {} entr{} to {}",
            outcome.active.len(),
            if outcome.active.len() == 1 {
                "y"
            } else {
                "ies"
            },
            baseline_path.display()
        );
        return Ok(true);
    }

    let outcome = run_scan(&root, &files, baseline.as_mut()).map_err(|e| e.to_string())?;
    print!("{}", outcome.render_text());
    if let Some(md) = &args.markdown {
        std::fs::write(md, outcome.render_markdown()).map_err(|e| e.to_string())?;
    }
    Ok(outcome.is_clean())
}
