//! `exflow-detlint` — the in-tree determinism & safety static-analysis
//! pass.
//!
//! Every number this reproduction reports rests on one contract: solver,
//! online, serving, and fault runs are **bit-identical at 1/2/8 threads
//! and across the dense and CSR backends**. The dynamic side of that
//! contract lives in the determinism test suites; this crate is the
//! static side — a dependency-free lexer + rule engine that rejects
//! nondeterminism *hazards* at lint time, on every code path, exercised
//! by a test or not.
//!
//! The rules (see [`rules::RuleId`]):
//!
//! | rule | contract |
//! |------|----------|
//! | D001 | no `HashMap`/`HashSet` in deterministic (non-test) paths |
//! | D002 | no wall-clock reads outside `crates/bench` / `shims/criterion` |
//! | D003 | no unseeded/ambient RNG anywhere |
//! | D004 | no unordered parallel float reduction |
//! | D005 | every `unsafe` carries a `// SAFETY:` comment |
//! | D006 | no reason-less `#[allow(...)]` of workspace-policed lints |
//!
//! Escape hatches: inline `// detlint: allow(D00x) <reason>` suppressions
//! (reason mandatory — D000 otherwise) and the committed
//! `detlint.baseline` file for grandfathered findings. The crate builds
//! from `std` alone so it lints the workspace before any shim compiles,
//! and `scripts/audit-deps.sh` asserts it stays dependency-free.

pub mod baseline;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod walk;

use baseline::Baseline;
use report::ScanOutcome;
use rules::Finding;
use std::path::Path;

/// Scan a set of files (absolute paths) and fold the per-file reports
/// into one outcome, applying `baseline` if given.
pub fn run_scan(
    root: &Path,
    files: &[std::path::PathBuf],
    baseline: Option<&mut Baseline>,
) -> std::io::Result<ScanOutcome> {
    let mut findings: Vec<Finding> = Vec::new();
    let mut suppressed = 0usize;
    for path in files {
        let source = std::fs::read_to_string(path)?;
        let rel = walk::rel_str(root, path);
        let mut report = rules::scan_and_check(&rel, &source);
        suppressed += report.suppressed;
        findings.append(&mut report.findings);
    }
    let mut outcome = ScanOutcome {
        suppressed,
        files_scanned: files.len(),
        ..ScanOutcome::default()
    };
    match baseline {
        Some(b) => {
            let (active, baselined) = b.partition(findings);
            outcome.active = active;
            outcome.baselined = baselined;
            outcome.stale = b.stale().into_iter().cloned().collect();
        }
        None => outcome.active = findings,
    }
    Ok(outcome)
}
