//! Rendering: human console output and the CI markdown step summary.

use crate::baseline::BaselineEntry;
use crate::rules::{Finding, RuleId};
use std::collections::BTreeMap;

/// Outcome of a whole scan, ready to render.
#[derive(Debug, Default)]
pub struct ScanOutcome {
    /// Findings that fail the run (not baselined, not suppressed).
    pub active: Vec<Finding>,
    /// Findings absorbed by the committed baseline.
    pub baselined: Vec<Finding>,
    /// Count of findings silenced by inline `detlint: allow` comments.
    pub suppressed: usize,
    /// Baseline entries that matched nothing (should be pruned).
    pub stale: Vec<BaselineEntry>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl ScanOutcome {
    /// True when the run should exit 0.
    pub fn is_clean(&self) -> bool {
        self.active.is_empty()
    }

    /// Render the console report (one `path:line: rule message` block per
    /// active finding, then a summary line).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.active {
            out.push_str(&format!(
                "{}:{}: {} {}\n",
                f.path, f.line, f.rule, f.message
            ));
            out.push_str(&format!("    {}\n", f.snippet));
        }
        for e in &self.stale {
            out.push_str(&format!(
                "warning: stale baseline entry {} {:016x} {} (matches nothing — prune it)\n",
                e.rule, e.fingerprint, e.path
            ));
        }
        out.push_str(&self.summary_line());
        out.push('\n');
        out
    }

    /// The one-line verdict.
    pub fn summary_line(&self) -> String {
        format!(
            "detlint: {} active finding(s), {} baselined, {} suppressed, {} stale baseline entr{} — {} file(s) scanned",
            self.active.len(),
            self.baselined.len(),
            self.suppressed,
            self.stale.len(),
            if self.stale.len() == 1 { "y" } else { "ies" },
            self.files_scanned,
        )
    }

    /// Render the markdown report appended to `$GITHUB_STEP_SUMMARY`.
    pub fn render_markdown(&self) -> String {
        let mut out = String::from("## detlint — determinism & safety lints\n\n");
        out.push_str(&format!(
            "**{}** — {} file(s) scanned, {} baselined, {} inline-suppressed.\n\n",
            if self.is_clean() {
                "clean ✅"
            } else {
                "findings ❌"
            },
            self.files_scanned,
            self.baselined.len(),
            self.suppressed,
        ));
        if !self.active.is_empty() {
            out.push_str("| rule | location | finding |\n|---|---|---|\n");
            for f in &self.active {
                out.push_str(&format!(
                    "| {} | `{}:{}` | {} |\n",
                    f.rule,
                    f.path,
                    f.line,
                    f.message.replace('|', "\\|")
                ));
            }
            out.push('\n');
            let mut by_rule: BTreeMap<RuleId, usize> = BTreeMap::new();
            for f in &self.active {
                *by_rule.entry(f.rule).or_default() += 1;
            }
            out.push_str("Per rule: ");
            let parts: Vec<String> = by_rule.iter().map(|(r, n)| format!("{r}×{n}")).collect();
            out.push_str(&parts.join(", "));
            out.push_str(".\n\n");
        }
        if !self.stale.is_empty() {
            out.push_str("Stale baseline entries (prune them):\n\n");
            for e in &self.stale {
                out.push_str(&format!(
                    "- `{} {:016x} {}`\n",
                    e.rule, e.fingerprint, e.path
                ));
            }
            out.push('\n');
        }
        out.push_str(
            "<details><summary>Rules</summary>\n\n\
             | rule | contract |\n|---|---|\n",
        );
        for r in RuleId::ALL {
            out.push_str(&format!("| {} | {} |\n", r, r.summary()));
        }
        out.push_str("\n</details>\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::scan_and_check;

    #[test]
    fn text_and_markdown_mention_the_finding() {
        let report = scan_and_check("crates/core/src/x.rs", "let m = HashMap::new();\n");
        let outcome = ScanOutcome {
            active: report.findings,
            files_scanned: 1,
            ..ScanOutcome::default()
        };
        let text = outcome.render_text();
        assert!(text.contains("crates/core/src/x.rs:1: D001"));
        assert!(!outcome.is_clean());
        let md = outcome.render_markdown();
        assert!(md.contains("findings ❌"));
        assert!(md.contains("`crates/core/src/x.rs:1`"));
        assert!(md.contains("D001×1"));
    }

    #[test]
    fn clean_outcome_renders_clean() {
        let outcome = ScanOutcome {
            files_scanned: 3,
            ..ScanOutcome::default()
        };
        assert!(outcome.is_clean());
        assert!(outcome.render_markdown().contains("clean ✅"));
        assert!(outcome.render_text().contains("0 active finding(s)"));
    }
}
